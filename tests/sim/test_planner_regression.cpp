// The planner-backed backfill path must be a pure refactor: for every
// selection policy in the standard grid, on both a CPU+BB workload and an
// SSD-tier workload, a simulation run with use_planner=true serializes to
// the byte-identical SimResult of a run with use_planner=false (the legacy
// per-event walk).  This is the end-to-end companion of the op-level
// differential suite in tests/common/test_planner_differential.cpp.
#include <gtest/gtest.h>

#include <string>

#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "tests/sim/serialize_result.hpp"
#include "workload/generator.hpp"
#include "workload/synthetic.hpp"

namespace bbsched {
namespace {

using bbsched::testing::serialize;

std::string run(const Workload& workload, const std::string& method,
                bool use_planner) {
  SimConfig config;
  config.window_size = 8;
  config.use_planner = use_planner;
  GaParams ga;  // small but non-trivial, so policies actually diverge
  ga.generations = 25;
  ga.population_size = 12;
  const auto base = make_base_scheduler("FCFS");
  const auto policy = make_policy(method, ga);
  return serialize(simulate(workload, config, *base, *policy));
}

void expect_grid_identical(const Workload& workload) {
  for (const std::string& method : standard_method_names()) {
    SCOPED_TRACE(method);
    const std::string legacy = run(workload, method, false);
    const std::string planner = run(workload, method, true);
    EXPECT_EQ(legacy, planner)
        << "planner-backed schedule diverged for method " << method;
  }
}

TEST(PlannerRegression, CpuBbGridIsByteIdentical) {
  const Workload base = generate_workload(theta_model(100), 23);
  BbExpansionParams expansion;
  expansion.target_fraction = 0.75;
  expect_grid_identical(expand_bb_requests(base, expansion, 5));
}

TEST(PlannerRegression, SsdGridIsByteIdentical) {
  const Workload base = generate_workload(theta_model(80, 0.5), 29);
  BbExpansionParams s2;
  s2.target_fraction = 0.75;
  s2.pool_threshold = tb(5) * 0.5;
  s2.pool = sample_bb_pool(0.25, gb(1), tb(140), s2.pool_threshold, 512, 3);
  SsdExpansionParams ssd;
  ssd.small_request_fraction = 0.5;
  const Workload workload =
      expand_ssd_requests(expand_bb_requests(base, s2, 11), ssd, 13);
  ASSERT_GT(workload.machine.small_ssd_nodes, 0);
  expect_grid_identical(workload);
}

}  // namespace
}  // namespace bbsched
