// Telemetry must be a pure observer: arming tracing + metrics changes
// nothing about scheduling.  A run with everything enabled serializes to the
// byte-identical SimResult of a disabled run.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace bbsched {
namespace {

/// Lossless textual dump of every schedule-relevant field.
std::string serialize(const SimResult& result) {
  std::string out = result.workload_name + '|' + result.policy_name + '|' +
                    result.base_scheduler_name + '\n';
  char buf[256];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g,", v);
    out += buf;
  };
  num(result.makespan);
  num(result.measure_begin);
  num(result.measure_end);
  out += '\n';
  for (const JobOutcome& job : result.outcomes) {
    std::snprintf(buf, sizeof(buf), "%llu,",
                  static_cast<unsigned long long>(job.id));
    out += buf;
    num(job.submit);
    num(job.start);
    num(job.end);
    num(job.runtime);
    num(job.walltime);
    std::snprintf(buf, sizeof(buf), "%lld,%lld,%lld,%d\n",
                  static_cast<long long>(job.nodes),
                  static_cast<long long>(job.small_tier_nodes),
                  static_cast<long long>(job.large_tier_nodes),
                  job.backfilled ? 1 : 0);
    out += buf;
    num(job.bb_gb);
    num(job.ssd_per_node_gb);
    out += '\n';
  }
  const DecisionStats& d = result.decisions;
  std::snprintf(buf, sizeof(buf), "%zu,%zu,%zu,%zu,%zu,%zu\n", d.cycles,
                d.window_jobs, d.policy_starts, d.backfill_starts,
                d.forced_starts, d.evaluations);
  out += buf;
  num(d.pareto_size_sum);
  return out;
}

TEST(TelemetryRegression, EnabledRunIsByteIdentical) {
  const Workload workload = generate_workload(theta_model(120), 11);
  SimConfig config;
  config.window_size = 8;
  GaParams ga;
  ga.generations = 40;
  ga.population_size = 12;
  const auto base = make_base_scheduler("FCFS");
  const auto policy = make_policy("BBSched", ga);

  set_trace_enabled(false);
  set_metrics_enabled(false);
  const std::string off =
      serialize(simulate(workload, config, *base, *policy));

  trace_clear();
  set_trace_enabled(true);
  set_metrics_enabled(true);
  const std::string on =
      serialize(simulate(workload, config, *base, *policy));
  set_trace_enabled(false);
  set_metrics_enabled(false);

  // The observed run really recorded something...
  EXPECT_GT(trace_event_count(), 0u);
  EXPECT_GT(metric_counter("sim.runs").value(), 0u);
  trace_clear();
  MetricsRegistry::global().reset();

  // ...without perturbing the schedule by a single byte.
  EXPECT_EQ(off, on);
  // Note solve_seconds_total/max are intentionally excluded from
  // serialize(): they measure wall time, which varies run to run with or
  // without telemetry.
}

}  // namespace
}  // namespace bbsched
