file(REMOVE_RECURSE
  "../bench/bench_fig12_slowdown"
  "../bench/bench_fig12_slowdown.pdb"
  "CMakeFiles/bench_fig12_slowdown.dir/bench_fig12_slowdown.cpp.o"
  "CMakeFiles/bench_fig12_slowdown.dir/bench_fig12_slowdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
