// units.hpp — typed capacity and time helpers shared by every module.
//
// The paper mixes GB, TB and PB for burst-buffer sizes and hours/seconds for
// time.  Internally the library stores burst-buffer and SSD capacities in GB
// (double) and time in seconds (double).  These helpers keep conversion sites
// self-describing so that a "1.8" in machine configuration code is never an
// ambiguous magic number.
#pragma once

#include <cstdint>
#include <string>

namespace bbsched {

/// Simulation time in seconds since trace start.
using Time = double;

/// Number of compute nodes; node counts on the modeled machines fit easily
/// in 32 bits but we use 64 to keep arithmetic on node-hours exact.
using NodeCount = std::int64_t;

/// Capacity in gigabytes (burst buffer, local SSD).
using GigaBytes = double;

// --- capacity constructors -------------------------------------------------

constexpr GigaBytes gb(double v) { return v; }
constexpr GigaBytes tb(double v) { return v * 1024.0; }
constexpr GigaBytes pb(double v) { return v * 1024.0 * 1024.0; }

constexpr double as_tb(GigaBytes v) { return v / 1024.0; }
constexpr double as_pb(GigaBytes v) { return v / (1024.0 * 1024.0); }

// --- time constructors -----------------------------------------------------

constexpr Time seconds(double v) { return v; }
constexpr Time minutes(double v) { return v * 60.0; }
constexpr Time hours(double v) { return v * 3600.0; }
constexpr Time days(double v) { return v * 86400.0; }

constexpr double as_minutes(Time t) { return t / 60.0; }
constexpr double as_hours(Time t) { return t / 3600.0; }
constexpr double as_days(Time t) { return t / 86400.0; }

/// Render a capacity with a human unit (e.g. "85.0TB", "512GB").
std::string format_capacity(GigaBytes v);

/// Render a duration with a human unit (e.g. "2.5h", "90s").
std::string format_duration(Time t);

}  // namespace bbsched
