file(REMOVE_RECURSE
  "../bench/bench_fig13_kiviat"
  "../bench/bench_fig13_kiviat.pdb"
  "CMakeFiles/bench_fig13_kiviat.dir/bench_fig13_kiviat.cpp.o"
  "CMakeFiles/bench_fig13_kiviat.dir/bench_fig13_kiviat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_kiviat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
