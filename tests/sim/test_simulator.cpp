#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "policies/factory.hpp"
#include "policies/naive.hpp"

namespace bbsched {
namespace {

MachineConfig machine(NodeCount nodes = 100, GigaBytes bb = tb(100)) {
  MachineConfig m;
  m.name = "test";
  m.nodes = nodes;
  m.burst_buffer_gb = bb;
  return m;
}

JobRecord job(JobId id, Time submit, NodeCount nodes, Time runtime,
              GigaBytes bb = 0, Time walltime = 0) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.runtime = runtime;
  j.walltime = walltime > 0 ? walltime : runtime;
  j.nodes = nodes;
  j.bb_gb = bb;
  return j;
}

Workload make_workload(std::vector<JobRecord> jobs,
                       MachineConfig config = machine()) {
  Workload w;
  w.name = "unit";
  w.machine = std::move(config);
  w.jobs = std::move(jobs);
  w.normalize();
  return w;
}

SimConfig fast_config() {
  SimConfig c;
  c.window_size = 10;
  c.warmup_fraction = 0;
  c.cooldown_fraction = 0;
  return c;
}

SimResult run_naive(const Workload& w, SimConfig config = fast_config()) {
  FcfsScheduler fcfs;
  NaivePolicy naive;
  return simulate(w, config, fcfs, naive);
}

TEST(Simulator, SingleJobRunsImmediately) {
  const auto w = make_workload({job(1, 0, 10, 100)});
  const auto result = run_naive(w);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start, 0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].end, 100);
  EXPECT_DOUBLE_EQ(result.makespan, 100);
}

TEST(Simulator, JobsQueueWhenMachineFull) {
  const auto w = make_workload({job(1, 0, 100, 100), job(2, 0, 100, 50)});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start, 0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start, 100);
  EXPECT_DOUBLE_EQ(result.outcomes[1].wait(), 100);
}

TEST(Simulator, BurstBufferContentionSerializes) {
  const auto w = make_workload(
      {job(1, 0, 10, 100, tb(80)), job(2, 0, 10, 100, tb(80))});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start, 100)
      << "80+80 TB exceeds the 100 TB burst buffer";
}

TEST(Simulator, BackfillFillsNodeHoles) {
  // J1 occupies 90 nodes for 100 s.  J2 (50 nodes) must wait; J3 (10 nodes,
  // short) backfills around it.
  const auto w = make_workload({job(1, 0, 90, 100), job(2, 1, 50, 100),
                                job(3, 2, 10, 50)});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start, 2);
  EXPECT_TRUE(result.outcomes[2].backfilled);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start, 100);
  EXPECT_FALSE(result.outcomes[0].backfilled);
}

TEST(Simulator, BackfillNeverDelaysHead) {
  // A long 60-node filler would collide with the 50-node head's reservation
  // at t=100 (extra = 100-50 = 50 nodes): rejected.
  const auto w = make_workload({job(1, 0, 90, 100), job(2, 1, 50, 100),
                                job(3, 2, 60, 1000)});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start, 100);
  EXPECT_GE(result.outcomes[2].start, 100);
}

TEST(Simulator, DependenciesGateWindowEntry) {
  auto dependent = job(2, 0, 10, 50);
  dependent.dependencies = {1};
  const auto w = make_workload({job(1, 0, 10, 100), dependent});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start, 100)
      << "dependent job must wait for completion even though nodes are free";
}

TEST(Simulator, DependencyOnUnknownJobThrows) {
  auto bad = job(1, 0, 10, 50);
  bad.dependencies = {999};
  const auto w = make_workload({bad});
  FcfsScheduler fcfs;
  NaivePolicy naive;
  EXPECT_THROW(Simulator(w, fast_config(), fcfs, naive),
               std::invalid_argument);
}

TEST(Simulator, AllJobsCompleteUnderLoad) {
  std::vector<JobRecord> jobs;
  for (JobId i = 1; i <= 50; ++i) {
    jobs.push_back(job(i, static_cast<double>(i), 1 + (i % 60), 50 + i * 3,
                       (i % 4 == 0) ? tb(30) : 0));
  }
  const auto w = make_workload(std::move(jobs));
  const auto result = run_naive(w);
  for (const auto& o : result.outcomes) {
    EXPECT_GE(o.start, o.submit);
    EXPECT_DOUBLE_EQ(o.end, o.start + o.runtime);
  }
}

TEST(Simulator, ResourceCapacityNeverExceeded) {
  std::vector<JobRecord> jobs;
  for (JobId i = 1; i <= 80; ++i) {
    jobs.push_back(job(i, static_cast<double>(i * 2), 1 + (i * 7) % 50,
                       30 + (i * 13) % 200, (i % 3 == 0) ? tb(20) : 0));
  }
  const auto w = make_workload(std::move(jobs));
  const auto result = run_naive(w);
  // Sweep all start/end events and verify instantaneous usage.
  struct Event {
    Time t;
    double nodes, bb;
  };
  std::vector<Event> events;
  for (const auto& o : result.outcomes) {
    events.push_back({o.start, static_cast<double>(o.nodes), o.bb_gb});
    events.push_back({o.end, -static_cast<double>(o.nodes), -o.bb_gb});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.t != b.t) return a.t < b.t;
              return a.nodes < b.nodes;  // releases before starts at a tie
            });
  double nodes = 0, bb = 0;
  for (const auto& e : events) {
    nodes += e.nodes;
    bb += e.bb;
    EXPECT_LE(nodes, 100 + 1e-9);
    EXPECT_LE(bb, tb(100) + 1e-9);
  }
}

TEST(Simulator, StarvationBoundForcesJob) {
  // Two 50-node jobs saturate the machine; a 60-node job with a modest BB
  // request then arrives ahead of a stream of further 50-node jobs.  The
  // node-first decision rule always prefers a {50, 50} pair (node
  // utilization 1.0) over the 60-node job (0.6), and the BB gain (0.3) is
  // below the 2x threshold, so BBSched skips the big job every cycle — the
  // §3.1 starvation scenario.  The residency bound must eventually pin it.
  std::vector<JobRecord> jobs;
  jobs.push_back(job(1, 0, 50, 300));
  jobs.push_back(job(2, 1, 50, 300));
  jobs.push_back(job(3, 5, 60, 600, tb(30)));  // the starving job
  for (JobId i = 4; i <= 30; ++i) {
    jobs.push_back(job(i, static_cast<double>(i + 2), 50, 300));
  }
  const auto w = make_workload(std::move(jobs));
  SimConfig config = fast_config();
  config.starvation_bound = 3;
  GaParams ga;
  ga.generations = 60;
  ga.population_size = 12;
  const auto policy = make_policy("BBSched", ga);
  FcfsScheduler fcfs;
  const auto result = simulate(w, config, fcfs, *policy);
  EXPECT_GT(result.decisions.forced_starts, 0u);
  for (const auto& o : result.outcomes) EXPECT_GE(o.end, o.start);
}

TEST(Simulator, DecisionStatspopulated) {
  const auto w = make_workload({job(1, 0, 10, 100), job(2, 5, 10, 100)});
  const auto result = run_naive(w);
  EXPECT_GT(result.decisions.cycles, 0u);
  EXPECT_EQ(result.decisions.policy_starts + result.decisions.backfill_starts,
            2u);
}

TEST(Simulator, MeasurementIntervalFromFractions) {
  SimConfig config = fast_config();
  config.warmup_fraction = 0.25;
  config.cooldown_fraction = 0.25;
  const auto w = make_workload({job(1, 0, 1, 10), job(2, 100, 1, 10)});
  FcfsScheduler fcfs;
  NaivePolicy naive;
  const auto result = simulate(w, config, fcfs, naive);
  EXPECT_DOUBLE_EQ(result.measure_begin, 25);
  EXPECT_DOUBLE_EQ(result.measure_end, 75);
}

TEST(Simulator, WindowSizeOneDegeneratesToPureFcfs) {
  SimConfig config = fast_config();
  config.window_size = 1;
  const auto w = make_workload(
      {job(1, 0, 100, 100), job(2, 1, 10, 10), job(3, 2, 10, 10)});
  FcfsScheduler fcfs;
  NaivePolicy naive;
  const auto result = simulate(w, config, fcfs, naive);
  // Jobs 2 and 3 fit only via backfill; with J1 running the machine is full,
  // so everything serializes after J1... except backfill cannot help here
  // (no free nodes).  Order must be strictly FCFS.
  EXPECT_DOUBLE_EQ(result.outcomes[1].start, 100);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start, 100);
}

TEST(Simulator, ConfigValidation) {
  SimConfig config;
  config.window_size = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.warmup_fraction = 0.6;
  config.cooldown_fraction = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.starvation_bound = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Simulator, SimultaneousArrivalsHandledInOneCycle) {
  const auto w = make_workload(
      {job(1, 10, 30, 50), job(2, 10, 30, 50), job(3, 10, 30, 50)});
  const auto result = run_naive(w);
  for (const auto& o : result.outcomes) EXPECT_DOUBLE_EQ(o.start, 10);
}

}  // namespace
}  // namespace bbsched
