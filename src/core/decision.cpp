#include "core/decision.hpp"

#include <cassert>
#include <stdexcept>

namespace bbsched {

bool prefers_front_of_window(const Genes& a, const Genes& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return false;
}

std::size_t max_objective_index(std::span<const Chromosome> pareto_set,
                                std::size_t k) {
  if (pareto_set.empty()) {
    throw std::invalid_argument("decision: empty Pareto set");
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < pareto_set.size(); ++i) {
    const double vi = pareto_set[i].objectives.at(k);
    const double vb = pareto_set[best].objectives.at(k);
    if (vi > vb ||
        (vi == vb &&
         prefers_front_of_window(pareto_set[i].genes, pareto_set[best].genes))) {
      best = i;
    }
  }
  return best;
}

std::size_t NodeFirstTradeoffRule::choose(
    std::span<const Chromosome> pareto_set) const {
  std::size_t preferred = max_objective_index(pareto_set, 0);
  const double node0 = pareto_set[preferred].objectives.at(0);
  const double bb0 = pareto_set[preferred].objectives.at(1);
  // Replace if the BB-utilization gain is more than `factor_` times the
  // node-utilization loss; among qualifying solutions pick the maximum gain.
  std::size_t chosen = preferred;
  double best_gain = 0;
  for (std::size_t i = 0; i < pareto_set.size(); ++i) {
    if (i == preferred) continue;
    const double gain = pareto_set[i].objectives.at(1) - bb0;
    const double loss = node0 - pareto_set[i].objectives.at(0);
    if (gain > factor_ * loss && gain > best_gain) {
      best_gain = gain;
      chosen = i;
    }
  }
  return chosen;
}

std::size_t SumTradeoffRule::choose(
    std::span<const Chromosome> pareto_set) const {
  std::size_t preferred = max_objective_index(pareto_set, 0);
  const auto& base = pareto_set[preferred].objectives;
  if (base.size() < 2) {
    throw std::invalid_argument("SumTradeoffRule: needs >= 2 objectives");
  }
  std::size_t chosen = preferred;
  double best_gain = 0;
  for (std::size_t i = 0; i < pareto_set.size(); ++i) {
    if (i == preferred) continue;
    const auto& objs = pareto_set[i].objectives;
    double gain = 0;
    for (std::size_t k = 1; k < objs.size(); ++k) gain += objs[k] - base[k];
    const double loss = base[0] - objs[0];
    if (gain > factor_ * loss && gain > best_gain) {
      best_gain = gain;
      chosen = i;
    }
  }
  return chosen;
}

std::size_t LexicographicRule::choose(
    std::span<const Chromosome> pareto_set) const {
  return max_objective_index(pareto_set, primary_);
}

}  // namespace bbsched
