// exhaustive.hpp — exact Pareto-set computation by enumerating all 2^w
// selections.
//
// This is the "true Pareto set" S* of §3.2.3: it grounds the generational-
// distance measurements (Figure 4) and the time-to-solution blow-up shown in
// Figure 2.  The enumeration respects pinned genes and skips infeasible
// selections.  It is intentionally the straightforward algorithm the paper
// describes ("exhaustively examine 2^w possible solutions and compare them");
// a Gray-code incremental evaluation keeps the constant small, but the
// exponential shape — the whole point of Figure 2 — is preserved.
#pragma once

#include <cstddef>
#include <vector>

#include "core/pareto.hpp"
#include "core/problem.hpp"

namespace bbsched {

/// Result of an exhaustive solve.
struct ExhaustiveResult {
  std::vector<Chromosome> pareto_set;  ///< the exact Pareto set
  std::size_t feasible_count = 0;      ///< feasible selections examined
  std::size_t total_count = 0;         ///< 2^w selections enumerated
};

/// Exact solver.  Refuses windows larger than `max_vars` (default 30) so a
/// misconfigured caller cannot hang a scheduling cycle for hours.
class ExhaustiveSolver {
 public:
  explicit ExhaustiveSolver(std::size_t max_vars = 30) : max_vars_(max_vars) {}

  /// Enumerate every selection of `problem` and return the exact Pareto set.
  /// Throws std::invalid_argument if num_vars() exceeds the configured cap.
  ExhaustiveResult solve(const MooProblem& problem) const;

 private:
  std::size_t max_vars_;
};

}  // namespace bbsched
