// experiment.hpp — shared configuration of the paper-reproduction benches.
//
// Figures 6, 7, 8, 12 and 13 all read off the same 10-workload x 8-method
// simulation grid; Figures 9-11 read per-category breakdowns of the same
// Theta-S4 runs; Figure 14 reads the §5 SSD grid.  Running ~120 simulations
// once per figure binary would be wasteful, so the grid runner caches its
// results as CSV keyed by a digest of the configuration: the first bench
// binary that needs a grid computes and caches it, the rest load it.
//
// Environment overrides (see DESIGN.md §3, scaled-trace substitution):
//   BBSCHED_BENCH_JOBS   jobs per workload            (default 1200)
//   BBSCHED_BENCH_G      GA generations               (default 500, paper)
//   BBSCHED_BENCH_P      GA population size           (default 20, paper)
//   BBSCHED_BENCH_WINDOW scheduling window            (default 20, paper)
//   BBSCHED_SEED         master seed                  (default 42)
//   BBSCHED_CACHE_DIR    cache directory              (default "bench_cache")
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ga_ops.hpp"
#include "sim/simulator.hpp"
#include "workload/synthetic.hpp"

namespace bbsched {

/// Configuration of one reproduction campaign.
struct ExperimentConfig {
  std::size_t jobs_per_workload = 1200;
  std::size_t window_size = 20;   ///< §4.3 default
  GaParams ga;                    ///< §3.2.3 defaults
  /// Machine scale factors (nodes, burst buffer and request sizes shrink
  /// together, preserving contention ratios).  The paper replays millions of
  /// jobs against the full machines; at bench-sized job counts a full-size
  /// Cori never fills, so the machines are scaled so that each workload
  /// cycles its machine many times (BBSCHED_CORI_SCALE / BBSCHED_THETA_SCALE).
  double cori_scale = 0.25;
  double theta_scale = 0.5;
  std::uint64_t seed = 42;        ///< workload generation master seed
  double warmup_fraction = 0.1;
  double cooldown_fraction = 0.1;
  std::string cache_dir = "bench_cache";

  /// Defaults overridden by the BBSCHED_* environment variables.
  static ExperimentConfig from_env();

  /// Stable digest used as the cache key.
  std::string digest() const;

  /// SimConfig for one run under this campaign.
  SimConfig sim_config() const;
};

/// The ten §4 workloads: Cori-{Original,S1..S4} then Theta-{...}.
std::vector<SuiteEntry> build_main_workloads(const ExperimentConfig& config);

/// The six §5 workloads: Cori-{S5..S7} then Theta-{S5..S7}.
std::vector<SuiteEntry> build_ssd_workloads(const ExperimentConfig& config);

/// Base scheduler used for a workload (§4.3): FCFS on Cori, WFP on Theta.
std::string base_scheduler_for(const std::string& workload_label);

}  // namespace bbsched
