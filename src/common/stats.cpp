#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbsched {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double quantile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> work(values.begin(), values.end());
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(work.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, work.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Two partial selections instead of a full sort: nth_element places the
  // lo-th order statistic and partitions everything greater after it, so the
  // hi-th order statistic is the minimum of the tail.
  const auto lo_it = work.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(work.begin(), lo_it, work.end());
  const double lo_value = *lo_it;
  const double hi_value =
      hi == lo ? lo_value : *std::min_element(lo_it + 1, work.end());
  return lo_value * (1.0 - frac) + hi_value * frac;
}

void RunningStats::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  const double delta = v - welford_mean_;
  welford_mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - welford_mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  // Chan's parallel variance update.
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.welford_mean_ - welford_mean_;
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  welford_mean_ += delta * nb / (na + nb);
  count_ += other.count_;
  sum_ += other.sum_;
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void ExactSum::add(double value) {
  // Shewchuk's grow-expansion as used by Python's math.fsum: cascade the new
  // value through the partials with exact two-sums, keeping the surviving
  // round-off terms.  The partials stay non-overlapping and sorted by
  // magnitude; their exact mathematical sum equals the exact sum of every
  // value added so far.
  double x = value;
  std::size_t kept = 0;
  for (double p : partials_) {
    if (std::abs(x) < std::abs(p)) std::swap(x, p);
    const double hi = x + p;
    const double lo = p - (hi - x);
    if (lo != 0.0) partials_[kept++] = lo;
    x = hi;
  }
  partials_.resize(kept);
  partials_.push_back(x);
}

void ExactSum::merge(const ExactSum& other) {
  for (double p : other.partials_) add(p);
}

double ExactSum::round() const {
  // Sum the partials from largest magnitude down, tracking the first
  // non-zero round-off; then apply the half-ulp tie correction so the result
  // is the exact sum correctly rounded (CPython math.fsum's extraction).
  std::size_t n = partials_.size();
  if (n == 0) return 0.0;
  double hi = partials_[--n];
  double lo = 0.0;
  while (n > 0) {
    const double x = hi;
    const double y = partials_[--n];
    hi = x + y;
    lo = y - (hi - x);
    if (lo != 0.0) break;
  }
  if (n > 0 && ((lo < 0.0 && partials_[n - 1] < 0.0) ||
                (lo > 0.0 && partials_[n - 1] > 0.0))) {
    const double y = lo * 2.0;
    const double x = hi + y;
    if (y == x - hi) hi = x;
  }
  return hi;
}

QuantileSketch::QuantileSketch(double relative_error, double floor, double cap)
    : relative_error_(relative_error), floor_(floor), cap_(cap) {
  if (!(relative_error > 0.0 && relative_error < 1.0)) {
    throw std::invalid_argument("QuantileSketch: relative_error not in (0,1)");
  }
  if (!(floor > 0.0) || !(cap > floor)) {
    throw std::invalid_argument("QuantileSketch: need 0 < floor < cap");
  }
  gamma_ = (1.0 + relative_error) / (1.0 - relative_error);
  log_gamma_ = std::log(gamma_);
  const auto log_buckets = static_cast<std::size_t>(
      std::ceil(std::log(cap / floor) / log_gamma_));
  // [0] low bucket ([0, floor]), [1..log_buckets] log buckets,
  // [log_buckets + 1] overflow (> cap).
  counts_.assign(log_buckets + 2, 0);
}

std::size_t QuantileSketch::bucket_of(double value) const {
  if (value <= floor_) return 0;
  if (value > cap_) return counts_.size() - 1;
  const auto idx = static_cast<std::size_t>(
      std::ceil(std::log(value / floor_) / log_gamma_));
  return std::clamp<std::size_t>(idx, 1, counts_.size() - 2);
}

double QuantileSketch::bucket_estimate(std::size_t bucket) const {
  if (bucket == 0) return floor_ * 0.5;
  if (bucket == counts_.size() - 1) return cap_;
  // Bucket covers (floor * gamma^(b-1), floor * gamma^b]; 2*hi/(gamma+1) is
  // within relative_error of every value in the bucket.
  const double hi = floor_ * std::pow(gamma_, static_cast<double>(bucket));
  return 2.0 * hi / (gamma_ + 1.0);
}

void QuantileSketch::add(double value) {
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  ++counts_[bucket_of(value)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (relative_error_ != other.relative_error_ || floor_ != other.floor_ ||
      cap_ != other.cap_) {
    throw std::invalid_argument("QuantileSketch::merge: parameter mismatch");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double QuantileSketch::quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // The extremes are tracked exactly, so don't settle for a bucket estimate.
  if (p == 0.0) return min_;
  if (p == 1.0) return max_;
  // Same rank convention as the exact quantile(): target the fractional rank
  // p * (n - 1) and return the estimate of the bucket holding it.
  const double rank = p * static_cast<double>(count_ - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (rank < static_cast<double>(cumulative)) {
      return std::clamp(bucket_estimate(i), min_, max_);
    }
  }
  return max_;
}

TimeWeightedIntegrator::TimeWeightedIntegrator(double begin, double end)
    : begin_(begin), end_(end) {}

void TimeWeightedIntegrator::sample(double t, double value) {
  if (samples_ > 0) {
    if (t < last_time_) {
      throw std::invalid_argument(
          "TimeWeightedIntegrator: samples must be time-ordered");
    }
    const double width =
        std::min(t, end_) - std::max(last_time_, begin_);
    if (width > 0) area_.add(last_value_ * width);
  }
  last_time_ = t;
  last_value_ = value;
  ++samples_;
}

double TimeWeightedIntegrator::integral() const {
  if (samples_ == 0 || end_ <= begin_) return 0.0;
  ExactSum total = area_;
  const double width = end_ - std::max(last_time_, begin_);
  if (width > 0) total.add(last_value_ * width);
  return total.round();
}

double TimeWeightedIntegrator::time_average() const {
  return end_ > begin_ ? integral() / (end_ - begin_) : 0.0;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2) {
    throw std::invalid_argument("Histogram: need at least two edges");
  }
  if (!std::is_sorted(edges_.begin(), edges_.end())) {
    throw std::invalid_argument("Histogram: edges must be sorted");
  }
  counts_.assign(edges_.size() - 1, 0.0);
}

void Histogram::add(double value, double weight) {
  if (value < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (value > edges_.back()) {
    overflow_ += weight;
    return;
  }
  if (value == edges_.back()) {
    counts_.back() += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[bin] += weight;
}

double Histogram::total_weight() const {
  double total = underflow_ + overflow_;
  for (double c : counts_) total += c;
  return total;
}

}  // namespace bbsched
