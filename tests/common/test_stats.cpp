#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace bbsched {
namespace {

TEST(Mean, BasicAndEmpty) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stddev, SampleVariance) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Quantile, InterpolatesUnsortedInput) {
  const std::vector<double> v{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{}, 0.5), 0.0);
}

TEST(Quantile, ClampsOutOfRangeP) {
  const std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 2.0);
}

TEST(RunningStats, TracksMoments) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2);
  s.add(6);
  s.add(4);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, MergeCombines) {
  RunningStats a, b;
  a.add(1);
  a.add(3);
  b.add(10);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 3u);
}

TEST(RunningStats, VarianceMatchesDirectFormula) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats s;
  for (double x : v) s.add(x);
  EXPECT_NEAR(s.stddev(), stddev(v), 1e-12);
  EXPECT_NEAR(s.variance(), stddev(v) * stddev(v), 1e-12);
  RunningStats one;
  one.add(5.0);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSingleAccumulator) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  std::vector<double> values(200);
  for (double& v : values) v = dist(rng);

  RunningStats all;
  for (double v : values) all.add(v);
  // Split at an arbitrary point; Chan's update must agree with streaming.
  RunningStats a, b;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 73 ? a : b).add(values[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

// --- ExactSum -------------------------------------------------------------

TEST(ExactSum, RecoversCancellationNaiveSumLoses) {
  // Classic fsum case: naive left-to-right summation returns 0.0 here.
  ExactSum s;
  s.add(1e100);
  s.add(1.0);
  s.add(-1e100);
  EXPECT_DOUBLE_EQ(s.round(), 1.0);

  // 0.1 added ten times: naive sum misses 1.0 by a few ulps; fsum does not.
  ExactSum tenths;
  for (int i = 0; i < 10; ++i) tenths.add(0.1);
  EXPECT_DOUBLE_EQ(tenths.round(), 1.0);
}

TEST(ExactSum, RoundIsOrderInvariant) {
  // Mixed magnitudes chosen so naive summation is order sensitive.
  std::vector<double> values{1e16, 1.0,   -1e16, 0.5,  1e-8,
                             3.25, -2.75, 1e8,   -1e8, 7e-3};
  ExactSum forward;
  for (double v : values) forward.add(v);
  const double expected = forward.round();

  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::shuffle(values.begin(), values.end(), rng);
    ExactSum shuffled;
    for (double v : values) shuffled.add(v);
    EXPECT_DOUBLE_EQ(shuffled.round(), expected) << "trial " << trial;
  }
}

TEST(ExactSum, MergeMatchesSingleAccumulatorOverRandomSplits) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(0.0, 1e6);
  std::vector<double> values(300);
  for (double& v : values) v = dist(rng);

  ExactSum whole;
  for (double v : values) whole.add(v);
  const double expected = whole.round();

  std::uniform_int_distribution<std::size_t> cut(1, values.size() - 1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t c1 = cut(rng);
    const std::size_t c2 = cut(rng);
    const std::size_t lo = std::min(c1, c2);
    const std::size_t hi = std::max(c1, c2);
    ExactSum a, b, c;
    for (std::size_t i = 0; i < lo; ++i) a.add(values[i]);
    for (std::size_t i = lo; i < hi; ++i) b.add(values[i]);
    for (std::size_t i = hi; i < values.size(); ++i) c.add(values[i]);
    // Fold in both associations; both must equal the unsharded sum exactly.
    ExactSum left = a;
    left.merge(b);
    left.merge(c);
    ExactSum right = b;
    right.merge(c);
    ExactSum outer = a;
    outer.merge(right);
    EXPECT_DOUBLE_EQ(left.round(), expected) << "trial " << trial;
    EXPECT_DOUBLE_EQ(outer.round(), expected) << "trial " << trial;
  }
}

TEST(ExactSum, PartialCountStaysBounded) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(1e-6, 1e9);
  ExactSum s;
  std::size_t peak = 0;
  for (int i = 0; i < 100000; ++i) {
    s.add(dist(rng));
    peak = std::max(peak, s.partial_count());
  }
  // Partials track distinct binades in flight, not sample count.
  EXPECT_LE(peak, 64u);
  s.reset();
  EXPECT_EQ(s.partial_count(), 0u);
  EXPECT_DOUBLE_EQ(s.round(), 0.0);
}

TEST(ExactSum, HalfEvenTieRounding) {
  // 2^53 + 1 is not representable; the exact sum 2^53 + 1 must round to
  // 2^53 (ties to even), and 2^53 + 2 is exact.
  const double big = 9007199254740992.0;  // 2^53
  ExactSum tie;
  tie.add(big);
  tie.add(1.0);
  EXPECT_DOUBLE_EQ(tie.round(), big);
  ExactSum above;
  above.add(big);
  above.add(1.0);
  above.add(1.0);
  EXPECT_DOUBLE_EQ(above.round(), big + 2.0);
}

// --- QuantileSketch -------------------------------------------------------

TEST(QuantileSketch, EmptyAndExtremes) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  s.add(3.0);
  s.add(700.0);
  s.add(41.5);
  // p=0 / p=1 are exact: the estimate clamps into [min, max].
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 700.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 700.0);
}

TEST(QuantileSketch, NegativeSamplesClampToZero) {
  QuantileSketch s;
  s.add(-5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(QuantileSketch, ErrorBoundAgainstExactQuantile) {
  std::mt19937_64 rng(19);
  // Log-uniform over the resolvable range, the hard case for rank walking.
  std::uniform_real_distribution<double> log_dist(std::log(1e-2),
                                                  std::log(1e6));
  std::vector<double> values(5000);
  QuantileSketch sketch;
  for (double& v : values) {
    v = std::exp(log_dist(rng));
    sketch.add(v);
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double e = sketch.relative_error();
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double rank = p * static_cast<double>(values.size() - 1);
    // The sketch targets a single order statistic at this rank; the estimate
    // must fall within the relative-error band spanned by the two order
    // statistics straddling the fractional rank.
    const double lo = sorted[static_cast<std::size_t>(std::floor(rank))];
    const double hi = sorted[static_cast<std::size_t>(std::ceil(rank))];
    const double q = sketch.quantile(p);
    EXPECT_GE(q, lo * (1.0 - e)) << "p=" << p;
    EXPECT_LE(q, hi * (1.0 + e)) << "p=" << p;
  }
}

TEST(QuantileSketch, DeterministicUnderSampleOrder) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> dist(0.0, 1e4);
  std::vector<double> values(1000);
  for (double& v : values) v = dist(rng);

  QuantileSketch reference;
  for (double v : values) reference.add(v);

  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(values.begin(), values.end(), rng);
    QuantileSketch shuffled;
    for (double v : values) shuffled.add(v);
    for (double p : {0.0, 0.1, 0.5, 0.9, 0.95, 1.0}) {
      EXPECT_DOUBLE_EQ(shuffled.quantile(p), reference.quantile(p));
    }
  }
}

TEST(QuantileSketch, MergeIsExactlyAssociative) {
  std::mt19937_64 rng(29);
  std::uniform_real_distribution<double> dist(0.0, 1e5);
  std::vector<double> values(600);
  for (double& v : values) v = dist(rng);

  QuantileSketch whole;
  for (double v : values) whole.add(v);

  std::uniform_int_distribution<std::size_t> cut(1, values.size() - 1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t c1 = cut(rng);
    const std::size_t c2 = cut(rng);
    const std::size_t lo = std::min(c1, c2);
    const std::size_t hi = std::max(c1, c2);
    QuantileSketch a, b, c;
    for (std::size_t i = 0; i < lo; ++i) a.add(values[i]);
    for (std::size_t i = lo; i < hi; ++i) b.add(values[i]);
    for (std::size_t i = hi; i < values.size(); ++i) c.add(values[i]);

    QuantileSketch left = a;
    left.merge(b);
    left.merge(c);
    QuantileSketch right = b;
    right.merge(c);
    QuantileSketch outer = a;
    outer.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_EQ(outer.count(), whole.count());
    for (double p : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
      EXPECT_DOUBLE_EQ(left.quantile(p), whole.quantile(p));
      EXPECT_DOUBLE_EQ(outer.quantile(p), whole.quantile(p));
    }
  }
}

TEST(QuantileSketch, MergeRejectsParameterMismatch) {
  QuantileSketch a(0.01, 1e-3, 1e9);
  QuantileSketch b(0.02, 1e-3, 1e9);
  QuantileSketch c(0.01, 1e-2, 1e9);
  QuantileSketch d(0.01, 1e-3, 1e6);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
  EXPECT_THROW(a.merge(d), std::invalid_argument);
}

TEST(QuantileSketch, RejectsBadParameters) {
  EXPECT_THROW(QuantileSketch(0.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(1.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(0.01, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(0.01, 2.0, 1.0), std::invalid_argument);
}

TEST(QuantileSketch, MemoryIsIndependentOfSampleCount) {
  QuantileSketch s;
  const std::size_t buckets = s.bucket_count();
  const std::size_t bytes = s.memory_bytes();
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> dist(0.0, 1e8);
  for (int i = 0; i < 50000; ++i) s.add(dist(rng));
  EXPECT_EQ(s.bucket_count(), buckets);
  EXPECT_EQ(s.memory_bytes(), bytes);
}

// --- TimeWeightedIntegrator -----------------------------------------------

TEST(TimeWeightedIntegrator, IntegratesStepFunctionOverInterval) {
  TimeWeightedIntegrator integ(0.0, 10.0);
  EXPECT_DOUBLE_EQ(integ.integral(), 0.0);
  integ.sample(0.0, 2.0);   // 2 over [0, 4)
  integ.sample(4.0, 5.0);   // 5 over [4, 10]
  EXPECT_DOUBLE_EQ(integ.integral(), 2.0 * 4.0 + 5.0 * 6.0);
  EXPECT_DOUBLE_EQ(integ.time_average(), 3.8);
  EXPECT_EQ(integ.samples(), 2u);
}

TEST(TimeWeightedIntegrator, ClipsSamplesOutsideTheInterval) {
  TimeWeightedIntegrator integ(10.0, 20.0);
  integ.sample(0.0, 1.0);    // clipped: only [10, 15) counts
  integ.sample(15.0, 3.0);   // [15, 20]
  integ.sample(25.0, 99.0);  // entirely past end; closes the 3.0 segment
  EXPECT_DOUBLE_EQ(integ.integral(), 1.0 * 5.0 + 3.0 * 5.0);
  EXPECT_DOUBLE_EQ(integ.time_average(), 2.0);
}

TEST(TimeWeightedIntegrator, LastValueExtendsToEnd) {
  TimeWeightedIntegrator integ(0.0, 100.0);
  integ.sample(90.0, 4.0);
  EXPECT_DOUBLE_EQ(integ.integral(), 4.0 * 10.0);
}

TEST(TimeWeightedIntegrator, RejectsNonMonotoneTime) {
  TimeWeightedIntegrator integ(0.0, 10.0);
  integ.sample(5.0, 1.0);
  EXPECT_THROW(integ.sample(4.0, 2.0), std::invalid_argument);
  integ.sample(5.0, 2.0);  // equal timestamps are fine (zero-width step)
}

TEST(TimeWeightedIntegrator, EmptyIntervalYieldsZero) {
  TimeWeightedIntegrator integ(5.0, 5.0);
  integ.sample(1.0, 7.0);
  EXPECT_DOUBLE_EQ(integ.integral(), 0.0);
  EXPECT_DOUBLE_EQ(integ.time_average(), 0.0);
}

TEST(Histogram, BinsAndBoundaries) {
  Histogram h({0, 10, 20});
  h.add(0);      // first bin (inclusive lower edge)
  h.add(9.99);   // first bin
  h.add(10);     // second bin
  h.add(20);     // final edge absorbed into last bin
  EXPECT_DOUBLE_EQ(h.bin_count(0), 2);
  EXPECT_DOUBLE_EQ(h.bin_count(1), 2);
}

TEST(Histogram, UnderflowOverflow) {
  Histogram h({0, 1});
  h.add(-1);
  h.add(2);
  h.add(0.5, 3.0);  // weighted
  EXPECT_DOUBLE_EQ(h.underflow(), 1);
  EXPECT_DOUBLE_EQ(h.overflow(), 1);
  EXPECT_DOUBLE_EQ(h.bin_count(0), 3);
  EXPECT_DOUBLE_EQ(h.total_weight(), 5);
}

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW(Histogram({1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace bbsched
