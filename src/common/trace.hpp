// trace.hpp — scoped span timers and an event recorder that exports Chrome
// trace-format JSON (load the file at ui.perfetto.dev or chrome://tracing).
//
// Two timelines share one file, separated by trace "process" lanes:
//
//   pid 0 ("wall-clock")  — wall-time spans: solver solves, GA generations,
//                           window-selection decisions, grid cells.  Span ts
//                           comes from the shared MonoClock (clock.hpp), the
//                           same clock Stopwatch uses, so trace and bench
//                           timings cannot drift apart.
//   pid >= 1              — one lane per registered simulation
//                           (trace_register_process), carrying *simulated*
//                           time: schedule events (submit, start, finish,
//                           ...) and node/BB occupancy counter series.
//
// Threads map to small stable tids in first-use order (pool workers from
// thread_pool.hpp each get their own lane).  Recording is buffered per
// thread — appending takes only that thread's uncontended buffer mutex.
//
// Off by default: every emitter early-returns on one relaxed atomic load,
// so a disabled run pays nothing measurable (bench_overhead's telemetry
// series pins this).  Determinism: the recorder consumes no RNG and never
// feeds back into scheduling decisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/log.hpp"  // LogField doubles as the trace-arg type

namespace bbsched {

namespace telemetry_detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace telemetry_detail

/// The wall-clock span lane.
constexpr int kTraceWallPid = 0;

/// Whether event recording is on; one relaxed atomic load.
inline bool trace_enabled() {
  return telemetry_detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled);

/// Drop every buffered event and registered process label (tests, or
/// between campaigns when reusing one process).
void trace_clear();

/// Events currently buffered across all threads.
std::size_t trace_event_count();

/// Allocate a trace lane (pid) labeled `label` — one per simulation, so
/// concurrent grid cells do not interleave their schedule events.  Returns
/// kTraceWallPid when tracing is disabled (callers then skip emission).
int trace_register_process(std::string label);

/// Complete ("X") wall-clock span; start_s/duration_s in seconds on the
/// MonoClock process-epoch timeline.
void trace_complete(std::string_view name, std::string_view category,
                    double start_s, double duration_s,
                    std::initializer_list<LogField> args = {});

/// Instant ("i") event at `ts_s` seconds on lane `pid` (simulated time for
/// sim lanes, process-epoch wall time for kTraceWallPid).
void trace_instant(std::string_view name, std::string_view category,
                   double ts_s, int pid,
                   std::initializer_list<LogField> args = {});

/// Counter ("C") sample: each numeric arg is one series plotted over time
/// on lane `pid` (e.g. nodes_used / bb_used_gb occupancy).
void trace_counter(std::string_view name, double ts_s, int pid,
                   std::initializer_list<LogField> series);

/// Scoped wall-clock span: records a complete event on the wall lane at
/// destruction.  Arms itself only if tracing was enabled at construction;
/// a disabled construction costs one atomic load.
class TraceSpan {
 public:
  TraceSpan(std::string_view name, std::string_view category,
            std::initializer_list<LogField> args = {});
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a result discovered during the span (no-op when disarmed).
  void add_arg(LogField field);

 private:
  bool armed_ = false;
  MonoClock::time_point start_;
  std::string name_;
  std::string category_;
  std::vector<LogField> args_;
};

/// Serialize everything recorded so far as Chrome trace JSON (object form:
/// {"traceEvents": [...]}, with process/thread-name metadata).
void write_trace_json(std::ostream& out);
void write_trace_json_file(const std::string& path);

}  // namespace bbsched
