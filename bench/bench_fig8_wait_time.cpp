// bench_fig8_wait_time — reproduce Figure 8: average job wait time of the
// eight methods on the ten §4 workloads (hours; lower is better), plus each
// method's reduction over the baseline.
//
// Expected shape: all methods beat the baseline; BBSched achieves the
// largest reductions (the paper reports up to 33 % on Cori and 41 % on
// Theta), and the reductions grow as burst-buffer requests intensify
// (Original -> S4).
#include <iostream>

#include "bench_util.hpp"
#include "exp/grid.hpp"
#include "policies/factory.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig8_wait_time");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const auto config = ExperimentConfig::from_env();
  const auto results = ensure_main_grid(config);
  benchutil::record_grid_cells(cli.bench(), "main_grid", results.cells);
  const auto wait_hours = [](const GridCell& c) {
    return as_hours(c.metrics.avg_wait);
  };
  std::cout << "Figure 8: average job wait time (hours)\n\n";
  benchutil::print_matrix(results.cells, benchutil::main_workload_labels(),
                          standard_method_names(), wait_hours,
                          /*percent=*/false);
  std::cout << "\nReduction vs. Baseline (positive = faster)\n\n";
  benchutil::print_reduction_vs_baseline(
      results.cells, benchutil::main_workload_labels(),
      standard_method_names(), wait_hours);
  return cli.exit_code();
}
