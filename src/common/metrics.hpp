// metrics.hpp — process-wide registry of named counters, gauges and
// fixed-bucket histograms.
//
// Hot-path contract: updates are single relaxed atomic RMWs (a CAS loop for
// doubles) on objects resolved once — look a metric up by name one time and
// keep the reference; references stay valid for the life of the process
// (reset() zeroes values, it never removes entries).  Thread-pool workers
// can therefore update concurrently with no locks and no coordination.
//
// Collection is off by default: guard update sites with metrics_enabled()
// (one relaxed atomic load) so a disabled run pays nothing measurable.
// Enable with set_metrics_enabled(true) — the examples wire a --metrics-out
// flag and the BBSCHED_METRICS environment variable to it — and dump a
// snapshot with write_csv():
//
//   metric,kind,field,value
//   sim.solve_seconds,histogram,count,412
//   sim.solve_seconds,histogram,le_0.01,398
//   ...
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bbsched {

namespace telemetry_detail {
extern std::atomic<bool> g_metrics_enabled;

/// Relaxed CAS add for pre-C++20-style portability across libstdc++ versions.
inline void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}
inline void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace telemetry_detail

/// Whether metric collection is on; update sites guard on this.
inline bool metrics_enabled() {
  return telemetry_detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled);

/// Monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket cumulative histogram (Prometheus-style `le` buckets): bucket
/// i counts observations <= bounds[i]; one implicit +inf bucket absorbs the
/// rest.  Tracks count/sum/min/max alongside.  Named MetricHistogram to stay
/// clear of the sample-storing stats.hpp Histogram.
class MetricHistogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit MetricHistogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  const std::vector<double>& bounds() const { return bounds_; }
  /// Observations in bucket i (i == bounds().size() is the +inf bucket).
  /// Non-cumulative: each observation lands in exactly one bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Exponential bounds suited to solver/cell wall-clock seconds:
/// 100 us ... ~100 s.
std::vector<double> default_seconds_bounds();

/// Name -> metric registry.  Lookup takes a mutex (do it once per call
/// site); updates through the returned references are lock-free.
class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& global();

  /// Find-or-create.  A histogram's bounds are fixed by whichever call
  /// created it; later calls' bounds are ignored.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  MetricHistogram& histogram(const std::string& name,
                             std::vector<double> upper_bounds = {});

  /// Snapshot every metric as CSV (rows sorted by name; see header comment).
  void write_csv(std::ostream& out) const;
  void write_csv_file(const std::string& path) const;

  /// Zero every value.  Entries (and references to them) survive.
  void reset();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Shorthands on the global registry.
inline Counter& metric_counter(const std::string& name) {
  return MetricsRegistry::global().counter(name);
}
inline Gauge& metric_gauge(const std::string& name) {
  return MetricsRegistry::global().gauge(name);
}
inline MetricHistogram& metric_histogram(const std::string& name,
                                         std::vector<double> bounds = {}) {
  return MetricsRegistry::global().histogram(name, std::move(bounds));
}

}  // namespace bbsched
