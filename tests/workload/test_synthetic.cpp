#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace bbsched {
namespace {

Workload base_workload(std::size_t n = 2000) {
  return generate_workload(theta_model(n), 101);
}

TEST(BbExpansion, ReachesTargetFraction) {
  const Workload original = base_workload();
  BbExpansionParams params;
  params.target_fraction = 0.5;
  params.pool_threshold = tb(5);
  const Workload expanded = expand_bb_requests(original, params, 7);
  EXPECT_NEAR(expanded.bb_request_fraction(), 0.5, 0.05);
}

TEST(BbExpansion, KeepsExistingRequestsUntouched) {
  const Workload original = base_workload();
  BbExpansionParams params;
  params.target_fraction = 0.75;
  const Workload expanded = expand_bb_requests(original, params, 7);
  ASSERT_EQ(expanded.jobs.size(), original.jobs.size());
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    if (original.jobs[i].requests_bb()) {
      EXPECT_DOUBLE_EQ(expanded.jobs[i].bb_gb, original.jobs[i].bb_gb);
    }
  }
}

TEST(BbExpansion, NewRequestsComeFromThresholdPool) {
  const Workload original = base_workload();
  BbExpansionParams params;
  params.target_fraction = 0.5;
  params.pool_threshold = tb(20);
  const Workload expanded = expand_bb_requests(original, params, 7);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    if (!original.jobs[i].requests_bb() && expanded.jobs[i].requests_bb()) {
      EXPECT_GT(expanded.jobs[i].bb_gb, tb(20));
    }
  }
}

TEST(BbExpansion, NoOpWhenAlreadyAtTarget) {
  const Workload original = base_workload();
  BbExpansionParams params;
  params.target_fraction = 0.01;  // below the original ~17 %
  const Workload expanded = expand_bb_requests(original, params, 7);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(expanded.jobs[i].bb_gb, original.jobs[i].bb_gb);
  }
}

TEST(BbExpansion, WorkloadWithoutRequestsUnchanged) {
  Workload w = base_workload(100);
  for (auto& job : w.jobs) job.bb_gb = 0;
  BbExpansionParams params;
  params.target_fraction = 0.5;
  const Workload expanded = expand_bb_requests(w, params, 7);
  EXPECT_DOUBLE_EQ(expanded.bb_request_fraction(), 0.0);
}

TEST(BbExpansion, FallsBackToTopDecileWhenThresholdTooHigh) {
  const Workload original = base_workload();
  BbExpansionParams params;
  params.target_fraction = 0.5;
  params.pool_threshold = pb(100);  // nothing above this
  const Workload expanded = expand_bb_requests(original, params, 7);
  EXPECT_NEAR(expanded.bb_request_fraction(), 0.5, 0.05);
}

TEST(BbExpansion, RejectsBadFraction) {
  BbExpansionParams params;
  params.target_fraction = 1.5;
  EXPECT_THROW(expand_bb_requests(base_workload(10), params, 1),
               std::invalid_argument);
}

TEST(SsdExpansion, AssignsEveryJobARequest) {
  const Workload original = base_workload(500);
  SsdExpansionParams params;
  const Workload expanded = expand_ssd_requests(original, params, 9);
  for (const auto& job : expanded.jobs) {
    EXPECT_GT(job.ssd_per_node_gb, 0.0);
    EXPECT_LE(job.ssd_per_node_gb, params.large_gb);
  }
}

TEST(SsdExpansion, SmallLargeMixNearTarget) {
  const Workload original = base_workload(3000);
  SsdExpansionParams params;
  params.small_request_fraction = 0.8;  // the S5 mix
  const Workload expanded = expand_ssd_requests(original, params, 9);
  std::size_t small = 0;
  for (const auto& job : expanded.jobs) {
    small += job.ssd_per_node_gb <= params.small_gb;
  }
  EXPECT_NEAR(static_cast<double>(small) /
                  static_cast<double>(expanded.jobs.size()),
              0.8, 0.05);
}

TEST(SsdExpansion, ConfiguresMachineTiers) {
  const Workload expanded =
      expand_ssd_requests(base_workload(100), SsdExpansionParams{}, 9);
  EXPECT_TRUE(expanded.machine.has_local_ssd());
  EXPECT_EQ(expanded.machine.small_ssd_nodes + expanded.machine.large_ssd_nodes,
            expanded.machine.nodes);
  EXPECT_NEAR(static_cast<double>(expanded.machine.small_ssd_nodes),
              static_cast<double>(expanded.machine.nodes) * 0.5, 1.0);
}

TEST(Suites, MainSuiteHasFiveLabeledWorkloads) {
  const auto suite = make_bb_suite(base_workload(1000), 55);
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].label, "Theta-Original");
  EXPECT_EQ(suite[1].label, "Theta-S1");
  EXPECT_EQ(suite[4].label, "Theta-S4");
  // S2 has more requesting jobs than S1; S4 more than S3.
  EXPECT_GT(suite[2].workload.bb_request_fraction(),
            suite[1].workload.bb_request_fraction());
  EXPECT_GT(suite[4].workload.bb_request_fraction(),
            suite[3].workload.bb_request_fraction());
}

TEST(Suites, S3CarriesLargerRequestsThanS1) {
  const auto suite = make_bb_suite(base_workload(3000), 55);
  // Mean size of *newly assigned* requests: S3 samples from > 20 TB, S1
  // from > 5 TB, so S3's aggregate volume should exceed S1's.
  EXPECT_GT(suite[3].workload.total_bb_request(),
            suite[1].workload.total_bb_request());
}

TEST(Suites, SsdSuiteBuiltOnS2) {
  const auto suite = make_ssd_suite(base_workload(1000), 77);
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].label, "Theta-S5");
  EXPECT_EQ(suite[2].label, "Theta-S7");
  for (const auto& entry : suite) {
    EXPECT_TRUE(entry.workload.machine.has_local_ssd());
    // S2 base: ~75 % of jobs request burst buffer.
    EXPECT_NEAR(entry.workload.bb_request_fraction(), 0.75, 0.05);
  }
}

}  // namespace
}  // namespace bbsched
