#include "core/ga.hpp"

#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "core/multi_resource_problem.hpp"

namespace bbsched {
namespace {

MultiResourceProblem table1_problem() {
  const std::vector<double> nodes{80, 10, 40, 10, 20};
  const std::vector<double> bb{20, 85, 5, 0, 0};
  return MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
}

GaParams small_params() {
  GaParams p;
  p.generations = 100;
  p.population_size = 16;
  p.mutation_rate = 0.01;
  p.seed = 11;
  return p;
}

TEST(GaParams, ValidationRejectsBadValues) {
  GaParams p;
  p.generations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = GaParams{};
  p.population_size = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = GaParams{};
  p.mutation_rate = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_NO_THROW(GaParams{}.validate());
}

TEST(MooGa, FindsExactFrontOnTable1) {
  // w = 5 is tiny; the GA must recover the full true Pareto set.
  const auto problem = table1_problem();
  const auto result = MooGaSolver(small_params()).solve(problem);
  bool found_s2 = false, found_s3 = false;
  for (const auto& c : result.pareto_set) {
    if (c.genes == Genes{1, 0, 0, 0, 1}) found_s2 = true;
    if (c.genes == Genes{0, 1, 1, 1, 1}) found_s3 = true;
  }
  EXPECT_TRUE(found_s2);
  EXPECT_TRUE(found_s3);
}

TEST(MooGa, AllReturnedSolutionsFeasible) {
  const auto problem = table1_problem();
  const auto result = MooGaSolver(small_params()).solve(problem);
  for (const auto& c : result.pareto_set) {
    EXPECT_TRUE(problem.feasible(c.genes));
  }
}

TEST(MooGa, ReturnedSetMutuallyNonDominated) {
  const auto problem = table1_problem();
  const auto result = MooGaSolver(small_params()).solve(problem);
  for (std::size_t i = 0; i < result.pareto_set.size(); ++i) {
    for (std::size_t j = 0; j < result.pareto_set.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(dominates(result.pareto_set[i].objectives,
                               result.pareto_set[j].objectives));
      }
    }
  }
}

TEST(MooGa, DeterministicUnderSameSeed) {
  const auto problem = table1_problem();
  const MooGaSolver solver(small_params());
  const auto a = solver.solve(problem);
  const auto b = solver.solve(problem);
  ASSERT_EQ(a.pareto_set.size(), b.pareto_set.size());
  for (std::size_t i = 0; i < a.pareto_set.size(); ++i) {
    EXPECT_EQ(a.pareto_set[i].genes, b.pareto_set[i].genes);
  }
}

TEST(MooGa, RespectsPins) {
  auto problem = table1_problem();
  problem.pin(3);
  const auto result = MooGaSolver(small_params()).solve(problem);
  ASSERT_FALSE(result.pareto_set.empty());
  for (const auto& c : result.pareto_set) EXPECT_EQ(c.genes[3], 1);
}

TEST(MooGa, CountsEvaluations) {
  const auto problem = table1_problem();
  GaParams p = small_params();
  const auto result = MooGaSolver(p).solve(problem);
  // Initial population + P children per generation.
  const auto expected = static_cast<std::size_t>(p.population_size) *
                        static_cast<std::size_t>(p.generations + 1);
  EXPECT_EQ(result.evaluations, expected);
  EXPECT_EQ(result.generations, p.generations);
}

TEST(SelectNextGeneration, ParetoMembersFirst) {
  Chromosome strong;
  strong.genes = {1, 0};
  strong.objectives = {2, 2};
  strong.age = 5;
  Chromosome weak;
  weak.genes = {0, 1};
  weak.objectives = {1, 1};
  weak.age = 0;
  auto next = select_next_generation({weak, strong}, 1);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].genes, strong.genes)
      << "non-dominated member must outrank a newer dominated one";
}

TEST(SelectNextGeneration, NewerWinsWithinParetoSet) {
  Chromosome old_one;
  old_one.genes = {1, 0};
  old_one.objectives = {2, 1};
  old_one.age = 9;
  Chromosome young;
  young.genes = {0, 1};
  young.objectives = {1, 2};
  young.age = 0;
  auto next = select_next_generation({old_one, young}, 1);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].genes, young.genes);
}

TEST(SelectNextGeneration, DeduplicatesIdenticalGenes) {
  Chromosome a;
  a.genes = {1, 1};
  a.objectives = {2, 2};
  Chromosome duplicate = a;
  Chromosome other;
  other.genes = {1, 0};
  other.objectives = {1, 1};
  auto next = select_next_generation({a, duplicate, other}, 2);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_NE(next[0].genes, next[1].genes);
}

TEST(SelectNextGeneration, RefillsWhenShortOfDistinctGenes) {
  Chromosome only;
  only.genes = {1};
  only.objectives = {1, 1};
  auto next = select_next_generation({only, only}, 4);
  EXPECT_EQ(next.size(), 4u);
}

// Property sweep: on random problems the GA front must (a) stay feasible,
// (b) be mutually non-dominated, and (c) approach the exhaustive front in
// generational distance.
class GaVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaVsExhaustive, LowGenerationalDistanceOnRandomWindows) {
  Rng rng(GetParam());
  const std::size_t w = 10;
  std::vector<double> nodes(w), bb(w);
  for (std::size_t i = 0; i < w; ++i) {
    nodes[i] = static_cast<double>(rng.uniform_int(1, 40));
    bb[i] = rng.bernoulli(0.5) ? rng.uniform(0.0, 50.0) : 0.0;
  }
  const auto problem = MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
  const auto truth = ExhaustiveSolver().solve(problem);
  ASSERT_FALSE(truth.pareto_set.empty());

  GaParams params;
  params.generations = 600;
  params.population_size = 24;
  params.mutation_rate = 0.01;
  params.seed = GetParam() * 77 + 1;
  const auto approx = MooGaSolver(params).solve(problem);
  ASSERT_FALSE(approx.pareto_set.empty());

  Front approx_front, truth_front;
  for (const auto& c : approx.pareto_set) {
    EXPECT_TRUE(problem.feasible(c.genes));
    approx_front.push_back(c.objectives);
  }
  for (const auto& c : truth.pareto_set) truth_front.push_back(c.objectives);
  // Objectives are utilization fractions in [0, 1]; a GD under 0.08 means
  // the approximation sits within a few utilization points of the truth
  // (Figure 4 reports the same order of residual GD at converged G).
  EXPECT_LT(generational_distance(approx_front, truth_front), 0.08);
}

INSTANTIATE_TEST_SUITE_P(RandomWindows, GaVsExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace bbsched
