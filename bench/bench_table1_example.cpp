// bench_table1_example — reproduce Table 1, the paper's illustrative
// scheduling example.
//
// A 100-node machine with 100 TB of burst buffer and the five-job queue of
// Table 1(a).  Each §4.3 method makes one window-selection decision; the
// output mirrors Table 1(b): the selected jobs, node utilization and burst-
// buffer utilization per method, plus the exact Pareto set.  Expected
// shapes: the naive method picks {J1, J4} (90 % / 20 %); the constrained,
// 80/20-weighted and bin-packing methods pick {J1, J5} (100 % / 20 %); the
// Pareto set contains both {J1, J5} and {J2..J5} (80 % / 90 %); BBSched's 2x
// trade-off rule commits {J2..J5}.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/exhaustive.hpp"
#include "core/multi_resource_problem.hpp"
#include "policies/factory.hpp"

#include "bench_util.hpp"

namespace {

using namespace bbsched;

std::vector<JobRecord> table1_jobs() {
  const struct {
    JobId id;
    NodeCount nodes;
    double bb_tb;
  } specs[] = {
      {1, 80, 20}, {2, 10, 85}, {3, 40, 5}, {4, 10, 0}, {5, 20, 0}};
  std::vector<JobRecord> jobs;
  for (const auto& spec : specs) {
    JobRecord job;
    job.id = spec.id;
    job.nodes = spec.nodes;
    job.bb_gb = tb(spec.bb_tb);
    job.runtime = hours(1);
    job.walltime = hours(1);
    jobs.push_back(job);
  }
  return jobs;
}

std::string job_set_label(const std::vector<std::size_t>& positions) {
  if (positions.empty()) return "{}";
  std::string out = "{";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i) out += ", ";
    out += "J" + std::to_string(positions[i] + 1);
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_table1_example");
  if (!cli.ok()) return 0;
  const auto jobs = table1_jobs();
  std::vector<const JobRecord*> window;
  for (const auto& job : jobs) window.push_back(&job);

  FreeState free;
  free.nodes = 100;
  free.bb_gb = tb(100);

  std::cout << "Table 1: scheduling decisions of the compared methods on the"
               " illustrative example\n(100 nodes, 100 TB burst buffer)\n\n";

  GaParams ga;  // paper defaults: G=500, P=20, p_m = 0.05 %
  ConsoleTable table({"method", "selected", "node util", "BB util"},
                     {Align::kLeft, Align::kLeft, Align::kRight,
                      Align::kRight});
  for (const auto& name : standard_method_names()) {
    const auto policy = make_policy(name, ga);
    Rng rng(7);
    WindowContext context;
    context.window = window;
    context.free = free;
    context.rng = &rng;
    const WindowDecision decision = policy->select(context);
    double nodes = 0, bb = 0;
    for (std::size_t pos : decision.selected) {
      nodes += static_cast<double>(jobs[pos].nodes);
      bb += jobs[pos].bb_gb;
    }
    table.add_row({name, job_set_label(decision.selected),
                   ConsoleTable::pct(nodes / 100.0, 0),
                   ConsoleTable::pct(bb / tb(100), 0)});
    // Deterministic per-method utilizations: bit-stable for the fixed
    // Table 1 instance, so bench_compare can gate on them.
    cli.bench().add_value("node_util", {{"method", name}}, nodes / 100.0,
                          "frac", "higher");
    cli.bench().add_value("bb_util", {{"method", name}}, bb / tb(100), "frac",
                          "higher");
  }
  table.print(std::cout);

  // The exact Pareto set of the example (footnote 1: Solutions 2 and 3).
  std::cout << "\nExact Pareto set (exhaustive enumeration):\n";
  std::vector<double> nodes_demand, bb_demand;
  for (const auto& job : jobs) {
    nodes_demand.push_back(static_cast<double>(job.nodes));
    bb_demand.push_back(job.bb_gb);
  }
  const auto problem =
      MultiResourceProblem::cpu_bb(nodes_demand, bb_demand, 100, tb(100));
  const auto truth = ExhaustiveSolver().solve(problem);
  ConsoleTable pareto({"solution", "node util", "BB util"},
                      {Align::kLeft, Align::kRight, Align::kRight});
  for (const auto& c : truth.pareto_set) {
    if (selected_count(c.genes) == 0) continue;
    pareto.add_row({job_set_label(selected_indices(c.genes)),
                    ConsoleTable::pct(c.objectives[0], 0),
                    ConsoleTable::pct(c.objectives[1], 0)});
  }
  pareto.print(std::cout);
  cli.bench().add_value("pareto_size", {},
                        static_cast<double>(truth.pareto_set.size()), "count",
                        "info");
  return cli.exit_code();
}
