// test_profiler.cpp — hierarchical phase profiler (DESIGN.md §14): RAII
// nesting and self-time arithmetic, cross-thread merge associativity,
// enable/disable gating, clear semantics, and the flattened row /
// top-phases exports that feed the text tree, CSV, and bench JSON.
#include "common/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace bbsched {
namespace {

// Every test owns the global profiler state: reset it on entry and exit so
// ordering (and other suites) cannot leak phases across tests.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_profiler_enabled(false);
    profiler_clear();
  }
  void TearDown() override {
    set_profiler_enabled(false);
    profiler_clear();
  }
};

void spin_for_us(int us) {
  const auto start = mono_now();
  while (seconds_between(start, mono_now()) * 1e6 < us) {
  }
}

const PhaseStats* find_child(const PhaseStats& node, const std::string& name) {
  for (const auto& child : node.children) {
    if (child.name == name) return &child;
  }
  return nullptr;
}

TEST_F(ProfilerTest, DisabledRecordsNothing) {
  ASSERT_FALSE(profiler_enabled());
  {
    PROF_PHASE("never.seen");
    spin_for_us(50);
  }
  EXPECT_TRUE(profiler_report().empty());
}

TEST_F(ProfilerTest, NestingBuildsTreeAndSelfTimeExcludesChildren) {
  set_profiler_enabled(true);
  {
    PROF_PHASE("outer");
    spin_for_us(200);
    for (int i = 0; i < 3; ++i) {
      PROF_PHASE("inner");
      spin_for_us(100);
    }
  }
  const ProfileReport report = profiler_report();
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.root.name, "total");
  EXPECT_EQ(report.threads, 1u);

  const PhaseStats* outer = find_child(report.root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const PhaseStats* inner = find_child(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 3u);
  // "inner" nests under "outer", never at top level.
  EXPECT_EQ(find_child(report.root, "inner"), nullptr);

  // Inclusive time covers the children; exclusive time strips them out.
  EXPECT_GE(outer->total_s, inner->total_s);
  EXPECT_NEAR(outer->self_s(), outer->total_s - inner->total_s, 1e-12);
  EXPECT_GE(outer->self_s(), 0.0);
  // min <= mean <= max across the three inner executions.
  EXPECT_LE(inner->min_s, inner->total_s / 3.0);
  EXPECT_GE(inner->max_s, inner->total_s / 3.0);
}

TEST_F(ProfilerTest, RootTotalTracksObservationWindow) {
  set_profiler_enabled(true);
  {
    PROF_PHASE("work");
    spin_for_us(2000);
  }
  const ProfileReport report = profiler_report();
  const PhaseStats* work = find_child(report.root, "work");
  ASSERT_NE(work, nullptr);
  // The synthetic root measures enable→report wall time, so it bounds any
  // single-threaded child from above.
  EXPECT_GE(report.root.total_s, work->total_s);
  EXPECT_GE(report.root.total_s, 2e-3);
}

TEST_F(ProfilerTest, ClearDropsPhasesAndRestartsWindow) {
  set_profiler_enabled(true);
  {
    PROF_PHASE("stale");
    spin_for_us(1000);
  }
  ASSERT_FALSE(profiler_report().empty());
  profiler_clear();
  const ProfileReport cleared = profiler_report();
  EXPECT_TRUE(cleared.empty());
  // The window restarted at clear, not at the original enable.
  EXPECT_LT(cleared.root.total_s, 0.5);
  {
    PROF_PHASE("fresh");
  }
  const ProfileReport after = profiler_report();
  EXPECT_EQ(find_child(after.root, "stale"), nullptr);
  EXPECT_NE(find_child(after.root, "fresh"), nullptr);
}

TEST_F(ProfilerTest, ThreadsMergeByPath) {
  set_profiler_enabled(true);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      PROF_PHASE("worker");
      for (int i = 0; i < 2; ++i) {
        PROF_PHASE("step");
        spin_for_us(50);
      }
    });
  }
  for (auto& w : workers) w.join();
  const ProfileReport report = profiler_report();
  const PhaseStats* worker = find_child(report.root, "worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->count, 4u);
  const PhaseStats* step = find_child(*worker, "step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->count, 8u);
  // Exited threads still count toward the merge.
  EXPECT_GE(report.threads, 4u);
}

// merge_phase must be associative so the cross-thread merge order cannot
// change the report.  Binary-exact doubles (powers of two) make the
// comparison exact, not approximate.
TEST_F(ProfilerTest, MergeIsAssociativeAndCombinesExtrema) {
  auto leaf = [](const char* name, std::uint64_t count, double total,
                 double min_s, double max_s) {
    PhaseStats s;
    s.name = name;
    s.count = count;
    s.total_s = total;
    s.min_s = min_s;
    s.max_s = max_s;
    return s;
  };
  PhaseStats a = leaf("solve", 2, 1.0, 0.25, 0.75);
  a.children.push_back(leaf("eval", 4, 0.5, 0.0625, 0.25));
  PhaseStats b = leaf("solve", 1, 2.0, 2.0, 2.0);
  b.children.push_back(leaf("sort", 1, 0.125, 0.125, 0.125));
  PhaseStats c = leaf("solve", 3, 4.0, 0.5, 2.0);
  c.children.push_back(leaf("eval", 2, 0.25, 0.125, 0.125));

  PhaseStats left = a;  // (a ⊕ b) ⊕ c
  merge_phase(left, b);
  merge_phase(left, c);
  PhaseStats bc = b;  // a ⊕ (b ⊕ c)
  merge_phase(bc, c);
  PhaseStats right = a;
  merge_phase(right, bc);

  EXPECT_EQ(left.count, 6u);
  EXPECT_EQ(left.total_s, 7.0);
  EXPECT_EQ(left.min_s, 0.25);
  EXPECT_EQ(left.max_s, 2.0);
  ASSERT_EQ(left.children.size(), 2u);

  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.total_s, right.total_s);
  EXPECT_EQ(left.min_s, right.min_s);
  EXPECT_EQ(left.max_s, right.max_s);
  const PhaseStats* left_eval = find_child(left, "eval");
  const PhaseStats* right_eval = find_child(right, "eval");
  ASSERT_NE(left_eval, nullptr);
  ASSERT_NE(right_eval, nullptr);
  EXPECT_EQ(left_eval->count, 6u);
  EXPECT_EQ(left_eval->total_s, right_eval->total_s);
  EXPECT_EQ(left_eval->min_s, right_eval->min_s);
  EXPECT_EQ(left_eval->max_s, right_eval->max_s);
}

TEST_F(ProfilerTest, RowsFlattenDepthFirstWithSlashPaths) {
  set_profiler_enabled(true);
  {
    PROF_PHASE("grid.cell");
    {
      PROF_PHASE("nsga2.solve");
      PROF_PHASE("nsga2.eval");
      spin_for_us(20);
    }
  }
  const std::vector<PhaseRow> rows = profile_rows(profiler_report());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].path, "total");
  EXPECT_EQ(rows[0].depth, 0);
  EXPECT_EQ(rows[1].path, "total/grid.cell");
  EXPECT_EQ(rows[1].depth, 1);
  EXPECT_EQ(rows[2].path, "total/grid.cell/nsga2.solve");
  EXPECT_EQ(rows[2].depth, 2);
  EXPECT_EQ(rows[3].path, "total/grid.cell/nsga2.solve/nsga2.eval");
  EXPECT_EQ(rows[3].depth, 3);
}

TEST_F(ProfilerTest, TopPhasesRankBySelfTimeDescending) {
  set_profiler_enabled(true);
  {
    PROF_PHASE("parent");
    spin_for_us(100);
    {
      PROF_PHASE("hot");
      spin_for_us(1500);
    }
    {
      PROF_PHASE("cold");
      spin_for_us(100);
    }
  }
  const ProfileReport report = profiler_report();
  const std::vector<PhaseRow> top = profile_top_phases(report, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, "total/parent/hot");
  EXPECT_GE(top[0].self_s, top[1].self_s);
  // Asking for more than exist returns every real phase (root dropped).
  EXPECT_EQ(profile_top_phases(report, 99).size(), 3u);
}

TEST_F(ProfilerTest, TextAndCsvRenderTheTree) {
  set_profiler_enabled(true);
  {
    PROF_PHASE("render.outer");
    PROF_PHASE("render.inner");
    spin_for_us(20);
  }
  const ProfileReport report = profiler_report();
  std::ostringstream text;
  write_profile_text(text, report);
  EXPECT_NE(text.str().find("render.outer"), std::string::npos) << text.str();
  EXPECT_NE(text.str().find("render.inner"), std::string::npos);
  EXPECT_NE(text.str().find("total"), std::string::npos);

  std::ostringstream csv;
  write_profile_csv(csv, report);
  std::string header;
  std::istringstream lines(csv.str());
  std::getline(lines, header);
  EXPECT_EQ(header, "phase,depth,count,total_s,self_s,min_s,max_s");
  EXPECT_NE(csv.str().find("total/render.outer/render.inner,2,"),
            std::string::npos)
      << csv.str();
}

TEST_F(ProfilerTest, DisableMidStreamKeepsCompletedPhases) {
  set_profiler_enabled(true);
  {
    PROF_PHASE("kept");
  }
  set_profiler_enabled(false);
  {
    PROF_PHASE("dropped");
  }
  const ProfileReport report = profiler_report();
  EXPECT_NE(find_child(report.root, "kept"), nullptr);
  EXPECT_EQ(find_child(report.root, "dropped"), nullptr);
}

}  // namespace
}  // namespace bbsched
