// Self-test fixture: planted wall-clock violation.  Never compiled.
#include <chrono>

double planted_wall_clock() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
