// schedule_metrics.hpp — the §4.2 evaluation metrics.
//
// System-level: node usage and burst-buffer usage — used resource-hours over
// elapsed resource-hours, integrated over the measurement interval (the
// paper trims a warm-up and cool-down period; SimResult carries the trimmed
// interval).  User-level: average job wait time and average slowdown, over
// jobs *submitted* inside the interval.  Slowdown filters "abnormal jobs
// [that] end abruptly at beginning of execution": jobs shorter than
// `slowdown_min_runtime` are excluded.
//
// §5 adds local-SSD usage and the wasted-SSD fraction, integrated the same
// way from the committed node-tier splits.
//
// Two implementations produce the metrics (DESIGN.md §11):
//
//  * `compute_metrics` — the batch reference: one pass over a finished
//    SimResult.  Kept as the differential-testing oracle.
//  * `IncrementalScheduleMetrics` — the streaming accumulator: consumes
//    `JobOutcome`s one at a time as the simulator completes jobs (via
//    `SimObserver`), holds O(1) state in the job count (exact sums, a
//    quantile sketch, counters — never the samples), and supports `merge()`
//    of partial accumulators from sharded campaigns.
//
// Both paths route every sum through `ExactSum` and the 95th percentile
// through the same deterministic `QuantileSketch`, so they are byte-identical
// on any event order and any shard split (tests/metrics/
// test_incremental_metrics.cpp pins this across the full policy grid).
//
// Pinned zero-value conventions (tests/metrics/test_schedule_metrics.cpp):
//
//  * Empty measurement interval (`measure_end <= measure_begin`): every
//    field of ScheduleMetrics is 0, including `jobs_measured` — nothing is
//    counted against a degenerate interval.
//  * `jobs_measured == 0` (no job submitted inside the interval): avg_wait,
//    avg_slowdown, p95_wait and max_wait are all 0, never NaN.
//  * All jobs filtered from slowdown (runtime < `slowdown_min_runtime`):
//    avg_slowdown is 0 while the wait metrics remain populated.
//  * A machine without the relevant resource (no BB / no SSD tiers) yields
//    0 for that usage ratio, never a division by zero.
#pragma once

#include "common/stats.hpp"
#include "sim/sim_result.hpp"

namespace bbsched {

/// Metric knobs.
struct MetricsConfig {
  Time slowdown_min_runtime = seconds(60);  ///< abnormal-job filter
};

/// Aggregate metrics of one simulation.
struct ScheduleMetrics {
  double node_usage = 0;    ///< used node-hours / elapsed node-hours
  double bb_usage = 0;      ///< used BB-hours / elapsed (schedulable) BB-hours
  double ssd_usage = 0;     ///< requested-SSD-hours / elapsed SSD-hours (§5)
  double ssd_waste = 0;     ///< wasted-SSD-hours / elapsed SSD-hours (§5)
  double avg_wait = 0;      ///< seconds
  double avg_slowdown = 0;  ///< filtered per MetricsConfig
  double p95_wait = 0;      ///< seconds, 95th percentile (sketch estimate,
                            ///< relative error <= QuantileSketch defaults)
  double max_wait = 0;      ///< seconds, exact
  std::size_t jobs_measured = 0;   ///< jobs submitted inside the interval
  std::size_t jobs_backfilled = 0; ///< of those, started via EASY
};

/// Compute metrics from a finished simulation (batch reference path).
ScheduleMetrics compute_metrics(const SimResult& result,
                                const MetricsConfig& config = {});

/// Streaming accumulator over `JobOutcome`s: same result as
/// `compute_metrics`, byte for byte, without ever holding the outcome set.
/// Feed outcomes in any order (completion order, trace order, shuffled —
/// the result is identical); fold shards together with `merge()`, which is
/// exactly associative and commutative.  State is O(1) in the number of
/// outcomes added: four exact sums, one fixed-size quantile sketch, and a
/// handful of counters (`memory_bytes()` reports the footprint).
class IncrementalScheduleMetrics {
 public:
  /// The measurement interval and machine must be fixed up front (they are
  /// known before simulation starts — see `measurement_interval()`).
  IncrementalScheduleMetrics(const MachineConfig& machine, Time measure_begin,
                             Time measure_end, MetricsConfig config = {});

  /// Account one completed job.
  void add(const JobOutcome& outcome);

  /// Fold another partial accumulator in.  Throws std::invalid_argument
  /// unless both were built over the same measurement interval and config.
  void merge(const IncrementalScheduleMetrics& other);

  /// The metrics accumulated so far.  Non-destructive: add/merge may
  /// continue afterwards.  Byte-identical to `compute_metrics` over the
  /// same multiset of outcomes.
  ScheduleMetrics finalize() const;

  std::size_t jobs_seen() const { return jobs_seen_; }
  /// Current accumulator footprint in bytes — constant in jobs_seen(), the
  /// O(1) guarantee demonstrated by bench_overhead's metrics series.
  std::size_t memory_bytes() const;

 private:
  MachineConfig machine_;
  Time measure_begin_;
  Time measure_end_;
  MetricsConfig config_;

  ExactSum used_node_;
  ExactSum used_bb_;
  ExactSum used_ssd_;
  ExactSum wasted_ssd_;
  ExactSum wait_sum_;
  ExactSum slowdown_sum_;
  QuantileSketch wait_sketch_;
  double max_wait_ = 0;
  std::size_t slowdown_count_ = 0;
  std::size_t jobs_measured_ = 0;
  std::size_t jobs_backfilled_ = 0;
  std::size_t jobs_seen_ = 0;
};

/// Overlap of [lo1, hi1] with [lo2, hi2]; 0 when disjoint.
Time interval_overlap(Time lo1, Time hi1, Time lo2, Time hi2);

/// Per-job wasted local SSD GB under the committed tier split (0 on non-SSD
/// machines).
GigaBytes wasted_ssd_gb(const JobOutcome& outcome, const MachineConfig& m);

}  // namespace bbsched
