// bench_fig12_slowdown — reproduce Figure 12: average (filtered) slowdown of
// the eight methods on the ten §4 workloads; lower is better.
//
// Expected shape: trends track average wait time (Figure 8); slowdowns are
// markedly higher on the BB-saturated S4 workloads; BBSched is best or
// near-best everywhere.
#include <iostream>

#include "bench_util.hpp"
#include "exp/grid.hpp"
#include "policies/factory.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig12_slowdown");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const auto config = ExperimentConfig::from_env();
  const auto results = ensure_main_grid(config);
  benchutil::record_grid_cells(cli.bench(), "main_grid", results.cells);
  const auto slowdown = [](const GridCell& c) {
    return c.metrics.avg_slowdown;
  };
  std::cout << "Figure 12: average slowdown by workload and method\n\n";
  benchutil::print_matrix(results.cells, benchutil::main_workload_labels(),
                          standard_method_names(), slowdown,
                          /*percent=*/false);
  std::cout << "\nReduction vs. Baseline (positive = better)\n\n";
  benchutil::print_reduction_vs_baseline(
      results.cells, benchutil::main_workload_labels(),
      standard_method_names(), slowdown);
  return cli.exit_code();
}
