#include "exp/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault.hpp"

namespace bbsched {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

JournalBundle make_bundle(const std::string& workload,
                          const std::string& method) {
  JournalBundle bundle;
  bundle.workload = workload;
  bundle.method = method;
  bundle.cell_row = workload + "," + method + ",0.5,1,2,3";
  bundle.breakdown_rows = {workload + "," + method + ",job_size,1-8,4.5,10",
                           workload + "," + method + ",runtime,<1h,2.25,3"};
  return bundle;
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("bbsched_journal_test_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ + "/test.journal";
  }
  void TearDown() override {
    set_global_fault_plan(FaultPlan{});
    fs::remove_all(dir_);
  }
  std::string dir_;
  std::string path_;
};

TEST_F(JournalTest, LoadOfMissingJournalIsEmpty) {
  CellJournal journal(path_);
  EXPECT_TRUE(journal.load().empty());
  EXPECT_FALSE(fs::exists(path_));
}

TEST_F(JournalTest, AppendAndLoadRoundTrip) {
  CellJournal journal(path_);
  ASSERT_TRUE(journal.append(make_bundle("Cori-S1", "BBSched")));
  ASSERT_TRUE(journal.append(make_bundle("Theta-S4", "Baseline")));

  CellJournal reader(path_);
  const auto bundles = reader.load();
  ASSERT_EQ(bundles.size(), 2u);
  EXPECT_EQ(bundles[0].workload, "Cori-S1");
  EXPECT_EQ(bundles[0].method, "BBSched");
  EXPECT_EQ(bundles[0].cell_row, make_bundle("Cori-S1", "BBSched").cell_row);
  ASSERT_EQ(bundles[0].breakdown_rows.size(), 2u);
  EXPECT_EQ(bundles[1].workload, "Theta-S4");
}

TEST_F(JournalTest, TornTailIsDropped) {
  CellJournal journal(path_);
  ASSERT_TRUE(journal.append(make_bundle("Cori-S1", "BBSched")));
  ASSERT_TRUE(journal.append(make_bundle("Cori-S2", "BBSched")));
  // Simulate a crash mid-append: truncate the file inside the last bundle.
  const std::string content = slurp(path_);
  std::ofstream(path_, std::ios::binary | std::ios::trunc)
      << content.substr(0, content.size() - 7);

  CellJournal reader(path_);
  const auto bundles = reader.load();
  ASSERT_EQ(bundles.size(), 1u) << "torn bundle must not be recovered";
  EXPECT_EQ(bundles[0].workload, "Cori-S1");
}

TEST_F(JournalTest, UncommittedBundleWithoutDoneMarkerIsDropped) {
  CellJournal journal(path_);
  ASSERT_TRUE(journal.append(make_bundle("Cori-S1", "BBSched")));
  // Chop off the final (done) line entirely — frames stay valid.
  std::string content = slurp(path_);
  ASSERT_FALSE(content.empty());
  content.pop_back();  // trailing '\n'
  const auto cut = content.rfind('\n');
  ASSERT_NE(cut, std::string::npos);
  std::ofstream(path_, std::ios::binary | std::ios::trunc)
      << content.substr(0, cut + 1);

  CellJournal reader(path_);
  EXPECT_TRUE(reader.load().empty());
}

TEST_F(JournalTest, CorruptRecordEndsValidPrefix) {
  CellJournal journal(path_);
  ASSERT_TRUE(journal.append(make_bundle("Cori-S1", "BBSched")));
  const std::string good = slurp(path_);
  // A bit flip in the middle of the second bundle's bytes.
  ASSERT_TRUE(journal.append(make_bundle("Cori-S2", "BBSched")));
  std::string content = slurp(path_);
  content[good.size() + 12] ^= 0x1;
  std::ofstream(path_, std::ios::binary | std::ios::trunc) << content;

  CellJournal reader(path_);
  const auto bundles = reader.load();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].workload, "Cori-S1");
}

TEST_F(JournalTest, InvalidHeaderQuarantinesJournal) {
  std::ofstream(path_, std::ios::binary)
      << "deadbeef|journal|not-a-real-version\n";
  CellJournal reader(path_);
  EXPECT_TRUE(reader.load().empty());
  EXPECT_FALSE(fs::exists(path_)) << "corrupt journal must be moved aside";
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "quarantine"));
}

TEST_F(JournalTest, InjectedTornAppendPoisonsJournal) {
  set_global_fault_plan(
      FaultPlan::parse("seed=11;journal.append:partial=1@0.3"));
  CellJournal journal(path_);
  EXPECT_FALSE(journal.append(make_bundle("Cori-S1", "BBSched")));
  EXPECT_TRUE(journal.poisoned());
  // Poisoned: later appends are dropped even with injection disarmed.
  set_global_fault_plan(FaultPlan{});
  EXPECT_FALSE(journal.append(make_bundle("Cori-S2", "BBSched")));

  // The torn bytes behave like a crashed writer's tail: recovery drops them.
  CellJournal reader(path_);
  EXPECT_TRUE(reader.load().empty());
}

TEST_F(JournalTest, RemoveDeletesFile) {
  CellJournal journal(path_);
  ASSERT_TRUE(journal.append(make_bundle("Cori-S1", "BBSched")));
  ASSERT_TRUE(fs::exists(path_));
  journal.remove();
  EXPECT_FALSE(fs::exists(path_));
  journal.remove();  // idempotent
}

TEST_F(JournalTest, CommasAndQuotesInPayloadSurvive) {
  JournalBundle bundle;
  bundle.workload = "Cori-S1";
  bundle.method = "BBSched";
  bundle.cell_row = "Cori-S1,BBSched,\"a,quoted\nfield\",1";
  CellJournal journal(path_);
  // Embedded newlines cannot survive a line-framed journal; the writer must
  // refuse (return false) rather than corrupt the file.
  EXPECT_FALSE(journal.append(bundle));

  bundle.cell_row = "Cori-S1,BBSched,\"a,quoted field\",1";
  CellJournal journal2(dir_ + "/clean.journal");
  ASSERT_TRUE(journal2.append(bundle));
  CellJournal reader(dir_ + "/clean.journal");
  const auto bundles = reader.load();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].cell_row, bundle.cell_row);
}

}  // namespace
}  // namespace bbsched
