// rng.hpp — deterministic random number generation for reproducible
// simulation.
//
// Every stochastic component (workload generators, the genetic solver's
// crossover/mutation, feasibility repair) draws from an explicitly seeded
// Rng instance so that a whole experiment grid is bit-reproducible from a
// single seed.  The engine is xoshiro256** (public-domain reference
// algorithm by Blackman & Vigna), seeded through SplitMix64, which is both
// faster and has far better statistical quality than std::minstd and — unlike
// std::mt19937 streams across libstdc++ versions — fully under our control.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace bbsched {

/// Deterministically derive an independent stream seed from a base seed and
/// up to two textual labels (e.g. workload and method names): FNV-1a over
/// the labels folded into the base, finalized through SplitMix64.  Unlike
/// std::hash the result is identical across standard libraries, so cached
/// results and tests agree everywhere.  This is the per-task seeding
/// discipline that keeps parallel runs bit-identical at any thread count:
/// every (workload, method) cell owns the stream seeded by
/// mix_seed(master_seed, workload, method) regardless of which thread runs
/// it (DESIGN.md §8).
std::uint64_t mix_seed(std::uint64_t base, std::string_view label_a,
                       std::string_view label_b = {});

/// xoshiro256** engine with convenience distributions.  Satisfies
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponential with given rate (mean 1/rate); used for Poisson arrivals.
  double exponential(double rate);

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double normal(double mean, double stddev);

  /// Bounded Pareto on [lo, hi] with shape alpha — heavy-tailed sizes such as
  /// burst-buffer requests.  Requires 0 < lo < hi and alpha > 0.
  double bounded_pareto(double alpha, double lo, double hi);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const double* weights, std::size_t n);

  /// Derive an independent child stream (e.g. one per workload) such that
  /// child streams do not overlap with the parent sequence in practice.
  Rng fork();

 private:
  result_type next();

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace bbsched
