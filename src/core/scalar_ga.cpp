#include "core/scalar_ga.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bbsched {

ScalarGaSolver::ScalarGaSolver(GaParams params, std::vector<double> weights)
    : params_(params), weights_(std::move(weights)) {
  params_.validate();
  if (weights_.empty()) {
    throw std::invalid_argument("ScalarGaSolver: empty weight vector");
  }
}

double ScalarGaSolver::fitness(const Chromosome& c) const {
  assert(c.objectives.size() == weights_.size());
  double f = 0;
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    f += weights_[k] * c.objectives[k];
  }
  return f;
}

ScalarResult ScalarGaSolver::solve(const MooProblem& problem) const {
  Rng rng(params_.seed);
  return solve(problem, rng);
}

ScalarResult ScalarGaSolver::solve(const MooProblem& problem, Rng& rng) const {
  if (problem.num_objectives() != weights_.size()) {
    throw std::invalid_argument(
        "ScalarGaSolver: weight count != problem objectives");
  }
  ScalarResult result;
  const auto population_size =
      static_cast<std::size_t>(params_.population_size);
  auto population = random_population(problem, population_size, rng);
  result.evaluations += population.size();

  auto by_fitness_desc = [this](const Chromosome& a, const Chromosome& b) {
    return fitness(a) > fitness(b);
  };

  for (int g = 0; g < params_.generations; ++g) {
    auto children = make_children(problem, population, population_size,
                                  params_.mutation_rate, rng);
    result.evaluations += children.size();
    population.insert(population.end(),
                      std::make_move_iterator(children.begin()),
                      std::make_move_iterator(children.end()));
    // Elitist truncation: keep the best P by scalar fitness.  stable_sort
    // keeps parents ahead of equal-fitness children for determinism.
    std::stable_sort(population.begin(), population.end(), by_fitness_desc);
    population.resize(population_size);
  }

  result.best = population.front();
  result.fitness = fitness(result.best);
  return result;
}

}  // namespace bbsched
