# Empty compiler generated dependencies file for bbsched_common.
# This may be replaced when dependencies are built.
