#include "common/log.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"

namespace bbsched {
namespace {

/// Captures the sink and restores stderr + the previous level on exit so
/// tests do not leak state into each other.
class SinkCapture {
 public:
  SinkCapture() : saved_level_(log_level()) { set_log_sink(&stream_); }
  ~SinkCapture() {
    set_log_sink(nullptr);
    set_log_level(saved_level_);
  }
  std::string text() const { return stream_.str(); }

  std::vector<std::string> lines() const {
    std::vector<std::string> out;
    std::istringstream in(stream_.str());
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }

 private:
  std::ostringstream stream_;
  LogLevel saved_level_;
};

TEST(LogLevelParse, RoundTripsEveryLevel) {
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

TEST(LogLevelParse, CaseInsensitive) {
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
}

TEST(LogLevelParse, RejectsUnknownNames) {
  EXPECT_THROW(parse_log_level("verbose"), std::invalid_argument);
  EXPECT_THROW(parse_log_level(""), std::invalid_argument);
}

TEST(LogFilter, ThresholdDropsLowerLevels) {
  SinkCapture capture;
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  log_info("test", "dropped");
  log_warn("test", "kept");
  log_error("test", "also kept");
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("level=warn"), std::string::npos);
  EXPECT_NE(lines[1].find("level=error"), std::string::npos);
}

TEST(LogFilter, OffSilencesEverything) {
  SinkCapture capture;
  set_log_level(LogLevel::kOff);
  log_error("test", "nothing");
  EXPECT_TRUE(capture.text().empty());
}

TEST(LogFormat, KeyValueFieldsAndQuoting) {
  SinkCapture capture;
  set_log_level(LogLevel::kInfo);
  log_info("comp", "two words",
           {{"n", 42}, {"ratio", 0.5}, {"label", "has space"}});
  const std::string line = capture.text();
  EXPECT_NE(line.find("comp=comp"), std::string::npos);
  EXPECT_NE(line.find("msg=\"two words\""), std::string::npos);
  EXPECT_NE(line.find("n=42"), std::string::npos);
  EXPECT_NE(line.find("ratio=0.5"), std::string::npos);
  EXPECT_NE(line.find("label=\"has space\""), std::string::npos);
}

TEST(LogConcurrency, LinesNeverInterleave) {
  SinkCapture capture;
  set_log_level(LogLevel::kInfo);
  constexpr std::size_t kRecords = 200;
  parallel_for(kRecords, [](std::size_t i) {
    log_info("worker", "tick", {{"i", i}, {"pad", "xxxxxxxxxxxxxxxx"}});
  });
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), kRecords);
  // Every line must be a complete record carrying its own index exactly once.
  std::set<std::string> seen;
  for (const auto& line : lines) {
    EXPECT_NE(line.find("msg=tick"), std::string::npos) << line;
    EXPECT_NE(line.find("pad=xxxxxxxxxxxxxxxx"), std::string::npos) << line;
    const auto pos = line.find(" i=");
    ASSERT_NE(pos, std::string::npos) << line;
    seen.insert(line.substr(pos));
  }
  EXPECT_EQ(seen.size(), kRecords);
}

}  // namespace
}  // namespace bbsched
