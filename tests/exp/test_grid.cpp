#include "exp/grid.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace bbsched {
namespace {

namespace fs = std::filesystem;

ExperimentConfig tiny_config(const std::string& cache_dir) {
  ExperimentConfig config;
  config.jobs_per_workload = 40;
  config.window_size = 6;
  config.ga.generations = 6;
  config.ga.population_size = 6;
  config.cache_dir = cache_dir;
  return config;
}

class GridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -j runs cases as concurrent processes,
    // and a shared directory would let them clobber each other's cache.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    cache_dir_ = (fs::temp_directory_path() /
                  (std::string("bbsched_grid_test_") + info->name()))
                     .string();
    fs::remove_all(cache_dir_);
  }
  void TearDown() override { fs::remove_all(cache_dir_); }
  std::string cache_dir_;
};

TEST_F(GridTest, ComputesCachesAndReloadsMainGrid) {
  const auto config = tiny_config(cache_dir_);
  const auto first = ensure_main_grid(config);
  EXPECT_EQ(first.cells.size(), 80u);  // 10 workloads x 8 methods
  EXPECT_FALSE(first.breakdowns.empty());

  // Second call must load from cache and reproduce every cell exactly.
  const auto second = ensure_main_grid(config);
  ASSERT_EQ(second.cells.size(), first.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_EQ(second.cells[i].workload, first.cells[i].workload);
    EXPECT_EQ(second.cells[i].method, first.cells[i].method);
    EXPECT_NEAR(second.cells[i].metrics.avg_wait,
                first.cells[i].metrics.avg_wait, 1e-6);
    EXPECT_DOUBLE_EQ(second.cells[i].metrics.node_usage,
                     first.cells[i].metrics.node_usage)
        << "cache round trip must be lossless";
  }
  ASSERT_EQ(second.breakdowns.size(), first.breakdowns.size());
}

TEST_F(GridTest, FindCellLookupsByLabelAndMethod) {
  const auto config = tiny_config(cache_dir_);
  const auto results = ensure_main_grid(config);
  const auto cell = find_cell(results.cells, "Theta-S4", "BBSched");
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->workload, "Theta-S4");
  EXPECT_FALSE(
      find_cell(results.cells, "Theta-S4", "NoSuchMethod").has_value());
  EXPECT_FALSE(find_cell(results.cells, "Nope", "BBSched").has_value());
}

TEST_F(GridTest, DifferentConfigMissesCache) {
  auto config = tiny_config(cache_dir_);
  (void)ensure_main_grid(config);
  const auto files_before =
      std::distance(fs::directory_iterator(cache_dir_), {});
  config.window_size = 7;  // different digest -> recompute, new files
  (void)ensure_main_grid(config);
  const auto files_after =
      std::distance(fs::directory_iterator(cache_dir_), {});
  EXPECT_GT(files_after, files_before);
}

TEST_F(GridTest, SsdGridComputesAllCells) {
  const auto config = tiny_config(cache_dir_);
  const auto cells = ensure_ssd_grid(config);
  EXPECT_EQ(cells.size(), 42u);  // 6 workloads x 7 methods
  for (const auto& cell : cells) {
    EXPECT_GE(cell.metrics.ssd_usage, 0.0);
  }
  // Cached reload.
  const auto reloaded = ensure_ssd_grid(config);
  EXPECT_EQ(reloaded.size(), cells.size());
}

TEST_F(GridTest, RunSingleMatchesGridCell) {
  const auto config = tiny_config(cache_dir_);
  const auto workloads = build_main_workloads(config);
  const auto results = ensure_main_grid(config);
  for (const auto& entry : workloads) {
    if (entry.label != "Cori-S1") continue;
    const SimResult result = run_single(config, entry.workload, "Baseline");
    const auto cell = find_cell(results.cells, "Cori-S1", "Baseline");
    ASSERT_TRUE(cell.has_value());
    EXPECT_NEAR(compute_metrics(result).avg_wait, cell->metrics.avg_wait,
                1e-6);
  }
}

}  // namespace
}  // namespace bbsched
