// ssd_case_study — the §5 extension in miniature: schedule CPU + shared
// burst buffer + heterogeneous local SSD with the four-objective
// formulation, and compare BBSched against the baseline and Constrained_SSD
// on one S6-style workload.
//
//   ./ssd_case_study --jobs 400 --mix 0.5
#include <cstdio>
#include <iostream>

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "metrics/schedule_metrics.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace bbsched;
  std::int64_t jobs = 400;
  double mix = 0.5;  // fraction of jobs with small-tier SSD requests (S6)
  std::int64_t generations = 200;
  std::int64_t seed = 42;
  ArgParser parser("bbsched ssd_case_study: the §5 four-objective extension");
  parser.add_int("jobs", &jobs, "jobs to generate");
  parser.add_double("mix", &mix,
                    "fraction of jobs with small (0-128 GB) SSD requests");
  parser.add_int("generations", &generations, "GA generations");
  parser.add_int("seed", &seed, "workload seed");
  std::int64_t threads = 0;
  parser.add_int("threads", &threads,
                 "solver/grid threads (0 = BBSCHED_THREADS or all cores)");
  try {
    if (!parser.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (threads > 0) set_global_threads(static_cast<std::size_t>(threads));

  // Theta-like machine (scaled 1/2), S2 burst-buffer expansion, then SSD
  // requests per the §5 recipe with a 50/50 node-tier split.
  const auto model = theta_model(static_cast<std::size_t>(jobs), 0.5);
  const Workload original =
      generate_workload(model, static_cast<std::uint64_t>(seed));
  BbExpansionParams s2;
  s2.target_fraction = 0.75;
  s2.pool_threshold = tb(5) * 0.5;
  s2.pool = sample_bb_pool(model.bb_pareto_alpha, model.bb_min, model.bb_max,
                           s2.pool_threshold, 2048, 9);
  SsdExpansionParams ssd;
  ssd.small_request_fraction = mix;
  const Workload workload = expand_ssd_requests(
      expand_bb_requests(original, s2, 11), ssd, 13);

  std::printf("machine: %lld nodes (%lld x 128 GB SSD, %lld x 256 GB SSD),"
              " %s shared BB\n\n",
              static_cast<long long>(workload.machine.nodes),
              static_cast<long long>(workload.machine.small_ssd_nodes),
              static_cast<long long>(workload.machine.large_ssd_nodes),
              format_capacity(workload.machine.burst_buffer_gb).c_str());

  SimConfig config;
  GaParams ga;
  ga.generations = static_cast<int>(generations);
  const auto wfp = make_base_scheduler("WFP");

  const char* methods[] = {"Baseline", "Constrained_SSD", "BBSched"};
  ConsoleTable table({"metric", "Baseline", "Constrained_SSD", "BBSched"},
                     {Align::kLeft, Align::kRight, Align::kRight,
                      Align::kRight});
  ScheduleMetrics metrics[3];
  for (int i = 0; i < 3; ++i) {
    const auto policy = make_policy(methods[i], ga);
    const SimResult result = simulate(workload, config, *wfp, *policy);
    metrics[i] = compute_metrics(result);
  }
  auto row = [&](const char* name, auto get, bool percent) {
    std::vector<std::string> cells{name};
    for (int i = 0; i < 3; ++i) {
      cells.push_back(percent ? ConsoleTable::pct(get(metrics[i]))
                              : ConsoleTable::num(get(metrics[i])));
    }
    table.add_row(std::move(cells));
  };
  row("node usage", [](const ScheduleMetrics& m) { return m.node_usage; },
      true);
  row("BB usage", [](const ScheduleMetrics& m) { return m.bb_usage; }, true);
  row("SSD usage", [](const ScheduleMetrics& m) { return m.ssd_usage; },
      true);
  row("wasted SSD", [](const ScheduleMetrics& m) { return m.ssd_waste; },
      true);
  row("avg wait (h)",
      [](const ScheduleMetrics& m) { return as_hours(m.avg_wait); }, false);
  row("avg slowdown",
      [](const ScheduleMetrics& m) { return m.avg_slowdown; }, false);
  table.print(std::cout);
  return 0;
}
