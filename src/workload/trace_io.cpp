#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/log.hpp"

namespace bbsched {

namespace {

std::string join_deps(const std::vector<JobId>& deps) {
  std::string out;
  for (std::size_t i = 0; i < deps.size(); ++i) {
    if (i) out.push_back(';');
    out += std::to_string(deps[i]);
  }
  return out;
}

std::vector<JobId> split_deps(const std::string& field) {
  std::vector<JobId> deps;
  std::stringstream ss(field);
  std::string token;
  while (std::getline(ss, token, ';')) {
    if (token.empty()) continue;
    deps.push_back(static_cast<JobId>(parse_int_field(token, "deps")));
  }
  return deps;
}

}  // namespace

void write_trace_csv(const Workload& workload, std::ostream& out) {
  out << "# bbsched trace: " << workload.name << '\n';
  out << kTraceCsvHeader << '\n';
  // max_digits10 keeps the double fields lossless across a round trip.
  out.precision(17);
  for (const auto& job : workload.jobs) {
    out << job.id << ',' << job.submit_time << ',' << job.runtime << ','
        << job.walltime << ',' << job.nodes << ',' << job.bb_gb << ','
        << job.ssd_per_node_gb << ',' << join_deps(job.dependencies) << '\n';
  }
}

void write_trace_csv_file(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot write " + path);
  write_trace_csv(workload, out);
}

Workload read_trace_csv(std::istream& in, std::string name,
                        MachineConfig machine) {
  const CsvTable table = CsvTable::read(in);
  Workload workload;
  workload.name = std::move(name);
  workload.machine = std::move(machine);
  workload.jobs.reserve(table.num_rows());
  log_debug("trace_io", "parsed trace CSV",
            {{"rows", table.num_rows()}, {"trace", workload.name}});
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    JobRecord job;
    job.id = static_cast<JobId>(parse_int_field(table.at(r, "id"), "id"));
    job.submit_time = parse_double_field(table.at(r, "submit_s"), "submit_s");
    job.runtime = parse_double_field(table.at(r, "runtime_s"), "runtime_s");
    job.walltime =
        parse_double_field(table.at(r, "walltime_s"), "walltime_s");
    job.nodes = parse_int_field(table.at(r, "nodes"), "nodes");
    job.bb_gb = parse_double_field(table.at(r, "bb_gb"), "bb_gb");
    job.ssd_per_node_gb = parse_double_field(
        table.at(r, "ssd_per_node_gb"), "ssd_per_node_gb");
    job.dependencies = split_deps(table.at(r, "deps"));
    workload.jobs.push_back(std::move(job));
  }
  workload.normalize();
  return workload;
}

Workload read_trace_csv_file(const std::string& path, std::string name,
                             MachineConfig machine) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return read_trace_csv(in, std::move(name), std::move(machine));
}

Workload read_swf(std::istream& in, std::string name, MachineConfig machine,
                  int cores_per_node) {
  if (cores_per_node < 1) {
    throw std::invalid_argument("swf: cores_per_node must be >= 1");
  }
  Workload workload;
  workload.name = std::move(name);
  workload.machine = std::move(machine);
  std::string line;
  std::size_t skipped_no_procs = 0;
  std::size_t skipped_zero_runtime = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == ';') continue;
    std::istringstream fields(line);
    // SWF: 18 whitespace-separated fields; -1 marks "unknown".
    double f[18];
    for (double& v : f) {
      if (!(fields >> v)) {
        throw std::runtime_error("swf: short record: " + line);
      }
    }
    JobRecord job;
    job.id = static_cast<JobId>(f[0]);
    job.submit_time = f[1];
    job.runtime = f[3] > 0 ? f[3] : 0;
    const double procs = f[7] > 0 ? f[7] : f[4];  // requested else allocated
    if (procs <= 0) {  // cancelled-before-start records
      ++skipped_no_procs;
      continue;
    }
    job.nodes = static_cast<NodeCount>(
        (static_cast<std::int64_t>(procs) + cores_per_node - 1) /
        cores_per_node);
    const double requested_time = f[8] > 0 ? f[8] : job.runtime;
    job.walltime = std::max(requested_time, job.runtime);
    if (job.runtime <= 0) {  // zero-length records carry no load
      ++skipped_zero_runtime;
      continue;
    }
    workload.jobs.push_back(std::move(job));
  }
  if (skipped_no_procs + skipped_zero_runtime > 0) {
    log_warn("trace_io", "skipped unusable SWF records",
             {{"no_procs", skipped_no_procs},
              {"zero_runtime", skipped_zero_runtime},
              {"kept", workload.jobs.size()},
              {"trace", workload.name}});
  }
  workload.normalize();
  return workload;
}

Workload read_swf_file(const std::string& path, std::string name,
                       MachineConfig machine, int cores_per_node) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("swf: cannot open " + path);
  return read_swf(in, std::move(name), std::move(machine), cores_per_node);
}

}  // namespace bbsched
