// log.hpp — leveled, thread-safe structured logging.
//
// Records are key=value lines on one sink (stderr by default):
//
//   ts=1.234567 level=info comp=grid msg="cell done" workload=Theta-S4 wall_s=1.2
//
// Levels: trace < debug < info < warn < error < off.  The threshold defaults
// to `info` (warnings and the grid progress lines keep printing exactly as
// before this layer existed) and is controlled by the BBSCHED_LOG environment
// variable or set_log_level() — examples wire a --log-level flag.  Hot-path
// telemetry lives in trace.hpp/metrics.hpp, not here; logging below the
// threshold costs one relaxed atomic load plus the caller-side field
// construction, so guard tight loops with log_enabled().
//
// Thread safety: each thread formats into its own thread-local buffer; only
// the final line write takes the sink mutex, so concurrent records never
// interleave within a line.
#pragma once

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>

namespace bbsched {

enum class LogLevel : int {
  kTrace = 0,
  kDebug,
  kInfo,
  kWarn,
  kError,
  kOff,
};

/// Current threshold (records below it are dropped).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Whether a record at `level` would be emitted; the cheap guard for
/// call sites that build fields eagerly.
bool log_enabled(LogLevel level);

/// Parse "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-insensitive).  Throws std::invalid_argument on anything else.
LogLevel parse_log_level(std::string_view name);

/// Lower-case name of a level ("info", ...).
const char* log_level_name(LogLevel level);

/// Redirect the sink (tests, file logging).  nullptr restores stderr.  The
/// stream must outlive all logging through it.
void set_log_sink(std::ostream* sink);

/// One key=value field of a structured record (also reused as a trace-event
/// argument, where `numeric` selects raw JSON numbers over quoted strings).
struct LogField {
  std::string key;
  std::string value;
  bool numeric = false;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  LogField(std::string_view k, double v);
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  LogField(std::string_view k, T v)
      : key(k),
        value(std::is_signed_v<T>
                  ? std::to_string(static_cast<long long>(v))
                  : std::to_string(static_cast<unsigned long long>(v))),
        numeric(true) {}
};

/// Emit one structured record; no-op below the threshold.
void log_record(LogLevel level, std::string_view component,
                std::string_view message,
                std::initializer_list<LogField> fields = {});

inline void log_debug(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  log_record(LogLevel::kDebug, component, message, fields);
}
inline void log_info(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  log_record(LogLevel::kInfo, component, message, fields);
}
inline void log_warn(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  log_record(LogLevel::kWarn, component, message, fields);
}
inline void log_error(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  log_record(LogLevel::kError, component, message, fields);
}

}  // namespace bbsched
