// factory.hpp — construct the §4.3 / §5 method roster by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/ga_ops.hpp"
#include "sim/selection_policy.hpp"

namespace bbsched {

/// Method names of the §4 comparison, in the paper's presentation order.
std::vector<std::string> standard_method_names();

/// Method names of the §5 SSD case study (drops the CPU/BB-biased weighted
/// variants, adds Constrained_SSD).
std::vector<std::string> ssd_method_names();

/// Instantiate a method by its paper name: "Baseline", "Weighted",
/// "Weighted_CPU", "Weighted_BB", "Constrained_CPU", "Constrained_BB",
/// "Constrained_SSD", "Bin_Packing", "BBSched".  `params` configures the
/// genetic machinery of the optimization-based methods (ignored by Baseline
/// and Bin_Packing).  Throws std::invalid_argument for unknown names.
std::unique_ptr<SelectionPolicy> make_policy(const std::string& name,
                                             const GaParams& params);

}  // namespace bbsched
