#include "exp/grid.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "exp/monitor.hpp"
#include "policies/factory.hpp"

namespace bbsched {

namespace {

namespace fs = std::filesystem;

std::string grid_cache_path(const ExperimentConfig& config,
                            const std::string& tag) {
  return (fs::path(config.cache_dir) /
          (tag + "_" + config.digest() + ".csv"))
      .string();
}

/// Lossless double -> string for the cache (std::to_string truncates to six
/// decimals, which breaks exact reload comparisons).
std::string num_repr(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

CsvRow cell_to_row(const GridCell& cell) {
  const auto& m = cell.metrics;
  return {cell.workload,
          cell.method,
          num_repr(m.node_usage),
          num_repr(m.bb_usage),
          num_repr(m.ssd_usage),
          num_repr(m.ssd_waste),
          num_repr(m.avg_wait),
          num_repr(m.avg_slowdown),
          num_repr(m.p95_wait),
          num_repr(m.max_wait),
          std::to_string(m.jobs_measured),
          std::to_string(m.jobs_backfilled),
          num_repr(cell.mean_solve_seconds),
          num_repr(cell.max_solve_seconds),
          num_repr(cell.mean_pareto_size),
          std::to_string(cell.forced_starts),
          num_repr(cell.cell_wall_seconds)};
}

const CsvRow kGridHeader = {
    "workload",     "method",        "node_usage",   "bb_usage",
    "ssd_usage",    "ssd_waste",     "avg_wait",     "avg_slowdown",
    "p95_wait",     "max_wait",      "jobs",         "backfilled",
    "mean_solve_s", "max_solve_s",   "mean_pareto",  "forced_starts",
    "cell_wall_s"};

GridCell row_to_cell(const CsvTable& table, std::size_t r) {
  GridCell cell;
  cell.workload = table.at(r, "workload");
  cell.method = table.at(r, "method");
  auto num = [&](const char* col) {
    return parse_double_field(table.at(r, col), col);
  };
  cell.metrics.node_usage = num("node_usage");
  cell.metrics.bb_usage = num("bb_usage");
  cell.metrics.ssd_usage = num("ssd_usage");
  cell.metrics.ssd_waste = num("ssd_waste");
  cell.metrics.avg_wait = num("avg_wait");
  cell.metrics.avg_slowdown = num("avg_slowdown");
  cell.metrics.p95_wait = num("p95_wait");
  cell.metrics.max_wait = num("max_wait");
  cell.metrics.jobs_measured =
      static_cast<std::size_t>(parse_int_field(table.at(r, "jobs"), "jobs"));
  cell.metrics.jobs_backfilled = static_cast<std::size_t>(
      parse_int_field(table.at(r, "backfilled"), "backfilled"));
  cell.mean_solve_seconds = num("mean_solve_s");
  cell.max_solve_seconds = num("max_solve_s");
  cell.mean_pareto_size = num("mean_pareto");
  cell.forced_starts = static_cast<std::size_t>(
      parse_int_field(table.at(r, "forced_starts"), "forced_starts"));
  cell.cell_wall_seconds = num("cell_wall_s");
  return cell;
}

GridCell cell_from_result(const SimResult& result,
                          const ScheduleMetrics& metrics) {
  GridCell cell;
  cell.workload = result.workload_name;
  cell.method = result.policy_name;
  cell.metrics = metrics;
  cell.mean_solve_seconds = result.decisions.mean_solve_seconds();
  cell.max_solve_seconds = result.decisions.solve_seconds_max;
  cell.mean_pareto_size = result.decisions.mean_pareto_size();
  cell.forced_starts = result.decisions.forced_starts;
  return cell;
}

void append_breakdowns(const SimResult& result, double machine_scale,
                       std::vector<BreakdownCell>& out) {
  // Bin edges follow the machine scale so each bin keeps its position
  // relative to machine size and request range (runtimes do not scale).
  auto scaled_nodes = [&](double v) {
    return std::max<NodeCount>(
        1, static_cast<NodeCount>(std::llround(v * machine_scale)));
  };
  const std::vector<NodeCount> size_edges{scaled_nodes(8), scaled_nodes(128),
                                          scaled_nodes(1024)};
  const std::vector<double> bb_edges_tb{1 * machine_scale,
                                        100 * machine_scale,
                                        200 * machine_scale};
  const struct {
    const char* dimension;
    std::vector<BreakdownBin> bins;
  } groups[] = {
      {"job_size", breakdown_by_job_size(result, size_edges)},
      {"bb_request", breakdown_by_bb_request(result, bb_edges_tb)},
      {"runtime", breakdown_by_runtime(result)},
  };
  for (const auto& group : groups) {
    for (const auto& bin : group.bins) {
      BreakdownCell cell;
      cell.workload = result.workload_name;
      cell.method = result.policy_name;
      cell.dimension = group.dimension;
      cell.label = bin.label;
      cell.avg_wait = bin.avg_wait;
      cell.count = bin.count;
      out.push_back(std::move(cell));
    }
  }
}

const CsvRow kBreakdownHeader = {"workload", "method",   "dimension",
                                 "label",    "avg_wait", "count"};

/// Per-cell timing instrumentation emitted next to the grid cache so
/// speedups are measurable without re-reading the full grid schema.
void write_solver_timing(const std::string& path,
                         const std::vector<GridCell>& cells) {
  CsvTable timing({"workload", "method", "cell_wall_s", "mean_solve_s",
                   "max_solve_s", "mean_pareto"});
  for (const auto& cell : cells) {
    timing.add_row({cell.workload, cell.method,
                    num_repr(cell.cell_wall_seconds),
                    num_repr(cell.mean_solve_seconds),
                    num_repr(cell.max_solve_seconds),
                    num_repr(cell.mean_pareto_size)});
  }
  timing.write_file(path);
}

}  // namespace

std::optional<GridCell> find_cell(const std::vector<GridCell>& cells,
                                  const std::string& workload,
                                  const std::string& method) {
  for (const auto& cell : cells) {
    if (cell.workload == workload && cell.method == method) return cell;
  }
  return std::nullopt;
}

SimResult run_single(const ExperimentConfig& config, const Workload& workload,
                     const std::string& method, SimObserver* observer) {
  const auto base = make_base_scheduler(base_scheduler_for(workload.name));
  const auto policy = make_policy(method, config.ga);
  SimConfig sim = config.sim_config();
  // Splittable per-cell stream: every (workload, method) cell owns the RNG
  // stream derived from the campaign seed and its labels, so cells are
  // decorrelated from each other and independent of the order — serial or
  // parallel — in which the grid runs them.
  sim.seed = mix_seed(sim.seed, workload.name, method);
  return simulate(workload, sim, *base, *policy, observer);
}

namespace {

/// What one grid task produces; slot-per-cell so the parallel loop writes
/// disjoint memory and the assembled order matches the serial loop's.
struct CellOutcome {
  GridCell cell;
  std::vector<BreakdownCell> breakdowns;
};

/// Per-cell streaming observer: feeds the incremental metrics engine as the
/// simulator completes jobs — the grid's cell metrics come from here, never
/// from a post-hoc pass over the outcome vector — and counts sim events for
/// the campaign monitor's events/sec gauge.
class StreamingCellObserver : public SimObserver {
 public:
  StreamingCellObserver(const MachineConfig& machine, MeasureInterval interval,
                        CampaignMonitor* monitor)
      : metrics_(machine, interval.begin, interval.end), monitor_(monitor) {}

  void on_job_outcome(const JobOutcome& outcome) override {
    metrics_.add(outcome);
    if (monitor_ != nullptr) monitor_->add_events(1);
  }
  void on_occupancy(Time /*now*/, double /*nodes_used*/,
                    double /*bb_used_gb*/) override {
    if (monitor_ != nullptr) monitor_->add_events(1);
  }

  const IncrementalScheduleMetrics& metrics() const { return metrics_; }

 private:
  IncrementalScheduleMetrics metrics_;
  CampaignMonitor* monitor_;
};

std::vector<CellOutcome> compute_cells(
    const ExperimentConfig& config, const std::vector<SuiteEntry>& workloads,
    const std::vector<std::string>& methods, bool collect_breakdowns,
    const char* campaign_label) {
  const std::size_t total = workloads.size() * methods.size();
  std::vector<CellOutcome> outcomes(total);
  std::atomic<std::size_t> done{0};
  Stopwatch watch;
  // Self-monitoring: sampler thread + heartbeat whenever any telemetry
  // surface (progress, metrics, trace) is armed; fully silent otherwise.
  const bool monitoring =
      progress_enabled() || metrics_enabled() || trace_enabled();
  CampaignMonitor monitor(campaign_label, total);
  if (monitoring) monitor.start();
  parallel_for(total, [&](std::size_t idx) {
    const SuiteEntry& entry = workloads[idx / methods.size()];
    const std::string& method = methods[idx % methods.size()];
    // One wall-clock span per grid cell — the unit of the parallel speedup
    // accounting — labeled so Perfetto shows which cell ran on which worker.
    TraceSpan cell_span("grid.cell", "exp",
                        {{"workload", entry.label}, {"method", method}});
    Stopwatch cell_watch;
    StreamingCellObserver observer(
        entry.workload.machine,
        measurement_interval(entry.workload, config.sim_config()),
        monitoring ? &monitor : nullptr);
    const SimResult result =
        run_single(config, entry.workload, method, &observer);
    CellOutcome& out = outcomes[idx];
    out.cell = cell_from_result(result, observer.metrics().finalize());
    out.cell.cell_wall_seconds = cell_watch.elapsed_seconds();
    monitor.cell_done();
    // Figures 9-11 break down the Theta-S4 runs.
    if (collect_breakdowns && entry.label == "Theta-S4") {
      append_breakdowns(result, config.theta_scale, out.breakdowns);
    }
    if (metrics_enabled()) {
      // Folds the per-cell solver-timing data (the *_solver_timing_*.csv
      // columns) into the metrics snapshot.
      static Counter& cells = metric_counter("grid.cells");
      static MetricHistogram& wall = metric_histogram("grid.cell_wall_seconds");
      static MetricHistogram& mean_solve =
          metric_histogram("grid.cell_mean_solve_seconds");
      static MetricHistogram& max_solve =
          metric_histogram("grid.cell_max_solve_seconds");
      cells.add(1);
      wall.observe(out.cell.cell_wall_seconds);
      mean_solve.observe(out.cell.mean_solve_seconds);
      max_solve.observe(out.cell.max_solve_seconds);
    }
    log_info("grid", "cell done",
             {{"cell", done.fetch_add(1) + 1},
              {"total", total},
              {"workload", entry.label},
              {"method", method},
              {"cell_wall_s", out.cell.cell_wall_seconds},
              {"elapsed_s", watch.elapsed_seconds()},
              {"threads", global_threads()}});
  });
  if (monitoring) monitor.stop();
  return outcomes;
}

}  // namespace

MainGridResults compute_main_grid(const ExperimentConfig& config) {
  auto outcomes =
      compute_cells(config, build_main_workloads(config),
                    standard_method_names(), /*collect_breakdowns=*/true,
                    "main_grid");
  MainGridResults results;
  results.cells.reserve(outcomes.size());
  for (auto& out : outcomes) {
    results.cells.push_back(std::move(out.cell));
    results.breakdowns.insert(
        results.breakdowns.end(),
        std::make_move_iterator(out.breakdowns.begin()),
        std::make_move_iterator(out.breakdowns.end()));
  }
  return results;
}

std::vector<GridCell> compute_ssd_grid(const ExperimentConfig& config) {
  auto outcomes = compute_cells(config, build_ssd_workloads(config),
                                ssd_method_names(),
                                /*collect_breakdowns=*/false, "ssd_grid");
  std::vector<GridCell> cells;
  cells.reserve(outcomes.size());
  for (auto& out : outcomes) cells.push_back(std::move(out.cell));
  return cells;
}

MainGridResults ensure_main_grid(const ExperimentConfig& config) {
  const std::string grid_path = grid_cache_path(config, "main_grid");
  const std::string breakdown_path =
      grid_cache_path(config, "main_breakdowns");
  MainGridResults results;
  if (fs::exists(grid_path) && fs::exists(breakdown_path)) {
    const CsvTable grid = CsvTable::read_file(grid_path);
    for (std::size_t r = 0; r < grid.num_rows(); ++r) {
      results.cells.push_back(row_to_cell(grid, r));
    }
    const CsvTable breakdowns = CsvTable::read_file(breakdown_path);
    for (std::size_t r = 0; r < breakdowns.num_rows(); ++r) {
      BreakdownCell cell;
      cell.workload = breakdowns.at(r, "workload");
      cell.method = breakdowns.at(r, "method");
      cell.dimension = breakdowns.at(r, "dimension");
      cell.label = breakdowns.at(r, "label");
      cell.avg_wait =
          parse_double_field(breakdowns.at(r, "avg_wait"), "avg_wait");
      cell.count = static_cast<std::size_t>(
          parse_int_field(breakdowns.at(r, "count"), "count"));
      results.breakdowns.push_back(std::move(cell));
    }
    log_info("grid", "loaded cached main grid",
             {{"cells", results.cells.size()}, {"path", grid_path}});
    return results;
  }

  results = compute_main_grid(config);

  fs::create_directories(config.cache_dir);
  CsvTable grid(kGridHeader);
  for (const auto& cell : results.cells) grid.add_row(cell_to_row(cell));
  grid.write_file(grid_path);
  CsvTable breakdowns(kBreakdownHeader);
  for (const auto& cell : results.breakdowns) {
    breakdowns.add_row({cell.workload, cell.method, cell.dimension,
                        cell.label, num_repr(cell.avg_wait),
                        std::to_string(cell.count)});
  }
  breakdowns.write_file(breakdown_path);
  write_solver_timing(grid_cache_path(config, "main_solver_timing"),
                      results.cells);
  return results;
}

std::vector<GridCell> ensure_ssd_grid(const ExperimentConfig& config) {
  const std::string path = grid_cache_path(config, "ssd_grid");
  std::vector<GridCell> cells;
  if (fs::exists(path)) {
    const CsvTable grid = CsvTable::read_file(path);
    for (std::size_t r = 0; r < grid.num_rows(); ++r) {
      cells.push_back(row_to_cell(grid, r));
    }
    log_info("grid", "loaded cached SSD grid",
             {{"cells", cells.size()}, {"path", path}});
    return cells;
  }
  cells = compute_ssd_grid(config);
  fs::create_directories(config.cache_dir);
  CsvTable grid(kGridHeader);
  for (const auto& cell : cells) grid.add_row(cell_to_row(cell));
  grid.write_file(path);
  write_solver_timing(grid_cache_path(config, "ssd_solver_timing"), cells);
  return cells;
}

}  // namespace bbsched
