// Self-test fixture: planted raw monotonic-clock violation.  Never compiled.
#include <chrono>

double planted_raw_clock() {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
