#include "common/fault.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/env.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace bbsched {

namespace {

namespace fs = std::filesystem;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::string_view data) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc32(data));
  return buf;
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kThrow: return "throw";
    case FaultKind::kHang: return "hang";
    case FaultKind::kPartialWrite: return "partial";
    case FaultKind::kEnospc: return "enospc";
  }
  return "?";
}

InjectedFault::InjectedFault(FaultKind kind, std::string_view site,
                             std::string_view key)
    : std::runtime_error("injected fault: " +
                         std::string(fault_kind_name(kind)) + " at " +
                         std::string(site) + " (" + std::string(key) + ")"),
      kind_(kind) {}

namespace {

FaultKind parse_kind(std::string_view name, std::string_view clause) {
  if (name == "throw") return FaultKind::kThrow;
  if (name == "hang") return FaultKind::kHang;
  if (name == "partial") return FaultKind::kPartialWrite;
  if (name == "enospc") return FaultKind::kEnospc;
  throw std::invalid_argument("fault plan: unknown kind '" +
                              std::string(name) + "' in clause '" +
                              std::string(clause) + "'");
}

double default_param(FaultKind kind) {
  switch (kind) {
    case FaultKind::kHang: return 0.1;          // seconds
    case FaultKind::kPartialWrite: return 0.5;  // fraction of bytes kept
    default: return 0;
  }
}

double parse_plan_double(std::string_view text, std::string_view clause) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(std::string(text), &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: bad number '" +
                                std::string(text) + "' in clause '" +
                                std::string(clause) + "'");
  }
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view clause = spec.substr(start, end - start);
    start = end + 1;
    while (!clause.empty() && (clause.front() == ' ' || clause.front() == '\t'))
      clause.remove_prefix(1);
    while (!clause.empty() && (clause.back() == ' ' || clause.back() == '\t'))
      clause.remove_suffix(1);
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      plan.seed_ = static_cast<std::uint64_t>(
          parse_plan_double(clause.substr(5), clause));
      continue;
    }
    const std::size_t colon = clause.find(':');
    const std::size_t eq = clause.find('=', colon == std::string_view::npos
                                                 ? 0
                                                 : colon + 1);
    if (colon == std::string_view::npos || eq == std::string_view::npos ||
        colon == 0 || eq <= colon + 1) {
      throw std::invalid_argument(
          "fault plan: expected <site>:<kind>=<prob>[@<param>], got '" +
          std::string(clause) + "'");
    }
    FaultRule rule;
    rule.site = std::string(clause.substr(0, colon));
    rule.kind = parse_kind(clause.substr(colon + 1, eq - colon - 1), clause);
    std::string_view value = clause.substr(eq + 1);
    const std::size_t at = value.find('@');
    rule.param = default_param(rule.kind);
    if (at != std::string_view::npos) {
      rule.param = parse_plan_double(value.substr(at + 1), clause);
      value = value.substr(0, at);
    }
    rule.probability = parse_plan_double(value, clause);
    // The negated comparison also rejects NaN, which every ordered
    // comparison would wave through.
    if (!(rule.probability >= 0 && rule.probability <= 1)) {
      throw std::invalid_argument("fault plan: probability out of [0,1] in '" +
                                  std::string(clause) + "'");
    }
    plan.rules_.push_back(std::move(rule));
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const std::string spec = env_string("BBSCHED_FAULT_PLAN", "");
  if (spec.empty()) return FaultPlan();
  FaultPlan plan = parse(spec);  // a malformed plan should abort loudly
  log_warn("fault", "fault injection armed",
           {{"plan", spec}, {"rules", plan.rules().size()}});
  return plan;
}

FaultPlan::Decision FaultPlan::decide(std::string_view site,
                                      std::string_view key) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.site != site) continue;
    // One independent deterministic draw per (rule, site, key): pure in the
    // plan seed and the labels, so the decision is identical at any thread
    // count and on every replay.
    Rng rng(mix_seed(seed_ + i, site, key));
    if (rng.bernoulli(rule.probability)) {
      return Decision{rule.kind, rule.param};
    }
  }
  return Decision{};
}

namespace {

std::mutex g_plan_mutex;
FaultPlan g_plan;
bool g_plan_loaded = false;

}  // namespace

const FaultPlan& global_fault_plan() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  if (!g_plan_loaded) {
    g_plan = FaultPlan::from_env();
    g_plan_loaded = true;
  }
  return g_plan;
}

void set_global_fault_plan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  g_plan = std::move(plan);
  g_plan_loaded = true;
}

void fault_point(std::string_view site, std::string_view key) {
  const FaultPlan& plan = global_fault_plan();
  if (!plan.enabled()) return;
  const auto decision = plan.decide(site, key);
  switch (decision.kind) {
    case FaultKind::kNone:
      return;
    case FaultKind::kHang:
      log_warn("fault", "injected hang",
               {{"site", site}, {"key", key}, {"seconds", decision.param}});
      std::this_thread::sleep_for(
          std::chrono::duration<double>(decision.param));
      return;
    default:
      log_warn("fault", "injected fault",
               {{"site", site},
                {"key", key},
                {"kind", fault_kind_name(decision.kind)}});
      throw InjectedFault(decision.kind, site, key);
  }
}

std::size_t fault_write_bytes(std::string_view site, std::string_view key,
                              std::size_t n) {
  const FaultPlan& plan = global_fault_plan();
  if (!plan.enabled()) return n;
  const auto decision = plan.decide(site, key);
  switch (decision.kind) {
    case FaultKind::kPartialWrite: {
      const auto keep = static_cast<std::size_t>(
          static_cast<double>(n) * std::min(std::max(decision.param, 0.0), 1.0));
      log_warn("fault", "injected partial write",
               {{"site", site}, {"key", key}, {"bytes", keep}, {"of", n}});
      return keep < n ? keep : (n == 0 ? 0 : n - 1);
    }
    case FaultKind::kThrow:
    case FaultKind::kEnospc:
      log_warn("fault", "injected write failure",
               {{"site", site},
                {"key", key},
                {"kind", fault_kind_name(decision.kind)}});
      throw InjectedFault(decision.kind, site, key);
    default:
      return n;
  }
}

double retry_delay_seconds(const RetryPolicy& policy, std::string_view key,
                           int attempt) {
  double delay = policy.base_delay_s;
  for (int i = 0; i < attempt && delay < policy.max_delay_s; ++i) delay *= 2;
  delay = std::min(delay, policy.max_delay_s);
  Rng rng(mix_seed(policy.seed + static_cast<std::uint64_t>(attempt), key,
                   "retry-jitter"));
  return delay * rng.uniform(0.5, 1.5);
}

void atomic_write_file(const std::string& path, std::string_view content,
                       std::string_view fault_site,
                       std::string_view fault_key) {
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
  }
#if defined(__unix__) || defined(__APPLE__)
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#else
  const std::string tmp = path + ".tmp";
#endif
  std::size_t keep = content.size();
  if (!fault_site.empty()) {
    // May throw (enospc/throw) before anything touches the filesystem.
    keep = fault_write_bytes(fault_site,
                             fault_key.empty() ? path : fault_key,
                             content.size());
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("atomic_write_file: cannot open temp " + tmp);
  }
  const std::size_t written = std::fwrite(content.data(), 1, keep, f);
  if (std::fflush(f) != 0 || written != keep) {
    std::fclose(f);
    throw std::runtime_error("atomic_write_file: short write to " + tmp);
  }
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(::fileno(f));
#endif
  std::fclose(f);
  if (keep < content.size()) {
    // Injected torn write: the simulated crash happened mid-temp-write.  The
    // destination is untouched and the truncated temp file is left behind,
    // exactly as a real crash would leave it.
    throw InjectedFault(FaultKind::kPartialWrite, fault_site,
                        fault_key.empty() ? path : fault_key);
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    throw std::runtime_error("atomic_write_file: rename " + tmp + " -> " +
                             path + " failed: " + ec.message());
  }
}

std::string quarantine_file(const std::string& path, std::string_view reason) {
  const fs::path source(path);
  const fs::path dir = source.has_parent_path() ? source.parent_path()
                                                : fs::path(".");
  const fs::path qdir = dir / "quarantine";
  std::error_code ec;
  fs::create_directories(qdir, ec);
  fs::path dest = qdir / source.filename();
  // Keep earlier quarantined generations: suffix .1, .2, ... when taken.
  for (int n = 1; fs::exists(dest, ec) && n < 1000; ++n) {
    dest = qdir / (source.filename().string() + "." + std::to_string(n));
  }
  fs::rename(source, dest, ec);
  if (ec) {
    log_error("fault", "quarantine failed",
              {{"path", path}, {"reason", reason}, {"error", ec.message()}});
    return "";
  }
  log_error("fault", "file quarantined",
            {{"path", path},
             {"quarantine", dest.string()},
             {"reason", reason}});
  return dest.string();
}

AbandonedThreadReaper& AbandonedThreadReaper::instance() {
  static AbandonedThreadReaper reaper;
  return reaper;
}

AbandonedThreadReaper::~AbandonedThreadReaper() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.thread.joinable()) entry.thread.join();
  }
  entries_.clear();
}

void AbandonedThreadReaper::park(std::thread t,
                                 std::shared_ptr<std::atomic<bool>> done) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(Entry{std::move(t), std::move(done)});
}

std::size_t AbandonedThreadReaper::reap() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> still_running;
  for (Entry& entry : entries_) {
    if (entry.done != nullptr && entry.done->load(std::memory_order_acquire)) {
      if (entry.thread.joinable()) entry.thread.join();
    } else {
      still_running.push_back(std::move(entry));
    }
  }
  entries_ = std::move(still_running);
  return entries_.size();
}

std::size_t AbandonedThreadReaper::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace bbsched
