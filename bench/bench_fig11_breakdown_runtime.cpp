// bench_fig11_breakdown_runtime — reproduce Figure 11: average job wait time
// on Theta-S4 broken down by job runtime.
//
// Expected shape: waits grow with runtime (WFP prioritizes short jobs and
// EASY backfills them); the optimization methods reduce waits of long jobs
// but can *increase* waits of short jobs, because higher resource usage
// leaves fewer backfill holes.
#include "bench_util.hpp"
#include "policies/factory.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig11_breakdown_runtime");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const auto config = ExperimentConfig::from_env();
  const auto results = ensure_main_grid(config);
  benchutil::record_grid_cells(cli.bench(), "main_grid", results.cells);
  benchutil::print_breakdown(
      results, standard_method_names(), "runtime",
      "Figure 11: Theta-S4 average wait time (hours) by job runtime");
  return cli.exit_code();
}
