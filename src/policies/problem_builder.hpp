// problem_builder.hpp — turn one scheduling-window snapshot into the MOO
// problem the optimizing policies solve.
//
// Non-SSD machines yield the two-objective §3.2.1 formulation (node and
// burst-buffer utilization); machines with SSD tiers yield the §5
// four-objective formulation.  Starvation-pinned window positions are pinned
// in the problem so every solver keeps them selected.
#pragma once

#include <memory>

#include "core/problem.hpp"
#include "sim/selection_policy.hpp"

namespace bbsched {

/// Build the window problem for `context`.  The returned problem's decision
/// variables index window positions.
std::unique_ptr<MooProblem> build_window_problem(const WindowContext& context);

/// Build the window problem against the machine's *projected* free capacity
/// over the future window [t, t + duration) instead of the instantaneous
/// snapshot in `context.free` — the planner-based lookahead entry point
/// (requires MachineState::enable_planner).  Window jobs and pins come from
/// `context` unchanged.
std::unique_ptr<MooProblem> build_window_problem_during(
    const WindowContext& context, const MachineState& machine, Time t,
    Time duration);

/// Translate a feasible gene vector into a WindowDecision: selected
/// positions plus — on SSD machines — committed node-tier allocations.
WindowDecision decision_from_genes(const WindowContext& context,
                                   const MooProblem& problem,
                                   const Genes& genes);

}  // namespace bbsched
