#include "sim/easy_backfill.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

MachineConfig machine(NodeCount nodes = 100, GigaBytes bb = tb(100)) {
  MachineConfig m;
  m.name = "test";
  m.nodes = nodes;
  m.burst_buffer_gb = bb;
  return m;
}

JobRecord job(JobId id, NodeCount nodes, Time walltime, GigaBytes bb = 0) {
  JobRecord j;
  j.id = id;
  j.nodes = nodes;
  j.runtime = walltime;
  j.walltime = walltime;
  j.bb_gb = bb;
  return j;
}

Allocation alloc_of(NodeCount nodes, GigaBytes bb = 0) {
  Allocation a;
  a.small_nodes = nodes;
  a.bb_gb = bb;
  return a;
}

TEST(EasyBackfill, ShortJobBackfillsBeforeShadow) {
  MachineState state(machine());
  state.allocate(1, alloc_of(90));  // running until t=100
  const JobRecord head = job(2, 50, 1000);      // needs 50, fits at t=100
  const JobRecord filler = job(3, 10, 50);      // finishes before shadow
  const std::vector<RunningJobInfo> running{{1, 100, alloc_of(90)}};
  const std::vector<BackfillCandidate> candidates{{&filler, 0}};
  const auto result =
      plan_easy_backfill(state, &head, running, candidates, 0);
  EXPECT_DOUBLE_EQ(result.shadow_time, 100);
  ASSERT_EQ(result.started.size(), 1u);
  EXPECT_EQ(result.started[0].key, 0u);
}

TEST(EasyBackfill, LongJobThatWouldDelayHeadIsRejected) {
  MachineState state(machine());
  state.allocate(1, alloc_of(90));
  const JobRecord head = job(2, 50, 1000);
  const JobRecord long_filler = job(3, 10, 500);  // runs past shadow t=100
  const std::vector<RunningJobInfo> running{{1, 100, alloc_of(90)}};
  const std::vector<BackfillCandidate> candidates{{&long_filler, 0}};
  const auto result =
      plan_easy_backfill(state, &head, running, candidates, 0);
  // At shadow (t=100) the machine has 100 free, head takes 50, extra = 50;
  // a 10-node long filler fits the extra, so it actually starts.
  ASSERT_EQ(result.started.size(), 1u);
}

TEST(EasyBackfill, LongJobExceedingExtraIsRejected) {
  MachineState state(machine());
  state.allocate(1, alloc_of(90));
  const JobRecord head = job(2, 95, 1000);        // extra at shadow = 5
  const JobRecord long_filler = job(3, 10, 500);  // needs 10 > extra 5
  const std::vector<RunningJobInfo> running{{1, 100, alloc_of(90)}};
  const std::vector<BackfillCandidate> candidates{{&long_filler, 0}};
  const auto result =
      plan_easy_backfill(state, &head, running, candidates, 0);
  EXPECT_TRUE(result.started.empty());
}

TEST(EasyBackfill, Table1NaiveScenario) {
  // Naive on Table 1: J1 (80 nodes, 20 TB) runs; J2 (10 nodes, 85 TB) is the
  // blocked head; J4 (10 nodes, no BB) backfills into the 20 spare nodes.
  MachineState state(machine(100, tb(100)));
  state.allocate(1, alloc_of(80, tb(20)));
  const JobRecord head = job(2, 10, 3600, tb(85));
  const JobRecord j3 = job(3, 40, 3600, tb(5));
  const JobRecord j4 = job(4, 10, 3600, 0);
  const JobRecord j5 = job(5, 20, 3600, 0);
  const std::vector<RunningJobInfo> running{
      {1, 3600, alloc_of(80, tb(20))}};
  const std::vector<BackfillCandidate> candidates{
      {&j3, 3}, {&j4, 4}, {&j5, 5}};
  const auto result =
      plan_easy_backfill(state, &head, running, candidates, 0);
  // Shadow = 3600 (J2 fits once J1's BB releases).  Extra: 100-80-10=10
  // nodes, 100-85=15 TB.  J3 needs 40 nodes (no fit now: only 20 free).
  // J4 fits now (10 <= 20 nodes) and fits extra.  J5 would need 10 nodes of
  // extra after J4 consumed it — rejected.
  ASSERT_EQ(result.started.size(), 1u);
  EXPECT_EQ(result.started[0].key, 4u);
}

TEST(EasyBackfill, NoHeadMeansEveryFittingCandidateStarts) {
  MachineState state(machine());
  const JobRecord a = job(1, 60, 100);
  const JobRecord b = job(2, 60, 100);  // no longer fits after a
  const JobRecord c = job(3, 30, 100);
  const std::vector<BackfillCandidate> candidates{{&a, 0}, {&b, 1}, {&c, 2}};
  const auto result = plan_easy_backfill(state, nullptr, {}, candidates, 0);
  ASSERT_EQ(result.started.size(), 2u);
  EXPECT_EQ(result.started[0].key, 0u);
  EXPECT_EQ(result.started[1].key, 2u);
}

TEST(EasyBackfill, HeadFittingNowReservesImmediately) {
  // The window policy skipped a head that fits; backfill must not consume
  // the head's share.
  MachineState state(machine());
  const JobRecord head = job(1, 80, 100);
  const JobRecord greedy = job(2, 40, 100);
  const std::vector<BackfillCandidate> candidates{{&greedy, 0}};
  const auto result = plan_easy_backfill(state, &head, {}, candidates, 0);
  EXPECT_DOUBLE_EQ(result.shadow_time, 0);
  EXPECT_TRUE(result.started.empty())
      << "40 > 20 extra nodes and cannot finish before the shadow";
}

TEST(EasyBackfill, BurstBufferDimensionRespected) {
  MachineState state(machine(100, tb(10)));
  state.allocate(1, alloc_of(10, tb(8)));  // ends t=100
  const JobRecord head = job(2, 10, 1000, tb(5));
  const JobRecord filler = job(3, 10, 500, tb(3));
  const std::vector<RunningJobInfo> running{{1, 100, alloc_of(10, tb(8))}};
  const std::vector<BackfillCandidate> candidates{{&filler, 0}};
  const auto result =
      plan_easy_backfill(state, &head, running, candidates, 0);
  // Shadow t=100; extra BB = 10-5 = 5 TB, extra nodes = 100-10=90.  The
  // filler runs past shadow but fits extra (3 <= 5 TB), so it starts; it
  // must not, however, violate *current* free BB (2 TB free now).
  EXPECT_TRUE(result.started.empty())
      << "filler needs 3 TB now but only 2 TB is free";
}

TEST(EasyBackfill, UnservableHeadMeansNoReservation) {
  MachineState state(machine(100, tb(10)));
  const JobRecord head = job(1, 200, 100);  // larger than the machine
  const JobRecord filler = job(2, 50, 100);
  const std::vector<BackfillCandidate> candidates{{&filler, 0}};
  const auto result = plan_easy_backfill(state, &head, {}, candidates, 0);
  EXPECT_EQ(result.shadow_time, kNeverFits);
  ASSERT_EQ(result.started.size(), 1u);
}

TEST(EasyBackfill, SsdTierFeasibilityInShadowComputation) {
  MachineConfig config = machine(100, tb(10));
  config.small_ssd_nodes = 60;
  config.large_ssd_nodes = 40;
  MachineState state(config);
  Allocation big;
  big.large_nodes = 40;  // all large nodes busy until t=100
  state.allocate(1, big);
  JobRecord head = job(2, 10, 1000);
  head.ssd_per_node_gb = 200;  // large-tier only
  const JobRecord filler = job(3, 10, 50);  // small tier, ends before shadow
  const std::vector<RunningJobInfo> running{{1, 100, big}};
  const std::vector<BackfillCandidate> candidates{{&filler, 0}};
  const auto result =
      plan_easy_backfill(state, &head, running, candidates, 0);
  EXPECT_DOUBLE_EQ(result.shadow_time, 100)
      << "head must wait for large-tier nodes despite 60 small free";
  ASSERT_EQ(result.started.size(), 1u);
}

// Saturating-walltime boundary: when the shadow time itself is kNeverFits
// (the head only fits after a job that never releases), a candidate whose
// own completion bound saturates to +inf must NOT count as "finishing before
// the shadow" — inf <= inf is true, but such a job holds its nodes forever
// and would eat the surplus the head depends on.
TEST(EasyBackfill, InfiniteWalltimeCannotSlipPastInfiniteShadow) {
  MachineState state(machine());
  MachineState planner_state(machine());
  planner_state.enable_planner();
  // A job that never releases: 90 nodes held with expected_end = kNeverFits.
  state.allocate(1, alloc_of(90));
  planner_state.allocate_timed(1, alloc_of(90), 0, kNeverFits);
  const std::vector<RunningJobInfo> running{{1, kNeverFits, alloc_of(90)}};
  // Head needs 95 nodes: fits only once the eternal job releases (never), so
  // shadow = kNeverFits with a live reservation and extra = 100 - 95 = 5.
  const JobRecord head = job(2, 95, 1000);
  // The filler fits current free capacity (10 nodes) and its end bound
  // saturates: 0 + inf = inf == shadow.  It exceeds extra (10 > 5), so it
  // must be rejected; before the saturation fix it started.
  const JobRecord filler = job(3, 10, kNeverFits);
  const std::vector<BackfillCandidate> candidates{{&filler, 0}};
  const auto legacy =
      plan_easy_backfill(state, &head, running, candidates, 0);
  EXPECT_EQ(legacy.shadow_time, kNeverFits);
  EXPECT_TRUE(legacy.started.empty())
      << "an eternal filler consumed the head's reservation surplus";
  const auto planner =
      plan_easy_backfill(planner_state, &head, candidates, 0);
  EXPECT_EQ(planner.shadow_time, legacy.shadow_time);
  EXPECT_EQ(planner.started.size(), legacy.started.size());
}

TEST(EasyBackfill, InfiniteWalltimeWithinExtraStillStarts) {
  MachineState state(machine());
  MachineState planner_state(machine());
  planner_state.enable_planner();
  state.allocate(1, alloc_of(90));
  planner_state.allocate_timed(1, alloc_of(90), 0, kNeverFits);
  const std::vector<RunningJobInfo> running{{1, kNeverFits, alloc_of(90)}};
  const JobRecord head = job(2, 95, 1000);  // extra at shadow: 5 nodes
  // An eternal filler that fits inside the surplus may start: it can run
  // forever without delaying the (already unreachable) reservation.
  const JobRecord filler = job(3, 5, kNeverFits);
  const std::vector<BackfillCandidate> candidates{{&filler, 0}};
  const auto legacy =
      plan_easy_backfill(state, &head, running, candidates, 0);
  ASSERT_EQ(legacy.started.size(), 1u);
  EXPECT_EQ(legacy.started[0].key, 0u);
  const auto planner =
      plan_easy_backfill(planner_state, &head, candidates, 0);
  EXPECT_EQ(planner.shadow_time, legacy.shadow_time);
  ASSERT_EQ(planner.started.size(), 1u);
  EXPECT_EQ(planner.started[0].key, 0u);
}

TEST(EasyBackfill, WalltimeSumSaturatesInsteadOfOverflowing) {
  // now + walltime saturates to +inf in double arithmetic; the candidate
  // must then be treated exactly like an infinite-walltime job.
  MachineState state(machine());
  state.allocate(1, alloc_of(90));
  const std::vector<RunningJobInfo> running{{1, kNeverFits, alloc_of(90)}};
  const JobRecord head = job(2, 95, 1000);
  const JobRecord filler = job(3, 10, 1.5e308);  // finite, but now + walltime
  const std::vector<BackfillCandidate> candidates{{&filler, 0}};
  const Time now = 1.5e308;                      // ...overflows to +inf
  const auto result =
      plan_easy_backfill(state, &head, running, candidates, now);
  EXPECT_TRUE(result.started.empty())
      << "saturated end bound slipped past the infinite shadow";
}

TEST(EasyBackfill, MultipleBackfillsShrinkExtra) {
  MachineState state(machine());
  state.allocate(1, alloc_of(70));  // ends t=100
  const JobRecord head = job(2, 80, 1000);  // extra at shadow: 20
  const JobRecord f1 = job(3, 15, 500);
  const JobRecord f2 = job(4, 15, 500);
  const std::vector<RunningJobInfo> running{{1, 100, alloc_of(70)}};
  const std::vector<BackfillCandidate> candidates{{&f1, 0}, {&f2, 1}};
  const auto result =
      plan_easy_backfill(state, &head, running, candidates, 0);
  ASSERT_EQ(result.started.size(), 1u)
      << "second long filler exceeds the remaining extra (20-15=5)";
  EXPECT_EQ(result.started[0].key, 0u);
}

}  // namespace
}  // namespace bbsched
