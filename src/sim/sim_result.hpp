// sim_result.hpp — what one simulation run produces.
//
// Outcomes carry everything the §4.2 metrics need: per-job timing for wait
// time and slowdown, per-job demands and allocation splits for node / burst
// buffer / SSD usage integrals, and decision statistics for the scheduling
// overhead discussion of §4.4.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "workload/workload.hpp"

namespace bbsched {

/// Final record of one completed job.
struct JobOutcome {
  JobId id = 0;
  Time submit = 0;
  Time start = 0;
  Time end = 0;           ///< actual completion (start + runtime)
  Time runtime = 0;
  Time walltime = 0;
  NodeCount nodes = 0;
  GigaBytes bb_gb = 0;
  GigaBytes ssd_per_node_gb = 0;
  NodeCount small_tier_nodes = 0;  ///< allocation split (§5 machines)
  NodeCount large_tier_nodes = 0;
  bool backfilled = false;  ///< started by EASY rather than window selection

  Time wait() const { return start - submit; }
  /// Response time over runtime; the §4.2 responsiveness metric.
  double slowdown() const {
    return runtime > 0 ? (wait() + runtime) / runtime : 1.0;
  }
};

/// Aggregate statistics over all scheduling decisions of a run.
struct DecisionStats {
  std::size_t cycles = 0;              ///< scheduling invocations
  std::size_t window_jobs = 0;         ///< total window slots examined
  std::size_t policy_starts = 0;       ///< jobs started by window selection
  std::size_t backfill_starts = 0;     ///< jobs started by EASY
  std::size_t forced_starts = 0;       ///< starvation-bound force-inclusions
  std::size_t evaluations = 0;         ///< optimizer chromosome evaluations
  double pareto_size_sum = 0;          ///< for mean Pareto-set size
  double solve_seconds_total = 0;      ///< wall-clock in the window policy
  double solve_seconds_max = 0;

  double mean_solve_seconds() const {
    return cycles ? solve_seconds_total / static_cast<double>(cycles) : 0.0;
  }
  double mean_pareto_size() const {
    return cycles ? pareto_size_sum / static_cast<double>(cycles) : 0.0;
  }
};

/// Result of one (workload, policy) simulation.
struct SimResult {
  std::string workload_name;
  std::string policy_name;
  std::string base_scheduler_name;
  MachineConfig machine;
  std::vector<JobOutcome> outcomes;  ///< one per job, trace order
  Time makespan = 0;                 ///< last completion time
  /// Measurement interval after warm-up/cool-down trimming (§4.2); metrics
  /// only count jobs submitted inside it and usage integrated over it.
  Time measure_begin = 0;
  Time measure_end = 0;
  DecisionStats decisions;
};

}  // namespace bbsched
