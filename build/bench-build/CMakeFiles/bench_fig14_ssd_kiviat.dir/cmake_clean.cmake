file(REMOVE_RECURSE
  "../bench/bench_fig14_ssd_kiviat"
  "../bench/bench_fig14_ssd_kiviat.pdb"
  "CMakeFiles/bench_fig14_ssd_kiviat.dir/bench_fig14_ssd_kiviat.cpp.o"
  "CMakeFiles/bench_fig14_ssd_kiviat.dir/bench_fig14_ssd_kiviat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ssd_kiviat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
