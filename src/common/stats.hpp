// stats.hpp — small numeric helpers shared by metrics and the solver.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bbsched {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev(std::span<const double> values);

/// p-quantile in [0,1] with linear interpolation; 0 for an empty span.
/// The input does not need to be sorted.
double quantile(std::span<const double> values, double p);

/// Streaming accumulator for count/mean/min/max/sum without storing samples.
class RunningStats {
 public:
  void add(double v);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Fixed-edge histogram: bin i covers [edges[i], edges[i+1]); the final bin
/// additionally absorbs values == edges.back().  Values outside the range are
/// counted in underflow/overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void add(double value, double weight = 1.0);

  std::size_t num_bins() const { return counts_.size(); }
  double bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const { return edges_.at(i); }
  double bin_hi(std::size_t i) const { return edges_.at(i + 1); }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  double total_weight() const;

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double underflow_ = 0;
  double overflow_ = 0;
};

}  // namespace bbsched
