// Self-test fixture: planted non-atomic cache write.  Never compiled.
#include <fstream>
#include <string>

void planted_ofstream_cache(const std::string& cache_dir) {
  std::ofstream out(cache_dir + "/grid.csv");
  out << "torn on crash\n";
}
