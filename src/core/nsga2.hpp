// nsga2.hpp — an NSGA-II style solver as an alternative to the paper's
// Pareto/age selection (§3.2.2).
//
// The paper cites Deb's evolutionary multi-objective line of work [13] but
// adopts a simpler survivor rule: Pareto members first, then "newer"
// chromosomes.  NSGA-II replaces that with the canonical two-level ranking —
// non-dominated sorting into fronts, then crowding distance within a front —
// which preserves spread along the front instead of favouring recency.
// bench_ablation_solver compares both under the same evaluation budget; the
// library default remains the paper's rule.
//
// Implementation notes: fronts are computed with the standard counting
// algorithm (O(n^2 d)); crowding distance uses the boundary-infinite
// convention; parent selection is binary tournament on (rank, crowding),
// which is the piece of NSGA-II that the paper's uniform parent pick lacks.
#pragma once

#include <vector>

#include "core/ga.hpp"
#include "core/ga_ops.hpp"
#include "core/pareto.hpp"
#include "core/problem.hpp"

namespace bbsched {

/// Non-dominated sorting: fronts[0] is the Pareto front of `points`,
/// fronts[1] the front once fronts[0] is removed, and so on.  Returns
/// indices into `points`.
std::vector<std::vector<std::size_t>> non_dominated_sort(const Front& points);

/// Crowding distance of each member of one front (objective vectors).
/// Boundary points get +infinity; all equal when the front has <= 2 points.
std::vector<double> crowding_distances(const Front& front);

/// NSGA-II solver over the same MooProblem/GaParams machinery as
/// MooGaSolver; `pareto_set` of the result is the first front of the final
/// population, deduplicated by genes.
class Nsga2Solver {
 public:
  explicit Nsga2Solver(GaParams params);

  MooResult solve(const MooProblem& problem) const;
  MooResult solve(const MooProblem& problem, Rng& rng) const;

  const GaParams& params() const { return params_; }

 private:
  GaParams params_;
};

}  // namespace bbsched
