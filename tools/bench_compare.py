#!/usr/bin/env python3
"""Compare two trees of BENCH_*.json files and gate on regressions.

Usage:
    bench_compare.py BASELINE CURRENT [--threshold 0.25] [--abs-floor SECONDS]
    bench_compare.py --self-test

BASELINE and CURRENT are directories holding BENCH_<name>.json files (the
bbsched-bench-v1 schema written by the bench binaries via --bench-out /
BBSCHED_BENCH_DIR), or single .json files.  Series are matched by
(bench name, series name, params) and compared on their medians.

Gating follows each series' declared direction:
  "lower"  — regression when the current median rises more than --threshold
             relative to baseline (and by more than --abs-floor absolutely);
  "higher" — regression when it drops by the same margins;
  "info"   — reported, never gated (raw wall-clock times are machine-local
             and belong here).

Exit status: 0 when no gated series regressed, 1 otherwise.  A gated series
present in the baseline but missing from the current tree also fails — a
silently dropped gate would hide exactly the regressions it was meant to
catch.  Series new in the current tree are reported and pass.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile

SCHEMA = "bbsched-bench-v1"

PASS = "pass"
REGRESS = "REGRESS"
IMPROVE = "improve"
INFO = "info"
NEW = "new"
MISSING = "MISSING"

# Statuses that fail the comparison.
FAILING = {REGRESS, MISSING}


class BenchFormatError(RuntimeError):
    """A bench JSON file does not follow the bbsched-bench-v1 schema."""


def load_report(path):
    """Parse one bench JSON file into {(series, params): series-dict}."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema") != SCHEMA:
        raise BenchFormatError(
            f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise BenchFormatError(f"{path}: missing bench name")
    series = {}
    for entry in doc.get("series", []):
        params = tuple(
            (str(k), str(v)) for k, v in sorted(entry.get("params", {}).items()))
        key = (str(entry["name"]), params)
        series[key] = entry
    return name, series


def load_tree(root):
    """Load every BENCH_*.json under `root` (a dir or one file)."""
    paths = []
    if os.path.isfile(root):
        paths = [root]
    elif os.path.isdir(root):
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in sorted(filenames):
                if filename.startswith("BENCH_") and filename.endswith(".json"):
                    paths.append(os.path.join(dirpath, filename))
    else:
        raise BenchFormatError(f"{root}: not a file or directory")
    tree = {}
    for path in sorted(paths):
        name, series = load_report(path)
        tree.setdefault(name, {}).update(series)
    return tree


def fmt_value(value):
    if value is None or (isinstance(value, float) and not math.isfinite(value)):
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.001:
        return f"{value:.3e}"
    return f"{value:.6g}"


def classify(direction, base, cur, threshold, abs_floor):
    """Status of one matched series given its gating direction."""
    if direction not in ("lower", "higher"):
        return INFO
    if base is None or cur is None:
        return INFO
    delta = cur - base
    if direction == "higher":
        delta = -delta  # normalize: positive delta = worse
    rel = delta / abs(base) if base else (math.inf if delta > 0 else 0.0)
    if delta > abs_floor and rel > threshold:
        return REGRESS
    if delta < -abs_floor and rel < -threshold:
        return IMPROVE
    return PASS


def compare(baseline_root, current_root, threshold, abs_floor, out=sys.stdout):
    """Compare the two trees; return the list of result rows."""
    baseline = load_tree(baseline_root)
    current = load_tree(current_root)
    rows = []
    for bench in sorted(set(baseline) | set(current)):
        base_series = baseline.get(bench, {})
        cur_series = current.get(bench, {})
        for key in sorted(set(base_series) | set(cur_series)):
            series_name, params = key
            base = base_series.get(key)
            cur = cur_series.get(key)
            direction = (base or cur).get("direction", "info")
            base_median = base.get("median") if base else None
            cur_median = cur.get("median") if cur else None
            if base is None:
                status = NEW
            elif cur is None:
                # Dropping a gated series silently would hide regressions.
                status = MISSING if direction in ("lower", "higher") else INFO
            else:
                status = classify(direction, base_median, cur_median,
                                  threshold, abs_floor)
            rows.append({
                "bench": bench,
                "series": series_name,
                "params": ",".join(f"{k}={v}" for k, v in params),
                "direction": direction,
                "base": base_median,
                "current": cur_median,
                "status": status,
            })
    print_table(rows, out)
    return rows


def print_table(rows, out):
    header = ["bench", "series", "params", "dir", "baseline", "current",
              "delta%", "status"]
    table = [header]
    for row in rows:
        delta = "-"
        if row["base"] and row["current"] is not None:
            delta = f"{100.0 * (row['current'] - row['base']) / abs(row['base']):+.1f}"
        table.append([
            row["bench"], row["series"], row["params"], row["direction"],
            fmt_value(row["base"]), fmt_value(row["current"]), delta,
            row["status"],
        ])
    widths = [max(len(line[i]) for line in table) for i in range(len(header))]
    for line in table:
        out.write("  ".join(cell.ljust(width)
                            for cell, width in zip(line, widths)).rstrip())
        out.write("\n")
    failing = [row for row in rows if row["status"] in FAILING]
    regressed = sum(1 for row in rows if row["status"] == REGRESS)
    improved = sum(1 for row in rows if row["status"] == IMPROVE)
    out.write(f"\n{len(rows)} series compared: {regressed} regressed, "
              f"{improved} improved, {len(failing)} failing\n")


def write_fixture(path, name, series):
    """Write one schema-valid bench JSON for the self-test."""
    doc = {
        "schema": SCHEMA,
        "name": name,
        "provenance": {"git_sha": "selftest", "compiler": "none"},
        "params": {},
        "series": [
            {
                "name": series_name,
                "params": params,
                "unit": "s",
                "direction": direction,
                "repeats": 1,
                "median": value,
                "p10": value,
                "p90": value,
                "mean": value,
                "min": value,
                "max": value,
            }
            for (series_name, params, direction, value) in series
        ],
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)


def run_compare(base_dir, cur_dir, threshold=0.25, abs_floor=0.0):
    """compare() wrapped to an exit code, output captured for the self-test."""
    import io

    sink = io.StringIO()
    rows = compare(base_dir, cur_dir, threshold, abs_floor, out=sink)
    failed = any(row["status"] in FAILING for row in rows)
    return (1 if failed else 0), rows, sink.getvalue()


def self_test():
    """Planted fixtures: identical trees pass, a 2x slowdown on a gated
    series fails, the same slowdown on an info series passes, and a dropped
    gated series fails."""
    failures = []

    def check(label, ok):
        if not ok:
            failures.append(label)

    with tempfile.TemporaryDirectory(prefix="bench_compare_selftest_") as tmp:
        base = os.path.join(tmp, "base")
        fixture = [
            ("solve_s", {"window": "20"}, "lower", 0.5),
            ("hypervolume", {}, "higher", 0.9),
            ("wall_s", {}, "info", 3.0),
        ]
        write_fixture(os.path.join(base, "BENCH_demo.json"), "demo", fixture)

        same = os.path.join(tmp, "same")
        write_fixture(os.path.join(same, "BENCH_demo.json"), "demo", fixture)
        code, _, _ = run_compare(base, same)
        check("identical trees must pass", code == 0)

        slow = os.path.join(tmp, "slow")
        write_fixture(os.path.join(slow, "BENCH_demo.json"), "demo", [
            ("solve_s", {"window": "20"}, "lower", 1.0),  # 2x slowdown
            ("hypervolume", {}, "higher", 0.9),
            ("wall_s", {}, "info", 3.0),
        ])
        code, rows, _ = run_compare(base, slow)
        check("2x slowdown on a gated series must fail", code == 1)
        check("the slow series is the one flagged",
              any(row["series"] == "solve_s" and row["status"] == REGRESS
                  for row in rows))

        info_slow = os.path.join(tmp, "info_slow")
        write_fixture(os.path.join(info_slow, "BENCH_demo.json"), "demo", [
            ("solve_s", {"window": "20"}, "lower", 0.5),
            ("hypervolume", {}, "higher", 0.9),
            ("wall_s", {}, "info", 30.0),  # 10x, but info is never gated
        ])
        code, _, _ = run_compare(base, info_slow)
        check("info series never gate", code == 0)

        worse_hv = os.path.join(tmp, "worse_hv")
        write_fixture(os.path.join(worse_hv, "BENCH_demo.json"), "demo", [
            ("solve_s", {"window": "20"}, "lower", 0.5),
            ("hypervolume", {}, "higher", 0.4),  # >25% drop on higher-better
            ("wall_s", {}, "info", 3.0),
        ])
        code, _, _ = run_compare(base, worse_hv)
        check("drop on a higher-is-better series must fail", code == 1)

        improved = os.path.join(tmp, "improved")
        write_fixture(os.path.join(improved, "BENCH_demo.json"), "demo", [
            ("solve_s", {"window": "20"}, "lower", 0.2),
            ("hypervolume", {}, "higher", 0.95),
            ("wall_s", {}, "info", 3.0),
        ])
        code, rows, _ = run_compare(base, improved)
        check("improvements must pass", code == 0)
        check("improvement is reported",
              any(row["status"] == IMPROVE for row in rows))

        dropped = os.path.join(tmp, "dropped")
        write_fixture(os.path.join(dropped, "BENCH_demo.json"), "demo", [
            ("hypervolume", {}, "higher", 0.9),
            ("wall_s", {}, "info", 3.0),
        ])
        code, _, _ = run_compare(base, dropped)
        check("dropping a gated series must fail", code == 1)

        noise = os.path.join(tmp, "noise")
        write_fixture(os.path.join(noise, "BENCH_demo.json"), "demo", [
            ("solve_s", {"window": "20"}, "lower", 0.55),  # +10% < threshold
            ("hypervolume", {}, "higher", 0.9),
            ("wall_s", {}, "info", 3.0),
        ])
        code, _, _ = run_compare(base, noise)
        check("within-threshold drift must pass", code == 0)

        floor = os.path.join(tmp, "floor")
        write_fixture(os.path.join(floor, "BENCH_demo.json"), "demo", [
            ("solve_s", {"window": "20"}, "lower", 1.0),
            ("hypervolume", {}, "higher", 0.9),
            ("wall_s", {}, "info", 3.0),
        ])
        code, _, _ = run_compare(base, floor, abs_floor=10.0)
        check("deltas under --abs-floor must pass", code == 0)

    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}", file=sys.stderr)
        return 1
    print("bench_compare self-test passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline dir or .json")
    parser.add_argument("current", nargs="?", help="current dir or .json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative change that counts as a regression "
                             "(default 0.25)")
    parser.add_argument("--abs-floor", type=float, default=0.0,
                        help="ignore absolute deltas at or below this value")
    parser.add_argument("--self-test", action="store_true",
                        help="run the planted-fixture self-test and exit")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("baseline and current are required (or --self-test)")
    try:
        rows = compare(args.baseline, args.current, args.threshold,
                       args.abs_floor)
    except (BenchFormatError, json.JSONDecodeError, OSError) as error:
        print(f"bench_compare: {error}", file=sys.stderr)
        return 2
    return 1 if any(row["status"] in FAILING for row in rows) else 0


if __name__ == "__main__":
    sys.exit(main())
