#include "core/adaptive_decision.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbsched {

AdaptiveTradeoffRule::AdaptiveTradeoffRule(Params params)
    : params_(params), factor_(params.initial_factor) {
  if (params_.min_factor <= 0 || params_.max_factor < params_.min_factor) {
    throw std::invalid_argument("adaptive rule: bad factor bounds");
  }
  if (params_.ewma_alpha <= 0 || params_.ewma_alpha > 1) {
    throw std::invalid_argument("adaptive rule: alpha must be in (0, 1]");
  }
  if (params_.adjust_step <= 1.0) {
    throw std::invalid_argument("adaptive rule: adjust_step must be > 1");
  }
}

std::size_t AdaptiveTradeoffRule::choose(
    std::span<const Chromosome> pareto_set) const {
  // Decide with the current factor (same structure as the static rule).
  const NodeFirstTradeoffRule rule(factor_);
  const std::size_t choice = rule.choose(pareto_set);

  // Update the controller from the committed solution.
  const double node = pareto_set[choice].objectives.at(0);
  const double bb = pareto_set[choice].objectives.at(1);
  if (!primed_) {
    ewma_node_ = node;
    ewma_bb_ = bb;
    primed_ = true;
  } else {
    ewma_node_ += params_.ewma_alpha * (node - ewma_node_);
    ewma_bb_ += params_.ewma_alpha * (bb - ewma_bb_);
  }
  const double gap = ewma_node_ - ewma_bb_;
  if (gap > params_.gap_deadband) {
    // BB utilization lags: make BB-favouring trades easier.
    factor_ = std::max(params_.min_factor, factor_ / params_.adjust_step);
  } else if (gap < -params_.gap_deadband) {
    factor_ = std::min(params_.max_factor, factor_ * params_.adjust_step);
  }
  return choice;
}

}  // namespace bbsched
