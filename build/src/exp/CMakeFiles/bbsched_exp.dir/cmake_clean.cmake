file(REMOVE_RECURSE
  "CMakeFiles/bbsched_exp.dir/experiment.cpp.o"
  "CMakeFiles/bbsched_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/bbsched_exp.dir/grid.cpp.o"
  "CMakeFiles/bbsched_exp.dir/grid.cpp.o.d"
  "libbbsched_exp.a"
  "libbbsched_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
