#include "core/nsga2.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/profiler.hpp"
#include "common/stopwatch.hpp"
#include "core/solver_telemetry.hpp"

namespace bbsched {

std::vector<std::vector<std::size_t>> non_dominated_sort(
    const Front& points) {
  const std::size_t n = points.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);  // i dominates these
  std::vector<std::size_t> domination_count(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates(points[i], points[j])) {
        dominated_by[i].push_back(j);
      } else if (dominates(points[j], points[i])) {
        ++domination_count[i];
      }
    }
  }
  std::vector<std::vector<std::size_t>> fronts;
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (domination_count[i] == 0) current.push_back(i);
  }
  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
  }
  return fronts;
}

std::vector<double> crowding_distances(const Front& front) {
  const std::size_t n = front.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> distance(n, 0.0);
  if (n <= 2) {
    std::fill(distance.begin(), distance.end(), kInf);
    return distance;
  }
  const std::size_t objectives = front.front().size();
  std::vector<std::size_t> order(n);
  for (std::size_t k = 0; k < objectives; ++k) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return front[a][k] < front[b][k];
    });
    distance[order.front()] = kInf;
    distance[order.back()] = kInf;
    const double range = front[order.back()][k] - front[order.front()][k];
    if (range <= 0) continue;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      distance[order[i]] +=
          (front[order[i + 1]][k] - front[order[i - 1]][k]) / range;
    }
  }
  return distance;
}

Nsga2Solver::Nsga2Solver(GaParams params) : params_(params) {
  params_.validate();
}

MooResult Nsga2Solver::solve(const MooProblem& problem) const {
  Rng rng(params_.seed);
  return solve(problem, rng);
}

MooResult Nsga2Solver::solve(const MooProblem& problem, Rng& rng) const {
  MooResult result;
  PROF_PHASE("nsga2.solve");
  TraceSpan solve_span("nsga2.solve", "solver",
                       {{"vars", problem.num_vars()},
                        {"objectives", problem.num_objectives()}});
  const bool tracing = trace_enabled();
  Stopwatch watch;
  const auto population_size =
      static_cast<std::size_t>(params_.population_size);
  auto population =
      random_population(problem, population_size, rng, &result.repairs);
  result.evaluations += population.size();

  // Per-chromosome (rank, crowding) metadata, parallel to `population`.
  std::vector<std::size_t> rank(population.size(), 0);
  std::vector<double> crowding(population.size(), 0.0);
  auto recompute_metadata = [&](const std::vector<Chromosome>& pop) {
    Front points;
    points.reserve(pop.size());
    for (const auto& c : pop) points.push_back(c.objectives);
    const auto fronts = [&] {
      PROF_PHASE("nsga2.sort");
      return non_dominated_sort(points);
    }();
    rank.assign(pop.size(), 0);
    crowding.assign(pop.size(), 0.0);
    PROF_PHASE("nsga2.crowding");
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      Front sub;
      sub.reserve(fronts[f].size());
      for (std::size_t idx : fronts[f]) sub.push_back(points[idx]);
      const auto dist = crowding_distances(sub);
      for (std::size_t m = 0; m < fronts[f].size(); ++m) {
        rank[fronts[f][m]] = f;
        crowding[fronts[f][m]] = dist[m];
      }
    }
  };
  recompute_metadata(population);

  auto tournament_pick = [&]() -> const Genes& {
    const auto a = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(population.size()) - 1));
    const auto b = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(population.size()) - 1));
    const bool a_wins =
        rank[a] != rank[b] ? rank[a] < rank[b] : crowding[a] > crowding[b];
    return population[a_wins ? a : b].genes;
  };

  for (int g = 0; g < params_.generations; ++g) {
    const double gen_start = tracing ? mono_seconds() : 0.0;
    const std::size_t repairs_before = result.repairs;
    // Offspring via binary-tournament parents.  The genetic operators
    // consume the RNG stream and stay on the driver thread; the pure fitness
    // evaluations run as one parallel batch, so the evolution trajectory is
    // identical at any thread count.
    std::vector<Chromosome> children;
    children.reserve(population_size);
    {
      // The repair phase spans the whole offspring loop: crossover/mutate
      // are inseparable from the repair they trigger, and per-chromosome
      // phases would blow the <3% enabled-overhead budget.
      PROF_PHASE("nsga2.repair");
      while (children.size() < population_size) {
        auto [x, y] = crossover(tournament_pick(), tournament_pick(), rng);
        for (Genes* genes : {&x, &y}) {
          if (children.size() >= population_size) break;
          mutate(*genes, problem, params_.mutation_rate, rng);
          if (problem.repair(*genes, rng)) ++result.repairs;
          Chromosome c;
          c.genes = std::move(*genes);
          children.push_back(std::move(c));
        }
      }
    }
    {
      PROF_PHASE("nsga2.eval");
      evaluate_population(problem, children);
    }
    result.evaluations += children.size();

    // Environmental selection: fill by front, truncate the splitting front
    // by crowding distance.
    {
      PROF_PHASE("nsga2.select");
      std::vector<Chromosome> pool = std::move(population);
      pool.insert(pool.end(), std::make_move_iterator(children.begin()),
                  std::make_move_iterator(children.end()));
      // Survivor deduplication (the paper GA's rule): duplicate genotypes
      // have zero crowding distance yet crowd out distinct individuals, and
      // on near-degenerate fronts the population collapses onto a handful of
      // copies and stalls short of the true Pareto set.  Select from distinct
      // genotypes first; duplicates only pad the population when fewer than
      // population_size distinct genotypes exist.
      std::vector<Chromosome> duplicates;
      {
        std::vector<Chromosome> distinct;
        distinct.reserve(pool.size());
        for (auto& c : pool) {
          const bool seen = std::any_of(
              distinct.begin(), distinct.end(),
              [&](const Chromosome& u) { return u.same_genes(c); });
          (seen ? duplicates : distinct).push_back(std::move(c));
        }
        pool = std::move(distinct);
      }
      Front points;
      points.reserve(pool.size());
      for (const auto& c : pool) points.push_back(c.objectives);
      const auto fronts = [&] {
        PROF_PHASE("nsga2.sort");
        return non_dominated_sort(points);
      }();
      std::vector<Chromosome> next;
      next.reserve(population_size);
      for (const auto& front : fronts) {
        if (next.size() >= population_size) break;
        if (next.size() + front.size() <= population_size) {
          for (std::size_t idx : front) next.push_back(std::move(pool[idx]));
          continue;
        }
        Front sub;
        sub.reserve(front.size());
        for (std::size_t idx : front) sub.push_back(points[idx]);
        const auto dist = crowding_distances(sub);
        std::vector<std::size_t> order(front.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    return dist[a] > dist[b];
                  });
        for (std::size_t i = 0;
             i < order.size() && next.size() < population_size; ++i) {
          next.push_back(std::move(pool[front[order[i]]]));
        }
      }
      for (std::size_t i = 0; next.size() < population_size; ++i) {
        next.push_back(std::move(duplicates[i]));
      }
      population = std::move(next);
    }
    recompute_metadata(population);
    ++result.generations;
    if (tracing) {
      // Rank metadata is already current: front size falls out of rank==0
      // rather than a second dominance pass.
      GenerationTelemetry t;
      t.repairs = result.repairs - repairs_before;
      t.front_size = static_cast<std::size_t>(
          std::count(rank.begin(), rank.end(), std::size_t{0}));
      t.best_node_util = -std::numeric_limits<double>::infinity();
      t.best_bb_util = -std::numeric_limits<double>::infinity();
      Front front_points;
      for (std::size_t i = 0; i < population.size(); ++i) {
        if (rank[i] == 0) front_points.push_back(population[i].objectives);
      }
      t.hypervolume = population_hypervolume(front_points);
      for (const auto& c : population) {
        if (!c.objectives.empty()) {
          t.best_node_util = std::max(t.best_node_util, c.objectives[0]);
        }
        if (c.objectives.size() > 1) {
          t.best_bb_util = std::max(t.best_bb_util, c.objectives[1]);
        }
      }
      trace_generation("nsga2.generation", g, gen_start, mono_seconds(), t);
    }
  }

  auto front = pareto_front(population);
  std::vector<Chromosome> unique;
  for (auto& c : front) {
    const bool seen =
        std::any_of(unique.begin(), unique.end(),
                    [&](const Chromosome& u) { return u.same_genes(c); });
    if (!seen) unique.push_back(std::move(c));
  }
  result.pareto_set = std::move(unique);
  result.solve_seconds = watch.elapsed_seconds();
  solve_span.add_arg({"pareto_size", result.pareto_set.size()});
  solve_span.add_arg({"evaluations", result.evaluations});
  solve_span.add_arg({"repairs", result.repairs});
  if (metrics_enabled()) record_solver_metrics(result);
  return result;
}

}  // namespace bbsched
