#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bbsched {
namespace {

MachineConfig machine() {
  MachineConfig m;
  m.name = "test";
  m.nodes = 1000;
  m.burst_buffer_gb = tb(100);
  return m;
}

Workload sample_workload() {
  Workload w;
  w.name = "sample";
  w.machine = machine();
  JobRecord a;
  a.id = 1;
  a.submit_time = 0;
  a.runtime = 60;
  a.walltime = 120;
  a.nodes = 10;
  a.bb_gb = tb(2);
  JobRecord b;
  b.id = 2;
  b.submit_time = 30;
  b.runtime = 600;
  b.walltime = 600;
  b.nodes = 128;
  b.ssd_per_node_gb = 64;
  b.dependencies = {1};
  w.jobs = {a, b};
  w.normalize();
  return w;
}

TEST(TraceCsv, RoundTripPreservesAllFields) {
  const Workload original = sample_workload();
  std::ostringstream out;
  write_trace_csv(original, out);
  std::istringstream in(out.str());
  const Workload reread = read_trace_csv(in, "sample", machine());
  ASSERT_EQ(reread.jobs.size(), 2u);
  const auto& a = reread.jobs[0];
  const auto& b = reread.jobs[1];
  EXPECT_EQ(a.id, 1u);
  EXPECT_DOUBLE_EQ(a.bb_gb, tb(2));
  EXPECT_EQ(b.nodes, 128);
  EXPECT_DOUBLE_EQ(b.ssd_per_node_gb, 64);
  ASSERT_EQ(b.dependencies.size(), 1u);
  EXPECT_EQ(b.dependencies[0], 1u);
}

TEST(TraceCsv, MalformedNumberThrows) {
  std::istringstream in(
      "id,submit_s,runtime_s,walltime_s,nodes,bb_gb,ssd_per_node_gb,deps\n"
      "1,0,60,xyz,10,0,0,\n");
  EXPECT_THROW(read_trace_csv(in, "bad", machine()), std::runtime_error);
}

TEST(TraceCsv, ValidatesRecords) {
  // walltime < runtime must be rejected by normalization.
  std::istringstream in(
      "id,submit_s,runtime_s,walltime_s,nodes,bb_gb,ssd_per_node_gb,deps\n"
      "1,0,600,60,10,0,0,\n");
  EXPECT_THROW(read_trace_csv(in, "bad", machine()), std::invalid_argument);
}

TEST(Swf, ParsesStandardFields) {
  // SWF: id submit wait run procs cpu mem req_procs req_time req_mem
  //      status user group app queue partition prev think
  std::istringstream in(
      "; header comment\n"
      "1 0 5 100 64 -1 -1 64 200 -1 1 1 1 1 1 1 -1 -1\n"
      "2 50 0 300 -1 -1 -1 128 400 -1 1 1 1 1 1 1 -1 -1\n");
  const Workload w = read_swf(in, "swf", machine(), 1);
  ASSERT_EQ(w.jobs.size(), 2u);
  EXPECT_EQ(w.jobs[0].nodes, 64);
  EXPECT_DOUBLE_EQ(w.jobs[0].runtime, 100);
  EXPECT_DOUBLE_EQ(w.jobs[0].walltime, 200);
  EXPECT_EQ(w.jobs[1].nodes, 128);
  EXPECT_DOUBLE_EQ(w.jobs[1].bb_gb, 0.0) << "SWF has no burst buffer";
}

TEST(Swf, CoresPerNodeCeilingDivision) {
  std::istringstream in(
      "1 0 0 100 65 -1 -1 65 100 -1 1 1 1 1 1 1 -1 -1\n");
  const Workload w = read_swf(in, "swf", machine(), 32);
  ASSERT_EQ(w.jobs.size(), 1u);
  EXPECT_EQ(w.jobs[0].nodes, 3);  // ceil(65/32)
}

TEST(Swf, SkipsZeroRuntimeAndZeroProcRecords) {
  std::istringstream in(
      "1 0 0 0 64 -1 -1 64 100 -1 1 1 1 1 1 1 -1 -1\n"
      "2 0 0 100 -1 -1 -1 -1 100 -1 1 1 1 1 1 1 -1 -1\n"
      "3 0 0 100 8 -1 -1 8 100 -1 1 1 1 1 1 1 -1 -1\n");
  const Workload w = read_swf(in, "swf", machine(), 1);
  ASSERT_EQ(w.jobs.size(), 1u);
  EXPECT_EQ(w.jobs[0].id, 3u);
}

TEST(Swf, ShortRecordThrows) {
  std::istringstream in("1 0 5 100\n");
  EXPECT_THROW(read_swf(in, "swf", machine(), 1), std::runtime_error);
}

TEST(Swf, WalltimeClampedToRuntime) {
  // Requested time below actual runtime: walltime must not drop below the
  // runtime or validation would fail.
  std::istringstream in(
      "1 0 0 500 8 -1 -1 8 100 -1 1 1 1 1 1 1 -1 -1\n");
  const Workload w = read_swf(in, "swf", machine(), 1);
  ASSERT_EQ(w.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(w.jobs[0].walltime, 500);
}

}  // namespace
}  // namespace bbsched
