#include "metrics/kiviat.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

TEST(Kiviat, NormalizesToUnitRangeAcrossMethods) {
  std::vector<KiviatSeries> series{
      {"a", {0.8, 10}},
      {"b", {0.4, 30}},
      {"c", {0.6, 20}},
  };
  const auto normalized = kiviat_normalize(std::move(series));
  EXPECT_DOUBLE_EQ(normalized[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(normalized[1].values[0], 0.0);
  EXPECT_DOUBLE_EQ(normalized[2].values[0], 0.5);
  EXPECT_DOUBLE_EQ(normalized[0].values[1], 0.0);
  EXPECT_DOUBLE_EQ(normalized[1].values[1], 1.0);
}

TEST(Kiviat, TiedAxisNormalizesToOne) {
  std::vector<KiviatSeries> series{{"a", {5.0}}, {"b", {5.0}}};
  const auto normalized = kiviat_normalize(std::move(series));
  EXPECT_DOUBLE_EQ(normalized[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(normalized[1].values[0], 1.0);
}

TEST(Kiviat, RaggedSeriesThrows) {
  std::vector<KiviatSeries> series{{"a", {1.0, 2.0}}, {"b", {1.0}}};
  EXPECT_THROW(kiviat_normalize(std::move(series)), std::invalid_argument);
}

TEST(Kiviat, AreaOfAllOnesIsOne) {
  const KiviatSeries s{"best", {1, 1, 1, 1}};
  EXPECT_DOUBLE_EQ(kiviat_area(s), 1.0);
}

TEST(Kiviat, AreaOfAllZerosIsZero) {
  const KiviatSeries s{"worst", {0, 0, 0, 0}};
  EXPECT_DOUBLE_EQ(kiviat_area(s), 0.0);
}

TEST(Kiviat, AreaMonotoneInValues) {
  const KiviatSeries lo{"lo", {0.5, 0.5, 0.5, 0.5}};
  const KiviatSeries hi{"hi", {0.6, 0.5, 0.5, 0.5}};
  EXPECT_GT(kiviat_area(hi), kiviat_area(lo));
  EXPECT_DOUBLE_EQ(kiviat_area(lo), 0.25);  // r^2 scaling
}

TEST(Kiviat, AreaNeedsThreeAxes) {
  const KiviatSeries s{"two", {1, 1}};
  EXPECT_THROW(kiviat_area(s), std::invalid_argument);
}

TEST(Kiviat, SingleZeroSpokeDoesNotZeroArea) {
  const KiviatSeries s{"spiky", {1, 1, 1, 0}};
  EXPECT_GT(kiviat_area(s), 0.0);
  EXPECT_LT(kiviat_area(s), 1.0);
}

TEST(Kiviat, OrientPassesLargerIsBetter) {
  EXPECT_DOUBLE_EQ(kiviat_orient(0.7, true), 0.7);
}

TEST(Kiviat, OrientReciprocalForSmallerIsBetter) {
  EXPECT_DOUBLE_EQ(kiviat_orient(4.0, false), 0.25);
  EXPECT_GT(kiviat_orient(0.0, false), 1e6) << "perfect value clamps large";
}

TEST(Kiviat, EmptyNormalizeIsNoop) {
  EXPECT_TRUE(kiviat_normalize({}).empty());
}

}  // namespace
}  // namespace bbsched
