// stopwatch.hpp — wall-clock timing of scheduler decisions.
//
// The paper's feasibility argument hinges on time-to-solution (Figures 2 and
// 4, the 15-30 s response requirement), so decision timing is a first-class
// measurement, not an afterthought.
#pragma once

#include <chrono>

namespace bbsched {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last restart().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bbsched
