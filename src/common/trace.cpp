#include "common/trace.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/build_info.hpp"
#include "common/fault.hpp"

namespace bbsched {

namespace telemetry_detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace telemetry_detail

namespace {

struct TraceEvent {
  char ph = 'X';
  int pid = kTraceWallPid;
  int tid = 0;
  double ts_us = 0;
  double dur_us = 0;
  std::string name;
  std::string category;
  std::vector<LogField> args;
};

/// Owned by one thread for appends; the writer locks `mutex` to copy.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  int tid = 0;

  ThreadBuffer();
  ~ThreadBuffer();
};

struct Registry {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;       ///< live threads
  std::vector<TraceEvent> orphans;          ///< events of exited threads
  std::vector<std::string> process_labels;  ///< index i -> pid i + 1
  int next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives thread_locals
  return *r;
}

ThreadBuffer::ThreadBuffer() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  tid = r.next_tid++;
  r.buffers.push_back(this);
}

ThreadBuffer::~ThreadBuffer() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.orphans.insert(r.orphans.end(),
                   std::make_move_iterator(events.begin()),
                   std::make_move_iterator(events.end()));
  for (auto it = r.buffers.begin(); it != r.buffers.end(); ++it) {
    if (*it == this) {
      r.buffers.erase(it);
      break;
    }
  }
}

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

void record(TraceEvent event) {
  ThreadBuffer& buffer = thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  json_escape(out, s);
  out.push_back('"');
}

void append_args_object(std::string& out, const std::vector<LogField>& args) {
  out.push_back('{');
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out.push_back(',');
    append_json_string(out, args[i].key);
    out.push_back(':');
    // Numeric fields format as raw JSON numbers; LogField already demotes
    // non-finite doubles to strings, keeping the JSON valid.
    if (args[i].numeric) {
      out += args[i].value;
    } else {
      append_json_string(out, args[i].value);
    }
  }
  out.push_back('}');
}

std::string trace_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void append_event_json(std::string& out, const TraceEvent& event) {
  out += "{\"name\":";
  append_json_string(out, event.name);
  if (!event.category.empty()) {
    out += ",\"cat\":";
    append_json_string(out, event.category);
  }
  out += ",\"ph\":\"";
  out.push_back(event.ph);
  out += "\",\"ts\":";
  out += trace_num(event.ts_us);
  if (event.ph == 'X') {
    out += ",\"dur\":";
    out += trace_num(event.dur_us);
  }
  if (event.ph == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
  out += ",\"pid\":";
  out += std::to_string(event.pid);
  out += ",\"tid\":";
  out += std::to_string(event.tid);
  if (!event.args.empty()) {
    out += ",\"args\":";
    append_args_object(out, event.args);
  }
  out.push_back('}');
}

TraceEvent metadata_event(const char* what, int pid, int tid,
                          std::string label) {
  TraceEvent event;
  event.ph = 'M';
  event.pid = pid;
  event.tid = tid;
  event.name = what;
  event.args.emplace_back("name", label);
  return event;
}

}  // namespace

void set_trace_enabled(bool enabled) {
  telemetry_detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void trace_clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (ThreadBuffer* buffer : r.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  r.orphans.clear();
  r.process_labels.clear();
}

std::size_t trace_event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t count = r.orphans.size();
  for (ThreadBuffer* buffer : r.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

int trace_register_process(std::string label) {
  if (!trace_enabled()) return kTraceWallPid;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.process_labels.push_back(std::move(label));
  return static_cast<int>(r.process_labels.size());
}

void trace_complete(std::string_view name, std::string_view category,
                    double start_s, double duration_s,
                    std::initializer_list<LogField> args) {
  if (!trace_enabled()) return;
  TraceEvent event;
  event.ph = 'X';
  event.pid = kTraceWallPid;
  event.ts_us = start_s * 1e6;
  event.dur_us = duration_s * 1e6;
  event.name.assign(name);
  event.category.assign(category);
  event.args.assign(args);
  record(std::move(event));
}

void trace_instant(std::string_view name, std::string_view category,
                   double ts_s, int pid, std::initializer_list<LogField> args) {
  if (!trace_enabled()) return;
  TraceEvent event;
  event.ph = 'i';
  event.pid = pid;
  event.ts_us = ts_s * 1e6;
  event.name.assign(name);
  event.category.assign(category);
  event.args.assign(args);
  record(std::move(event));
}

void trace_counter(std::string_view name, double ts_s, int pid,
                   std::initializer_list<LogField> series) {
  if (!trace_enabled()) return;
  TraceEvent event;
  event.ph = 'C';
  event.pid = pid;
  event.ts_us = ts_s * 1e6;
  event.name.assign(name);
  event.args.assign(series);
  record(std::move(event));
}

TraceSpan::TraceSpan(std::string_view name, std::string_view category,
                     std::initializer_list<LogField> args) {
  if (!trace_enabled()) return;
  armed_ = true;
  name_.assign(name);
  category_.assign(category);
  args_.assign(args);
  start_ = mono_now();
}

void TraceSpan::add_arg(LogField field) {
  if (!armed_) return;
  args_.push_back(std::move(field));
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  TraceEvent event;
  event.ph = 'X';
  event.pid = kTraceWallPid;
  event.ts_us = seconds_between(process_epoch(), start_) * 1e6;
  event.dur_us = seconds_between(start_, mono_now()) * 1e6;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.args = std::move(args_);
  record(std::move(event));
}

void write_trace_json(std::ostream& out) {
  Registry& r = registry();
  std::vector<TraceEvent> events;
  std::vector<std::string> labels;
  std::map<int, bool> seen_tids;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    events = r.orphans;
    for (ThreadBuffer* buffer : r.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
    labels = r.process_labels;
  }
  for (const TraceEvent& event : events) seen_tids[event.tid] = true;

  // Run provenance rides in the Chrome-trace top-level "metadata" object
  // (not comment lines: the file must stay valid JSON for Perfetto and the
  // CI `python3 -m json.tool` smoke).
  std::string line;
  out << "{\"displayTimeUnit\":\"ms\",\"metadata\":{";
  {
    bool first_pair = true;
    for (const auto& [key, value] : provenance_pairs()) {
      if (!first_pair) out << ',';
      first_pair = false;
      line.clear();
      append_json_string(line, key);
      line.push_back(':');
      append_json_string(line, value);
      out << line;
    }
  }
  out << "},\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const TraceEvent& event) {
    line.clear();
    if (!first) line += ",\n";
    first = false;
    append_event_json(line, event);
    out << line;
  };
  emit(metadata_event("process_name", kTraceWallPid, 0, "wall-clock"));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    emit(metadata_event("process_name", static_cast<int>(i) + 1, 0,
                        labels[i]));
  }
  for (const auto& [tid, _] : seen_tids) {
    emit(metadata_event("thread_name", kTraceWallPid, tid,
                        "thread-" + std::to_string(tid)));
  }
  for (const TraceEvent& event : events) emit(event);
  out << "\n]}\n";
}

void write_trace_json_file(const std::string& path) {
  // Render in memory, then write-temp -> fsync -> rename: the crash-flush
  // hook calls this from signal cleanup, and an in-place write there could
  // tear the previous (complete) snapshot.
  std::ostringstream out;
  write_trace_json(out);
  atomic_write_file(path, out.str(), "trace.write", path);
}

}  // namespace bbsched
