file(REMOVE_RECURSE
  "CMakeFiles/bbsched_core.dir/adaptive_decision.cpp.o"
  "CMakeFiles/bbsched_core.dir/adaptive_decision.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/chromosome.cpp.o"
  "CMakeFiles/bbsched_core.dir/chromosome.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/decision.cpp.o"
  "CMakeFiles/bbsched_core.dir/decision.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/exhaustive.cpp.o"
  "CMakeFiles/bbsched_core.dir/exhaustive.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/ga.cpp.o"
  "CMakeFiles/bbsched_core.dir/ga.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/ga_ops.cpp.o"
  "CMakeFiles/bbsched_core.dir/ga_ops.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/multi_resource_problem.cpp.o"
  "CMakeFiles/bbsched_core.dir/multi_resource_problem.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/nsga2.cpp.o"
  "CMakeFiles/bbsched_core.dir/nsga2.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/pareto.cpp.o"
  "CMakeFiles/bbsched_core.dir/pareto.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/problem.cpp.o"
  "CMakeFiles/bbsched_core.dir/problem.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/scalar_ga.cpp.o"
  "CMakeFiles/bbsched_core.dir/scalar_ga.cpp.o.d"
  "CMakeFiles/bbsched_core.dir/ssd_problem.cpp.o"
  "CMakeFiles/bbsched_core.dir/ssd_problem.cpp.o.d"
  "libbbsched_core.a"
  "libbbsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
