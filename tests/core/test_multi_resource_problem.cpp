#include "core/multi_resource_problem.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

// The Table 1 queue: five jobs on a 100-node, 100 TB machine.
MultiResourceProblem table1_problem() {
  const std::vector<double> nodes{80, 10, 40, 10, 20};
  const std::vector<double> bb{20, 85, 5, 0, 0};
  return MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
}

TEST(MultiResourceProblem, EvaluatesUtilizationFractions) {
  const auto problem = table1_problem();
  const Genes genes{1, 0, 0, 1, 0};  // J1 + J4: 90 nodes, 20 TB
  std::vector<double> objs(2);
  problem.evaluate(genes, objs);
  EXPECT_DOUBLE_EQ(objs[0], 0.90);
  EXPECT_DOUBLE_EQ(objs[1], 0.20);
}

TEST(MultiResourceProblem, FeasibilityBothConstraints) {
  const auto problem = table1_problem();
  EXPECT_TRUE(problem.feasible(Genes{1, 0, 0, 1, 0}));
  EXPECT_TRUE(problem.feasible(Genes{0, 1, 1, 1, 1}));   // J2-J5: 80n, 90TB
  EXPECT_FALSE(problem.feasible(Genes{1, 1, 0, 0, 0}));  // 105 TB BB
  EXPECT_FALSE(problem.feasible(Genes{1, 0, 1, 0, 0}));  // 120 nodes
}

TEST(MultiResourceProblem, EmptySelectionFeasibleAndZero) {
  const auto problem = table1_problem();
  const Genes empty(5, 0);
  EXPECT_TRUE(problem.feasible(empty));
  std::vector<double> objs(2);
  problem.evaluate(empty, objs);
  EXPECT_DOUBLE_EQ(objs[0], 0.0);
  EXPECT_DOUBLE_EQ(objs[1], 0.0);
}

TEST(MultiResourceProblem, ZeroFreeCapacityObjectiveIsZero) {
  const std::vector<double> nodes{1};
  const std::vector<double> bb{0};
  const auto problem = MultiResourceProblem::cpu_bb(nodes, bb, 10, 0);
  const Genes genes{1};
  EXPECT_TRUE(problem.feasible(genes));  // demands 0 BB of 0 free
  std::vector<double> objs(2);
  problem.evaluate(genes, objs);
  EXPECT_DOUBLE_EQ(objs[1], 0.0);
}

TEST(MultiResourceProblem, ConsumptionReportsRawSums) {
  const auto problem = table1_problem();
  const auto used = problem.consumption(Genes{0, 1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(used[0], 80);
  EXPECT_DOUBLE_EQ(used[1], 90);
}

TEST(MultiResourceProblem, ThreeResourceExtension) {
  // §5 motivation: the formulation extends beyond two resources.
  const std::vector<std::vector<double>> demands{
      {4, 2, 6}, {10, 0, 5}, {1, 1, 1}};
  const MultiResourceProblem problem(demands, {10, 10, 2});
  EXPECT_EQ(problem.num_objectives(), 3u);
  EXPECT_TRUE(problem.feasible(Genes{1, 1, 0}));
  EXPECT_FALSE(problem.feasible(Genes{1, 1, 1}));  // third resource: 3 > 2
  std::vector<double> objs(3);
  problem.evaluate(Genes{1, 1, 0}, objs);
  EXPECT_DOUBLE_EQ(objs[0], 0.6);
  EXPECT_DOUBLE_EQ(objs[1], 1.0);
  EXPECT_DOUBLE_EQ(objs[2], 1.0);
}

TEST(MultiResourceProblem, RejectsRaggedDemands) {
  EXPECT_THROW(MultiResourceProblem({{1, 2}, {1}}, {10, 10}),
               std::invalid_argument);
}

TEST(MultiResourceProblem, RejectsNegativeDemandOrCapacity) {
  EXPECT_THROW(MultiResourceProblem({{-1}}, {10}), std::invalid_argument);
  EXPECT_THROW(MultiResourceProblem({{1}}, {-10}), std::invalid_argument);
}

TEST(MultiResourceProblem, RejectsDimensionMismatch) {
  EXPECT_THROW(MultiResourceProblem({{1}}, {10, 10}), std::invalid_argument);
}

TEST(Repair, ClearsBitsUntilFeasible) {
  const auto problem = table1_problem();
  Rng rng(3);
  Genes genes{1, 1, 1, 1, 1};  // infeasible on both axes
  problem.repair(genes, rng);
  EXPECT_TRUE(problem.feasible(genes));
}

TEST(Repair, FeasibleInputUntouched) {
  const auto problem = table1_problem();
  Rng rng(3);
  Genes genes{0, 1, 1, 1, 1};
  const Genes before = genes;
  problem.repair(genes, rng);
  EXPECT_EQ(genes, before);
}

TEST(Repair, PreservesPinnedGenes) {
  auto problem = table1_problem();
  problem.pin(0);  // J1 must stay selected
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    Genes genes{1, 1, 1, 1, 1};
    problem.repair(genes, rng);
    EXPECT_TRUE(problem.feasible(genes));
    EXPECT_EQ(genes[0], 1) << "pinned gene cleared on trial " << trial;
  }
}

TEST(Pins, ApplyPinsSetsGenes) {
  auto problem = table1_problem();
  problem.pin(2);
  problem.pin(4);
  problem.pin(2);  // duplicate ignored
  EXPECT_EQ(problem.pinned().size(), 2u);
  Genes genes(5, 0);
  problem.apply_pins(genes);
  EXPECT_EQ(genes, (Genes{0, 0, 1, 0, 1}));
}

}  // namespace
}  // namespace bbsched
