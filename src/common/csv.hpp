// csv.hpp — minimal CSV reading/writing used for traces and result caches.
//
// The dialect is deliberately simple: comma separated, optional quoting with
// double quotes, '#'-prefixed comment lines and blank lines ignored on read.
// This is sufficient for the library's own trace format and the experiment
// result cache; it is not a general RFC-4180 parser (embedded newlines inside
// quoted fields are not supported).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bbsched {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Split a single CSV line into fields, honouring double-quote quoting.
CsvRow parse_csv_line(std::string_view line);

/// Quote a field if it contains a comma, quote or leading/trailing space.
std::string csv_escape(std::string_view field);

/// Serialize a row.
std::string format_csv_row(const CsvRow& row);

/// A fully-parsed CSV table with a header row and name-based column lookup.
class CsvTable {
 public:
  /// Parse from a stream; the first non-comment row is the header.
  /// Throws std::runtime_error on ragged rows (row width != header width).
  static CsvTable read(std::istream& in);

  /// Parse a file; throws std::runtime_error if the file cannot be opened.
  static CsvTable read_file(const std::string& path);

  CsvTable() = default;
  explicit CsvTable(CsvRow header) : header_(std::move(header)) {}

  const CsvRow& header() const { return header_; }
  const std::vector<CsvRow>& rows() const { return rows_; }
  std::size_t num_rows() const { return rows_.size(); }

  /// Index of a header column, or nullopt if absent.
  std::optional<std::size_t> column(std::string_view name) const;

  /// Value at (row, named column); throws if the column does not exist.
  const std::string& at(std::size_t row, std::string_view col) const;

  void add_row(CsvRow row);

  /// Write header + rows.
  void write(std::ostream& out) const;
  void write_file(const std::string& path) const;

 private:
  CsvRow header_;
  std::vector<CsvRow> rows_;
};

/// Parse helpers with descriptive errors (field name included in the throw).
double parse_double_field(const std::string& value, std::string_view field);
std::int64_t parse_int_field(const std::string& value, std::string_view field);

/// Write `table` with a trailing "# crc32=XXXXXXXX" integrity line, through
/// the crash-consistent temp+fsync+rename path (fault.hpp), so readers can
/// tell a truncated or bit-rotted cache from a valid one.  `fault_site`
/// names the fault-injection site of the write (default "csv.write").
void write_csv_file_checksummed(const CsvTable& table, const std::string& path,
                                std::string_view fault_site = "csv.write");

/// Read a CSV written by write_csv_file_checksummed, validating the CRC32
/// trailer before parsing.  On a missing/mismatched trailer or a parse
/// error, returns nullopt with a description (naming the file) in *error —
/// callers decide whether to quarantine and recompute.
std::optional<CsvTable> read_csv_file_checksummed(const std::string& path,
                                                  std::string* error);

}  // namespace bbsched
