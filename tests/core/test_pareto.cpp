#include "core/pareto.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

TEST(Dominates, StrictDominance) {
  const std::vector<double> a{2.0, 3.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

TEST(Dominates, EqualVectorsDoNotDominate) {
  const std::vector<double> a{1.0, 1.0};
  EXPECT_FALSE(dominates(a, a));
}

TEST(Dominates, WeakImprovementOneAxis) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0, 1.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

TEST(Dominates, IncomparableTradeoff) {
  const std::vector<double> a{2.0, 1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_FALSE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

TEST(NonDominated, FiltersDominatedPoints) {
  const Front points{{1, 1}, {2, 2}, {3, 1}, {1, 3}, {0, 0}};
  const auto nd = non_dominated_indices(points);
  // {2,2}, {3,1}, {1,3} are the front; {1,1} and {0,0} are dominated.
  EXPECT_EQ(nd, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(NonDominated, DuplicatesAllSurvive) {
  const Front points{{2, 2}, {2, 2}, {1, 1}};
  const auto nd = non_dominated_indices(points);
  EXPECT_EQ(nd, (std::vector<std::size_t>{0, 1}));
}

TEST(NonDominated, EmptyInput) {
  EXPECT_TRUE(non_dominated_indices({}).empty());
}

TEST(NonDominated, SinglePoint) {
  EXPECT_EQ(non_dominated_indices({{5, 5}}),
            (std::vector<std::size_t>{0}));
}

TEST(GenerationalDistance, ZeroWhenSolutionOnTruth) {
  const Front truth{{1, 0}, {0, 1}};
  const Front solution{{1, 0}};
  EXPECT_DOUBLE_EQ(generational_distance(solution, truth), 0.0);
}

TEST(GenerationalDistance, AverageOfNearestDistances) {
  const Front truth{{0, 0}};
  const Front solution{{3, 4}, {0, 0}};  // distances 5 and 0
  EXPECT_DOUBLE_EQ(generational_distance(solution, truth), 2.5);
}

TEST(GenerationalDistance, PicksNearestTruthPoint) {
  const Front truth{{0, 0}, {10, 10}};
  const Front solution{{9, 10}};  // nearest is (10,10), distance 1
  EXPECT_DOUBLE_EQ(generational_distance(solution, truth), 1.0);
}

TEST(GenerationalDistance, EmptyTruthThrows) {
  EXPECT_THROW(generational_distance({{1, 1}}, {}), std::invalid_argument);
}

TEST(GenerationalDistance, EmptySolutionIsZero) {
  EXPECT_DOUBLE_EQ(generational_distance({}, {{1, 1}}), 0.0);
}

TEST(Hypervolume, SinglePointRectangle) {
  const Front front{{2, 3}};
  const std::vector<double> ref{0, 0};
  EXPECT_DOUBLE_EQ(hypervolume_2d(front, ref), 6.0);
}

TEST(Hypervolume, StaircaseOfTwoPoints) {
  const Front front{{1, 3}, {2, 1}};
  const std::vector<double> ref{0, 0};
  // Strip [0,1] x height 3 plus strip [1,2] x height 1.
  EXPECT_DOUBLE_EQ(hypervolume_2d(front, ref), 4.0);
}

TEST(Hypervolume, DominatedPointIgnored) {
  const Front front{{2, 2}, {1, 1}};
  const std::vector<double> ref{0, 0};
  EXPECT_DOUBLE_EQ(hypervolume_2d(front, ref), 4.0);
}

TEST(Hypervolume, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume_2d({}, std::vector<double>{0, 0}), 0.0);
}

TEST(ParetoFrontOfPopulation, UsesCachedObjectives) {
  Chromosome a;
  a.genes = {1, 0};
  a.objectives = {2, 2};
  Chromosome b;
  b.genes = {0, 1};
  b.objectives = {1, 1};
  const std::vector<Chromosome> population{a, b};
  const auto front = pareto_front(population);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].genes, a.genes);
}

}  // namespace
}  // namespace bbsched
