#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

TEST(Mean, BasicAndEmpty) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stddev, SampleVariance) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Quantile, InterpolatesUnsortedInput) {
  const std::vector<double> v{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{}, 0.5), 0.0);
}

TEST(Quantile, ClampsOutOfRangeP) {
  const std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 2.0), 2.0);
}

TEST(RunningStats, TracksMoments) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2);
  s.add(6);
  s.add(4);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStats, MergeCombines) {
  RunningStats a, b;
  a.add(1);
  a.add(3);
  b.add(10);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 3u);
}

TEST(Histogram, BinsAndBoundaries) {
  Histogram h({0, 10, 20});
  h.add(0);      // first bin (inclusive lower edge)
  h.add(9.99);   // first bin
  h.add(10);     // second bin
  h.add(20);     // final edge absorbed into last bin
  EXPECT_DOUBLE_EQ(h.bin_count(0), 2);
  EXPECT_DOUBLE_EQ(h.bin_count(1), 2);
}

TEST(Histogram, UnderflowOverflow) {
  Histogram h({0, 1});
  h.add(-1);
  h.add(2);
  h.add(0.5, 3.0);  // weighted
  EXPECT_DOUBLE_EQ(h.underflow(), 1);
  EXPECT_DOUBLE_EQ(h.overflow(), 1);
  EXPECT_DOUBLE_EQ(h.bin_count(0), 3);
  EXPECT_DOUBLE_EQ(h.total_weight(), 5);
}

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW(Histogram({1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace bbsched
