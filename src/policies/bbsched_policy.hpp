// bbsched_policy.hpp — the paper's contribution as a window-selection
// policy.
//
// One select() call is one full BBSched decision (Figure 1): build the MOO
// problem from the window snapshot, approximate its Pareto set with the
// multi-objective genetic solver, and commit the solution the decision rule
// prefers.  The rule defaults to the paper's: §3.2.4's 2x trade-off for
// two-objective windows, §5's 4x summed trade-off for four-objective (SSD)
// windows; a custom rule can be injected for ablation studies.
#pragma once

#include <memory>

#include "core/decision.hpp"
#include "core/ga.hpp"
#include "sim/selection_policy.hpp"

namespace bbsched {

class BBSchedPolicy : public SelectionPolicy {
 public:
  explicit BBSchedPolicy(GaParams params)
      : params_(params),
        rule2_(std::make_unique<NodeFirstTradeoffRule>()),
        rule4_(std::make_unique<SumTradeoffRule>()) {
    params_.validate();
  }

  /// Use `rule` for every window regardless of objective count (ablations).
  BBSchedPolicy(GaParams params, std::unique_ptr<DecisionRule> rule)
      : params_(params), override_rule_(std::move(rule)) {
    params_.validate();
  }

  WindowDecision select(const WindowContext& context) const override;
  std::string name() const override { return "BBSched"; }

  const GaParams& params() const { return params_; }

 private:
  const DecisionRule& rule_for(std::size_t num_objectives) const;

  GaParams params_;
  std::unique_ptr<DecisionRule> rule2_;
  std::unique_ptr<DecisionRule> rule4_;
  std::unique_ptr<DecisionRule> override_rule_;
};

}  // namespace bbsched
