// wl_stats.hpp — workload summary statistics (Table 2) and burst-buffer
// request histograms (Figure 5).
#pragma once

#include <iosfwd>
#include <vector>

#include "common/stats.hpp"
#include "workload/workload.hpp"

namespace bbsched {

/// Table 2-style summary of one workload.
struct WorkloadSummary {
  std::size_t num_jobs = 0;
  std::size_t jobs_with_bb = 0;
  std::size_t jobs_with_bb_over_1tb = 0;
  double bb_fraction = 0;           ///< fraction of jobs requesting BB
  GigaBytes bb_min = 0;             ///< smallest non-zero request
  GigaBytes bb_max = 0;
  GigaBytes bb_total = 0;           ///< aggregate requested volume
  double mean_nodes = 0;
  NodeCount max_nodes = 0;
  Time mean_runtime = 0;
  Time span = 0;                    ///< submit-time span
  double offered_load = 0;          ///< node-seconds / machine node-seconds
  /// BB-GB-seconds demanded / schedulable BB-GB-seconds available; > 1 means
  /// the burst buffer cannot absorb the workload without queueing.
  double offered_bb_load = 0;
};

WorkloadSummary summarize(const Workload& workload);

/// Figure 5: histogram of burst-buffer requests with `bin_tb`-TB bins over
/// [0, max request].  Only jobs with requests contribute.
Histogram bb_request_histogram(const Workload& workload, double bin_tb = 10);

/// Print a Table 2-like block for one workload.
void print_summary(const Workload& workload, std::ostream& out);

/// Print a Figure 5-like histogram (one row per non-empty bin, aggregate
/// volume in the title line).
void print_bb_histogram(const Workload& workload, std::ostream& out,
                        double bin_tb = 10);

}  // namespace bbsched
