#include "sim/base_scheduler.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

JobRecord job(JobId id, Time submit, NodeCount nodes, Time walltime) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.runtime = walltime;
  j.walltime = walltime;
  j.nodes = nodes;
  return j;
}

TEST(Fcfs, OrdersBySubmitTime) {
  const JobRecord a = job(1, 100, 4, 600);
  const JobRecord b = job(2, 50, 4, 600);
  std::vector<QueuedJobView> queue{{&a, 100}, {&b, 50}};
  FcfsScheduler fcfs;
  fcfs.sort_queue(queue, 1000);
  EXPECT_EQ(queue[0].job->id, 2u);
  EXPECT_EQ(queue[1].job->id, 1u);
}

TEST(Fcfs, TieBreaksById) {
  const JobRecord a = job(7, 50, 4, 600);
  const JobRecord b = job(3, 50, 4, 600);
  std::vector<QueuedJobView> queue{{&a, 50}, {&b, 50}};
  FcfsScheduler fcfs;
  fcfs.sort_queue(queue, 1000);
  EXPECT_EQ(queue[0].job->id, 3u);
}

TEST(Wfp, PriorityGrowsWithWaitAndSize) {
  const JobRecord small = job(1, 0, 10, 3600);
  const JobRecord large = job(2, 0, 1000, 3600);
  WfpScheduler wfp;
  const double p_small = wfp.priority({&small, 0}, 1800);
  const double p_large = wfp.priority({&large, 0}, 1800);
  EXPECT_GT(p_large, p_small);
  EXPECT_GT(wfp.priority({&small, 0}, 3600), p_small);
}

TEST(Wfp, ShorterWalltimeGetsHigherPriority) {
  // §4.4: "In WFP, shorter jobs get higher priorities to run."
  const JobRecord short_job = job(1, 0, 100, 1800);
  const JobRecord long_job = job(2, 0, 100, 36000);
  WfpScheduler wfp;
  EXPECT_GT(wfp.priority({&short_job, 0}, 900),
            wfp.priority({&long_job, 0}, 900));
}

TEST(Wfp, ZeroWaitMeansZeroPriority) {
  const JobRecord j = job(1, 500, 100, 3600);
  WfpScheduler wfp;
  EXPECT_DOUBLE_EQ(wfp.priority({&j, 500}, 500), 0.0);
}

TEST(Wfp, CubicGrowthInWaitFraction) {
  const JobRecord j = job(1, 0, 10, 1000);
  WfpScheduler wfp;
  const double p1 = wfp.priority({&j, 0}, 1000);   // wait/walltime = 1
  const double p2 = wfp.priority({&j, 0}, 2000);   // wait/walltime = 2
  EXPECT_NEAR(p2 / p1, 8.0, 1e-9);
}

TEST(Wfp, UsesQueuedSinceNotSubmit) {
  // Dependency-released jobs start accumulating wait when released.
  const JobRecord j = job(1, 0, 10, 1000);
  WfpScheduler wfp;
  EXPECT_LT(wfp.priority({&j, 900}, 1000), wfp.priority({&j, 0}, 1000));
}

TEST(Factory, BuildsByName) {
  EXPECT_EQ(make_base_scheduler("FCFS")->name(), "FCFS");
  EXPECT_EQ(make_base_scheduler("fcfs")->name(), "FCFS");
  EXPECT_EQ(make_base_scheduler("WFP")->name(), "WFP");
  EXPECT_THROW(make_base_scheduler("nope"), std::invalid_argument);
}

TEST(SortQueue, WfpReordersOverTime) {
  // A large job overtakes an earlier small job as its wait fraction grows.
  const JobRecord small = job(1, 0, 10, 600);
  const JobRecord large = job(2, 10, 2000, 600);
  WfpScheduler wfp;
  std::vector<QueuedJobView> queue{{&small, 0}, {&large, 10}};
  wfp.sort_queue(queue, 11);
  EXPECT_EQ(queue[0].job->id, 1u) << "small job has waited longer at t=11";
  wfp.sort_queue(queue, 6000);
  EXPECT_EQ(queue[0].job->id, 2u)
      << "node-count factor dominates once both have waited";
}

}  // namespace
}  // namespace bbsched
