#include "policies/scalarized.hpp"

#include <gtest/gtest.h>

#include "policies/factory.hpp"

namespace bbsched {
namespace {

JobRecord job(JobId id, NodeCount nodes, GigaBytes bb = 0) {
  JobRecord j;
  j.id = id;
  j.nodes = nodes;
  j.bb_gb = bb;
  j.runtime = 100;
  j.walltime = 100;
  return j;
}

std::vector<JobRecord> table1_jobs() {
  return {job(1, 80, tb(20)), job(2, 10, tb(85)), job(3, 40, tb(5)),
          job(4, 10), job(5, 20)};
}

WindowDecision run(const std::string& method,
                   const std::vector<JobRecord>& jobs,
                   std::vector<std::size_t> pinned = {}) {
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  GaParams ga;
  ga.generations = 150;
  Rng rng(3);
  WindowContext context;
  context.window = window;
  FreeState free;
  free.nodes = 100;
  free.bb_gb = tb(100);
  context.free = free;
  context.pinned = pinned;
  context.rng = &rng;
  return make_policy(method, ga)->select(context);
}

TEST(WeightSpec, EqualSplitsUniformly) {
  const auto w = WeightSpec::equal().resolve(4);
  ASSERT_EQ(w.size(), 4u);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(WeightSpec, FixedPadsWithZeros) {
  const auto w = WeightSpec::fixed_weights({0.8, 0.2}).resolve(4);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 0.8);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
}

TEST(WeightSpec, OnlyPlacesSingleOne) {
  const auto w = WeightSpec::only(2).resolve(4);
  EXPECT_EQ(w, (std::vector<double>{0, 0, 1, 0}));
}

TEST(ScalarizedPolicy, ConstrainedCpuPicksFullNodes) {
  // Table 1: Constrained_CPU selects {J1, J5} for 100 % node utilization.
  const auto decision = run("Constrained_CPU", table1_jobs());
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0, 4}));
}

TEST(ScalarizedPolicy, WeightedCpuPicksFullNodes) {
  const auto decision = run("Weighted_CPU", table1_jobs());
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0, 4}));
}

TEST(ScalarizedPolicy, WeightedBbPicksBbHeavySet) {
  // 20/80 weighting favours the J2-J5 set (80 % nodes, 90 % BB).
  const auto decision = run("Weighted_BB", table1_jobs());
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(ScalarizedPolicy, ConstrainedBbMaximizesBb) {
  const auto decision = run("Constrained_BB", table1_jobs());
  double bb = 0;
  for (std::size_t pos : decision.selected) bb += table1_jobs()[pos].bb_gb;
  EXPECT_DOUBLE_EQ(bb, tb(90));
}

TEST(ScalarizedPolicy, HonoursPins) {
  // Pinning J1 makes the BB-max selection exclude J2 (BB would overflow).
  const auto decision = run("Constrained_BB", table1_jobs(), {0});
  bool has_j1 = false, has_j2 = false;
  for (std::size_t pos : decision.selected) {
    has_j1 |= pos == 0;
    has_j2 |= pos == 1;
  }
  EXPECT_TRUE(has_j1);
  EXPECT_FALSE(has_j2);
}

TEST(ScalarizedPolicy, ReportsEvaluationsAndSingleSolution) {
  const auto decision = run("Weighted", table1_jobs());
  EXPECT_EQ(decision.pareto_size, 1u);
  EXPECT_GT(decision.evaluations, 0u);
}

TEST(Factory, AllStandardMethodsConstruct) {
  GaParams ga;
  for (const auto& name : standard_method_names()) {
    EXPECT_EQ(make_policy(name, ga)->name(), name);
  }
  for (const auto& name : ssd_method_names()) {
    EXPECT_EQ(make_policy(name, ga)->name(), name);
  }
  EXPECT_THROW(make_policy("NoSuchMethod", ga), std::invalid_argument);
}

TEST(Factory, RosterMatchesPaper) {
  const auto standard = standard_method_names();
  EXPECT_EQ(standard.size(), 8u);
  EXPECT_EQ(standard.front(), "Baseline");
  EXPECT_EQ(standard.back(), "BBSched");
  const auto ssd = ssd_method_names();
  EXPECT_EQ(ssd.size(), 7u);
  // §5 roster adds Constrained_SSD and drops the biased weighted variants.
  EXPECT_NE(std::find(ssd.begin(), ssd.end(), "Constrained_SSD"), ssd.end());
  EXPECT_EQ(std::find(ssd.begin(), ssd.end(), "Weighted_CPU"), ssd.end());
}

}  // namespace
}  // namespace bbsched
