file(REMOVE_RECURSE
  "../bench/bench_ablation_decision"
  "../bench/bench_ablation_decision.pdb"
  "CMakeFiles/bench_ablation_decision.dir/bench_ablation_decision.cpp.o"
  "CMakeFiles/bench_ablation_decision.dir/bench_ablation_decision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
