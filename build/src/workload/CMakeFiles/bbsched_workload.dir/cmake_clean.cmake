file(REMOVE_RECURSE
  "CMakeFiles/bbsched_workload.dir/generator.cpp.o"
  "CMakeFiles/bbsched_workload.dir/generator.cpp.o.d"
  "CMakeFiles/bbsched_workload.dir/job.cpp.o"
  "CMakeFiles/bbsched_workload.dir/job.cpp.o.d"
  "CMakeFiles/bbsched_workload.dir/synthetic.cpp.o"
  "CMakeFiles/bbsched_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/bbsched_workload.dir/trace_io.cpp.o"
  "CMakeFiles/bbsched_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/bbsched_workload.dir/wl_stats.cpp.o"
  "CMakeFiles/bbsched_workload.dir/wl_stats.cpp.o.d"
  "CMakeFiles/bbsched_workload.dir/workload.cpp.o"
  "CMakeFiles/bbsched_workload.dir/workload.cpp.o.d"
  "libbbsched_workload.a"
  "libbbsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
