// test_incremental_metrics.cpp — the differential-testing contract between
// the streaming metrics engine and the batch reference (DESIGN.md §11):
// `IncrementalScheduleMetrics` must reproduce `compute_metrics` byte for
// byte on every cell of the policy grid, under any event order (the
// simulator streams outcomes in completion order, not trace order), and
// under any shard split folded back together with merge().
//
// Equality is checked on the %.17g serialization of every ScheduleMetrics
// field (the tests/sim/serialize_result.hpp discipline): two serializations
// compare equal iff the metrics are bit-identical.
#include "metrics/schedule_metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/grid.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"

namespace bbsched {
namespace {

/// Lossless textual dump of every ScheduleMetrics field; equal strings iff
/// bit-identical metrics.
std::string serialize(const ScheduleMetrics& m) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%zu,%zu",
                m.node_usage, m.bb_usage, m.ssd_usage, m.ssd_waste, m.avg_wait,
                m.avg_slowdown, m.p95_wait, m.max_wait, m.jobs_measured,
                m.jobs_backfilled);
  return buf;
}

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.jobs_per_workload = 60;
  config.window_size = 6;
  config.ga.generations = 5;
  config.ga.population_size = 6;
  return config;
}

/// Observer that streams outcomes into an incremental accumulator, exactly
/// as the grid's StreamingCellObserver does.
class MetricsObserver : public SimObserver {
 public:
  MetricsObserver(const MachineConfig& machine, MeasureInterval interval)
      : metrics_(machine, interval.begin, interval.end) {}
  void on_job_outcome(const JobOutcome& outcome) override {
    metrics_.add(outcome);
  }
  const IncrementalScheduleMetrics& metrics() const { return metrics_; }

 private:
  IncrementalScheduleMetrics metrics_;
};

/// Feed `outcomes` (already permuted/sliced by the caller) into a fresh
/// accumulator built for `result`'s interval.
IncrementalScheduleMetrics accumulate(const SimResult& result,
                                      const std::vector<JobOutcome>& outcomes) {
  IncrementalScheduleMetrics acc(result.machine, result.measure_begin,
                                 result.measure_end);
  for (const auto& o : outcomes) acc.add(o);
  return acc;
}

/// Returns the cell's jobs_measured so callers can assert the grid-wide
/// identity check was not vacuous.
std::size_t check_cell(const ExperimentConfig& config, const SuiteEntry& entry,
                       const std::string& method, std::mt19937_64& rng) {
  // One simulation with the streaming observer attached: the observer sees
  // outcomes in completion order, which already differs from the trace
  // order SimResult::outcomes is assembled in.
  MetricsObserver observer(
      entry.workload.machine,
      measurement_interval(entry.workload, config.sim_config()));
  const SimResult result =
      run_single(config, entry.workload, method, &observer);
  const ScheduleMetrics batch_metrics = compute_metrics(result);
  const std::string batch = serialize(batch_metrics);
  const std::string label = entry.label + "/" + method;

  EXPECT_EQ(serialize(observer.metrics().finalize()), batch)
      << label << ": streamed completion-order metrics diverge from batch";
  EXPECT_EQ(observer.metrics().jobs_seen(), result.outcomes.size()) << label;

  // Any other order must agree too.
  std::vector<JobOutcome> shuffled = result.outcomes;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  EXPECT_EQ(serialize(accumulate(result, shuffled).finalize()), batch)
      << label << ": shuffled event order diverges from batch";

  // Random 3-way shard split, folded with merge(): still byte-identical.
  IncrementalScheduleMetrics shards[3] = {
      {result.machine, result.measure_begin, result.measure_end},
      {result.machine, result.measure_begin, result.measure_end},
      {result.machine, result.measure_begin, result.measure_end}};
  std::uniform_int_distribution<int> pick(0, 2);
  for (const auto& o : shuffled) shards[pick(rng)].add(o);
  shards[0].merge(shards[1]);
  shards[0].merge(shards[2]);
  EXPECT_EQ(serialize(shards[0].finalize()), batch)
      << label << ": sharded merge() diverges from unsharded";
  return batch_metrics.jobs_measured;
}

TEST(IncrementalMetrics, MatchesBatchOnFullMainPolicyGrid) {
  const auto config = tiny_config();
  std::mt19937_64 rng(2024);
  const auto methods = standard_method_names();
  std::size_t jobs_measured_total = 0;
  for (const auto& entry : build_main_workloads(config)) {
    for (const auto& method : methods) {
      jobs_measured_total += check_cell(config, entry, method, rng);
    }
  }
  // Guard against a vacuous pass: the grid must exercise real wait/usage
  // accumulation, not just empty intervals.
  EXPECT_GT(jobs_measured_total, 100u);
}

TEST(IncrementalMetrics, MatchesBatchOnFullSsdPolicyGrid) {
  const auto config = tiny_config();
  std::mt19937_64 rng(4077);
  const auto methods = ssd_method_names();
  std::size_t jobs_measured_total = 0;
  for (const auto& entry : build_ssd_workloads(config)) {
    for (const auto& method : methods) {
      jobs_measured_total += check_cell(config, entry, method, rng);
    }
  }
  EXPECT_GT(jobs_measured_total, 100u);
}

TEST(IncrementalMetrics, MergeIsAssociativeAcrossRandomShardSplits) {
  const auto config = tiny_config();
  const auto workloads = build_main_workloads(config);
  ASSERT_FALSE(workloads.empty());
  const SimResult result =
      run_single(config, workloads.front().workload, "BBSched");
  const std::string expected =
      serialize(accumulate(result, result.outcomes).finalize());

  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> pick(0, 2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<JobOutcome> parts[3];
    for (const auto& o : result.outcomes) parts[pick(rng)].push_back(o);
    IncrementalScheduleMetrics a = accumulate(result, parts[0]);
    IncrementalScheduleMetrics b = accumulate(result, parts[1]);
    IncrementalScheduleMetrics c = accumulate(result, parts[2]);
    // (a + b) + c  vs  a + (b + c): both must equal the unsharded result.
    IncrementalScheduleMetrics left = accumulate(result, parts[0]);
    left.merge(b);
    left.merge(c);
    IncrementalScheduleMetrics right_tail = accumulate(result, parts[1]);
    right_tail.merge(c);
    a.merge(right_tail);
    EXPECT_EQ(serialize(left.finalize()), expected) << "trial " << trial;
    EXPECT_EQ(serialize(a.finalize()), expected) << "trial " << trial;
  }
}

TEST(IncrementalMetrics, MergeRejectsMismatchedIntervalOrConfig) {
  MachineConfig m;
  m.name = "m";
  m.nodes = 4;
  IncrementalScheduleMetrics base(m, 0, 100);
  IncrementalScheduleMetrics other_begin(m, 10, 100);
  IncrementalScheduleMetrics other_end(m, 0, 200);
  MetricsConfig strict;
  strict.slowdown_min_runtime = 120;
  IncrementalScheduleMetrics other_config(m, 0, 100, strict);
  EXPECT_THROW(base.merge(other_begin), std::invalid_argument);
  EXPECT_THROW(base.merge(other_end), std::invalid_argument);
  EXPECT_THROW(base.merge(other_config), std::invalid_argument);
}

TEST(IncrementalMetrics, EmptyAccumulatorMatchesBatchOnEmptyResult) {
  MachineConfig m;
  m.name = "m";
  m.nodes = 8;
  SimResult result;
  result.machine = m;
  result.measure_begin = 0;
  result.measure_end = 100;
  IncrementalScheduleMetrics acc(m, 0, 100);
  EXPECT_EQ(serialize(acc.finalize()), serialize(compute_metrics(result)));
  EXPECT_EQ(acc.jobs_seen(), 0u);
}

TEST(IncrementalMetrics, MemoryStaysConstantInJobCount) {
  MachineConfig m;
  m.name = "m";
  m.nodes = 100;
  IncrementalScheduleMetrics acc(m, 0, 1e7);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> wait(0.0, 1e5);
  std::uniform_real_distribution<double> runtime(30.0, 1e4);
  auto feed = [&](int n) {
    for (int i = 0; i < n; ++i) {
      JobOutcome o;
      o.submit = static_cast<Time>(i);
      o.start = o.submit + wait(rng);
      o.runtime = runtime(rng);
      o.end = o.start + o.runtime;
      o.walltime = o.runtime;
      o.nodes = 1 + (i % 64);
      o.bb_gb = static_cast<double>(i % 1000);
      acc.add(o);
    }
  };
  feed(100);
  const std::size_t small = acc.memory_bytes();
  feed(100000);
  const std::size_t large = acc.memory_bytes();
  EXPECT_EQ(acc.jobs_seen(), 100100u);
  // O(1) in jobs: the footprint may wobble by a few ExactSum partials
  // (bounded by binade count) but never grows with the job count.
  EXPECT_LE(large, small + 64 * sizeof(double));
  EXPECT_LT(large, std::size_t{64} * 1024);
}

}  // namespace
}  // namespace bbsched
