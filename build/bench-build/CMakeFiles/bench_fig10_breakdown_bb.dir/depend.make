# Empty dependencies file for bench_fig10_breakdown_bb.
# This may be replaced when dependencies are built.
