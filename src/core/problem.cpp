#include "core/problem.hpp"

#include <algorithm>
#include <cassert>

namespace bbsched {

void MooProblem::pin(std::size_t index) {
  assert(index < num_vars());
  if (!is_pinned(index)) pinned_.push_back(index);
}

bool MooProblem::is_pinned(std::size_t index) const {
  return std::find(pinned_.begin(), pinned_.end(), index) != pinned_.end();
}

void MooProblem::apply_pins(Genes& genes) const {
  for (std::size_t idx : pinned_) genes[idx] = 1;
}

bool MooProblem::repair(Genes& genes, Rng& rng) const {
  apply_pins(genes);
  if (feasible(genes)) return false;
  // Collect clearable (set, non-pinned) positions and clear them in random
  // order until the selection fits.
  std::vector<std::size_t> clearable;
  clearable.reserve(genes.size());
  for (std::size_t i = 0; i < genes.size(); ++i) {
    if (genes[i] && !is_pinned(i)) clearable.push_back(i);
  }
  // Fisher-Yates shuffle driven by the solver's RNG for determinism.
  for (std::size_t i = clearable.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(clearable[i - 1], clearable[j]);
  }
  for (std::size_t idx : clearable) {
    genes[idx] = 0;
    if (feasible(genes)) return true;
  }
  // With all non-pinned genes cleared the selection is the pinned set, which
  // the caller guarantees feasible (or empty, which is trivially feasible).
  assert(feasible(genes));
  return true;
}

void MooProblem::evaluate_into(Chromosome& c) const {
  c.objectives.resize(num_objectives());
  evaluate(c.genes, c.objectives);
}

}  // namespace bbsched
