// replay_trace — replay a real job log through the scheduling methods.
//
// Reads a trace in the library's native CSV format or the Parallel Workloads
// Archive SWF format, optionally applies the paper's S-style burst-buffer
// expansion (how §4.1 enhanced the Theta trace with Darshan-derived
// requests), and prints the §4.2 metrics for the requested methods.
//
//   ./replay_trace --trace mylog.swf --format swf --nodes 4392 \
//                  --bb-tb 1260 --methods Baseline,BBSched --expand-bb 0.5
//
// Export a synthetic trace to study it externally:
//   ./replay_trace --emit theta.csv --jobs 2000
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "metrics/schedule_metrics.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_io.hpp"
#include "workload/wl_stats.hpp"

namespace {

std::vector<std::string> split_csv_list(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bbsched;
  std::string trace_path;
  std::string format = "csv";
  std::string methods_list = "Baseline,BBSched";
  std::string base_name = "FCFS";
  std::string emit_path;
  std::int64_t nodes = 4392;
  double bb_tb = 1260;
  std::int64_t cores_per_node = 1;
  std::int64_t window = 20;
  std::int64_t generations = 500;
  std::int64_t jobs = 2000;
  double expand_bb = 0;

  ArgParser parser("bbsched replay_trace: run scheduling methods on a trace");
  parser.add_string("trace", &trace_path, "trace file (omit to synthesize)");
  parser.add_string("format", &format, "trace format: csv or swf");
  parser.add_string("methods", &methods_list, "comma-separated method list");
  parser.add_string("base", &base_name, "base scheduler: FCFS or WFP");
  parser.add_string("emit", &emit_path,
                    "write the (possibly expanded) trace as CSV and exit");
  parser.add_int("nodes", &nodes, "machine node count");
  parser.add_double("bb-tb", &bb_tb, "machine burst buffer (TB)");
  parser.add_int("cores-per-node", &cores_per_node, "SWF cores per node");
  parser.add_int("window", &window, "scheduling window size");
  parser.add_int("generations", &generations, "GA generations");
  parser.add_int("jobs", &jobs, "synthetic job count when no trace given");
  parser.add_double("expand-bb", &expand_bb,
                    "expand BB-requesting job fraction to this value (0=off)");
  std::int64_t threads = 0;
  parser.add_int("threads", &threads,
                 "solver/grid threads (0 = BBSCHED_THREADS or all cores)");
  TelemetryOptions telemetry;
  telemetry.register_flags(parser);
  try {
    if (!parser.parse(argc, argv)) return 0;
    telemetry.apply();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (threads > 0) set_global_threads(static_cast<std::size_t>(threads));

  try {
    MachineConfig machine;
    machine.name = "replay";
    machine.nodes = nodes;
    machine.burst_buffer_gb = tb(bb_tb);

    Workload workload;
    if (trace_path.empty()) {
      // No trace: synthesize a Theta-like workload on the given machine
      // scale so the tool is usable out of the box.
      auto model = theta_model(static_cast<std::size_t>(jobs));
      model.machine = machine;
      for (auto& bucket : model.size_buckets) {
        bucket.min_nodes = std::min(bucket.min_nodes, machine.nodes);
        bucket.max_nodes = std::min(bucket.max_nodes, machine.nodes);
      }
      workload = generate_workload(model, 42);
    } else if (format == "swf") {
      workload = read_swf_file(trace_path, "replay", machine,
                               static_cast<int>(cores_per_node));
    } else if (format == "csv") {
      workload = read_trace_csv_file(trace_path, "replay", machine);
    } else {
      std::fprintf(stderr, "unknown --format %s\n", format.c_str());
      return 1;
    }

    if (expand_bb > 0) {
      BbExpansionParams expansion;
      expansion.target_fraction = expand_bb;
      expansion.pool_threshold = tb(5);
      // If the trace has no requests above the threshold, fall back to a
      // Theta-like model pool so the expansion remains usable on CPU-only
      // SWF traces.
      if (workload.total_bb_request() <= expansion.pool_threshold) {
        expansion.pool =
            sample_bb_pool(0.25, gb(1), tb(285), expansion.pool_threshold,
                           2048, 7);
      }
      workload = expand_bb_requests(workload, expansion, 9);
    }

    print_summary(workload, std::cout);
    std::cout << '\n';

    if (!emit_path.empty()) {
      write_trace_csv_file(workload, emit_path);
      std::cout << "trace written to " << emit_path << '\n';
      return 0;
    }

    SimConfig config;
    config.window_size = static_cast<std::size_t>(window);
    GaParams ga;
    ga.generations = static_cast<int>(generations);
    const auto base = make_base_scheduler(base_name);

    ConsoleTable table({"method", "node usage", "BB usage", "avg wait",
                        "slowdown", "decision (ms)"},
                       {Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight, Align::kRight});
    for (const auto& method : split_csv_list(methods_list)) {
      const auto policy = make_policy(method, ga);
      const SimResult result = simulate(workload, config, *base, *policy);
      const ScheduleMetrics m = compute_metrics(result);
      table.add_row({method, ConsoleTable::pct(m.node_usage),
                     ConsoleTable::pct(m.bb_usage),
                     format_duration(m.avg_wait),
                     ConsoleTable::num(m.avg_slowdown),
                     ConsoleTable::num(
                         result.decisions.mean_solve_seconds() * 1e3, 2)});
    }
    table.print(std::cout);
    telemetry.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay_trace: %s\n", e.what());
    return 1;
  }
  return 0;
}
