file(REMOVE_RECURSE
  "CMakeFiles/bbsched_common.dir/argparse.cpp.o"
  "CMakeFiles/bbsched_common.dir/argparse.cpp.o.d"
  "CMakeFiles/bbsched_common.dir/csv.cpp.o"
  "CMakeFiles/bbsched_common.dir/csv.cpp.o.d"
  "CMakeFiles/bbsched_common.dir/env.cpp.o"
  "CMakeFiles/bbsched_common.dir/env.cpp.o.d"
  "CMakeFiles/bbsched_common.dir/rng.cpp.o"
  "CMakeFiles/bbsched_common.dir/rng.cpp.o.d"
  "CMakeFiles/bbsched_common.dir/stats.cpp.o"
  "CMakeFiles/bbsched_common.dir/stats.cpp.o.d"
  "CMakeFiles/bbsched_common.dir/table.cpp.o"
  "CMakeFiles/bbsched_common.dir/table.cpp.o.d"
  "CMakeFiles/bbsched_common.dir/units.cpp.o"
  "CMakeFiles/bbsched_common.dir/units.cpp.o.d"
  "libbbsched_common.a"
  "libbbsched_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
