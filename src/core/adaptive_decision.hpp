// adaptive_decision.hpp — the adaptive decision making the paper sketches
// as future work (§3.2.4: "system managers dynamically adjust their
// selection policy according to scheduling performance").
//
// The rule keeps an exponentially weighted moving average of the node and
// burst-buffer utilization of the solutions it has committed.  When the
// committed BB utilization persistently lags node utilization, the
// trade-off factor is lowered (trades toward BB become easier); when BB
// leads, it is raised.  The factor is clamped to [min_factor, max_factor]
// around the paper's static 2x.
#pragma once

#include "core/decision.hpp"

namespace bbsched {

/// Self-tuning variant of NodeFirstTradeoffRule for two-objective windows.
class AdaptiveTradeoffRule : public DecisionRule {
 public:
  struct Params {
    double initial_factor = 2.0;  ///< the paper's static rule
    double min_factor = 0.5;
    double max_factor = 4.0;
    /// EWMA smoothing of the committed utilizations (0 < alpha <= 1).
    double ewma_alpha = 0.05;
    /// Multiplicative step applied per decision when the utilization gap
    /// exceeds `gap_deadband`.
    double adjust_step = 1.05;
    double gap_deadband = 0.05;
  };

  AdaptiveTradeoffRule() : AdaptiveTradeoffRule(Params{}) {}
  explicit AdaptiveTradeoffRule(Params params);

  std::size_t choose(std::span<const Chromosome> pareto_set) const override;
  std::string name() const override { return "adaptive-tradeoff"; }

  /// Current trade-off factor (observable for tests and telemetry).
  double factor() const { return factor_; }
  /// Smoothed utilizations of committed solutions.
  double ewma_node() const { return ewma_node_; }
  double ewma_bb() const { return ewma_bb_; }

 private:
  Params params_;
  // choose() is conceptually const for callers (it picks a solution); the
  // adaptation state is controller memory, not an observable result.
  mutable double factor_;
  mutable double ewma_node_ = 0;
  mutable double ewma_bb_ = 0;
  mutable bool primed_ = false;
};

}  // namespace bbsched
