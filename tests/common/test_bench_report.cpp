// test_bench_report.cpp — structured bench results (DESIGN.md §14): the
// quantile math bench_compare.py mirrors, JSON shape/escaping, param
// overwrite semantics, output-path resolution, and the atomic file write
// with automatic top-phase capture.
#include "common/bench_report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace bbsched {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(BenchQuantile, MatchesLinearInterpolation) {
  EXPECT_DOUBLE_EQ(bench_quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(bench_quantile({7.0}, 0.1), 7.0);
  EXPECT_DOUBLE_EQ(bench_quantile({7.0}, 0.9), 7.0);
  // Sorted {1,2,3,4}: median interpolates between the middle pair.
  EXPECT_DOUBLE_EQ(bench_quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(bench_quantile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(bench_quantile({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
  // p10 of {10,20,...,100}: index 0.9 → 10 + 0.9*(20-10).
  std::vector<double> deciles;
  for (int i = 1; i <= 10; ++i) deciles.push_back(10.0 * i);
  EXPECT_NEAR(bench_quantile(deciles, 0.1), 19.0, 1e-12);
  EXPECT_NEAR(bench_quantile(deciles, 0.9), 91.0, 1e-12);
}

TEST(BenchReport, JsonCarriesSchemaSeriesAndSummaries) {
  BenchReport report("unit_test");
  report.set_param("jobs", "40");
  report.set_param("jobs", "80");  // overwrite, not duplicate
  BenchSeries& s = report.add_series(
      "solve_s", {{"method", "nsga2"}, {"window", "5"}}, "s", "lower");
  s.add_sample(2.0);
  s.add_sample(1.0);
  s.add_sample(3.0);
  report.add_value("gd", {}, 0.125, "distance", "lower");

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"bbsched-bench-v1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":\"80\""), std::string::npos);
  EXPECT_EQ(json.find("\"jobs\":\"40\""), std::string::npos)
      << "set_param must overwrite in place: " << json;
  EXPECT_NE(json.find("\"method\":\"nsga2\""), std::string::npos);
  EXPECT_NE(json.find("\"direction\": \"lower\""), std::string::npos);
  EXPECT_NE(json.find("\"repeats\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"median\": 2"), std::string::npos);
  // Provenance block is always present.
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
}

TEST(BenchReport, JsonEscapesStrings) {
  BenchReport report("esc");
  report.add_value("weird", {{"label", "a\"b\\c\n"}}, 1.0);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos) << json;
}

TEST(BenchOutPath, DirectoryVsExplicitFile) {
  EXPECT_EQ(bench_out_path("results", "fig6"),
            std::string("results/BENCH_fig6.json"));
  EXPECT_EQ(bench_out_path("results/", "fig6"),
            std::string("results/BENCH_fig6.json"));
  EXPECT_EQ(bench_out_path("out/custom.json", "fig6"),
            std::string("out/custom.json"));
}

TEST(BenchReport, WriteFileCreatesParentsAndCapturesTopPhases) {
  const fs::path dir =
      fs::temp_directory_path() / "bbsched_bench_report_test" / "nested";
  fs::remove_all(dir.parent_path());

  set_profiler_enabled(true);
  profiler_clear();
  {
    PROF_PHASE("bench.phase");
  }
  BenchReport report("writer");
  report.add_value("x", {}, 1.0);
  const std::string path = bench_out_path(dir.string(), report.name());
  report.write_file(path);
  set_profiler_enabled(false);
  profiler_clear();

  ASSERT_TRUE(fs::exists(path)) << path;
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"name\": \"writer\""), std::string::npos);
  // The profiler was live, so write_file snapshots its top phases.
  EXPECT_NE(json.find("bench.phase"), std::string::npos) << json;
  fs::remove_all(dir.parent_path());
}

}  // namespace
}  // namespace bbsched
