#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace bbsched {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t base, std::string_view label_a,
                       std::string_view label_b) {
  // FNV-1a, seeded with the base, with a separator byte between labels so
  // ("ab", "c") and ("a", "bc") differ.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ base;
  const auto fold = [&h](std::string_view label) {
    for (unsigned char c : label) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    h ^= 0x1f;
    h *= 0x100000001b3ULL;
  };
  fold(label_a);
  fold(label_b);
  return splitmix64(h);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  assert(rate > 0);
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::normal(double mean, double stddev) {
  const double u1 = 1.0 - uniform();  // (0, 1]
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0 && lo > 0 && lo < hi);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t Rng::weighted_index(const double* weights, std::size_t n) {
  assert(n > 0);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  double r = uniform() * total;
  for (std::size_t i = 0; i < n; ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return n - 1;  // numerical edge: all mass consumed
}

Rng Rng::fork() {
  Rng child(0);
  // A jump-free fork: seed the child from two fresh draws; collisions across
  // forks are astronomically unlikely and determinism is preserved.
  std::uint64_t s = next() ^ rotl(next(), 32);
  child.reseed(s);
  return child;
}

}  // namespace bbsched
