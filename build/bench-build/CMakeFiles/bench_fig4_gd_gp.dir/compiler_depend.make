# Empty compiler generated dependencies file for bench_fig4_gd_gp.
# This may be replaced when dependencies are built.
