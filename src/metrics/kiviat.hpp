// kiviat.hpp — the holistic Kiviat-graph comparison (Figures 13 and 14).
//
// The paper plots, per workload, each method's performance on every metric
// normalized to [0, 1] across the compared methods: 1 is the best method on
// that metric, 0 the worst.  Wait time and slowdown enter as reciprocals
// (smaller is better) — the same transformation the figures apply.  The
// polygon area (with metrics as evenly spaced spokes) summarizes a method:
// "the larger the area is, the better the overall performance is", which is
// also how the abstract's "improves scheduling performance by up to 41 %"
// style overall numbers are compared.
#pragma once

#include <string>
#include <vector>

namespace bbsched {

/// One method's raw metric values, all oriented so larger is better (the
/// caller applies reciprocals to wait/slowdown before construction or uses
/// kiviat_from_metrics below).
struct KiviatSeries {
  std::string method;
  std::vector<double> values;  ///< one per axis, larger = better
};

/// Min-max normalize each axis across methods to [0, 1].  Axes where every
/// method ties normalize to 1 for all.  `rel_tie_tolerance` treats an axis
/// whose spread is below that fraction of its magnitude as a tie, so that
/// simulation noise is not amplified into a full 0..1 ranking.  All series
/// must have equal length.
std::vector<KiviatSeries> kiviat_normalize(std::vector<KiviatSeries> series,
                                           double rel_tie_tolerance = 0.0);

/// Area of the Kiviat polygon of one normalized series (unit: fraction of
/// the regular-polygon maximum; 1.0 = best on every axis).
double kiviat_area(const KiviatSeries& normalized);

/// Convenience: orient a raw metric for the Kiviat graph — pass through for
/// larger-is-better metrics, reciprocal (guarding zero) otherwise.
double kiviat_orient(double value, bool larger_is_better);

}  // namespace bbsched
