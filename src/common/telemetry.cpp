#include "common/telemetry.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <sstream>

#include "common/argparse.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/profiler.hpp"
#include "common/trace.hpp"

namespace bbsched {

namespace {

std::atomic<bool> g_progress_enabled{false};

// Crash-flush state.  The mutex serializes arm/disarm/flush; the handlers
// themselves only read under the lock and write files, so a flush from
// std::terminate cannot race a concurrent finish().
std::mutex g_flush_mutex;
std::string g_flush_trace_out;
std::string g_flush_metrics_out;
bool g_flush_armed = false;
bool g_hooks_installed = false;
std::terminate_handler g_previous_terminate = nullptr;

void flush_locked() noexcept {
  // Handlers must not throw: a failed partial write (disk full, bad path)
  // is swallowed — the process is already dying.
  if (!g_flush_armed) return;
  if (!g_flush_trace_out.empty()) {
    try {
      write_trace_json_file(g_flush_trace_out);
    } catch (...) {
    }
  }
  if (!g_flush_metrics_out.empty()) {
    try {
      MetricsRegistry::global().write_csv_file(g_flush_metrics_out);
    } catch (...) {
    }
  }
}

void atexit_flush() { telemetry_flush_now(); }

[[noreturn]] void terminate_flush() {
  telemetry_flush_now();
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

}  // namespace

bool progress_enabled() {
  return g_progress_enabled.load(std::memory_order_relaxed);
}

void set_progress_enabled(bool enabled) {
  g_progress_enabled.store(enabled, std::memory_order_relaxed);
}

void register_crash_flush(const std::string& trace_out,
                          const std::string& metrics_out) {
  std::lock_guard<std::mutex> lock(g_flush_mutex);
  g_flush_trace_out = trace_out;
  g_flush_metrics_out = metrics_out;
  g_flush_armed = !trace_out.empty() || !metrics_out.empty();
  if (g_flush_armed && !g_hooks_installed) {
    g_hooks_installed = true;
    std::atexit(&atexit_flush);
    g_previous_terminate = std::set_terminate(&terminate_flush);
  }
}

void disarm_crash_flush() {
  std::lock_guard<std::mutex> lock(g_flush_mutex);
  g_flush_armed = false;
}

void telemetry_flush_now() noexcept {
  // try_lock: if another thread crashed while holding the flush mutex we
  // would rather skip the partial snapshot than deadlock inside terminate.
  if (!g_flush_mutex.try_lock()) return;
  flush_locked();
  g_flush_mutex.unlock();
}

void TelemetryOptions::register_flags(ArgParser& parser) {
  parser.add_string("log-level", &log_level,
                    "log threshold: trace|debug|info|warn|error|off "
                    "(default BBSCHED_LOG or info)");
  parser.add_string("trace-out", &trace_out,
                    "write Chrome trace JSON here (view at ui.perfetto.dev; "
                    "default BBSCHED_TRACE or off)");
  parser.add_string("metrics-out", &metrics_out,
                    "write metrics snapshot CSV here "
                    "(default BBSCHED_METRICS or off)");
  parser.add_bool("progress", &progress,
                  "print a [progress] heartbeat line with RSS/throughput/ETA "
                  "while a campaign runs (default BBSCHED_PROGRESS or off)");
  parser.add_bool("profile", &profile,
                  "record the hierarchical phase profile and print the phase "
                  "tree at exit (default BBSCHED_PROFILE or off)");
  parser.add_string("profile-out", &profile_out,
                    "write the phase tree as CSV here (implies --profile; "
                    "default BBSCHED_PROFILE_OUT or off)");
}

void TelemetryOptions::apply() {
  if (!log_level.empty()) set_log_level(parse_log_level(log_level));
  if (trace_out.empty()) trace_out = env_string("BBSCHED_TRACE", "");
  if (metrics_out.empty()) metrics_out = env_string("BBSCHED_METRICS", "");
  if (!progress) progress = env_int("BBSCHED_PROGRESS", 0) != 0;
  if (!profile) profile = env_int("BBSCHED_PROFILE", 0) != 0;
  if (profile_out.empty()) profile_out = env_string("BBSCHED_PROFILE_OUT", "");
  if (!trace_out.empty()) set_trace_enabled(true);
  if (!metrics_out.empty()) set_metrics_enabled(true);
  if (profile || !profile_out.empty()) set_profiler_enabled(true);
  set_progress_enabled(progress);
  register_crash_flush(trace_out, metrics_out);
}

void TelemetryOptions::finish() const {
  if (!trace_out.empty()) {
    write_trace_json_file(trace_out);
    log_info("telemetry", "trace written",
             {{"path", trace_out}, {"events", trace_event_count()}});
  }
  if (!metrics_out.empty()) {
    MetricsRegistry::global().write_csv_file(metrics_out);
    log_info("telemetry", "metrics snapshot written", {{"path", metrics_out}});
  }
  if (profiler_enabled()) {
    const ProfileReport report = profiler_report();
    if (!profile_out.empty()) {
      write_profile_csv_file(profile_out, report);
      log_info("telemetry", "profile written", {{"path", profile_out}});
    }
    // The tree goes to stderr so bench tables on stdout stay parseable.
    if (profile && !report.empty()) {
      std::ostringstream tree;
      write_profile_text(tree, report);
      std::fputs(tree.str().c_str(), stderr);
    }
  }
  disarm_crash_flush();
}

}  // namespace bbsched
