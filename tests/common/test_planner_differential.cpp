// Differential/property harness: drive Planner and the obviously-correct
// NaivePlanner through seeded randomized operation sequences and demand
// bit-identical answers from every query.
//
// All generated requests and capacities are integer-valued, so both
// implementations compute exact arithmetic and the comparison can be == on
// doubles (see the numerical contract in planner.hpp).  Times mix an integer
// grid (to force ties, touching boundaries and same-instant releases) with
// arbitrary reals.
//
// Reproduction: on mismatch the test prints the failing seed and the full op
// log, and writes the seed to planner_diff_failing_seed.txt (uploaded as a
// CI artifact).  Re-run just that sequence, verbosely, with
//   BBSCHED_DIFF_REPRO=<seed> ./bbsched_tests
//       --gtest_filter='PlannerDifferential.*'
//
// Sequence count: BBSCHED_DIFF_SEQUENCES (default 1500 — the bounded subset
// CI runs on every build).  The `planner_differential_long` ctest entry
// (label "long", configuration "long") re-runs this test at 10000 sequences:
//   ctest -C long -R planner_differential_long
#include <gtest/gtest.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/planner.hpp"
#include "common/rng.hpp"

namespace bbsched {
namespace {

constexpr const char* kFailingSeedFile = "planner_diff_failing_seed.txt";

std::string fmt_vec(const std::vector<double>& v) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  os << "]";
  return os.str();
}

/// A time that is frequently on a small integer grid (ties, touching spans)
/// and otherwise an arbitrary real.
Time random_time(Rng& rng) {
  if (rng.bernoulli(0.7)) {
    return static_cast<Time>(rng.uniform_int(0, 60));
  }
  return rng.uniform(0.0, 60.0);
}

Time random_duration(Rng& rng) {
  const double roll = rng.uniform();
  if (roll < 0.10) return 0;  // zero-duration spans / point queries
  if (roll < 0.15) return kPlannerNever;
  if (roll < 0.80) return static_cast<Time>(rng.uniform_int(1, 40));
  return rng.uniform(0.0, 40.0);
}

std::vector<double> random_request(Rng& rng,
                                   const std::vector<double>& capacity) {
  std::vector<double> req(capacity.size());
  for (std::size_t i = 0; i < req.size(); ++i) {
    // Up to full capacity per resource; overlapping spans oversubscribe the
    // ledger, which both implementations must model identically.  Zero
    // requests exercise no-op dimensions.
    req[i] = static_cast<double>(
        rng.uniform_int(0, static_cast<std::int64_t>(capacity[i])));
  }
  return req;
}

/// Run one randomized sequence; returns true on full agreement.  On
/// mismatch, `failure` receives a report including the op log.
bool run_sequence(std::uint64_t seed, bool verbose, std::string* failure) {
  Rng rng(mix_seed(seed, "planner-differential"));
  const std::size_t k = static_cast<std::size_t>(rng.uniform_int(1, 4));
  std::vector<double> capacity(k);
  for (auto& c : capacity) {
    c = static_cast<double>(rng.uniform_int(1, 100));
  }

  Planner planner(capacity);
  NaivePlanner naive(capacity);
  std::vector<std::pair<SpanId, SpanId>> live;  // (planner id, naive id)
  std::vector<std::string> log;
  log.push_back("capacity " + fmt_vec(capacity));

  const auto fail = [&](const std::string& what) {
    std::ostringstream os;
    os << "planner/naive mismatch (seed " << seed << "): " << what
       << "\nop log:";
    for (const auto& line : log) os << "\n  " << line;
    os << "\nreproduce: BBSCHED_DIFF_REPRO=" << seed
       << " ./bbsched_tests --gtest_filter='PlannerDifferential.*'";
    *failure = os.str();
    std::ofstream(kFailingSeedFile) << seed << "\n";
    return false;
  };

  /// Bit-exact agreement probe at time t (run after every mutation).
  const auto check_avail_at = [&](Time t) {
    const auto a = planner.avail_at(t);
    const auto b = naive.avail_at(t);
    if (a != b) {
      return fail("avail_at(" + std::to_string(t) + "): planner " +
                  fmt_vec(a) + " vs naive " + fmt_vec(b));
    }
    return true;
  };

  const int ops = static_cast<int>(rng.uniform_int(20, 80));
  for (int op = 0; op < ops; ++op) {
    const std::int64_t choice = rng.uniform_int(0, 99);
    if (choice < 35 || live.empty()) {
      const Time t0 = random_time(rng);
      Time d = random_duration(rng);
      const auto req = random_request(rng, capacity);
      const std::uint64_t tag = static_cast<std::uint64_t>(
          rng.uniform_int(0, 5));  // small range: force tag ties too
      log.push_back("add_span(" + std::to_string(t0) + ", " +
                    std::to_string(d) + ", " + fmt_vec(req) + ", tag=" +
                    std::to_string(tag) + ")");
      live.emplace_back(planner.add_span(t0, d, req, tag),
                        naive.add_span(t0, d, req, tag));
      // Probe the span end when finite (query times must be finite; a span
      // with infinite duration simply never ends).
      const Time end_probe = std::isfinite(t0 + d) ? t0 + d : 1.0e15;
      if (!check_avail_at(t0) || !check_avail_at(end_probe) ||
          !check_avail_at(random_time(rng))) {
        return false;
      }
    } else if (choice < 55) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const auto [pid, nid] = live[pick];
      const Planner::SpanInfo span = planner.span(pid);
      log.push_back("remove_span(start=" + std::to_string(span.start) +
                    ", end=" + std::to_string(span.end) + ")");
      planner.remove_span(pid);
      naive.remove_span(nid);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      if (!check_avail_at(span.start) || !check_avail_at(random_time(rng))) {
        return false;
      }
    } else if (choice < 70) {
      const Time t = random_time(rng);
      log.push_back("avail_at(" + std::to_string(t) + ")");
      if (!check_avail_at(t)) return false;
    } else if (choice < 85) {
      const Time t = random_time(rng);
      const Time d = random_duration(rng);
      log.push_back("avail_during(" + std::to_string(t) + ", " +
                    std::to_string(d) + ")");
      const auto a = planner.avail_during(t, d);
      const auto b = naive.avail_during(t, d);
      if (a != b) {
        return fail("avail_during(" + std::to_string(t) + ", " +
                    std::to_string(d) + "): planner " + fmt_vec(a) +
                    " vs naive " + fmt_vec(b));
      }
    } else {
      const Time after = random_time(rng);
      const Time d = random_duration(rng);
      const auto req = random_request(rng, capacity);
      log.push_back("earliest_fit(" + std::to_string(after) + ", " +
                    std::to_string(d) + ", " + fmt_vec(req) + ")");
      const Time a = planner.earliest_fit(after, d, req);
      const Time b = naive.earliest_fit(after, d, req);
      if (!(a == b)) {  // also catches accidental NaN
        return fail("earliest_fit(" + std::to_string(after) + ", " +
                    std::to_string(d) + ", " + fmt_vec(req) + "): planner " +
                    std::to_string(a) + " vs naive " + std::to_string(b));
      }
      // fits_during must agree with earliest_fit's verdict at the fit time.
      if (a != kPlannerNever && !planner.fits_during(a, d, req)) {
        return fail("earliest_fit returned a non-fitting time");
      }
    }
  }

  // Drain every live span: the timeline must collapse back to free capacity.
  for (const auto& [pid, nid] : live) {
    planner.remove_span(pid);
    naive.remove_span(nid);
  }
  if (planner.num_points() != 0) {
    return fail("points remain after every span was removed");
  }
  if (!check_avail_at(random_time(rng))) return false;

  if (verbose) {
    std::fprintf(stderr, "seed %" PRIu64 ": %zu ops ok\n", seed, log.size());
  }
  return true;
}

TEST(PlannerDifferential, RandomOpSequencesMatchNaive) {
  const std::int64_t repro = env_int("BBSCHED_DIFF_REPRO", -1);
  if (repro >= 0) {
    std::string failure;
    if (!run_sequence(static_cast<std::uint64_t>(repro), true, &failure)) {
      FAIL() << failure;
    }
    return;
  }
  const std::int64_t sequences = env_int("BBSCHED_DIFF_SEQUENCES", 1500);
  const std::uint64_t base =
      static_cast<std::uint64_t>(env_int("BBSCHED_DIFF_SEED", 20260808));
  for (std::int64_t i = 0; i < sequences; ++i) {
    std::string failure;
    if (!run_sequence(base + static_cast<std::uint64_t>(i), false,
                      &failure)) {
      FAIL() << failure;  // first failing seed stops the run
    }
  }
}

}  // namespace
}  // namespace bbsched
