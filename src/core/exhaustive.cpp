#include "core/exhaustive.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/profiler.hpp"

namespace bbsched {

ExhaustiveResult ExhaustiveSolver::solve(const MooProblem& problem) const {
  PROF_PHASE("exhaustive.solve");
  const std::size_t w = problem.num_vars();
  if (w > max_vars_) {
    throw std::invalid_argument(
        "ExhaustiveSolver: window of " + std::to_string(w) +
        " exceeds cap of " + std::to_string(max_vars_) +
        " (2^w enumeration)");
  }
  ExhaustiveResult result;
  result.total_count = std::size_t{1} << w;

  // Pinned genes are fixed to 1; enumerate only the free positions.
  std::vector<std::size_t> free_positions;
  Genes genes(w, 0);
  for (std::size_t idx : problem.pinned()) genes[idx] = 1;
  for (std::size_t i = 0; i < w; ++i) {
    if (!genes[i]) free_positions.push_back(i);
  }
  const std::size_t combos = std::size_t{1} << free_positions.size();
  result.total_count = combos;

  std::vector<Chromosome> candidates;
  std::vector<double> objectives(problem.num_objectives());
  // Gray-code walk: successive selections differ in exactly one bit, so
  // linear problems could be evaluated incrementally; we keep evaluation
  // generic (the SSD problem is not linear in the selection) and only use
  // the walk for cheap bit bookkeeping.
  for (std::size_t code = 0; code < combos; ++code) {
    const std::size_t gray = code ^ (code >> 1);
    for (std::size_t b = 0; b < free_positions.size(); ++b) {
      genes[free_positions[b]] = (gray >> b) & 1u;
    }
    if (!problem.feasible(genes)) continue;
    ++result.feasible_count;
    problem.evaluate(genes, objectives);
    // Incremental dominance filter: drop the candidate if dominated; drop
    // stored candidates the new one dominates.  Keeps the working set equal
    // to the running Pareto front instead of all feasible points.
    bool dominated = false;
    for (const auto& c : candidates) {
      if (dominates(c.objectives, objectives)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    std::erase_if(candidates, [&](const Chromosome& c) {
      return dominates(objectives, c.objectives);
    });
    // Skip exact duplicates in objective space with identical genes only;
    // distinct selections with equal objectives are both kept (the decision
    // rule's front-of-window tiebreak needs them).
    Chromosome c;
    c.genes = genes;
    c.objectives = objectives;
    candidates.push_back(std::move(c));
  }
  result.pareto_set = std::move(candidates);
  return result;
}

}  // namespace bbsched
