// Extensibility check (§5's claim, on the generic path): the whole solver
// stack — GA, scalarized GA, exhaustive, decision helpers — must work
// unchanged on a three-resource problem (e.g. nodes + burst buffer + a
// power budget).
#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "core/ga.hpp"
#include "core/multi_resource_problem.hpp"
#include "core/scalar_ga.hpp"

namespace bbsched {
namespace {

/// Nodes, burst buffer, power: three competing resources over six jobs.
MultiResourceProblem power_problem() {
  const std::vector<std::vector<double>> demands{
      {40, 30, 20, 10, 10, 5},   // nodes (capacity 100)
      {0, 50, 10, 40, 0, 0},     // burst buffer GB (capacity 100)
      {50, 10, 30, 5, 20, 5},    // power kW (capacity 100)
  };
  return MultiResourceProblem(demands, {100, 100, 100});
}

TEST(ThreeResources, ExhaustiveFrontIsThreeDimensional) {
  const auto problem = power_problem();
  const auto truth = ExhaustiveSolver().solve(problem);
  ASSERT_FALSE(truth.pareto_set.empty());
  for (const auto& c : truth.pareto_set) {
    EXPECT_EQ(c.objectives.size(), 3u);
    EXPECT_TRUE(problem.feasible(c.genes));
  }
  // The front must contain genuinely conflicting solutions: some best on
  // nodes, some on BB, some on power.
  const auto best_of = [&](std::size_t k) {
    double best = -1;
    for (const auto& c : truth.pareto_set) {
      best = std::max(best, c.objectives[k]);
    }
    return best;
  };
  EXPECT_GT(best_of(0), 0.9);
  EXPECT_GT(best_of(1), 0.9);
  EXPECT_GT(best_of(2), 0.9);
}

TEST(ThreeResources, GaApproximatesThreeObjectiveFront) {
  const auto problem = power_problem();
  GaParams params;
  params.generations = 300;
  params.population_size = 24;
  params.mutation_rate = 0.02;
  const auto approx = MooGaSolver(params).solve(problem);
  const auto truth = ExhaustiveSolver().solve(problem);
  Front approx_front, truth_front;
  for (const auto& c : approx.pareto_set) approx_front.push_back(c.objectives);
  for (const auto& c : truth.pareto_set) truth_front.push_back(c.objectives);
  EXPECT_LT(generational_distance(approx_front, truth_front), 0.1);
}

TEST(ThreeResources, ScalarizedThreeWayWeights) {
  const auto problem = power_problem();
  GaParams params;
  params.generations = 200;
  const ScalarGaSolver solver(params, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  const auto result = solver.solve(problem);
  EXPECT_TRUE(problem.feasible(result.best.genes));
  EXPECT_EQ(result.best.objectives.size(), 3u);
  // Equal weighting must not leave everything unselected.
  EXPECT_GT(result.fitness, 0.5);
}

TEST(ThreeResources, ConstrainedPowerVariant) {
  // "Constrained_Power": maximize the third resource's utilization only.
  const auto problem = power_problem();
  GaParams params;
  params.generations = 200;
  const ScalarGaSolver solver(params, {0, 0, 1});
  const auto result = solver.solve(problem);
  // Jobs 1,3,5,6 (50+30+20+5=105 > 100) cannot all run; the optimum packs
  // power to 100 kW exactly (e.g. J1+J3+J5 or J1+J3+J4+J6+...).
  EXPECT_GE(result.best.objectives[2], 0.95);
}

TEST(ThreeResources, PinsAcrossThreeConstraints) {
  auto problem = power_problem();
  problem.pin(0);  // the power-hungry 40-node job stays selected
  GaParams params;
  params.generations = 150;
  const auto result = MooGaSolver(params).solve(problem);
  for (const auto& c : result.pareto_set) {
    EXPECT_EQ(c.genes[0], 1);
    EXPECT_TRUE(problem.feasible(c.genes));
  }
}

}  // namespace
}  // namespace bbsched
