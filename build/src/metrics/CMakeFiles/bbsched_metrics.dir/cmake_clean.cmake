file(REMOVE_RECURSE
  "CMakeFiles/bbsched_metrics.dir/breakdown.cpp.o"
  "CMakeFiles/bbsched_metrics.dir/breakdown.cpp.o.d"
  "CMakeFiles/bbsched_metrics.dir/kiviat.cpp.o"
  "CMakeFiles/bbsched_metrics.dir/kiviat.cpp.o.d"
  "CMakeFiles/bbsched_metrics.dir/schedule_metrics.cpp.o"
  "CMakeFiles/bbsched_metrics.dir/schedule_metrics.cpp.o.d"
  "libbbsched_metrics.a"
  "libbbsched_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
