// bench_overhead — the §4.4 "Scheduling Overheads" measurements as
// google-benchmark micro-benchmarks: wall-clock per scheduling decision for
// each method, at the paper's default (w=20, G=500) and stress (w=50,
// G=2000) settings.
//
// Expected shape: Baseline and Bin_Packing decide in microseconds-to-
// milliseconds; the optimization methods take longer but stay far under the
// 15-30 s HPC response requirement — the paper reports < 2 s average even at
// G=2000, w=50 on a 2012-class desktop.
//
// The main_grid/threads=N series measures the §4 campaign end to end,
// serial versus the thread pool: the grid dispatches one task per
// (workload x method) cell, so wall-clock should drop near-linearly with
// cores while every cell stays bit-identical (per-cell seeding).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "exp/grid.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace {

using namespace bbsched;

/// One representative window snapshot drawn from the Theta model.
struct WindowFixture {
  std::vector<JobRecord> jobs;
  std::vector<const JobRecord*> window;
  FreeState free;

  WindowFixture(std::size_t window_size, std::uint64_t seed) {
    const Workload workload =
        generate_workload(theta_model(window_size * 4), seed);
    jobs.assign(workload.jobs.begin(),
                workload.jobs.begin() +
                    static_cast<std::ptrdiff_t>(window_size));
    for (const auto& job : jobs) window.push_back(&job);
    free.nodes = static_cast<double>(workload.machine.nodes) * 0.5;
    free.bb_gb = workload.machine.schedulable_bb_gb() * 0.5;
  }
};

void run_policy(benchmark::State& state, const std::string& method,
                std::size_t window_size, int generations) {
  const WindowFixture fixture(window_size, 42);
  GaParams ga;
  ga.generations = generations;
  const auto policy = make_policy(method, ga);
  Rng rng(7);
  for (auto _ : state) {
    WindowContext context;
    context.window = fixture.window;
    context.free = fixture.free;
    context.rng = &rng;
    benchmark::DoNotOptimize(policy->select(context));
  }
}

/// End-to-end §4 campaign at a fixed thread count, reduced so the serial
/// run stays in bench territory.  Cache is bypassed (compute_main_grid), so
/// every iteration really simulates all 80 cells.
void run_main_grid(benchmark::State& state, std::size_t threads) {
  ExperimentConfig config;
  config.jobs_per_workload = 150;
  config.window_size = 10;
  config.ga.generations = 40;
  config.ga.population_size = 12;
  for (auto _ : state) {
    set_global_threads(threads);
    const MainGridResults results = compute_main_grid(config);
    benchmark::DoNotOptimize(results.cells.data());
  }
  set_global_threads(0);  // restore the default pool
}

/// Telemetry overhead: one full BBSched simulation with the instrumentation
/// disabled (the default), tracing armed, and tracing + metrics armed.  The
/// off-series must stay within noise of the seed build — every hot-path
/// emission site is a single relaxed atomic load when disabled.
void run_simulate_telemetry(benchmark::State& state, bool trace,
                            bool metrics) {
  const Workload workload = generate_workload(theta_model(200), 42);
  SimConfig config;
  config.window_size = 10;
  GaParams ga;
  ga.generations = 60;
  const auto base = make_base_scheduler("FCFS");
  const auto policy = make_policy("BBSched", ga);
  for (auto _ : state) {
    set_trace_enabled(trace);
    set_metrics_enabled(metrics);
    const SimResult result = simulate(workload, config, *base, *policy);
    benchmark::DoNotOptimize(result.outcomes.data());
    set_trace_enabled(false);
    set_metrics_enabled(false);
    trace_clear();
    MetricsRegistry::global().reset();
  }
}

void register_all() {
  benchmark::RegisterBenchmark(
      "simulate/telemetry=off",
      [](benchmark::State& state) {
        run_simulate_telemetry(state, false, false);
      })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "simulate/telemetry=trace",
      [](benchmark::State& state) {
        run_simulate_telemetry(state, true, false);
      })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "simulate/telemetry=trace+metrics",
      [](benchmark::State& state) {
        run_simulate_telemetry(state, true, true);
      })
      ->Unit(benchmark::kMillisecond);

  // Serial-vs-parallel wall-clock of the whole experiment engine.  The
  // threads=1 / threads=N ratio is the grid speedup (expected >= 2x at 4+
  // hardware threads; cells are bit-identical across the series).
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  // Always register the parallel series, even when 4 > hw: determinism
  // makes oversubscription safe, and the serial/parallel pair is the
  // measurement — on a single-core host the ratio is simply ~1.
  std::vector<std::size_t> thread_counts{1, 4, hw};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());
  for (const std::size_t threads : thread_counts) {
    benchmark::RegisterBenchmark(
        ("main_grid/threads=" + std::to_string(threads)).c_str(),
        [threads](benchmark::State& state) { run_main_grid(state, threads); })
        ->Unit(benchmark::kSecond)
        ->Iterations(1)
        ->UseRealTime();
  }

  for (const auto& method : standard_method_names()) {
    benchmark::RegisterBenchmark(
        (method + "/w=20/G=500").c_str(),
        [method](benchmark::State& state) { run_policy(state, method, 20, 500); })
        ->Unit(benchmark::kMillisecond);
  }
  // The paper's stress point: G=2000, w=50 must stay under ~2 s.
  for (const std::string method : {"BBSched", "Weighted", "Bin_Packing"}) {
    benchmark::RegisterBenchmark(
        (method + "/w=50/G=2000").c_str(),
        [method](benchmark::State& state) {
          run_policy(state, method, 50, 2000);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
