// bench_fig6_node_usage — reproduce Figure 6: node usage of the eight
// methods on the ten §4 workloads.
//
// Expected shape: BBSched yields the best node usage on most workloads, with
// the largest margins on the BB-saturated S4 workloads; Constrained_CPU wins
// narrowly when burst buffer is abundant but collapses under heavy BB
// requests; Weighted_BB and Constrained_BB trade node usage away.
#include <iostream>

#include "bench_util.hpp"
#include "exp/grid.hpp"
#include "policies/factory.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig6_node_usage");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const auto config = ExperimentConfig::from_env();
  const auto results = ensure_main_grid(config);
  benchutil::record_grid_cells(cli.bench(), "main_grid", results.cells);
  std::cout << "Figure 6: node usage by workload and method\n\n";
  benchutil::print_matrix(results.cells, benchutil::main_workload_labels(),
                          standard_method_names(),
                          [](const GridCell& c) { return c.metrics.node_usage; },
                          /*percent=*/true);
  return cli.exit_code();
}
