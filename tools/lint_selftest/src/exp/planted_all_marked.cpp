// Self-test fixture: one violation of each class, each suppressed by an
// inline det-ok marker.  The lint must report nothing here — and must not
// call any of these markers stale.  Never compiled.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <unordered_map>

void planted_all_marked(std::ostream& out, const std::string& path,
                        const std::string& journal_dir) {
  auto t = std::chrono::system_clock::now();  // det-ok: wall-clock (fixture)
  (void)t;
  auto m = std::chrono::steady_clock::now();  // det-ok: raw-clock (fixture)
  (void)m;
  std::random_device device;  // det-ok: raw-rng (fixture)
  (void)device;
  std::unordered_map<int, int> table;
  for (const auto& [k, v] : table) {  // det-ok: unordered-iter (fixture)
    out << k << v;
  }
  std::cout << "done\n";  // det-ok: raw-print (fixture)
  std::ofstream f(path);  // det-ok: raw-ofstream (fixture)
  std::FILE* j = std::fopen(journal_dir.c_str(), "ab");  // det-ok: raw-ofstream-cache (fixture)
  if (j != nullptr) std::fclose(j);
}
