
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/base_scheduler.cpp" "src/sim/CMakeFiles/bbsched_sim.dir/base_scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/bbsched_sim.dir/base_scheduler.cpp.o.d"
  "/root/repo/src/sim/easy_backfill.cpp" "src/sim/CMakeFiles/bbsched_sim.dir/easy_backfill.cpp.o" "gcc" "src/sim/CMakeFiles/bbsched_sim.dir/easy_backfill.cpp.o.d"
  "/root/repo/src/sim/machine_state.cpp" "src/sim/CMakeFiles/bbsched_sim.dir/machine_state.cpp.o" "gcc" "src/sim/CMakeFiles/bbsched_sim.dir/machine_state.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/bbsched_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/bbsched_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bbsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bbsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bbsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
