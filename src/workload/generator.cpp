#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bbsched {

void GeneratorParams::validate() const {
  machine.validate();
  if (num_jobs == 0) throw std::invalid_argument("generator: num_jobs == 0");
  if (offered_load <= 0) {
    throw std::invalid_argument("generator: offered_load must be > 0");
  }
  if (size_buckets.empty()) {
    throw std::invalid_argument("generator: no size buckets");
  }
  for (const auto& b : size_buckets) {
    if (b.min_nodes < 1 || b.max_nodes < b.min_nodes || b.weight <= 0) {
      throw std::invalid_argument("generator: malformed size bucket");
    }
    if (b.max_nodes > machine.nodes) {
      throw std::invalid_argument(
          "generator: size bucket exceeds machine nodes");
    }
  }
  if (min_runtime <= 0 || max_runtime < min_runtime) {
    throw std::invalid_argument("generator: bad runtime bounds");
  }
  if (walltime_accuracy_lo <= 0 || walltime_accuracy_lo > 1) {
    throw std::invalid_argument(
        "generator: walltime_accuracy_lo must be in (0, 1]");
  }
  if (bb_fraction < 0 || bb_fraction > 1) {
    throw std::invalid_argument("generator: bb_fraction must be in [0, 1]");
  }
  if (bb_fraction > 0 && (bb_min <= 0 || bb_max <= bb_min)) {
    throw std::invalid_argument("generator: bad BB request bounds");
  }
}

namespace {

NodeCount scaled_nodes(NodeCount n, double scale) {
  return std::max<NodeCount>(1, static_cast<NodeCount>(
                                    std::llround(static_cast<double>(n) *
                                                 scale)));
}

NodeCount sample_size(const GeneratorParams& p, Rng& rng) {
  std::vector<double> weights;
  weights.reserve(p.size_buckets.size());
  for (const auto& b : p.size_buckets) weights.push_back(b.weight);
  const auto& bucket =
      p.size_buckets[rng.weighted_index(weights.data(), weights.size())];
  if (bucket.min_nodes == bucket.max_nodes) return bucket.min_nodes;
  // Log-uniform inside the bucket: small sizes stay more likely, matching
  // the long-tailed job-size mixes of production logs.
  const double lo = std::log(static_cast<double>(bucket.min_nodes));
  const double hi = std::log(static_cast<double>(bucket.max_nodes) + 1.0);
  const auto n = static_cast<NodeCount>(std::exp(rng.uniform(lo, hi)));
  return std::clamp<NodeCount>(n, bucket.min_nodes, bucket.max_nodes);
}

Time sample_runtime(const GeneratorParams& p, Rng& rng) {
  const double r = rng.lognormal(p.runtime_log_mu, p.runtime_log_sigma);
  return std::clamp(r, p.min_runtime, p.max_runtime);
}

Time sample_walltime(const GeneratorParams& p, Time runtime, Rng& rng) {
  const double accuracy = rng.uniform(p.walltime_accuracy_lo, 1.0);
  double walltime = runtime / accuracy;
  if (p.walltime_quantum > 0) {
    walltime = std::ceil(walltime / p.walltime_quantum) * p.walltime_quantum;
  }
  return std::max(walltime, runtime);
}

/// Diurnal arrival-rate modulation: day peak around noon, trough at night.
double arrival_rate_factor(const GeneratorParams& p, Time t) {
  if (p.diurnal_amplitude <= 0) return 1.0;
  const double phase =
      2.0 * std::numbers::pi * (t - hours(6)) / days(1.0);
  return std::max(0.1, 1.0 + p.diurnal_amplitude * std::sin(phase));
}

}  // namespace

Workload generate_workload(const GeneratorParams& params,
                           std::uint64_t seed) {
  params.validate();
  Rng rng(seed);

  Workload workload;
  workload.name = params.name;
  workload.machine = params.machine;
  workload.jobs.reserve(params.num_jobs);

  // Pass 1: draw submission events until num_jobs jobs exist.  An array's
  // members share node count, walltime and BB request; runtimes get small
  // per-member jitter (members of real arrays process different inputs).
  double total_node_seconds = 0;
  std::size_t num_events = 0;
  std::vector<std::size_t> event_of_job;  // event index per job
  event_of_job.reserve(params.num_jobs);
  while (workload.jobs.size() < params.num_jobs) {
    std::size_t members = 1;
    if (params.array_fraction > 0 && rng.bernoulli(params.array_fraction)) {
      members = static_cast<std::size_t>(
          rng.uniform_int(2, std::max(2, params.array_max)));
    }
    members = std::min(members, params.num_jobs - workload.jobs.size());
    const NodeCount nodes = sample_size(params, rng);
    const Time base_runtime = sample_runtime(params, rng);
    const Time walltime = sample_walltime(params, base_runtime, rng);
    GigaBytes bb = 0;
    if (params.bb_fraction > 0 && rng.bernoulli(params.bb_fraction)) {
      bb = rng.bounded_pareto(params.bb_pareto_alpha, params.bb_min,
                              params.bb_max);
    }
    for (std::size_t m = 0; m < members; ++m) {
      JobRecord job;
      job.id = static_cast<JobId>(workload.jobs.size() + 1);
      job.nodes = nodes;
      job.runtime = std::min(
          walltime, std::max(params.min_runtime,
                             base_runtime * rng.uniform(0.85, 1.0)));
      job.walltime = walltime;
      job.bb_gb = bb;
      total_node_seconds += job.node_seconds();
      workload.jobs.push_back(std::move(job));
      event_of_job.push_back(num_events);
    }
    ++num_events;
  }

  // Pass 2: calibrate the submission span so that offered load matches the
  // target, then lay out Poisson event arrivals with diurnal modulation.
  const double span = total_node_seconds /
                      (static_cast<double>(params.machine.nodes) *
                       params.offered_load);
  const double mean_gap = span / static_cast<double>(num_events);
  Time t = 0;
  std::size_t current_event = std::size_t(-1);
  for (std::size_t i = 0; i < workload.jobs.size(); ++i) {
    if (event_of_job[i] != current_event) {
      current_event = event_of_job[i];
      t += rng.exponential(1.0 / mean_gap) / arrival_rate_factor(params, t);
    }
    workload.jobs[i].submit_time = t;
  }

  workload.normalize();
  return workload;
}

GeneratorParams cori_model(std::size_t num_jobs, double scale) {
  GeneratorParams p;
  p.name = "Cori";
  p.machine.name = "Cori";
  p.machine.nodes = scaled_nodes(12076, scale);
  p.machine.burst_buffer_gb = pb(1.8) * scale;
  p.machine.persistent_bb_fraction = 1.0 / 3.0;  // §4.1
  p.num_jobs = num_jobs;
  // Capacity computing: the size mix is dominated by small jobs in count,
  // with enough mid-size work that the machine's node-hours are not carried
  // by the tail alone.
  p.size_buckets = {
      {scaled_nodes(1, scale), scaled_nodes(1, scale), 0.22},
      {scaled_nodes(2, scale), scaled_nodes(16, scale), 0.30},
      {scaled_nodes(17, scale), scaled_nodes(64, scale), 0.20},
      {scaled_nodes(65, scale), scaled_nodes(512, scale), 0.17},
      {scaled_nodes(513, scale), scaled_nodes(4096, scale), 0.10},
      {scaled_nodes(4097, scale), scaled_nodes(9688, scale), 0.01},
  };
  p.runtime_log_mu = std::log(3600.0);   // median ~1 h
  p.runtime_log_sigma = 1.2;
  p.min_runtime = seconds(60);
  p.max_runtime = hours(24);
  // Critically loaded, not oversubscribed: production systems run near but
  // below saturation, which is the regime where packing efficiency shows up
  // as wait-time differences (the paper's node usages sit around 60-85 %).
  p.offered_load = 0.95;
  p.diurnal_amplitude = 0.1;
  // Capacity workloads are job-array heavy; bursty submissions are what
  // builds queues on a many-node machine under sub-saturation load.
  p.array_fraction = 0.25;
  p.array_max = 12;
  p.bb_fraction = 0.00618;               // Table 2: 0.618 % of jobs
  p.bb_pareto_alpha = 0.7;               // steep tail: most requests near 5 TB
  p.bb_min = gb(1);
  p.bb_max = tb(165) * scale;            // Table 2 BB range upper bound
  return p;
}

GeneratorParams theta_model(std::size_t num_jobs, double scale) {
  GeneratorParams p;
  p.name = "Theta";
  p.machine.name = "Theta";
  p.machine.nodes = scaled_nodes(4392, scale);
  // Table 2: 1.26 PB (projected) shared burst buffer.  (§4.1 also mentions a
  // 2.16 PB memory-ratio estimate; the table value keeps the BB-to-node
  // ratio in the regime where the S3/S4 expansions actually contend.)
  p.machine.burst_buffer_gb = pb(1.26) * scale;
  p.num_jobs = num_jobs;
  // Capability computing by node-hours, but — as on the real machine with
  // its debug/backfill partitions — job *counts* are dominated by small
  // jobs: roughly half the consumed node-hours come from 512+-node
  // capability jobs while most submissions stay under 256 nodes.
  p.size_buckets = {
      {scaled_nodes(1, scale), scaled_nodes(64, scale), 0.45},
      {scaled_nodes(65, scale), scaled_nodes(128, scale), 0.33},
      {scaled_nodes(129, scale), scaled_nodes(256, scale), 0.12},
      {scaled_nodes(257, scale), scaled_nodes(512, scale), 0.05},
      {scaled_nodes(513, scale), scaled_nodes(1024, scale), 0.03},
      {scaled_nodes(1025, scale), scaled_nodes(2048, scale), 0.013},
      {scaled_nodes(2049, scale), scaled_nodes(4392, scale), 0.007},
  };
  p.runtime_log_mu = std::log(3600.0);   // median ~1 h
  p.runtime_log_sigma = 1.0;
  p.min_runtime = minutes(10);
  p.max_runtime = hours(24);
  p.offered_load = 0.92;                 // critically loaded (see cori_model)
  p.diurnal_amplitude = 0.1;
  p.array_fraction = 0.10;               // ensemble campaigns
  p.array_max = 8;
  p.bb_fraction = 0.1718;                // §4.1: 17.18 % with >1 GB Darshan IO
  p.bb_pareto_alpha = 0.25;              // Darshan data-moved heavy tail
  p.bb_min = gb(1);
  p.bb_max = tb(285) * scale;
  return p;
}

}  // namespace bbsched
