// bench_overhead — the §4.4 "Scheduling Overheads" measurements as
// google-benchmark micro-benchmarks: wall-clock per scheduling decision for
// each method, at the paper's default (w=20, G=500) and stress (w=50,
// G=2000) settings.
//
// Expected shape: Baseline and Bin_Packing decide in microseconds-to-
// milliseconds; the optimization methods take longer but stay far under the
// 15-30 s HPC response requirement — the paper reports < 2 s average even at
// G=2000, w=50 on a 2012-class desktop.
//
// The main_grid/threads=N series measures the §4 campaign end to end,
// serial versus the thread pool: the grid dispatches one task per
// (workload x method) cell, so wall-clock should drop near-linearly with
// cores while every cell stays bit-identical (per-cell seeding).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_report.hpp"
#include "common/env.hpp"
#include "common/metrics.hpp"
#include "common/planner.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "exp/grid.hpp"
#include "policies/factory.hpp"
#include "sim/easy_backfill.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace {

using namespace bbsched;

/// One representative window snapshot drawn from the Theta model.
struct WindowFixture {
  std::vector<JobRecord> jobs;
  std::vector<const JobRecord*> window;
  FreeState free;

  WindowFixture(std::size_t window_size, std::uint64_t seed) {
    const Workload workload =
        generate_workload(theta_model(window_size * 4), seed);
    jobs.assign(workload.jobs.begin(),
                workload.jobs.begin() +
                    static_cast<std::ptrdiff_t>(window_size));
    for (const auto& job : jobs) window.push_back(&job);
    free.nodes = static_cast<double>(workload.machine.nodes) * 0.5;
    free.bb_gb = workload.machine.schedulable_bb_gb() * 0.5;
  }
};

void run_policy(benchmark::State& state, const std::string& method,
                std::size_t window_size, int generations) {
  const WindowFixture fixture(window_size, 42);
  GaParams ga;
  ga.generations = generations;
  const auto policy = make_policy(method, ga);
  Rng rng(7);
  for (auto _ : state) {
    WindowContext context;
    context.window = fixture.window;
    context.free = fixture.free;
    context.rng = &rng;
    benchmark::DoNotOptimize(policy->select(context));
  }
}

/// End-to-end §4 campaign at a fixed thread count, reduced so the serial
/// run stays in bench territory.  Cache is bypassed (compute_main_grid), so
/// every iteration really simulates all 80 cells.
void run_main_grid(benchmark::State& state, std::size_t threads) {
  ExperimentConfig config;
  config.jobs_per_workload = 150;
  config.window_size = 10;
  config.ga.generations = 40;
  config.ga.population_size = 12;
  for (auto _ : state) {
    set_global_threads(threads);
    const MainGridResults results = compute_main_grid(config);
    benchmark::DoNotOptimize(results.cells.data());
  }
  set_global_threads(0);  // restore the default pool
}

/// Telemetry overhead: one full BBSched simulation with the instrumentation
/// disabled (the default), tracing armed, and tracing + metrics armed.  The
/// off-series must stay within noise of the seed build — every hot-path
/// emission site is a single relaxed atomic load when disabled.
void run_simulate_telemetry(benchmark::State& state, bool trace,
                            bool metrics) {
  const Workload workload = generate_workload(theta_model(200), 42);
  SimConfig config;
  config.window_size = 10;
  GaParams ga;
  ga.generations = 60;
  const auto base = make_base_scheduler("FCFS");
  const auto policy = make_policy("BBSched", ga);
  for (auto _ : state) {
    set_trace_enabled(trace);
    set_metrics_enabled(metrics);
    const SimResult result = simulate(workload, config, *base, *policy);
    benchmark::DoNotOptimize(result.outcomes.data());
    set_trace_enabled(false);
    set_metrics_enabled(false);
    trace_clear();
    MetricsRegistry::global().reset();
  }
}

/// Profiler overhead: the same full simulation with the phase profiler off
/// (compile-time-identical macro, one relaxed atomic load per PROF_PHASE)
/// and on (two mono_now() reads plus a per-thread tree update per phase).
/// Acceptance: off stays within noise of the seed build, on < 3% slower —
/// phases are per-generation/per-pass, never per-chromosome.
void run_simulate_profiler(benchmark::State& state, bool profile) {
  const Workload workload = generate_workload(theta_model(200), 42);
  SimConfig config;
  config.window_size = 10;
  GaParams ga;
  ga.generations = 60;
  const auto base = make_base_scheduler("FCFS");
  const auto policy = make_policy("BBSched", ga);
  for (auto _ : state) {
    set_profiler_enabled(profile);
    const SimResult result = simulate(workload, config, *base, *policy);
    benchmark::DoNotOptimize(result.outcomes.data());
    set_profiler_enabled(false);
    profiler_clear();
  }
}

/// Metrics-engine comparison: the batch reference pass over a materialized
/// outcome vector versus the streaming accumulator consuming the same
/// outcomes one at a time.  The `sample_storage_bytes` counter is the point:
/// batch carries O(jobs) outcome storage into the metrics pass, while the
/// incremental accumulator's footprint (exact sums + one fixed sketch) is
/// flat across the jobs=N series — the O(1) guarantee of DESIGN.md §11.
SimResult synth_result(std::size_t jobs, std::uint64_t seed) {
  SimResult result;
  result.machine.name = "bench";
  result.machine.nodes = 4096;
  result.machine.burst_buffer_gb = tb(1000);
  result.measure_begin = 0;
  result.measure_end = static_cast<Time>(jobs) * 60.0;
  Rng rng(seed);
  result.outcomes.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    JobOutcome o;
    o.id = static_cast<JobId>(i + 1);
    o.submit = static_cast<Time>(i) * 30.0;
    o.start = o.submit + rng.uniform(0.0, 7200.0);
    o.runtime = rng.uniform(60.0, 86400.0);
    o.end = o.start + o.runtime;
    o.walltime = o.runtime * 1.2;
    o.nodes = static_cast<NodeCount>(rng.uniform_int(1, 512));
    o.bb_gb = rng.uniform(0.0, tb(10));
    o.backfilled = rng.uniform(0.0, 1.0) < 0.3;
    result.outcomes.push_back(o);
  }
  return result;
}

void run_metrics_batch(benchmark::State& state, std::size_t jobs) {
  const SimResult result = synth_result(jobs, 42);
  for (auto _ : state) {
    const ScheduleMetrics metrics = compute_metrics(result);
    benchmark::DoNotOptimize(metrics.avg_wait);
  }
  state.counters["sample_storage_bytes"] = static_cast<double>(
      result.outcomes.capacity() * sizeof(JobOutcome));
}

void run_metrics_incremental(benchmark::State& state, std::size_t jobs) {
  const SimResult result = synth_result(jobs, 42);
  std::size_t peak_bytes = 0;
  for (auto _ : state) {
    IncrementalScheduleMetrics acc(result.machine, result.measure_begin,
                                   result.measure_end);
    for (const auto& o : result.outcomes) acc.add(o);
    peak_bytes = std::max(peak_bytes, acc.memory_bytes());
    const ScheduleMetrics metrics = acc.finalize();
    benchmark::DoNotOptimize(metrics.avg_wait);
  }
  state.counters["sample_storage_bytes"] = static_cast<double>(peak_bytes);
}

/// One EASY-backfill invocation at a given queue depth: `running` jobs hold
/// one node each, the head fits after three releases, and a short candidate
/// pool follows.  The legacy path re-sorts every running job per call; the
/// planner path reads the incrementally maintained release index and stops
/// at the third entry — the asymmetry the planner refactor targets.
struct BackfillFixture {
  static constexpr int kBaseRunning = 32;
  static constexpr std::size_t kCandidates = 8;

  MachineConfig config;
  MachineState legacy;
  MachineState planned;
  std::vector<RunningJobInfo> running;
  std::vector<JobRecord> storage;
  std::vector<BackfillCandidate> candidates;
  JobRecord head;

  explicit BackfillFixture(int depth)
      : config(make_config(depth)), legacy(config), planned(config) {
    planned.enable_planner();
    const int n_running = kBaseRunning * depth;
    // Release times land in shuffled order so the legacy per-call sort does
    // real work, exactly as in a live simulation.
    std::vector<Time> ends(static_cast<std::size_t>(n_running));
    for (int i = 0; i < n_running; ++i) {
      ends[static_cast<std::size_t>(i)] = 100.0 + i;
    }
    Rng rng(mix_seed(99, "bench-backfill"));
    for (std::size_t i = ends.size(); i > 1; --i) {
      std::swap(ends[i - 1], ends[static_cast<std::size_t>(rng.uniform_int(
                                 0, static_cast<std::int64_t>(i) - 1))]);
    }
    for (int i = 0; i < n_running; ++i) {
      Allocation alloc;
      alloc.small_nodes = 1;
      const JobId id = static_cast<JobId>(1000 + i);
      const Time end = ends[static_cast<std::size_t>(i)];
      legacy.allocate(id, alloc);
      planned.allocate_timed(id, alloc, 0, end);
      running.push_back({id, end, alloc});
    }
    // 4 nodes stay free; the head needs 7, so it fits after 3 releases.
    head.id = 1;
    head.nodes = 7;
    head.runtime = head.walltime = 5000;
    storage.reserve(kCandidates);  // BackfillCandidate keeps pointers
    for (std::size_t k = 0; k < kCandidates; ++k) {
      JobRecord j;
      j.id = static_cast<JobId>(10 + k);
      j.nodes = 2;
      j.runtime = j.walltime = 50;  // finishes before the shadow
      storage.push_back(j);
    }
    for (std::size_t k = 0; k < kCandidates; ++k) {
      candidates.push_back({&storage[k], k});
    }
  }

  static MachineConfig make_config(int depth) {
    MachineConfig m;
    m.name = "bench";
    m.nodes = static_cast<NodeCount>(kBaseRunning) * depth + 4;
    m.burst_buffer_gb = tb(100);
    return m;
  }
};

void run_backfill(benchmark::State& state, bool use_planner, int depth) {
  const BackfillFixture f(depth);
  for (auto _ : state) {
    const BackfillResult result =
        use_planner
            ? plan_easy_backfill(f.planned, &f.head, f.candidates, 0)
            : plan_easy_backfill(f.legacy, &f.head, f.running, f.candidates,
                                 0);
    benchmark::DoNotOptimize(result.shadow_time);
  }
}

/// Timeline maintenance cost: rolling add/remove churn against `live`
/// resident spans (the planner's O(log n) amortized claim under load).
void run_planner_churn(benchmark::State& state, int live) {
  Planner planner(std::vector<double>{1e9, 1e9, 1e9});
  const std::vector<double> request{4, 1, 128};
  std::vector<SpanId> spans;
  Time clock = 0;
  for (int i = 0; i < live; ++i) {
    spans.push_back(planner.add_span(clock, 500, request, 0));
    clock += 1;
  }
  std::size_t oldest = 0;
  for (auto _ : state) {
    planner.remove_span(spans[oldest]);
    spans[oldest] = planner.add_span(clock, 500, request, 0);
    clock += 1;
    oldest = (oldest + 1) % spans.size();
  }
}

void register_all() {
  // Planner-vs-legacy backfill hot path at 1x / 10x / 100x queue depth.
  // Acceptance: planner >= 5x faster than legacy at depth=100x.
  for (const int depth : {1, 10, 100}) {
    for (const bool use_planner : {false, true}) {
      const std::string name =
          std::string("backfill/impl=") + (use_planner ? "planner" : "legacy") +
          "/depth=" + std::to_string(depth) + "x";
      benchmark::RegisterBenchmark(
          name.c_str(),
          [use_planner, depth](benchmark::State& state) {
            run_backfill(state, use_planner, depth);
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }
  for (const int live : {32, 320, 3200}) {
    benchmark::RegisterBenchmark(
        ("planner_churn/live=" + std::to_string(live)).c_str(),
        [live](benchmark::State& state) { run_planner_churn(state, live); })
        ->Unit(benchmark::kMicrosecond);
  }

  // Streaming metrics engine vs. the batch reference: time per pass plus
  // the sample_storage_bytes counter (flat for incremental, O(jobs) for
  // batch's outcome vector).
  for (const std::size_t jobs : {std::size_t{1000}, std::size_t{10000},
                                 std::size_t{100000}}) {
    benchmark::RegisterBenchmark(
        ("metrics/impl=batch/jobs=" + std::to_string(jobs)).c_str(),
        [jobs](benchmark::State& state) { run_metrics_batch(state, jobs); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("metrics/impl=incremental/jobs=" + std::to_string(jobs)).c_str(),
        [jobs](benchmark::State& state) {
          run_metrics_incremental(state, jobs);
        })
        ->Unit(benchmark::kMillisecond);
  }

  benchmark::RegisterBenchmark(
      "simulate/telemetry=off",
      [](benchmark::State& state) {
        run_simulate_telemetry(state, false, false);
      })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "simulate/telemetry=trace",
      [](benchmark::State& state) {
        run_simulate_telemetry(state, true, false);
      })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "simulate/telemetry=trace+metrics",
      [](benchmark::State& state) {
        run_simulate_telemetry(state, true, true);
      })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "simulate/profiler=off",
      [](benchmark::State& state) { run_simulate_profiler(state, false); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "simulate/profiler=on",
      [](benchmark::State& state) { run_simulate_profiler(state, true); })
      ->Unit(benchmark::kMillisecond);

  // Serial-vs-parallel wall-clock of the whole experiment engine.  The
  // threads=1 / threads=N ratio is the grid speedup (expected >= 2x at 4+
  // hardware threads; cells are bit-identical across the series).
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  // Always register the parallel series, even when 4 > hw: determinism
  // makes oversubscription safe, and the serial/parallel pair is the
  // measurement — on a single-core host the ratio is simply ~1.
  std::vector<std::size_t> thread_counts{1, 4, hw};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());
  for (const std::size_t threads : thread_counts) {
    benchmark::RegisterBenchmark(
        ("main_grid/threads=" + std::to_string(threads)).c_str(),
        [threads](benchmark::State& state) { run_main_grid(state, threads); })
        ->Unit(benchmark::kSecond)
        ->Iterations(1)
        ->UseRealTime();
  }

  for (const auto& method : standard_method_names()) {
    benchmark::RegisterBenchmark(
        (method + "/w=20/G=500").c_str(),
        [method](benchmark::State& state) { run_policy(state, method, 20, 500); })
        ->Unit(benchmark::kMillisecond);
  }
  // The paper's stress point: G=2000, w=50 must stay under ~2 s.
  for (const std::string method : {"BBSched", "Weighted", "Bin_Packing"}) {
    benchmark::RegisterBenchmark(
        (method + "/w=50/G=2000").c_str(),
        [method](benchmark::State& state) {
          run_policy(state, method, 50, 2000);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

/// Console output as usual, plus every finished run folded into a
/// BenchReport so bench_overhead writes the same BENCH_<name>.json as the
/// CampaignCli benches.  Per-iteration real time goes in as a one-sample
/// series; user counters (sample_storage_bytes) ride along.
class BenchJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit BenchJsonReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double seconds =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      report_->add_value(run.benchmark_name(), {}, seconds, "s", "info");
      for (const auto& [counter_name, counter] : run.counters) {
        report_->add_value(run.benchmark_name() + "/" + counter_name, {},
                           counter.value, "count", "info");
      }
    }
  }

 private:
  BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  BenchReport report("overhead");
  BenchJsonReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const std::string bench_out = env_string("BBSCHED_BENCH_DIR", "");
  if (!bench_out.empty()) {
    report.write_file(bench_out_path(bench_out, report.name()));
  }
  benchmark::Shutdown();
  return 0;
}
