// telemetry.hpp — one-call wiring of the telemetry surface for the example
// binaries: --log-level / --trace-out / --metrics-out flags with
// BBSCHED_LOG / BBSCHED_TRACE / BBSCHED_METRICS environment fallbacks.
//
//   TelemetryOptions telemetry;
//   telemetry.register_flags(parser);
//   ... parser.parse(...) ...
//   telemetry.apply();      // set level, arm trace/metrics collection
//   ... run the campaign ...
//   telemetry.finish();     // write trace JSON / metrics CSV if requested
#pragma once

#include <string>

namespace bbsched {

class ArgParser;

struct TelemetryOptions {
  std::string log_level;    ///< empty: BBSCHED_LOG or "info"
  std::string trace_out;    ///< empty: BBSCHED_TRACE or tracing off
  std::string metrics_out;  ///< empty: BBSCHED_METRICS or collection off

  /// Register --log-level, --trace-out and --metrics-out.
  void register_flags(ArgParser& parser);

  /// Resolve env fallbacks and arm the requested subsystems.  Call after
  /// parse() and before any work that should be observed.  Throws
  /// std::invalid_argument on a malformed log level.
  void apply();

  /// Write the trace / metrics outputs that were requested; no-op otherwise.
  void finish() const;
};

}  // namespace bbsched
