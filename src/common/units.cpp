#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace bbsched {

namespace {

std::string format_with_unit(double value, const char* unit) {
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", value, unit);
  }
  return buf;
}

}  // namespace

std::string format_capacity(GigaBytes v) {
  if (std::fabs(v) >= pb(1.0)) return format_with_unit(as_pb(v), "PB");
  if (std::fabs(v) >= tb(1.0)) return format_with_unit(as_tb(v), "TB");
  return format_with_unit(v, "GB");
}

std::string format_duration(Time t) {
  if (std::fabs(t) >= days(1.0)) return format_with_unit(as_days(t), "d");
  if (std::fabs(t) >= hours(1.0)) return format_with_unit(as_hours(t), "h");
  if (std::fabs(t) >= minutes(1.0)) return format_with_unit(as_minutes(t), "m");
  return format_with_unit(t, "s");
}

}  // namespace bbsched
