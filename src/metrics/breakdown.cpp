#include "metrics/breakdown.hpp"

#include <sstream>

namespace bbsched {

std::vector<BreakdownBin> breakdown_wait(const SimResult& result,
                                         std::vector<std::string> labels,
                                         const BinAssigner& assign) {
  std::vector<BreakdownBin> bins(labels.size());
  std::vector<double> slowdown_sum(labels.size(), 0.0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    bins[i].label = std::move(labels[i]);
  }
  for (const auto& o : result.outcomes) {
    if (o.submit < result.measure_begin || o.submit > result.measure_end) {
      continue;
    }
    const std::size_t bin = assign(o);
    if (bin >= bins.size()) continue;
    bins[bin].avg_wait += o.wait();
    slowdown_sum[bin] += o.slowdown();
    ++bins[bin].count;
  }
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i].count > 0) {
      bins[i].avg_wait /= static_cast<double>(bins[i].count);
      bins[i].avg_slowdown =
          slowdown_sum[i] / static_cast<double>(bins[i].count);
    }
  }
  return bins;
}

namespace {

std::string range_label(const std::string& lo, const std::string& hi) {
  return lo + "-" + hi;
}

}  // namespace

std::vector<BreakdownBin> breakdown_by_job_size(
    const SimResult& result, const std::vector<NodeCount>& upper_bounds) {
  std::vector<std::string> labels;
  labels.reserve(upper_bounds.size() + 1);
  NodeCount prev = 1;
  for (NodeCount ub : upper_bounds) {
    labels.push_back(range_label(std::to_string(prev), std::to_string(ub)));
    prev = ub + 1;
  }
  labels.push_back(std::to_string(prev) + "+");
  return breakdown_wait(result, labels, [&](const JobOutcome& o) {
    for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
      if (o.nodes <= upper_bounds[i]) return i;
    }
    return upper_bounds.size();
  });
}

std::vector<BreakdownBin> breakdown_by_bb_request(
    const SimResult& result, const std::vector<double>& upper_bounds_tb) {
  std::vector<std::string> labels;
  labels.reserve(upper_bounds_tb.size() + 2);
  labels.push_back("no-BB");
  std::ostringstream first;
  double prev = 0;
  for (double ub : upper_bounds_tb) {
    std::ostringstream label;
    label << prev << "-" << ub << "TB";
    labels.push_back(label.str());
    prev = ub;
  }
  std::ostringstream last;
  last << prev << "TB+";
  labels.push_back(last.str());
  return breakdown_wait(result, labels, [&](const JobOutcome& o) {
    if (o.bb_gb <= 0) return std::size_t{0};
    const double request_tb = as_tb(o.bb_gb);
    for (std::size_t i = 0; i < upper_bounds_tb.size(); ++i) {
      if (request_tb <= upper_bounds_tb[i]) return i + 1;
    }
    return upper_bounds_tb.size() + 1;
  });
}

std::vector<BreakdownBin> breakdown_by_runtime(
    const SimResult& result, const std::vector<double>& upper_bounds_h) {
  std::vector<std::string> labels;
  labels.reserve(upper_bounds_h.size() + 1);
  double prev = 0;
  for (double ub : upper_bounds_h) {
    std::ostringstream label;
    label << prev << "-" << ub << "h";
    labels.push_back(label.str());
    prev = ub;
  }
  std::ostringstream last;
  last << prev << "h+";
  labels.push_back(last.str());
  return breakdown_wait(result, labels, [&](const JobOutcome& o) {
    const double runtime_h = as_hours(o.runtime);
    for (std::size_t i = 0; i < upper_bounds_h.size(); ++i) {
      if (runtime_h <= upper_bounds_h[i]) return i;
    }
    return upper_bounds_h.size();
  });
}

}  // namespace bbsched
