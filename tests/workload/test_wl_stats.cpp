#include "workload/wl_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bbsched {
namespace {

Workload sample_workload() {
  Workload w;
  w.name = "sample";
  w.machine.name = "m";
  w.machine.nodes = 100;
  w.machine.burst_buffer_gb = tb(100);
  auto job = [&](JobId id, Time submit, NodeCount nodes, Time runtime,
                 GigaBytes bb) {
    JobRecord j;
    j.id = id;
    j.submit_time = submit;
    j.runtime = runtime;
    j.walltime = runtime;
    j.nodes = nodes;
    j.bb_gb = bb;
    w.jobs.push_back(j);
  };
  job(1, 0, 10, 100, 0);
  job(2, 50, 20, 200, tb(2));
  job(3, 100, 30, 300, tb(15));
  w.normalize();
  return w;
}

TEST(Summarize, CountsAndRanges) {
  const auto s = summarize(sample_workload());
  EXPECT_EQ(s.num_jobs, 3u);
  EXPECT_EQ(s.jobs_with_bb, 2u);
  EXPECT_EQ(s.jobs_with_bb_over_1tb, 2u);
  EXPECT_NEAR(s.bb_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.bb_min, tb(2));
  EXPECT_DOUBLE_EQ(s.bb_max, tb(15));
  EXPECT_DOUBLE_EQ(s.bb_total, tb(17));
  EXPECT_DOUBLE_EQ(s.mean_nodes, 20.0);
  EXPECT_EQ(s.max_nodes, 30);
  EXPECT_DOUBLE_EQ(s.mean_runtime, 200.0);
  EXPECT_DOUBLE_EQ(s.span, 100.0);
}

TEST(Summarize, OfferedLoads) {
  const auto s = summarize(sample_workload());
  // node-seconds: 10*100 + 20*200 + 30*300 = 14000 over 100 nodes * 100 s.
  EXPECT_DOUBLE_EQ(s.offered_load, 1.4);
  // bb-seconds: 2TB*200 + 15TB*300 over 100TB * 100 s.
  EXPECT_DOUBLE_EQ(s.offered_bb_load,
                   (tb(2) * 200 + tb(15) * 300) / (tb(100) * 100));
}

TEST(Summarize, EmptyWorkload) {
  Workload w;
  w.machine.nodes = 10;
  w.machine.burst_buffer_gb = 10;
  const auto s = summarize(w);
  EXPECT_EQ(s.num_jobs, 0u);
  EXPECT_DOUBLE_EQ(s.offered_load, 0.0);
}

TEST(BbHistogram, BinsByTenTb) {
  const auto hist = bb_request_histogram(sample_workload(), 10.0);
  // Max request 15 TB -> 2 bins of 10 TB.
  EXPECT_EQ(hist.num_bins(), 2u);
  EXPECT_DOUBLE_EQ(hist.bin_count(0), 1);  // 2 TB
  EXPECT_DOUBLE_EQ(hist.bin_count(1), 1);  // 15 TB
  EXPECT_DOUBLE_EQ(hist.total_weight(), 2);
}

TEST(BbHistogram, NoRequestsSingleEmptyBin) {
  Workload w = sample_workload();
  for (auto& job : w.jobs) job.bb_gb = 0;
  const auto hist = bb_request_histogram(w);
  EXPECT_EQ(hist.num_bins(), 1u);
  EXPECT_DOUBLE_EQ(hist.total_weight(), 0);
}

TEST(Printers, ProduceStableKeyContent) {
  std::ostringstream out;
  print_summary(sample_workload(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("offered load"), std::string::npos);
  EXPECT_NE(text.find("17TB"), std::string::npos);

  std::ostringstream hist_out;
  print_bb_histogram(sample_workload(), hist_out);
  EXPECT_NE(hist_out.str().find("aggregate"), std::string::npos);
}

}  // namespace
}  // namespace bbsched
