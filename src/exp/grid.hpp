// grid.hpp — the cached (workload x method) simulation grid.
//
// ensure_*() either loads a previously cached grid matching the
// configuration digest or runs the simulations and caches them, printing
// progress to stderr.  Each cell carries the §4.2 metrics plus decision
// statistics; the Theta-S4 breakdown rows needed by Figures 9-11 are cached
// alongside the main grid so no bench re-simulates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "metrics/breakdown.hpp"
#include "metrics/schedule_metrics.hpp"
#include "sim/simulator.hpp"

namespace bbsched {

/// One (workload, method) result.
struct GridCell {
  std::string workload;  ///< e.g. "Cori-S3"
  std::string method;    ///< e.g. "BBSched"
  ScheduleMetrics metrics;
  double mean_solve_seconds = 0;
  double max_solve_seconds = 0;
  double mean_pareto_size = 0;
  std::size_t forced_starts = 0;
  /// Wall-clock of the whole cell simulation (workload replay + every
  /// policy decision); the unit of the grid's parallel speedup accounting.
  double cell_wall_seconds = 0;
};

/// One bin of a cached Figure 9/10/11 breakdown.
struct BreakdownCell {
  std::string workload;
  std::string method;
  std::string dimension;  ///< "job_size" | "bb_request" | "runtime"
  std::string label;      ///< bin label, e.g. "1-8"
  double avg_wait = 0;
  std::size_t count = 0;
};

/// Results of the §4 campaign.
struct MainGridResults {
  std::vector<GridCell> cells;             ///< 10 workloads x 8 methods
  std::vector<BreakdownCell> breakdowns;   ///< Theta-S4, all methods
};

/// Fault-tolerance knobs of a campaign run (DESIGN.md §12).  These shape
/// *how* the grid is computed — retries, deadlines, resumability — never
/// *what* it computes, so none of them participate in the cache digest.
struct CampaignControl {
  bool resume = true;          ///< recover finished cells from the journal
  int max_retries = 2;         ///< extra attempts before quarantining a cell
  double cell_timeout_s = 0;   ///< watchdog deadline per attempt (0 = off)
  double retry_base_delay_s = 0.05;
  double retry_max_delay_s = 2.0;
  bool strict = false;         ///< campaign exit nonzero when degraded

  /// Defaults overridden by BBSCHED_RESUME / BBSCHED_MAX_RETRIES /
  /// BBSCHED_CELL_TIMEOUT / BBSCHED_RETRY_BASE_DELAY / BBSCHED_STRICT.
  static CampaignControl from_env();
};

/// The process-wide control used by ensure_*/compute_* (initialized from the
/// environment on first use; benches override it from their flags).
CampaignControl& campaign_control();

/// One cell that exhausted its retries and was excluded from the grid.
struct QuarantinedCell {
  std::string workload;
  std::string method;
  std::string error;    ///< what the final attempt died of
  int attempts = 0;
};

/// What happened during the last ensure_*/compute_* campaign: where each
/// cell came from, how many attempts were burned, and which cells were
/// quarantined.  A degraded campaign returns partial results and leaves its
/// journal in place so a later run can finish the grid.
struct CampaignReport {
  std::size_t cells_total = 0;
  std::size_t cells_computed = 0;    ///< ran in this process
  std::size_t cells_resumed = 0;     ///< recovered from the journal
  std::size_t cells_from_cache = 0;  ///< whole grid loaded from the CSV cache
  std::size_t retries = 0;           ///< failed attempts that were retried
  std::vector<QuarantinedCell> quarantined;  ///< sorted by (workload, method)

  bool degraded() const { return !quarantined.empty(); }
};

/// Report of the most recent campaign in this process (any grid).
const CampaignReport& last_campaign_report();

/// Compute-or-load the §4 grid.  On compute, cells run in parallel over the
/// global thread pool and a `main_solver_timing_<digest>.csv` with per-cell
/// wall-clock and solver timings is written next to the grid cache.
MainGridResults ensure_main_grid(const ExperimentConfig& config);

/// Compute-or-load the §5 SSD grid (6 workloads x 7 methods).
std::vector<GridCell> ensure_ssd_grid(const ExperimentConfig& config);

/// Run the §4 campaign unconditionally, bypassing the cache — one task per
/// (workload, method) cell on the global thread pool.  Every cell draws from
/// its own mix_seed(seed, workload, method) stream, so the grid is
/// bit-identical at any thread count (see DESIGN.md §8).
MainGridResults compute_main_grid(const ExperimentConfig& config);

/// As compute_main_grid, for the §5 SSD campaign.
std::vector<GridCell> compute_ssd_grid(const ExperimentConfig& config);

/// Look up a cell (nullopt when missing).
std::optional<GridCell> find_cell(const std::vector<GridCell>& cells,
                                  const std::string& workload,
                                  const std::string& method);

/// Run a single (workload, method) simulation under the campaign config —
/// used by benches that need full outcomes (e.g. Table 3's window sweep).
/// `observer` (may be nullptr) streams outcomes/occupancy out of the run;
/// the grid itself feeds one per cell (incremental metrics + monitor).
SimResult run_single(const ExperimentConfig& config, const Workload& workload,
                     const std::string& method,
                     SimObserver* observer = nullptr);

}  // namespace bbsched
