// test_monitor.cpp — campaign self-monitoring (DESIGN.md §11): the
// CampaignMonitor's counters, heartbeat and summary output, process RSS
// sampling, and the telemetry crash-flush hook that preserves partial
// trace/metrics snapshots when a campaign dies mid-run.
#include "exp/monitor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/telemetry.hpp"

namespace bbsched {
namespace {

namespace fs = std::filesystem;

TEST(ProcessRss, PositiveOnLinux) {
#if defined(__linux__)
  const double rss = process_rss_mb();
  EXPECT_GT(rss, 0.0);
  EXPECT_LT(rss, 1e6);  // sanity: under a terabyte
#else
  EXPECT_DOUBLE_EQ(process_rss_mb(), 0.0);
#endif
}

TEST(CampaignMonitor, TracksCellsAndEvents) {
  CampaignMonitor monitor("test", 4, /*sample_period_s=*/0.01);
  monitor.start();
  monitor.add_events(10);
  monitor.cell_done();
  monitor.add_events(5);
  monitor.cell_done();
  monitor.stop();
  EXPECT_EQ(monitor.cells_done(), 2u);
  EXPECT_EQ(monitor.events(), 15u);
  // start() and stop() each sample unconditionally.
  EXPECT_GE(monitor.samples_taken(), 2u);
#if defined(__linux__)
  EXPECT_GT(monitor.peak_rss_mb(), 0.0);
#endif
}

TEST(CampaignMonitor, SamplerThreadTicksWhileRunning) {
  CampaignMonitor monitor("ticker", 1, /*sample_period_s=*/0.005);
  monitor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  monitor.stop();
  // Guaranteed two (start/stop) plus at least a few periodic ticks.
  EXPECT_GE(monitor.samples_taken(), 4u);
}

TEST(CampaignMonitor, StopIsIdempotentAndDestructorSafe) {
  CampaignMonitor monitor("idem", 1, 0.01);
  monitor.start();
  monitor.stop();
  const std::size_t samples = monitor.samples_taken();
  monitor.stop();  // second stop must be a no-op
  EXPECT_EQ(monitor.samples_taken(), samples);
  // Destructor of a never-started monitor must also be safe.
  CampaignMonitor never_started("unused", 1);
}

TEST(CampaignMonitor, HeartbeatAndSummaryWhenProgressEnabled) {
  set_progress_enabled(true);
  ::testing::internal::CaptureStderr();
  {
    CampaignMonitor monitor("hb_test", 2, 0.01);
    monitor.start();
    monitor.add_events(3);
    monitor.cell_done();
    monitor.stop();
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  set_progress_enabled(false);
  EXPECT_NE(err.find("[progress] hb_test:"), std::string::npos) << err;
  EXPECT_NE(err.find("1/2 cells"), std::string::npos) << err;
  EXPECT_NE(err.find("peak_rss_mb"), std::string::npos)
      << "summary table missing: " << err;
}

TEST(CampaignMonitor, SilentWhenProgressDisabled) {
  set_progress_enabled(false);
  ::testing::internal::CaptureStderr();
  {
    CampaignMonitor monitor("quiet", 1, 0.01);
    monitor.start();
    monitor.cell_done();
    monitor.stop();
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("[progress]"), std::string::npos) << err;
}

TEST(CrashFlush, FlushNowWritesArmedOutputsAndDisarmStops) {
  const fs::path dir =
      fs::temp_directory_path() / "bbsched_crash_flush_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string metrics_path = (dir / "metrics.csv").string();
  const std::string trace_path = (dir / "trace.json").string();

  register_crash_flush(trace_path, metrics_path);
  telemetry_flush_now();  // what the atexit/terminate hook runs
  EXPECT_TRUE(fs::exists(metrics_path))
      << "armed metrics snapshot must be written";
  EXPECT_TRUE(fs::exists(trace_path)) << "armed trace must be written";

  // The partial snapshot must be well-formed enough to load: the metrics
  // CSV starts with its header (after any '#' provenance comments), the
  // trace with a JSON array.
  std::ifstream metrics_in(metrics_path);
  std::string header;
  while (std::getline(metrics_in, header) &&
         (header.empty() || header[0] == '#')) {
  }
  EXPECT_EQ(header.rfind("metric,", 0), 0u) << header;
  std::ifstream trace_in(trace_path);
  EXPECT_EQ(trace_in.get(), '{');

  // After disarm, a flush must not rewrite the outputs.
  disarm_crash_flush();
  fs::remove(metrics_path);
  fs::remove(trace_path);
  telemetry_flush_now();
  EXPECT_FALSE(fs::exists(metrics_path));
  EXPECT_FALSE(fs::exists(trace_path));
  fs::remove_all(dir);
}

TEST(CrashFlush, EmptyPathsStayUnarmed) {
  register_crash_flush("", "");
  telemetry_flush_now();  // nothing armed: must be a harmless no-op
  disarm_crash_flush();
}

}  // namespace
}  // namespace bbsched
