// machine_state.hpp — runtime free-resource accounting for one simulated
// machine.
//
// The paper's model treats compute nodes as fungible (no topology) and the
// shared burst buffer as a single capacity, so allocation is counter
// arithmetic.  The §5 case study splits nodes into two SSD tiers; an
// allocation then carries a per-tier node split chosen by the scheduling
// policy (SsdSchedulingProblem::assign) and the state tracks each tier's
// free count.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/planner.hpp"
#include "core/ssd_problem.hpp"
#include "workload/workload.hpp"

namespace bbsched {

/// Snapshot of free capacity visible to one scheduling decision.
struct FreeState {
  double nodes = 0;        ///< total free nodes (sum of tiers when SSD on)
  double bb_gb = 0;        ///< free schedulable burst buffer
  bool ssd_enabled = false;
  double small_nodes = 0;  ///< free nodes of the small SSD tier
  double large_nodes = 0;  ///< free nodes of the large SSD tier
  double small_ssd_gb = 0; ///< per-node SSD volume of the small tier
  double large_ssd_gb = 0;
};

/// Per-job node-tier allocation; for non-SSD machines everything is
/// accounted in `small_nodes` ("the only tier").
struct Allocation {
  NodeCount small_nodes = 0;
  NodeCount large_nodes = 0;
  GigaBytes bb_gb = 0;

  NodeCount total_nodes() const { return small_nodes + large_nodes; }
};

/// Mutable free-capacity tracker.  allocate/release must balance; the class
/// asserts capacity invariants on every transition.
class MachineState {
 public:
  explicit MachineState(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  FreeState free_state() const;

  NodeCount free_nodes() const { return free_small_ + free_large_; }
  GigaBytes free_bb() const { return free_bb_; }

  /// Whether an allocation fits the current free capacity.
  bool fits(const Allocation& alloc) const;

  /// Whether a plain (tier-agnostic) demand fits; for SSD machines the
  /// per-node SSD request decides which tiers are usable.
  bool fits_job(const JobRecord& job) const;

  /// Build the tier split for a job the way the §5 policy assigns single
  /// jobs: large-only jobs take large-tier nodes; others prefer the small
  /// tier and spill onto the large tier.  Returns false if the job does not
  /// fit.  For non-SSD machines all nodes land in small_nodes.
  bool plan_single(const JobRecord& job, Allocation& out) const;

  /// Commit an allocation for `job_id`.  Throws std::logic_error if it does
  /// not fit or the id is already allocated.  With the planner attached use
  /// allocate_timed instead (this overload throws, to keep the walltime
  /// timeline in sync with the counters).
  void allocate(JobId job_id, const Allocation& alloc);

  /// Commit an allocation and record its walltime-horizon reservation span
  /// [start, expected_end) on the availability planner.  Without an attached
  /// planner this is plain allocate().
  void allocate_timed(JobId job_id, const Allocation& alloc, Time start,
                      Time expected_end);

  /// Release the allocation of `job_id` (and its planner span, if any).
  /// Throws std::logic_error when the id has no allocation.
  void release(JobId job_id);

  // --- availability planner (ROADMAP item 1) -------------------------------
  // Resource vector convention of the attached planner: index 0 = small-tier
  // free nodes (all nodes on non-SSD machines), 1 = large-tier free nodes,
  // 2 = schedulable burst buffer GB.

  static constexpr std::size_t kPlanSmall = 0;
  static constexpr std::size_t kPlanLarge = 1;
  static constexpr std::size_t kPlanBb = 2;
  static constexpr std::size_t kPlanResources = 3;

  /// Attach a walltime-horizon availability timeline mirroring every
  /// allocation.  Must be called while nothing is allocated.
  void enable_planner();
  bool planner_enabled() const { return planner_.has_value(); }

  /// The attached planner (throws std::logic_error when not enabled).
  const Planner& planner() const;

  /// Projected free capacity over the whole future window [t, t + duration),
  /// assuming running jobs hold their allocations until their walltime
  /// expires.  Shaped like free_state() so window problems can be built
  /// against a future instant (planner required).
  FreeState free_state_during(Time t, Time duration) const;

  /// The allocation currently held by a job (must exist).
  const Allocation& allocation_of(JobId job_id) const;

  std::size_t num_running() const { return allocations_.size(); }

 private:
  MachineConfig config_;
  NodeCount free_small_ = 0;  ///< on non-SSD machines: all nodes
  NodeCount free_large_ = 0;
  GigaBytes free_bb_ = 0;
  std::unordered_map<JobId, Allocation> allocations_;
  std::optional<Planner> planner_;            ///< walltime-horizon timeline
  std::unordered_map<JobId, SpanId> spans_;   ///< job -> planner span
};

}  // namespace bbsched
