#include "sim/easy_backfill.hpp"

#include <algorithm>

namespace bbsched {

namespace {

/// Raw free counters the planner advances hypothetically.
struct Free {
  NodeCount small = 0;
  NodeCount large = 0;
  GigaBytes bb = 0;
};

/// Mirror of MachineState::plan_single against hypothetical counters:
/// large-only jobs take the large tier; others prefer the small tier and
/// spill.  Returns false when the job does not fit `free`.
bool plan_against(const JobRecord& job, const MachineConfig& config,
                  const Free& free, Allocation& out) {
  out = Allocation{};
  out.bb_gb = job.bb_gb;
  if (out.bb_gb > free.bb) return false;
  if (!config.has_local_ssd()) {
    if (job.nodes > free.small) return false;
    out.small_nodes = job.nodes;
    return true;
  }
  if (job.ssd_per_node_gb > config.large_ssd_gb) return false;
  if (job.ssd_per_node_gb > config.small_ssd_gb) {
    if (job.nodes > free.large) return false;
    out.large_nodes = job.nodes;
    return true;
  }
  if (job.nodes > free.small + free.large) return false;
  out.small_nodes = std::min(job.nodes, free.small);
  out.large_nodes = job.nodes - out.small_nodes;
  return true;
}

void take(Free& free, const Allocation& alloc) {
  free.small -= alloc.small_nodes;
  free.large -= alloc.large_nodes;
  free.bb -= alloc.bb_gb;
}

void give(Free& free, const Allocation& alloc) {
  free.small += alloc.small_nodes;
  free.large += alloc.large_nodes;
  free.bb += alloc.bb_gb;
}

}  // namespace

BackfillResult plan_easy_backfill(
    const MachineState& machine, const JobRecord* head,
    std::span<const RunningJobInfo> running,
    std::span<const BackfillCandidate> candidates, Time now) {
  BackfillResult result;
  const MachineConfig& config = machine.config();
  const FreeState fs = machine.free_state();
  Free free{static_cast<NodeCount>(fs.ssd_enabled ? fs.small_nodes : fs.nodes),
            static_cast<NodeCount>(fs.ssd_enabled ? fs.large_nodes : 0.0),
            fs.bb_gb};

  // --- 1. shadow time: earliest moment the head fits -----------------------
  Free extra{};
  bool have_reservation = false;
  if (head != nullptr) {
    Allocation head_alloc;
    if (plan_against(*head, config, free, head_alloc)) {
      // The head fits right now (the window policy skipped it as a
      // trade-off); its reservation is "now", so backfill may only consume
      // what the head leaves over.
      result.shadow_time = now;
      Free at_shadow = free;
      take(at_shadow, head_alloc);
      extra = at_shadow;
      have_reservation = true;
    } else {
      // Walk future releases in expected-end order until the head fits.
      std::vector<const RunningJobInfo*> by_end;
      by_end.reserve(running.size());
      for (const auto& r : running) by_end.push_back(&r);
      std::sort(by_end.begin(), by_end.end(),
                [](const RunningJobInfo* a, const RunningJobInfo* b) {
                  return a->expected_end != b->expected_end
                             ? a->expected_end < b->expected_end
                             : a->id < b->id;
                });
      Free projected = free;
      for (const RunningJobInfo* r : by_end) {
        give(projected, r->alloc);
        Allocation alloc;
        if (plan_against(*head, config, projected, alloc)) {
          result.shadow_time = r->expected_end;
          Free at_shadow = projected;
          take(at_shadow, alloc);
          extra = at_shadow;
          have_reservation = true;
          break;
        }
      }
      if (!have_reservation) {
        // The head cannot run even on an empty machine (oversized request);
        // no reservation constrains backfill.
        result.shadow_time = kNeverFits;
      }
    }
  } else {
    result.shadow_time = kNeverFits;  // nothing to protect
  }

  // --- 2. scan candidates in priority order --------------------------------
  for (const auto& candidate : candidates) {
    Allocation alloc;
    if (!plan_against(*candidate.job, config, free, alloc)) continue;
    const bool finishes_before_shadow =
        now + candidate.job->walltime <= result.shadow_time;
    bool fits_extra = false;
    if (have_reservation) {
      fits_extra = alloc.small_nodes <= extra.small &&
                   alloc.large_nodes <= extra.large && alloc.bb_gb <= extra.bb;
    }
    if (!finishes_before_shadow && have_reservation && !fits_extra) continue;
    // Start the candidate: consume current capacity, and if it may still be
    // running at the shadow time, the reservation surplus as well.
    take(free, alloc);
    if (have_reservation && !finishes_before_shadow) {
      extra.small -= alloc.small_nodes;
      extra.large -= alloc.large_nodes;
      extra.bb -= alloc.bb_gb;
    }
    result.started.push_back({candidate.key, alloc});
  }
  return result;
}

}  // namespace bbsched
