#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>

#include "common/clock.hpp"

namespace bbsched {

namespace {

/// BBSCHED_LOG is read with getenv directly (not env.hpp) because env.hpp's
/// malformed-value warning itself routes through the logger.
LogLevel initial_level() {
  const char* value = std::getenv("BBSCHED_LOG");
  if (value && *value) {
    try {
      return parse_log_level(value);
    } catch (const std::invalid_argument&) {
      std::fprintf(stderr, "warning: ignoring malformed BBSCHED_LOG='%s'\n",
                   value);
    }
  }
  return LogLevel::kInfo;
}

std::atomic<int>& level_flag() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

std::mutex g_sink_mutex;
std::ostream* g_sink = nullptr;  // nullptr: stderr via fwrite

/// key=value needs quoting when the value could be mis-tokenized.
bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

void append_value(std::string& out, std::string_view v) {
  if (!needs_quoting(v)) {
    out.append(v);
    return;
  }
  out.push_back('"');
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

LogField::LogField(std::string_view k, double v) : key(k) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  value = buf;
  numeric = std::isfinite(v);
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_flag().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_flag().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         level_flag().load(std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    if (lower == log_level_name(level)) return level;
  }
  throw std::invalid_argument("log: unknown level '" + std::string(name) +
                              "' (trace|debug|info|warn|error|off)");
}

void set_log_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = sink;
}

void log_record(LogLevel level, std::string_view component,
                std::string_view message,
                std::initializer_list<LogField> fields) {
  if (!log_enabled(level) || level == LogLevel::kOff) return;

  // Per-thread line buffer: formatting is lock-free, only the final write
  // shares state.
  thread_local std::string line;
  line.clear();
  char ts[32];
  std::snprintf(ts, sizeof(ts), "ts=%.6f", mono_seconds());
  line += ts;
  line += " level=";
  line += log_level_name(level);
  line += " comp=";
  append_value(line, component);
  line += " msg=";
  append_value(line, message);
  for (const LogField& field : fields) {
    line.push_back(' ');
    line.append(field.key);
    line.push_back('=');
    append_value(line, field.value);
  }
  line.push_back('\n');

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink->write(line.data(), static_cast<std::streamsize>(line.size()));
    if (level >= LogLevel::kWarn) g_sink->flush();
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace bbsched
