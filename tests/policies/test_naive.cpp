#include "policies/naive.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

JobRecord job(JobId id, NodeCount nodes, GigaBytes bb = 0,
              GigaBytes ssd = 0) {
  JobRecord j;
  j.id = id;
  j.nodes = nodes;
  j.bb_gb = bb;
  j.ssd_per_node_gb = ssd;
  j.runtime = 100;
  j.walltime = 100;
  return j;
}

FreeState plain_free(double nodes = 100, GigaBytes bb = tb(100)) {
  FreeState f;
  f.nodes = nodes;
  f.bb_gb = bb;
  return f;
}

TEST(NaivePolicy, Table1StopsAtFirstBlockedJob) {
  // Table 1(b): naive selects J1; J2's 85 TB blocks the queue; J3-J5 are
  // not considered despite fitting (they reach the machine via backfill).
  const std::vector<JobRecord> jobs{job(1, 80, tb(20)), job(2, 10, tb(85)),
                                    job(3, 40, tb(5)), job(4, 10),
                                    job(5, 20)};
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  Rng rng(1);
  WindowContext context;
  context.window = window;
  context.free = plain_free();
  context.rng = &rng;
  const auto decision = NaivePolicy().select(context);
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0}));
}

TEST(NaivePolicy, AdmitsWholeWindowWhenEverythingFits) {
  const std::vector<JobRecord> jobs{job(1, 10), job(2, 20), job(3, 30)};
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  Rng rng(1);
  WindowContext context;
  context.window = window;
  context.free = plain_free();
  context.rng = &rng;
  const auto decision = NaivePolicy().select(context);
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(NaivePolicy, NodeExhaustionBlocksLikeBbExhaustion) {
  const std::vector<JobRecord> jobs{job(1, 90), job(2, 20), job(3, 5)};
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  Rng rng(1);
  WindowContext context;
  context.window = window;
  context.free = plain_free();
  context.rng = &rng;
  const auto decision = NaivePolicy().select(context);
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0}));
}

TEST(NaivePolicy, PinnedJobsAdmittedFirst) {
  const std::vector<JobRecord> jobs{job(1, 90), job(2, 20), job(3, 5)};
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  const std::vector<std::size_t> pinned{2};
  Rng rng(1);
  WindowContext context;
  context.window = window;
  context.free = plain_free();
  context.pinned = pinned;
  context.rng = &rng;
  const auto decision = NaivePolicy().select(context);
  // J3 (pinned, 5 nodes) first, then J1 (90) fits; J2 blocks.
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0, 2}));
}

TEST(NaivePolicy, SsdMachineProducesAllocations) {
  FreeState free;
  free.ssd_enabled = true;
  free.small_nodes = 4;
  free.large_nodes = 4;
  free.nodes = 8;
  free.bb_gb = tb(10);
  free.small_ssd_gb = 128;
  free.large_ssd_gb = 256;
  const std::vector<JobRecord> jobs{job(1, 6, 0, 64), job(2, 2, 0, 200)};
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  Rng rng(1);
  WindowContext context;
  context.window = window;
  context.free = free;
  context.rng = &rng;
  const auto decision = NaivePolicy().select(context);
  ASSERT_EQ(decision.selected.size(), 2u);
  ASSERT_EQ(decision.allocations.size(), 2u);
  // J1 takes all 4 small + 2 large; J2 (large-only) takes the last 2 large.
  EXPECT_EQ(decision.allocations[0].small_nodes, 4);
  EXPECT_EQ(decision.allocations[0].large_nodes, 2);
  EXPECT_EQ(decision.allocations[1].large_nodes, 2);
}

TEST(NaivePolicy, EmptyWindow) {
  Rng rng(1);
  WindowContext context;
  context.free = plain_free();
  context.rng = &rng;
  const auto decision = NaivePolicy().select(context);
  EXPECT_TRUE(decision.selected.empty());
}

}  // namespace
}  // namespace bbsched
