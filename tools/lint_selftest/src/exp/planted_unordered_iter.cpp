// Self-test fixture: planted unordered-iteration violation.  Never compiled.
#include <ostream>
#include <string>
#include <unordered_map>

void planted_unordered_iter(std::ostream& out) {
  std::unordered_map<std::string, double> cells;
  cells["a"] = 1.0;
  for (const auto& [name, value] : cells) {
    out << name << ',' << value << '\n';
  }
}
