// trace_io.hpp — reading and writing job traces.
//
// Two formats are supported:
//
//  * the library's native CSV trace — one row per job with all JobRecord
//    fields including burst-buffer and local-SSD requests (what a site would
//    export from Slurm/Cobalt logs plus Darshan, per §4.1), and
//  * the Standard Workload Format (SWF) used by the Parallel Workloads
//    Archive — CPU-only; burst-buffer fields default to zero so real public
//    traces can be enhanced with the synthetic.hpp transforms the same way
//    the paper enhanced the Theta trace.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload.hpp"

namespace bbsched {

/// CSV column header of the native trace format.
inline constexpr const char* kTraceCsvHeader =
    "id,submit_s,runtime_s,walltime_s,nodes,bb_gb,ssd_per_node_gb,deps";

/// Write a workload's jobs as native CSV (machine config is not embedded;
/// it travels in experiment configuration).
void write_trace_csv(const Workload& workload, std::ostream& out);
void write_trace_csv_file(const Workload& workload, const std::string& path);

/// Read a native CSV trace into `machine`-bound workload named `name`.
/// Throws std::runtime_error on malformed rows.
Workload read_trace_csv(std::istream& in, std::string name,
                        MachineConfig machine);
Workload read_trace_csv_file(const std::string& path, std::string name,
                             MachineConfig machine);

/// Read an SWF trace (whitespace-separated, ';' comments).  Fields used:
/// job id (1), submit time (2), run time (4), allocated processors (5),
/// requested time (9), requested processors (8) with fallbacks to the
/// allocated values when requests are absent (-1).  `cores_per_node` scales
/// SWF processor counts down to node counts (ceiling division).
Workload read_swf(std::istream& in, std::string name, MachineConfig machine,
                  int cores_per_node = 1);
Workload read_swf_file(const std::string& path, std::string name,
                       MachineConfig machine, int cores_per_node = 1);

}  // namespace bbsched
