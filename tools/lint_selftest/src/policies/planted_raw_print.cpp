// Self-test fixture: planted raw-stdout violation.  Never compiled.
#include <iostream>

void planted_raw_print(int cells) {
  std::cout << "cells done: " << cells << '\n';
}
