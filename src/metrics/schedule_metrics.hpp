// schedule_metrics.hpp — the §4.2 evaluation metrics.
//
// System-level: node usage and burst-buffer usage — used resource-hours over
// elapsed resource-hours, integrated over the measurement interval (the
// paper trims a warm-up and cool-down period; SimResult carries the trimmed
// interval).  User-level: average job wait time and average slowdown, over
// jobs *submitted* inside the interval.  Slowdown filters "abnormal jobs
// [that] end abruptly at beginning of execution": jobs shorter than
// `slowdown_min_runtime` are excluded.
//
// §5 adds local-SSD usage and the wasted-SSD fraction, integrated the same
// way from the committed node-tier splits.
#pragma once

#include "sim/sim_result.hpp"

namespace bbsched {

/// Metric knobs.
struct MetricsConfig {
  Time slowdown_min_runtime = seconds(60);  ///< abnormal-job filter
};

/// Aggregate metrics of one simulation.
struct ScheduleMetrics {
  double node_usage = 0;    ///< used node-hours / elapsed node-hours
  double bb_usage = 0;      ///< used BB-hours / elapsed (schedulable) BB-hours
  double ssd_usage = 0;     ///< requested-SSD-hours / elapsed SSD-hours (§5)
  double ssd_waste = 0;     ///< wasted-SSD-hours / elapsed SSD-hours (§5)
  double avg_wait = 0;      ///< seconds
  double avg_slowdown = 0;  ///< filtered per MetricsConfig
  double p95_wait = 0;      ///< seconds, 95th percentile
  double max_wait = 0;      ///< seconds
  std::size_t jobs_measured = 0;   ///< jobs submitted inside the interval
  std::size_t jobs_backfilled = 0; ///< of those, started via EASY
};

/// Compute metrics from a finished simulation.
ScheduleMetrics compute_metrics(const SimResult& result,
                                const MetricsConfig& config = {});

/// Overlap of [lo1, hi1] with [lo2, hi2]; 0 when disjoint.
Time interval_overlap(Time lo1, Time hi1, Time lo2, Time hi2);

/// Per-job wasted local SSD GB under the committed tier split (0 on non-SSD
/// machines).
GigaBytes wasted_ssd_gb(const JobOutcome& outcome, const MachineConfig& m);

}  // namespace bbsched
