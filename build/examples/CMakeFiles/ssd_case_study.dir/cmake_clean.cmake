file(REMOVE_RECURSE
  "CMakeFiles/ssd_case_study.dir/ssd_case_study.cpp.o"
  "CMakeFiles/ssd_case_study.dir/ssd_case_study.cpp.o.d"
  "ssd_case_study"
  "ssd_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
