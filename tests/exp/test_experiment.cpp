#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace bbsched {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.jobs_per_workload = 120;
  config.ga.generations = 20;
  config.ga.population_size = 8;
  return config;
}

TEST(ExperimentConfig, EnvOverrides) {
  ::setenv("BBSCHED_BENCH_JOBS", "123", 1);
  ::setenv("BBSCHED_BENCH_G", "77", 1);
  ::setenv("BBSCHED_CORI_SCALE", "0.5", 1);
  const auto config = ExperimentConfig::from_env();
  EXPECT_EQ(config.jobs_per_workload, 123u);
  EXPECT_EQ(config.ga.generations, 77);
  EXPECT_DOUBLE_EQ(config.cori_scale, 0.5);
  ::unsetenv("BBSCHED_BENCH_JOBS");
  ::unsetenv("BBSCHED_BENCH_G");
  ::unsetenv("BBSCHED_CORI_SCALE");
}

TEST(ExperimentConfig, DigestChangesWithConfig) {
  ExperimentConfig a = tiny_config();
  ExperimentConfig b = tiny_config();
  EXPECT_EQ(a.digest(), b.digest());
  b.window_size = 50;
  EXPECT_NE(a.digest(), b.digest());
  b = tiny_config();
  b.theta_scale *= 2;
  EXPECT_NE(a.digest(), b.digest());
}

TEST(ExperimentConfig, SimConfigInherits) {
  ExperimentConfig config = tiny_config();
  config.window_size = 33;
  const SimConfig sim = config.sim_config();
  EXPECT_EQ(sim.window_size, 33u);
  EXPECT_DOUBLE_EQ(sim.warmup_fraction, config.warmup_fraction);
}

TEST(BuildWorkloads, MainSuiteHasTenLabeledEntries) {
  const auto suite = build_main_workloads(tiny_config());
  ASSERT_EQ(suite.size(), 10u);
  EXPECT_EQ(suite[0].label, "Cori-Original");
  EXPECT_EQ(suite[4].label, "Cori-S4");
  EXPECT_EQ(suite[5].label, "Theta-Original");
  EXPECT_EQ(suite[9].label, "Theta-S4");
  for (const auto& entry : suite) {
    EXPECT_EQ(entry.label, entry.workload.name);
    EXPECT_EQ(entry.workload.jobs.size(), 120u);
  }
}

TEST(BuildWorkloads, SsdSuiteHasSixEntriesWithTiers) {
  const auto suite = build_ssd_workloads(tiny_config());
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].label, "Cori-S5");
  EXPECT_EQ(suite[5].label, "Theta-S7");
  for (const auto& entry : suite) {
    EXPECT_TRUE(entry.workload.machine.has_local_ssd());
  }
}

TEST(BuildWorkloads, ScaleShrinksMachines) {
  ExperimentConfig config = tiny_config();
  config.cori_scale = 0.25;
  const auto suite = build_main_workloads(config);
  EXPECT_EQ(suite[0].workload.machine.nodes, 3019);
}

TEST(BaseSchedulerFor, PaperAssignment) {
  EXPECT_EQ(base_scheduler_for("Cori-S3"), "FCFS");
  EXPECT_EQ(base_scheduler_for("Cori-Original"), "FCFS");
  EXPECT_EQ(base_scheduler_for("Theta-S4"), "WFP");
}

}  // namespace
}  // namespace bbsched
