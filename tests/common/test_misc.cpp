#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/argparse.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace bbsched {
namespace {

// --- units -------------------------------------------------------------------

TEST(Units, CapacityConversions) {
  EXPECT_DOUBLE_EQ(tb(1), 1024.0);
  EXPECT_DOUBLE_EQ(pb(1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(as_tb(tb(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(as_pb(pb(1.8)), 1.8);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(hours(2), 7200.0);
  EXPECT_DOUBLE_EQ(days(1), 86400.0);
  EXPECT_DOUBLE_EQ(as_hours(minutes(90)), 1.5);
}

TEST(Units, FormatCapacityPicksUnit) {
  EXPECT_EQ(format_capacity(gb(512)), "512GB");
  EXPECT_EQ(format_capacity(tb(85)), "85TB");
  EXPECT_EQ(format_capacity(pb(1.8)), "1.80PB");
}

TEST(Units, FormatDurationPicksUnit) {
  EXPECT_EQ(format_duration(seconds(45)), "45s");
  EXPECT_EQ(format_duration(minutes(5)), "5m");
  EXPECT_EQ(format_duration(hours(2.5)), "2.50h");
  EXPECT_EQ(format_duration(days(3)), "3d");
}

// --- env ----------------------------------------------------------------------

TEST(Env, IntParsingAndFallback) {
  ::setenv("BBSCHED_TEST_INT", "123", 1);
  EXPECT_EQ(env_int("BBSCHED_TEST_INT", 5), 123);
  ::setenv("BBSCHED_TEST_INT", "garbage", 1);
  EXPECT_EQ(env_int("BBSCHED_TEST_INT", 5), 5);
  ::unsetenv("BBSCHED_TEST_INT");
  EXPECT_EQ(env_int("BBSCHED_TEST_INT", 5), 5);
}

TEST(Env, DoubleAndString) {
  ::setenv("BBSCHED_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("BBSCHED_TEST_D", 1.0), 2.5);
  ::unsetenv("BBSCHED_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("BBSCHED_TEST_D", 1.0), 1.0);
  ::setenv("BBSCHED_TEST_S", "hello", 1);
  EXPECT_EQ(env_string("BBSCHED_TEST_S", "d"), "hello");
  ::unsetenv("BBSCHED_TEST_S");
  EXPECT_EQ(env_string("BBSCHED_TEST_S", "d"), "d");
}

// --- argparse -------------------------------------------------------------------

TEST(ArgParse, ParsesAllKinds) {
  std::int64_t n = 1;
  double x = 0.5;
  std::string s = "a";
  bool flag = false;
  ArgParser parser("test");
  parser.add_int("n", &n, "an int");
  parser.add_double("x", &x, "a double");
  parser.add_string("s", &s, "a string");
  parser.add_bool("flag", &flag, "a switch");
  const char* argv[] = {"prog", "--n", "7", "--x=1.5", "--s", "hello",
                        "--flag"};
  ASSERT_TRUE(parser.parse(7, argv));
  EXPECT_EQ(n, 7);
  EXPECT_DOUBLE_EQ(x, 1.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(flag);
}

TEST(ArgParse, UnknownFlagThrows) {
  ArgParser parser("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(parser.parse(3, argv), std::runtime_error);
}

TEST(ArgParse, MissingValueThrows) {
  std::int64_t n = 0;
  ArgParser parser("test");
  parser.add_int("n", &n, "an int");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(parser.parse(2, argv), std::runtime_error);
}

TEST(ArgParse, BadValueThrows) {
  std::int64_t n = 0;
  ArgParser parser("test");
  parser.add_int("n", &n, "an int");
  const char* argv[] = {"prog", "--n", "xyz"};
  EXPECT_THROW(parser.parse(3, argv), std::runtime_error);
}

TEST(ArgParse, HelpReturnsFalse) {
  ArgParser parser("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParse, UsageListsDefaults) {
  std::int64_t n = 42;
  ArgParser parser("my tool");
  parser.add_int("n", &n, "an int");
  const std::string usage = parser.usage("prog");
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("default: 42"), std::string::npos);
}

// --- table ---------------------------------------------------------------------

TEST(ConsoleTable, AlignsColumns) {
  ConsoleTable table({"name", "value"}, {Align::kLeft, Align::kRight});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "23"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Right-aligned numeric column: " 1" padded under "23".
  EXPECT_NE(text.find(" 1\n"), std::string::npos);
}

TEST(ConsoleTable, RowWidthMismatchThrows) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only"}), std::invalid_argument);
}

TEST(ConsoleTable, NumberFormatters) {
  EXPECT_EQ(ConsoleTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(ConsoleTable::pct(0.4567, 1), "45.7%");
}

}  // namespace
}  // namespace bbsched
