file(REMOVE_RECURSE
  "libbbsched_core.a"
)
