// fault.hpp — fault model primitives for fault-tolerant campaigns
// (DESIGN.md §12): CRC32 framing, crash-consistent file writes, capped
// exponential retry backoff with deterministic jitter, and a seeded
// fault-injection plan that exercises every recovery path in tests and CI.
//
// The injection plan is deterministic by construction: whether a site faults
// is a pure function of (plan seed, site name, call key), never of thread
// schedule or wall clock, so a campaign run under a given BBSCHED_FAULT_PLAN
// produces the same retry schedule and quarantine set at any --threads count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace bbsched {

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`,
/// continuing from `seed` (pass a previous return value to checksum in
/// chunks).  This is the framing checksum of the cell journal and the
/// cached-CSV trailers.
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// Lower-case fixed-width (8 char) hex rendering of crc32(data).
std::string crc32_hex(std::string_view data);

/// The faults an injection site can produce.
enum class FaultKind {
  kNone,
  kThrow,         ///< throw InjectedFault at the site
  kHang,          ///< sleep `param` seconds (watchdog-deadline fodder)
  kPartialWrite,  ///< keep only `param` fraction of the payload bytes
  kEnospc,        ///< fail the write as if the disk were full
};

const char* fault_kind_name(FaultKind kind);

/// Exception thrown at injected kThrow / kEnospc sites (and by
/// atomic_write_file when a partial-write fault tears the temp file).
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultKind kind, std::string_view site, std::string_view key);
  FaultKind kind() const { return kind_; }

 private:
  FaultKind kind_;
};

/// One rule of a fault plan: at `site`, with `probability` per decision,
/// inject `kind`.  `param` is the hang duration in seconds (kHang, default
/// 0.1) or the fraction of bytes kept (kPartialWrite, default 0.5).
struct FaultRule {
  std::string site;
  FaultKind kind = FaultKind::kNone;
  double probability = 0;
  double param = 0;
};

/// A seeded set of per-site fault probabilities, normally parsed from the
/// BBSCHED_FAULT_PLAN environment variable.  Spec grammar (';'-separated):
///
///   seed=<u64>;<site>:<kind>=<probability>[@<param>];...
///   e.g.  seed=7;grid.cell:throw=0.3;journal.append:partial=0.2@0.5
///
/// Kinds: throw | hang | partial | enospc.  An empty spec is a disabled plan.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parse a spec; throws std::invalid_argument naming the bad clause.
  static FaultPlan parse(std::string_view spec);

  /// Parse BBSCHED_FAULT_PLAN (empty/unset: disabled plan).
  static FaultPlan from_env();

  bool enabled() const { return !rules_.empty(); }
  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultRule>& rules() const { return rules_; }

  struct Decision {
    FaultKind kind = FaultKind::kNone;
    double param = 0;
  };

  /// The (deterministic) injection decision for one visit of `site` with
  /// call key `key`.  Rules are tried in spec order; first hit wins.
  Decision decide(std::string_view site, std::string_view key) const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultRule> rules_;
};

/// The process-wide plan: parsed from BBSCHED_FAULT_PLAN on first use.
const FaultPlan& global_fault_plan();
/// Replace the process-wide plan (tests).  Pass FaultPlan{} to disarm.
void set_global_fault_plan(FaultPlan plan);

/// Visit an injection site: no-op without a matching rule; throws
/// InjectedFault on kThrow/kEnospc; sleeps the rule's param seconds on
/// kHang.  `key` should identify the visit (e.g. "Cori-S1/BBSched#2") so
/// retries of the same work draw independent decisions.
void fault_point(std::string_view site, std::string_view key);

/// For file writers: how many bytes of an `n`-byte payload to actually
/// write.  Returns `n` normally, a truncated count under an injected
/// partial-write fault, and throws InjectedFault on kThrow/kEnospc.
std::size_t fault_write_bytes(std::string_view site, std::string_view key,
                              std::size_t n);

/// Capped exponential backoff: attempt k (0-based) waits
/// min(max_delay_s, base_delay_s * 2^k), scaled by a deterministic jitter
/// factor in [0.5, 1.5) drawn from mix_seed(seed, key, attempt).
struct RetryPolicy {
  int max_retries = 2;        ///< extra attempts after the first failure
  double base_delay_s = 0.05;
  double max_delay_s = 2.0;
  std::uint64_t seed = 0;     ///< jitter stream seed
};

double retry_delay_seconds(const RetryPolicy& policy, std::string_view key,
                           int attempt);

/// Crash-consistent whole-file write: the content lands in a temp file in
/// the destination directory, is flushed and fsync'd, then atomically
/// renamed over `path` — a crash at any point leaves either the old file or
/// the new one, never a truncated hybrid.  `fault_site` (when non-empty)
/// threads the write through the injection plan: a partial-write fault
/// leaves the torn temp file behind and throws, with `path` untouched.
/// Throws std::runtime_error on real I/O errors.
void atomic_write_file(const std::string& path, std::string_view content,
                       std::string_view fault_site = {},
                       std::string_view fault_key = {});

/// Move a corrupt/suspect file into a "quarantine" subdirectory next to it
/// (e.g. bench_cache/quarantine/<name>), logging a structured error with
/// the reason.  Returns the quarantine path ("" if the move failed).
std::string quarantine_file(const std::string& path, std::string_view reason);

/// Holding pen for watchdog-abandoned worker threads.  A cell that outlives
/// its deadline cannot be killed portably, so its thread is parked here;
/// reap() joins the ones that have since finished, and the reaper joins
/// everything left at process exit (a genuinely hung cell therefore delays
/// exit — CI per-test timeouts cover that case).
class AbandonedThreadReaper {
 public:
  static AbandonedThreadReaper& instance();
  ~AbandonedThreadReaper();

  /// Park `t`; `done` must become true once the thread is past all work.
  void park(std::thread t, std::shared_ptr<std::atomic<bool>> done);

  /// Join finished parked threads; returns how many are still running.
  std::size_t reap();

  /// Parked threads still running.
  std::size_t pending() const;

 private:
  AbandonedThreadReaper() = default;
  struct Entry {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace bbsched
