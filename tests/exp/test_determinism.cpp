// Determinism regression: the parallel experiment engine must produce
// byte-identical results at any thread count.  Each (workload, method) cell
// draws from its own mix_seed(seed, workload, method) stream and fitness
// evaluation inside the solvers is pure, so 1, 2 and 8 threads must agree
// exactly — not approximately.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "exp/grid.hpp"

namespace bbsched {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.jobs_per_workload = 30;
  config.window_size = 5;
  config.ga.generations = 5;
  config.ga.population_size = 6;
  return config;
}

void expect_outcomes_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const JobOutcome& x = a.outcomes[i];
    const JobOutcome& y = b.outcomes[i];
    ASSERT_EQ(x.id, y.id);
    // Bit-identical, not approximately equal: EXPECT_EQ on doubles.
    EXPECT_EQ(x.start, y.start) << "job " << x.id;
    EXPECT_EQ(x.end, y.end) << "job " << x.id;
    EXPECT_EQ(x.small_tier_nodes, y.small_tier_nodes) << "job " << x.id;
    EXPECT_EQ(x.large_tier_nodes, y.large_tier_nodes) << "job " << x.id;
    EXPECT_EQ(x.backfilled, y.backfilled) << "job " << x.id;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.decisions.policy_starts, b.decisions.policy_starts);
  EXPECT_EQ(a.decisions.backfill_starts, b.decisions.backfill_starts);
  EXPECT_EQ(a.decisions.forced_starts, b.decisions.forced_starts);
  EXPECT_EQ(a.decisions.evaluations, b.decisions.evaluations);
}

TEST(ThreadDeterminism, SingleCellsBitIdenticalAt1_2_8Threads) {
  const auto config = tiny_config();
  const auto workloads = build_main_workloads(config);
  ASSERT_FALSE(workloads.empty());
  // An optimization-based method (solver fans evaluations out over the
  // pool) and the greedy baseline.
  const std::vector<std::string> methods{"BBSched", "Baseline"};
  for (const auto& method : methods) {
    set_global_threads(1);
    const SimResult reference =
        run_single(config, workloads.front().workload, method);
    for (const std::size_t threads : {2u, 8u}) {
      set_global_threads(threads);
      const SimResult replay =
          run_single(config, workloads.front().workload, method);
      SCOPED_TRACE(method + " @ " + std::to_string(threads) + " threads");
      expect_outcomes_identical(reference, replay);
    }
  }
  set_global_threads(0);
}

TEST(ThreadDeterminism, MainGridBitIdenticalSerialVsParallel) {
  const auto config = tiny_config();
  set_global_threads(1);
  const MainGridResults serial = compute_main_grid(config);
  set_global_threads(4);
  const MainGridResults parallel = compute_main_grid(config);
  set_global_threads(0);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const GridCell& a = serial.cells[i];
    const GridCell& b = parallel.cells[i];
    ASSERT_EQ(a.workload, b.workload) << "cell order must be deterministic";
    ASSERT_EQ(a.method, b.method);
    // Every simulated quantity must match exactly; only the wall-clock
    // timing fields (cell_wall_seconds, *_solve_seconds) may differ.
    EXPECT_EQ(a.metrics.node_usage, b.metrics.node_usage);
    EXPECT_EQ(a.metrics.bb_usage, b.metrics.bb_usage);
    EXPECT_EQ(a.metrics.ssd_usage, b.metrics.ssd_usage);
    EXPECT_EQ(a.metrics.ssd_waste, b.metrics.ssd_waste);
    EXPECT_EQ(a.metrics.avg_wait, b.metrics.avg_wait);
    EXPECT_EQ(a.metrics.avg_slowdown, b.metrics.avg_slowdown);
    EXPECT_EQ(a.metrics.p95_wait, b.metrics.p95_wait);
    EXPECT_EQ(a.metrics.max_wait, b.metrics.max_wait);
    EXPECT_EQ(a.metrics.jobs_measured, b.metrics.jobs_measured);
    EXPECT_EQ(a.metrics.jobs_backfilled, b.metrics.jobs_backfilled);
    EXPECT_EQ(a.mean_pareto_size, b.mean_pareto_size);
    EXPECT_EQ(a.forced_starts, b.forced_starts);
  }
  ASSERT_EQ(serial.breakdowns.size(), parallel.breakdowns.size());
  for (std::size_t i = 0; i < serial.breakdowns.size(); ++i) {
    EXPECT_EQ(serial.breakdowns[i].label, parallel.breakdowns[i].label);
    EXPECT_EQ(serial.breakdowns[i].avg_wait, parallel.breakdowns[i].avg_wait);
    EXPECT_EQ(serial.breakdowns[i].count, parallel.breakdowns[i].count);
  }
}

TEST(ThreadDeterminism, SsdGridBitIdenticalSerialVsParallel) {
  auto config = tiny_config();
  config.jobs_per_workload = 24;
  set_global_threads(1);
  const auto serial = compute_ssd_grid(config);
  set_global_threads(8);
  const auto parallel = compute_ssd_grid(config);
  set_global_threads(0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].workload, parallel[i].workload);
    ASSERT_EQ(serial[i].method, parallel[i].method);
    EXPECT_EQ(serial[i].metrics.ssd_usage, parallel[i].metrics.ssd_usage);
    EXPECT_EQ(serial[i].metrics.ssd_waste, parallel[i].metrics.ssd_waste);
    EXPECT_EQ(serial[i].metrics.avg_wait, parallel[i].metrics.avg_wait);
    EXPECT_EQ(serial[i].metrics.node_usage, parallel[i].metrics.node_usage);
  }
}

TEST(ThreadDeterminism, PerCellSeedsAreDecorrelated) {
  // The per-cell seeding discipline: distinct (workload, method) labels
  // yield distinct streams from the same base seed.
  const auto a = mix_seed(42, "Cori-S1", "BBSched");
  const auto b = mix_seed(42, "Cori-S1", "Baseline");
  const auto c = mix_seed(42, "Cori-S2", "BBSched");
  const auto d = mix_seed(43, "Cori-S1", "BBSched");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  // Label concatenation must not alias across the separator.
  EXPECT_NE(mix_seed(42, "ab", "c"), mix_seed(42, "a", "bc"));
  // Stable across runs/platforms (documented FNV-1a + SplitMix64, not
  // std::hash): pin one value so accidental algorithm changes are caught.
  EXPECT_EQ(mix_seed(42, "Cori-S1", "BBSched"), a);
}

}  // namespace
}  // namespace bbsched
