#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/csv.hpp"
#include "common/thread_pool.hpp"

namespace bbsched {
namespace {

TEST(MetricCounter, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr std::size_t kTasks = 1000;
  parallel_for(kTasks, [&](std::size_t i) { counter.add(i % 3 + 1); });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kTasks; ++i) expected += i % 3 + 1;
  EXPECT_EQ(counter.value(), expected);
}

TEST(MetricGauge, LastWriteWins) {
  Gauge gauge;
  gauge.set(1.5);
  gauge.set(-2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricHistogramTest, BucketsCountAndStats) {
  MetricHistogram h({1.0, 10.0, 100.0});
  for (double v : {0.5, 0.7, 1.0, 5.0, 50.0, 1000.0}) h.observe(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 0.7 + 1.0 + 5.0 + 50.0 + 1000.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_EQ(h.bucket_count(0), 3u);  // <= 1.0 (boundary is inclusive)
  EXPECT_EQ(h.bucket_count(1), 1u);  // <= 10.0
  EXPECT_EQ(h.bucket_count(2), 1u);  // <= 100.0
  EXPECT_EQ(h.bucket_count(3), 1u);  // +inf
}

TEST(MetricHistogramTest, EmptyReportsZeroMinMax) {
  MetricHistogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(MetricHistogramTest, RejectsBadBounds) {
  EXPECT_THROW(MetricHistogram({}), std::invalid_argument);
  EXPECT_THROW(MetricHistogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(MetricHistogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricHistogramTest, ConcurrentObservationsSumExactly) {
  MetricHistogram h(default_seconds_bounds());
  constexpr std::size_t kTasks = 2000;
  parallel_for(kTasks, [&](std::size_t i) {
    h.observe(static_cast<double>(i % 7) * 0.01);
  });
  EXPECT_EQ(h.count(), kTasks);
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    bucketed += h.bucket_count(i);
  }
  EXPECT_EQ(bucketed, kTasks);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsSameObject) {
  MetricsRegistry registry;
  Counter& a = registry.counter("reg.hits");
  Counter& b = registry.counter("reg.hits");
  EXPECT_EQ(&a, &b);
  MetricHistogram& h1 = registry.histogram("reg.lat", {1.0, 2.0});
  MetricHistogram& h2 = registry.histogram("reg.lat", {5.0});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("metric.x");
  EXPECT_THROW(registry.gauge("metric.x"), std::logic_error);
  EXPECT_THROW(registry.histogram("metric.x"), std::logic_error);
}

TEST(MetricsRegistryTest, ResetKeepsReferencesValid) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("reset.count");
  MetricHistogram& h = registry.histogram("reset.lat", {1.0});
  counter.add(5);
  h.observe(0.5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  counter.add(1);  // still wired to the registry entry
  EXPECT_EQ(registry.counter("reset.count").value(), 1u);
}

TEST(MetricsRegistryTest, CsvSnapshotParsesBack) {
  MetricsRegistry registry;
  registry.counter("snap.count").add(3);
  registry.gauge("snap.level").set(0.25);
  MetricHistogram& h = registry.histogram("snap.lat", {1.0, 10.0});
  h.observe(0.5);
  h.observe(20.0);

  std::ostringstream out;
  registry.write_csv(out);
  std::istringstream in(out.str());
  const CsvTable table = CsvTable::read(in);
  EXPECT_EQ(table.header(), (CsvRow{"metric", "kind", "field", "value"}));

  auto find = [&](const std::string& metric,
                  const std::string& field) -> std::string {
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      if (table.at(r, "metric") == metric && table.at(r, "field") == field) {
        return table.at(r, "value");
      }
    }
    return "<missing>";
  };
  EXPECT_EQ(find("snap.count", "value"), "3");
  EXPECT_DOUBLE_EQ(parse_double_field(find("snap.level", "value"), "value"),
                   0.25);
  EXPECT_EQ(find("snap.lat", "count"), "2");
  EXPECT_EQ(find("snap.lat", "le_1"), "1");
  EXPECT_EQ(find("snap.lat", "le_inf"), "1");
}

TEST(MetricsEnabled, TogglesGlobalFlag) {
  EXPECT_FALSE(metrics_enabled());  // off by default
  set_metrics_enabled(true);
  EXPECT_TRUE(metrics_enabled());
  set_metrics_enabled(false);
  EXPECT_FALSE(metrics_enabled());
}

}  // namespace
}  // namespace bbsched
