#include "common/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/build_info.hpp"
#include "common/fault.hpp"

namespace bbsched {

namespace telemetry_detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace telemetry_detail

void set_metrics_enabled(bool enabled) {
  telemetry_detail::g_metrics_enabled.store(enabled,
                                            std::memory_order_relaxed);
}

MetricHistogram::MetricHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("metrics: histogram needs >= 1 bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "metrics: histogram bounds must be strictly increasing");
  }
}

void MetricHistogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  telemetry_detail::atomic_add(sum_, v);
  telemetry_detail::atomic_min(min_, v);
  telemetry_detail::atomic_max(max_, v);
}

double MetricHistogram::min() const {
  return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double MetricHistogram::max() const {
  return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

void MetricHistogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> default_seconds_bounds() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 100};
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (!entry.counter) {
    if (entry.gauge || entry.histogram) {
      throw std::logic_error("metrics: '" + name +
                             "' already registered with another kind");
    }
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (!entry.gauge) {
    if (entry.counter || entry.histogram) {
      throw std::logic_error("metrics: '" + name +
                             "' already registered with another kind");
    }
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

MetricHistogram& MetricsRegistry::histogram(const std::string& name,
                                            std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (!entry.histogram) {
    if (entry.counter || entry.gauge) {
      throw std::logic_error("metrics: '" + name +
                             "' already registered with another kind");
    }
    entry.histogram = std::make_unique<MetricHistogram>(
        upper_bounds.empty() ? default_seconds_bounds()
                             : std::move(upper_bounds));
  }
  return *entry.histogram;
}

namespace {

std::string metric_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::write_csv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "metric,kind,field,value\n";
  for (const auto& [name, entry] : entries_) {
    if (entry.counter) {
      out << name << ",counter,value," << entry.counter->value() << '\n';
    } else if (entry.gauge) {
      out << name << ",gauge,value," << metric_num(entry.gauge->value())
          << '\n';
    } else if (entry.histogram) {
      const MetricHistogram& h = *entry.histogram;
      out << name << ",histogram,count," << h.count() << '\n';
      out << name << ",histogram,sum," << metric_num(h.sum()) << '\n';
      out << name << ",histogram,min," << metric_num(h.min()) << '\n';
      out << name << ",histogram,max," << metric_num(h.max()) << '\n';
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        out << name << ",histogram,le_" << metric_num(h.bounds()[i]) << ','
            << h.bucket_count(i) << '\n';
      }
      out << name << ",histogram,le_inf,"
          << h.bucket_count(h.bounds().size()) << '\n';
    }
  }
}

void MetricsRegistry::write_csv_file(const std::string& path) const {
  // Render in memory, then write-temp -> fsync -> rename: the crash-flush
  // hook calls this from signal cleanup, and an in-place write there could
  // tear the previous (complete) snapshot.  Exported snapshots lead with
  // "# key=value" provenance comments (git SHA, compiler, CPUs, threads)
  // so an artifact is attributable after the fact; CsvTable::read and the
  // CI smoke greps skip '#' lines.
  std::ostringstream out;
  out << provenance_comment_lines();
  write_csv(out);
  atomic_write_file(path, out.str(), "metrics.write", path);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

}  // namespace bbsched
