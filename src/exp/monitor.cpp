#include "exp/monitor.hpp"

#include <cstdio>
#include <iostream>

#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/profiler.hpp"
#include "common/table.hpp"
#include "common/telemetry.hpp"
#include "common/trace.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace bbsched {

double process_rss_mb() {
#if defined(__linux__)
  // /proc/self/statm: "size resident shared ..." in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long size_pages = 0, resident_pages = 0;
  const int parsed = std::fscanf(f, "%ld %ld", &size_pages, &resident_pages);
  std::fclose(f);
  if (parsed != 2) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident_pages) * static_cast<double>(page) /
         (1024.0 * 1024.0);
#else
  return 0.0;
#endif
}

CampaignMonitor::CampaignMonitor(std::string label, std::size_t cells_total,
                                 double sample_period_s)
    : label_(std::move(label)),
      cells_total_(cells_total),
      sample_period_s_(sample_period_s > 0 ? sample_period_s : 1.0) {}

CampaignMonitor::~CampaignMonitor() { stop(); }

void CampaignMonitor::start() {
  if (started_) return;
  started_ = true;
  start_s_ = mono_seconds();
  last_sample_s_ = start_s_;
  last_events_ = 0;
  // Initial sample before the thread exists: guarantees at least one
  // heartbeat/gauge write even when the campaign outpaces the first tick.
  sample(/*heartbeat=*/true);
  sampler_ = std::thread([this] { sampler_loop(); });
}

void CampaignMonitor::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  sample(/*heartbeat=*/true);
  if (progress_enabled()) {
    const double wall = mono_seconds() - start_s_;
    const auto ev = events();
    ConsoleTable summary({"campaign", "cells", "resumed", "retries",
                          "quarantined", "events", "wall_s", "avg_cell_s",
                          "avg_solve_s", "events_per_s", "peak_rss_mb"},
                         {Align::kLeft, Align::kRight, Align::kRight,
                          Align::kRight, Align::kRight, Align::kRight,
                          Align::kRight, Align::kRight, Align::kRight,
                          Align::kRight, Align::kRight});
    summary.add_row(
        {label_,
         std::to_string(cells_done()) + "/" + std::to_string(cells_total_),
         std::to_string(cells_resumed()), std::to_string(retries()),
         std::to_string(quarantined()), std::to_string(ev),
         ConsoleTable::num(wall, 2), ConsoleTable::num(avg_cell_seconds(), 3),
         ConsoleTable::num(avg_solve_seconds(), 4),
         ConsoleTable::num(wall > 0 ? static_cast<double>(ev) / wall : 0.0, 0),
         ConsoleTable::num(peak_rss_mb(), 1)});
    summary.print(std::cerr);
    if (quarantined() > 0) {
      std::fprintf(stderr,
                   "[progress] %s: DEGRADED — %zu cell(s) quarantined; "
                   "results are partial and the cache was not finalized\n",
                   label_.c_str(), quarantined());
    }
  }
}

void CampaignMonitor::sampler_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto period = std::chrono::duration<double>(sample_period_s_);
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) break;
    lock.unlock();
    sample(/*heartbeat=*/true);
    lock.lock();
  }
}

void CampaignMonitor::sample(bool heartbeat) {
  const double now_s = mono_seconds();
  const double rss = process_rss_mb();
  {
    double peak = peak_rss_mb_.load(std::memory_order_relaxed);
    while (rss > peak && !peak_rss_mb_.compare_exchange_weak(
                             peak, rss, std::memory_order_relaxed)) {
    }
  }
  const std::size_t done = cells_done();
  const std::size_t ev = events();
  const double dt = now_s - last_sample_s_;
  const double events_per_s =
      dt > 0 ? static_cast<double>(ev - last_events_) / dt : 0.0;
  last_sample_s_ = now_s;
  last_events_ = ev;
  const double elapsed = now_s - start_s_;
  const double eta_s =
      done > 0 && cells_total_ > done
          ? elapsed * static_cast<double>(cells_total_ - done) /
                static_cast<double>(done)
          : 0.0;
  samples_.fetch_add(1, std::memory_order_relaxed);

  if (metrics_enabled()) {
    static Gauge& rss_gauge = metric_gauge("campaign.rss_mb");
    static Gauge& done_gauge = metric_gauge("campaign.cells_done");
    static Gauge& total_gauge = metric_gauge("campaign.cells_total");
    static Gauge& eta_gauge = metric_gauge("campaign.eta_seconds");
    static Gauge& rate_gauge = metric_gauge("campaign.events_per_second");
    static Gauge& resumed_gauge = metric_gauge("campaign.cells_resumed");
    static Gauge& retries_gauge = metric_gauge("campaign.retries");
    static Gauge& quarantined_gauge = metric_gauge("campaign.cells_quarantined");
    rss_gauge.set(rss);
    done_gauge.set(static_cast<double>(done));
    total_gauge.set(static_cast<double>(cells_total_));
    eta_gauge.set(eta_s);
    rate_gauge.set(events_per_s);
    resumed_gauge.set(static_cast<double>(cells_resumed()));
    retries_gauge.set(static_cast<double>(retries()));
    quarantined_gauge.set(static_cast<double>(quarantined()));
  }
  if (trace_enabled()) {
    trace_counter("campaign", now_s, kTraceWallPid,
                  {{"rss_mb", rss},
                   {"cells_done", done},
                   {"events_per_s", events_per_s},
                   {"eta_s", eta_s}});
    // One counter lane per hot profiler phase, so Perfetto shows where the
    // campaign's self-time accumulates as it runs (no-op unless --profile).
    profile_trace_counters(now_s);
  }
  if (heartbeat && progress_enabled()) {
    std::fprintf(stderr,
                 "[progress] %s: %zu/%zu cells  %zu events  %.0f ev/s  "
                 "rss=%.1f MB  elapsed=%.1fs  eta=%.1fs\n",
                 label_.c_str(), done, cells_total_, ev, events_per_s, rss,
                 elapsed, eta_s);
  }
}

}  // namespace bbsched
