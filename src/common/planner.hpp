// planner.hpp — time-indexed multi-resource availability timeline.
//
// Modeled on flux-sched's resource/planner: the timeline keeps *scheduled
// points* — the instants where available capacity changes — in an ordered
// balanced structure (std::map, a red-black tree).  Each point stores the
// remaining capacity vector on the half-open interval from that point to the
// next one; before the first point the full capacity is available.  A *span*
// reserves a request vector over [t0, t0 + duration) and can be removed
// later (jobs that finish early release their walltime reservation), which
// restores exactly the capacity it took and erases any change-point no live
// span references anymore.
//
// Complexity with n live spans and k resources: avail_at is O(log n);
// add_span / remove_span are O(log n + p·k) where p is the number of points
// the span overlaps; avail_during / earliest_fit are O(log n + w·k) with w
// points in the inspected window.  For the simulator's use — spans enter and
// leave in event order and queries scan to the first fit — the amortized
// per-operation cost is O(log n) plus the touched points.
//
// Numerical contract: the planner is a *ledger*.  It never rejects a span
// (callers gate on avail_during when they need admission control), and it
// restores capacity by adding back the exact request that was subtracted.
// With integer-valued requests below 2^53 every stored value is exact, which
// is what the differential harness (tests/common/test_planner_differential)
// relies on to demand bit-identical answers from the NaivePlanner reference.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace bbsched {

/// Handle of one reservation span; unique per planner instance.
using SpanId = std::int64_t;

/// "No time at which the request fits" sentinel of earliest_fit.
inline constexpr Time kPlannerNever = std::numeric_limits<Time>::infinity();

/// Ordered multi-resource availability timeline (see file comment).
class Planner {
 public:
  /// One live reservation: [start, end) taking `request` of each resource.
  struct SpanInfo {
    Time start = 0;
    Time end = 0;            ///< start + duration; may be +inf (never ends)
    std::uint64_t tag = 0;   ///< caller-defined tie-break key (e.g. job id)
    std::vector<double> request;
  };

  /// `capacity[r]` is the total capacity of resource r; fixed for the
  /// planner's lifetime.
  explicit Planner(std::vector<double> capacity);

  std::size_t num_resources() const { return capacity_.size(); }
  const std::vector<double>& capacity() const { return capacity_; }

  /// Reserve `request` over [t0, t0 + duration).  `duration` >= 0; a
  /// zero-duration span occupies nothing but is registered (and shows up in
  /// for_each_release with end == t0).  Returns the span's handle.
  SpanId add_span(Time t0, Time duration, std::span<const double> request,
                  std::uint64_t tag = 0);

  /// Remove a live span, restoring the capacity it reserved over its whole
  /// interval.  Throws std::logic_error for unknown ids.
  void remove_span(SpanId id);

  /// Available capacity vector at instant t (capacity before the first
  /// change-point).  O(log n).
  std::vector<double> avail_at(Time t) const;
  void avail_at(Time t, std::span<double> out) const;

  /// Component-wise minimum availability over [t, t + duration); for
  /// duration == 0 this is avail_at(t).
  std::vector<double> avail_during(Time t, Time duration) const;
  void avail_during(Time t, Time duration, std::span<double> out) const;

  /// Whether `request` fits availability throughout [t, t + duration).
  bool fits_during(Time t, Time duration,
                   std::span<const double> request) const;

  /// Earliest t >= after such that fits_during(t, duration, request); only
  /// change-points can improve availability, so candidates are `after` and
  /// every change-point beyond it.  Returns kPlannerNever when no such time
  /// exists (request over capacity, or capacity held forever).
  Time earliest_fit(Time after, Time duration,
                    std::span<const double> request) const;

  /// Visit live spans in ascending (end, tag, id) order — the planner's
  /// release schedule.  `visit(end_time, span_info)` returns false to stop.
  /// This is the EASY-backfill hot path: the shadow-time walk consumes
  /// releases in exactly this order without re-sorting per pass.
  template <typename Visitor>
  void for_each_release(Visitor&& visit) const {
    for (const auto& [key, info] : ends_) {
      if (!visit(std::get<0>(key), *info)) return;
    }
  }

  const SpanInfo& span(SpanId id) const;
  std::size_t num_spans() const { return spans_.size(); }
  std::size_t num_points() const { return points_.size(); }

 private:
  struct Point {
    std::vector<double> remaining;  ///< available on [time, next point)
    int refs = 0;                   ///< live span boundaries at this time
  };
  using PointMap = std::map<Time, Point>;

  /// Get-or-create the change-point at t (value copied from the covering
  /// interval) and take a boundary reference on it.
  PointMap::iterator ref_point(Time t);
  /// Drop a boundary reference; the point disappears with its last one.
  void unref_point(Time t);

  std::vector<double> capacity_;
  PointMap points_;
  std::unordered_map<SpanId, SpanInfo> spans_;
  /// Release order index: (end, tag, id) -> span.  Pointers are stable
  /// (unordered_map nodes never move).
  std::map<std::tuple<Time, std::uint64_t, SpanId>, const SpanInfo*> ends_;
  SpanId next_id_ = 1;
};

/// Reference implementation for differential testing: a flat span list, all
/// queries by linear scan over live spans in id order.  Obviously correct,
/// O(n) per query; answers are bit-identical to Planner for integer-valued
/// requests (see the numerical contract above).
class NaivePlanner {
 public:
  explicit NaivePlanner(std::vector<double> capacity);

  std::size_t num_resources() const { return capacity_.size(); }
  const std::vector<double>& capacity() const { return capacity_; }

  SpanId add_span(Time t0, Time duration, std::span<const double> request,
                  std::uint64_t tag = 0);
  void remove_span(SpanId id);

  std::vector<double> avail_at(Time t) const;
  std::vector<double> avail_during(Time t, Time duration) const;
  bool fits_during(Time t, Time duration,
                   std::span<const double> request) const;
  Time earliest_fit(Time after, Time duration,
                    std::span<const double> request) const;

  std::size_t num_spans() const { return spans_.size(); }

  /// Same contract as Planner::for_each_release; sorts per call.
  template <typename Visitor>
  void for_each_release(Visitor&& visit) const {
    std::vector<const std::pair<const SpanId, Planner::SpanInfo>*> order;
    order.reserve(spans_.size());
    // det-ok: unordered-iter (collection pass only; sorted just below)
    for (const auto& entry : spans_) order.push_back(&entry);
    std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
      if (a->second.end != b->second.end) return a->second.end < b->second.end;
      if (a->second.tag != b->second.tag) return a->second.tag < b->second.tag;
      return a->first < b->first;
    });
    for (const auto* entry : order) {
      if (!visit(entry->second.end, entry->second)) return;
    }
  }

 private:
  /// Change points (span starts and finite ends) inside (t, limit), sorted.
  std::vector<Time> boundaries_between(Time t, Time limit) const;

  std::vector<double> capacity_;
  std::map<SpanId, Planner::SpanInfo> spans_;  ///< ordered: scans in id order
  SpanId next_id_ = 1;
};

}  // namespace bbsched
