#include "core/chromosome.hpp"

#include <gtest/gtest.h>

#include "core/multi_resource_problem.hpp"

namespace bbsched {
namespace {

TEST(Chromosome, SelectedCountAndIndices) {
  const Genes genes{1, 0, 1, 1, 0};
  EXPECT_EQ(selected_count(genes), 3u);
  EXPECT_EQ(selected_indices(genes),
            (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_EQ(selected_count(Genes{}), 0u);
  EXPECT_TRUE(selected_indices(Genes{0, 0}).empty());
}

TEST(Chromosome, SameGenesIgnoresAgeAndObjectives) {
  Chromosome a;
  a.genes = {1, 0};
  a.age = 5;
  a.objectives = {0.1, 0.2};
  Chromosome b;
  b.genes = {1, 0};
  b.age = 0;
  EXPECT_TRUE(a.same_genes(b));
  b.genes = {0, 1};
  EXPECT_FALSE(a.same_genes(b));
}

TEST(MooProblem, EvaluateIntoResizesAndFills) {
  const auto problem = MultiResourceProblem::cpu_bb(
      std::vector<double>{10, 20}, std::vector<double>{5, 0}, 100, 10);
  Chromosome c;
  c.genes = {1, 1};
  problem.evaluate_into(c);
  ASSERT_EQ(c.objectives.size(), 2u);
  EXPECT_DOUBLE_EQ(c.objectives[0], 0.3);
  EXPECT_DOUBLE_EQ(c.objectives[1], 0.5);
}

TEST(MooProblem, PinOutOfRangeAsserts) {
  auto problem = MultiResourceProblem::cpu_bb(
      std::vector<double>{1}, std::vector<double>{0}, 10, 10);
  // In-range pin is fine and idempotent.
  problem.pin(0);
  problem.pin(0);
  EXPECT_EQ(problem.pinned().size(), 1u);
}

}  // namespace
}  // namespace bbsched
