// bench_overhead — the §4.4 "Scheduling Overheads" measurements as
// google-benchmark micro-benchmarks: wall-clock per scheduling decision for
// each method, at the paper's default (w=20, G=500) and stress (w=50,
// G=2000) settings.
//
// Expected shape: Baseline and Bin_Packing decide in microseconds-to-
// milliseconds; the optimization methods take longer but stay far under the
// 15-30 s HPC response requirement — the paper reports < 2 s average even at
// G=2000, w=50 on a 2012-class desktop.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "policies/factory.hpp"
#include "workload/generator.hpp"

namespace {

using namespace bbsched;

/// One representative window snapshot drawn from the Theta model.
struct WindowFixture {
  std::vector<JobRecord> jobs;
  std::vector<const JobRecord*> window;
  FreeState free;

  WindowFixture(std::size_t window_size, std::uint64_t seed) {
    const Workload workload =
        generate_workload(theta_model(window_size * 4), seed);
    jobs.assign(workload.jobs.begin(),
                workload.jobs.begin() +
                    static_cast<std::ptrdiff_t>(window_size));
    for (const auto& job : jobs) window.push_back(&job);
    free.nodes = static_cast<double>(workload.machine.nodes) * 0.5;
    free.bb_gb = workload.machine.schedulable_bb_gb() * 0.5;
  }
};

void run_policy(benchmark::State& state, const std::string& method,
                std::size_t window_size, int generations) {
  const WindowFixture fixture(window_size, 42);
  GaParams ga;
  ga.generations = generations;
  const auto policy = make_policy(method, ga);
  Rng rng(7);
  for (auto _ : state) {
    WindowContext context;
    context.window = fixture.window;
    context.free = fixture.free;
    context.rng = &rng;
    benchmark::DoNotOptimize(policy->select(context));
  }
}

void register_all() {
  for (const auto& method : standard_method_names()) {
    benchmark::RegisterBenchmark(
        (method + "/w=20/G=500").c_str(),
        [method](benchmark::State& state) { run_policy(state, method, 20, 500); })
        ->Unit(benchmark::kMillisecond);
  }
  // The paper's stress point: G=2000, w=50 must stay under ~2 s.
  for (const std::string method : {"BBSched", "Weighted", "Bin_Packing"}) {
    benchmark::RegisterBenchmark(
        (method + "/w=50/G=2000").c_str(),
        [method](benchmark::State& state) {
          run_policy(state, method, 50, 2000);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
