// bench_ablation_decision — how much of BBSched's behaviour comes from the
// decision rule (§3.2.4) as opposed to the Pareto set itself?
//
// Runs full simulations of BBSched on two contended workloads (Cori-S2 and
// Theta-S4) under four decision rules over the *same* Pareto sets:
//   node-first (lexicographic on node utilization, no trade-off),
//   the paper's 2x trade-off (default),
//   a 1x trade-off (any net-positive swap),
//   bb-first (lexicographic on BB utilization).
// Expected: the 2x rule improves BB usage over node-first at minimal node
// cost; bb-first overshoots — it buys BB usage with visible node-usage and
// wait-time losses, which is exactly why the paper's rule asks for a 2x
// gain before trading.
#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "exp/grid.hpp"
#include "metrics/schedule_metrics.hpp"
#include "core/adaptive_decision.hpp"
#include "policies/bbsched_policy.hpp"
#include "sim/simulator.hpp"

#include "bench_util.hpp"

namespace {

using namespace bbsched;

std::unique_ptr<DecisionRule> make_rule(const std::string& kind) {
  if (kind == "node-first") return std::make_unique<LexicographicRule>(0);
  if (kind == "tradeoff-2x") return std::make_unique<NodeFirstTradeoffRule>(2.0);
  if (kind == "tradeoff-1x") return std::make_unique<NodeFirstTradeoffRule>(1.0);
  if (kind == "bb-first") return std::make_unique<LexicographicRule>(1);
  if (kind == "adaptive") return std::make_unique<AdaptiveTradeoffRule>();
  throw std::invalid_argument(kind);
}

}  // namespace

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_ablation_decision");
  if (!cli.ok()) return 0;
  ExperimentConfig config = ExperimentConfig::from_env();
  const auto workloads = build_main_workloads(config);

  const char* rules[] = {"node-first", "tradeoff-2x", "tradeoff-1x",
                         "bb-first", "adaptive"};
  std::cout << "Decision-rule ablation: BBSched with alternative rules over"
               " identical Pareto sets\n";
  for (const auto& entry : workloads) {
    if (entry.label != "Cori-S2" && entry.label != "Theta-S4") continue;
    std::cout << '\n' << entry.label << "\n";
    ConsoleTable table(
        {"rule", "node usage", "BB usage", "avg wait (h)", "slowdown"},
        {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
         Align::kRight});
    const auto base =
        make_base_scheduler(base_scheduler_for(entry.label));
    for (const char* kind : rules) {
      std::fprintf(stderr, "[ablation] %s x %s\n", entry.label.c_str(), kind);
      const BBSchedPolicy policy(config.ga, make_rule(kind));
      const SimResult result =
          simulate(entry.workload, config.sim_config(), *base, policy);
      const ScheduleMetrics m = compute_metrics(result);
      table.add_row({kind, ConsoleTable::pct(m.node_usage),
                     ConsoleTable::pct(m.bb_usage),
                     ConsoleTable::num(as_hours(m.avg_wait)),
                     ConsoleTable::num(m.avg_slowdown)});
      const std::vector<std::pair<std::string, std::string>> params{
          {"workload", entry.label}, {"rule", kind}};
      cli.bench().add_value("node_usage", params, m.node_usage, "frac",
                            "higher");
      cli.bench().add_value("bb_usage", params, m.bb_usage, "frac", "higher");
      cli.bench().add_value("avg_wait_s", params, m.avg_wait, "s", "lower");
    }
    table.print(std::cout);
  }
  return cli.exit_code();
}
