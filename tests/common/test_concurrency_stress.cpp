// Concurrency stress suite (DESIGN.md §13).  These tests assert only
// count/shape invariants — never timing — so they pass identically in plain
// builds; their real job is to hammer every cross-thread handoff hard
// enough that the CI ThreadSanitizer job (BBSCHED_SANITIZE=thread) would
// surface any data race: thread-pool shutdown and dispatch, campaign-
// monitor start/stop against hammering workers, metrics gauges read by a
// sampler while workers write, trace buffers under concurrent export and
// thread churn, the abandoned-thread reaper, and the crash-flush path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "exp/monitor.hpp"

namespace bbsched {
namespace {

TEST(ThreadPoolStress, ConstructDestroyChurn) {
  // Pool teardown immediately after a batch: the destructor must drain the
  // queue (leftover no-op entries of completed batches included) and join
  // every worker without losing or double-running an index.
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    std::atomic<std::size_t> hits{0};
    pool.parallel_for(64, [&](std::size_t) { ++hits; });
    ASSERT_EQ(hits.load(), 64u);
  }
}

TEST(ThreadPoolStress, DestroyWithColdWorkers) {
  // Teardown of a pool whose workers never received work: the stop flag and
  // the condition variable are the only handoff.
  for (int round = 0; round < 200; ++round) {
    ThreadPool pool(8);
  }
}

TEST(ThreadPoolStress, ConcurrentExternalCallers) {
  // Several non-worker threads share one pool; each batch's cursor and
  // completion latch are per-batch state and must not bleed across.
  ThreadPool pool(4);
  constexpr std::size_t callers = 6, per_batch = 200, rounds = 20;
  std::vector<std::atomic<std::size_t>> sums(callers);
  std::vector<std::thread> threads;
  threads.reserve(callers);
  for (std::size_t c = 0; c < callers; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t r = 0; r < rounds; ++r) {
        pool.parallel_for(per_batch, [&](std::size_t i) { sums[c] += i; });
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t c = 0; c < callers; ++c) {
    EXPECT_EQ(sums[c].load(), rounds * (per_batch * (per_batch - 1) / 2));
  }
}

TEST(ThreadPoolStress, ExceptionsUnderContention) {
  // Failing batches interleaved with healthy ones: the failure latch and
  // exception slot are shared state on the hot path.
  ThreadPool pool(4);
  for (int round = 0; round < 30; ++round) {
    EXPECT_THROW(pool.parallel_for(128,
                                   [&](std::size_t i) {
                                     if (i % 3 == 0) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
                 std::runtime_error);
    std::atomic<std::size_t> ok{0};
    pool.parallel_for(32, [&](std::size_t) { ++ok; });
    ASSERT_EQ(ok.load(), 32u);
  }
}

TEST(MonitorStress, WorkersHammerAcrossStartStop) {
  // Workers update the monitor's atomics across its whole lifecycle —
  // before start(), racing the sampler, and racing stop().  A 1 ms period
  // keeps the sampler thread genuinely active during the window.
  constexpr std::size_t workers = 4, events_each = 5000;
  CampaignMonitor monitor("stress", workers * events_each, 0.001);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < events_each; ++i) {
        monitor.add_events(1);
        if (i % 100 == 0) monitor.cell_done();
        if (i % 512 == 0) monitor.cell_retried();
      }
    });
  }
  monitor.start();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (auto& t : threads) t.join();
  monitor.stop();
  EXPECT_EQ(monitor.events(), workers * events_each);
  EXPECT_EQ(monitor.cells_done(), workers * (events_each / 100));
  EXPECT_GE(monitor.samples_taken(), 2u);  // start() + stop() at minimum
}

TEST(MonitorStress, StartStopChurn) {
  // Rapid lifecycle churn: stop() must synchronize with a sampler that may
  // not have taken a single tick yet, and the destructor with a stopped one.
  for (int round = 0; round < 100; ++round) {
    CampaignMonitor monitor("churn", 10, 0.0005);
    monitor.start();
    monitor.add_events(3);
    monitor.cell_done();
    monitor.stop();
    EXPECT_EQ(monitor.events(), 3u);
  }
  // Destructor-only path: never started, and started-not-stopped.
  { CampaignMonitor never_started("idle", 1); }
  {
    CampaignMonitor running("dtor", 1, 0.0005);
    running.start();
    running.add_events(1);
  }
}

TEST(MetricsStress, SamplerReadsWhileWorkersWrite) {
  // The campaign sampler reads gauges/counters and snapshots CSV while pool
  // workers update concurrently; updates are relaxed atomics and the
  // registry lookup path takes the registry mutex.
  set_metrics_enabled(true);
  Counter& counter = metric_counter("stress.counter");
  Gauge& gauge = metric_gauge("stress.gauge");
  MetricHistogram& histogram = metric_histogram("stress.histogram");
  counter.reset();
  constexpr std::size_t workers = 4, updates = 20000;
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_acquire)) {
      std::ostringstream snapshot;
      MetricsRegistry::global().write_csv(snapshot);
      (void)counter.value();
      (void)gauge.value();
      (void)histogram.count();
      // Concurrent find-or-create against the same registry mutex.
      (void)metric_gauge("stress.reader_gauge");
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = 0; i < updates; ++i) {
        counter.add(1);
        gauge.set(static_cast<double>(i));
        histogram.observe(static_cast<double>(w) * 1e-3);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(counter.value(), workers * updates);
  EXPECT_EQ(histogram.count(), workers * updates);
  set_metrics_enabled(false);
}

TEST(TraceStress, EmitAndExportWithThreadChurn) {
  // Emitters on long-lived threads, short-lived threads dying mid-run (the
  // orphan handoff), and a concurrent exporter repeatedly serializing the
  // whole buffer set.
  trace_clear();
  set_trace_enabled(true);
  constexpr std::size_t emitters = 3, events_each = 500, churn_threads = 50;
  std::atomic<bool> stop_export{false};
  std::thread exporter([&] {
    while (!stop_export.load(std::memory_order_acquire)) {
      std::ostringstream out;
      write_trace_json(out);
      (void)trace_event_count();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(emitters);
  for (std::size_t e = 0; e < emitters; ++e) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < events_each; ++i) {
        TraceSpan span("stress.span", "test", {{"i", i}});
        trace_instant("stress.instant", "test", static_cast<double>(i),
                      kTraceWallPid);
        trace_counter("stress.counter", static_cast<double>(i), kTraceWallPid,
                      {{"v", i}});
      }
    });
  }
  for (std::size_t c = 0; c < churn_threads; ++c) {
    // Emit once and exit immediately: exercises ThreadBuffer's destructor
    // moving its events into the orphan list while the exporter runs.
    std::thread churn([c] {
      trace_instant("stress.churn", "test", static_cast<double>(c),
                    kTraceWallPid);
    });
    churn.join();
  }
  for (auto& t : threads) t.join();
  stop_export.store(true, std::memory_order_release);
  exporter.join();
  // 3 events per emitter iteration + one per churn thread.
  EXPECT_EQ(trace_event_count(), emitters * events_each * 3 + churn_threads);
  set_trace_enabled(false);
  trace_clear();
}

TEST(ReaperStress, ParkAndReapChurn) {
  // Park short-lived threads from several threads while two others reap
  // concurrently; afterwards everything must be joinable and accounted for.
  auto& reaper = AbandonedThreadReaper::instance();
  constexpr std::size_t parkers = 3, parked_each = 20;
  std::atomic<bool> stop_reap{false};
  std::vector<std::thread> reapers;
  for (int r = 0; r < 2; ++r) {
    reapers.emplace_back([&] {
      while (!stop_reap.load(std::memory_order_acquire)) {
        reaper.reap();
        (void)reaper.pending();
        std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> threads;
  threads.reserve(parkers);
  for (std::size_t p = 0; p < parkers; ++p) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < parked_each; ++i) {
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::thread worker([done] {
          done->store(true, std::memory_order_release);
        });
        reaper.park(std::move(worker), done);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop_reap.store(true, std::memory_order_release);
  for (auto& t : reapers) t.join();
  // Every parked thread has set done=true, so a final reap drains them all.
  while (reaper.reap() != 0) std::this_thread::yield();
  EXPECT_EQ(reaper.pending(), 0u);
}

TEST(CrashFlushStress, ConcurrentFlushAndEmit) {
  // telemetry_flush_now is called from atexit/terminate context; here many
  // threads call it concurrently while emitters append trace events and the
  // main thread re-arms/disarms.  Flush must never tear a snapshot (the
  // write path is atomic_write_file) and never deadlock (try_lock).
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "bbsched_stress_trace.json";
  const std::string metrics_path = dir + "bbsched_stress_metrics.csv";
  trace_clear();
  set_trace_enabled(true);
  set_metrics_enabled(true);
  register_crash_flush(trace_path, metrics_path);
  // Everything is bounded by count, not wall-clock: each flush serializes
  // the whole trace buffer and fsyncs two files, so unbounded emit/flush
  // loops degenerate on slow disks or a single core.
  constexpr std::size_t flushers = 3, flushes_each = 15;
  constexpr std::size_t emitters = 2, events_each = 500;
  std::vector<std::thread> threads;
  for (std::size_t f = 0; f < flushers; ++f) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < flushes_each; ++i) {
        telemetry_flush_now();
        std::this_thread::yield();
      }
    });
  }
  for (std::size_t e = 0; e < emitters; ++e) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < events_each; ++i) {
        trace_instant("flush.stress", "test", static_cast<double>(i),
                      kTraceWallPid);
        metric_counter("flush.stress").add(1);
        if (i % 16 == 0) std::this_thread::yield();
      }
    });
  }
  // Re-arm churn concurrent with the flushers and emitters above.
  for (int round = 0; round < 20; ++round) {
    register_crash_flush(trace_path, metrics_path);
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  telemetry_flush_now();
  disarm_crash_flush();
  set_trace_enabled(false);
  set_metrics_enabled(false);
  trace_clear();
  // The final flush ran disarmed?  No: disarm came after, so both snapshot
  // files exist and are complete JSON/CSV (atomic rename guarantees this).
  std::FILE* f = std::fopen(trace_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(GlobalPoolStress, ResizeBetweenBatches) {
  // set_global_threads swaps the pool between campaigns; hammer the
  // resize/dispatch boundary from the owning thread with workers mid-flight
  // batches in between.
  for (const std::size_t threads : {1u, 4u, 2u, 8u, 1u}) {
    set_global_threads(threads);
    std::atomic<std::size_t> hits{0};
    parallel_for(256, [&](std::size_t) { ++hits; });
    ASSERT_EQ(hits.load(), 256u);
  }
  set_global_threads(0);
}

}  // namespace
}  // namespace bbsched
