// env.hpp — environment-variable overrides for bench scaling.
//
// Bench binaries default to sizes that finish on a laptop-class single core;
// `BBSCHED_BENCH_JOBS`, `BBSCHED_SEED`, etc. let a user re-run closer to the
// paper's production scale without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace bbsched {

/// Integer environment variable with a default; malformed values fall back to
/// the default (and are reported on stderr once).
std::int64_t env_int(const char* name, std::int64_t def);

/// Floating-point environment variable with a default.
double env_double(const char* name, double def);

/// String environment variable with a default.
std::string env_string(const char* name, const std::string& def);

}  // namespace bbsched
