#include "policies/bbsched_policy.hpp"

#include <stdexcept>

#include "common/trace.hpp"
#include "policies/problem_builder.hpp"

namespace bbsched {

const DecisionRule& BBSchedPolicy::rule_for(std::size_t num_objectives) const {
  if (override_rule_) return *override_rule_;
  if (num_objectives == 2) return *rule2_;
  if (num_objectives == 4) return *rule4_;
  throw std::logic_error("BBSchedPolicy: no decision rule for " +
                         std::to_string(num_objectives) + " objectives");
}

WindowDecision BBSchedPolicy::select(const WindowContext& context) const {
  // Wall-clock span of one full BBSched decision (Figure 1): problem build,
  // Pareto approximation, decision rule.  The solver nests its own
  // moo_ga.solve span inside this one.
  TraceSpan span("bbsched.decision", "policy",
                 {{"window", context.window.size()},
                  {"pinned", context.pinned.size()}});
  const auto problem = build_window_problem(context);
  const MooGaSolver solver(params_);
  const MooResult result = solver.solve(*problem, *context.rng);
  const DecisionRule& rule = rule_for(problem->num_objectives());
  const std::size_t choice = rule.choose(result.pareto_set);
  WindowDecision decision = decision_from_genes(
      context, *problem, result.pareto_set[choice].genes);
  decision.pareto_size = result.pareto_set.size();
  decision.evaluations = result.evaluations;
  span.add_arg({"pareto_size", decision.pareto_size});
  span.add_arg({"chosen", choice});
  span.add_arg({"selected", decision.selected.size()});
  return decision;
}

}  // namespace bbsched
