#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bbsched {
namespace {

TEST(CsvLine, SplitsPlainFields) {
  EXPECT_EQ(parse_csv_line("a,b,c"), (CsvRow{"a", "b", "c"}));
}

TEST(CsvLine, EmptyFieldsPreserved) {
  EXPECT_EQ(parse_csv_line("a,,c,"), (CsvRow{"a", "", "c", ""}));
}

TEST(CsvLine, QuotedCommaAndEscapedQuote) {
  EXPECT_EQ(parse_csv_line("\"a,b\",\"say \"\"hi\"\"\""),
            (CsvRow{"a,b", "say \"hi\""}));
}

TEST(CsvLine, ToleratesCrlf) {
  EXPECT_EQ(parse_csv_line("a,b\r"), (CsvRow{"a", "b"}));
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(csv_escape(" padded"), "\" padded\"");
}

TEST(CsvRoundTrip, RowSurvivesFormatAndParse) {
  const CsvRow row{"x", "1,2", "he said \"no\"", ""};
  EXPECT_EQ(parse_csv_line(format_csv_row(row)), row);
}

TEST(CsvTable, ReadsHeaderAndRows) {
  std::istringstream in("# comment\nname,value\nfoo,1\nbar,2\n");
  const CsvTable table = CsvTable::read(in);
  EXPECT_EQ(table.header(), (CsvRow{"name", "value"}));
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.at(0, "name"), "foo");
  EXPECT_EQ(table.at(1, "value"), "2");
}

TEST(CsvTable, RaggedRowThrows) {
  std::istringstream in("a,b\n1\n");
  EXPECT_THROW(CsvTable::read(in), std::runtime_error);
}

TEST(CsvTable, MissingColumnThrows) {
  std::istringstream in("a,b\n1,2\n");
  const CsvTable table = CsvTable::read(in);
  EXPECT_THROW(table.at(0, "missing"), std::runtime_error);
  EXPECT_FALSE(table.column("missing").has_value());
  EXPECT_EQ(table.column("b"), std::size_t{1});
}

TEST(CsvTable, WriteThenReadRoundTrip) {
  CsvTable table(CsvRow{"k", "v"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"with,comma", "2"});
  std::ostringstream out;
  table.write(out);
  std::istringstream in(out.str());
  const CsvTable reread = CsvTable::read(in);
  ASSERT_EQ(reread.num_rows(), 2u);
  EXPECT_EQ(reread.at(1, "k"), "with,comma");
}

TEST(CsvTable, AddRowWidthMismatchThrows) {
  CsvTable table(CsvRow{"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::runtime_error);
}

TEST(CsvParseFields, NumericHelpers) {
  EXPECT_DOUBLE_EQ(parse_double_field("2.5", "x"), 2.5);
  EXPECT_EQ(parse_int_field("-7", "x"), -7);
  EXPECT_THROW(parse_double_field("abc", "x"), std::runtime_error);
  EXPECT_THROW(parse_int_field("1.5", "x"), std::runtime_error);
  EXPECT_THROW(parse_int_field("", "x"), std::runtime_error);
}

TEST(CsvTable, MissingFileThrows) {
  EXPECT_THROW(CsvTable::read_file("/nonexistent/path.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace bbsched
