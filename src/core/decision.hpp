// decision.hpp — picking one preferred solution out of the Pareto set
// (§3.2.4 and the §5 extension).
//
// The solver returns a set of trade-offs; the "decision maker" applies a
// site-specific rule to choose the one to commit.  The paper's rule:
//   1. start from the solution with maximum node utilization; among ties
//      prefer the one selecting jobs nearest the front of the window
//      (preserving base-scheduler order),
//   2. replace it by another Pareto solution if that solution's
//      burst-buffer-utilization gain exceeds 2x its node-utilization loss;
//      among several such solutions take the maximum gain.
// The §5 four-objective variant compares the *summed* gain of the non-node
// objectives against 4x the node-utilization loss.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/chromosome.hpp"

namespace bbsched {

/// Strategy interface: select one chromosome index from a Pareto set.
/// The set is never empty (an all-zero selection is always feasible and
/// appears on the front whenever nothing better exists).
class DecisionRule {
 public:
  virtual ~DecisionRule() = default;

  /// Index into `pareto_set` of the preferred solution.
  virtual std::size_t choose(
      std::span<const Chromosome> pareto_set) const = 0;

  /// Human-readable rule name for logs and bench output.
  virtual std::string name() const = 0;
};

/// The §3.2.4 rule for the two-objective problem (node util, BB util).
/// `tradeoff_factor` is the paper's 2x.
class NodeFirstTradeoffRule : public DecisionRule {
 public:
  explicit NodeFirstTradeoffRule(double tradeoff_factor = 2.0)
      : factor_(tradeoff_factor) {}

  std::size_t choose(std::span<const Chromosome> pareto_set) const override;
  std::string name() const override { return "node-first-2x-tradeoff"; }

 private:
  double factor_;
};

/// The §5 rule for the four-objective problem: the summed improvement of
/// objectives 1..3 (BB util, SSD util, -waste) must exceed
/// `tradeoff_factor` (4x) times the node-utilization loss.
class SumTradeoffRule : public DecisionRule {
 public:
  explicit SumTradeoffRule(double tradeoff_factor = 4.0)
      : factor_(tradeoff_factor) {}

  std::size_t choose(std::span<const Chromosome> pareto_set) const override;
  std::string name() const override { return "node-first-4x-sum-tradeoff"; }

 private:
  double factor_;
};

/// Pure lexicographic rule: maximize objective `primary` only (front-of-
/// window tiebreak).  Used by ablation benches to isolate the value of the
/// trade-off step.
class LexicographicRule : public DecisionRule {
 public:
  explicit LexicographicRule(std::size_t primary = 0) : primary_(primary) {}

  std::size_t choose(std::span<const Chromosome> pareto_set) const override;
  std::string name() const override { return "lexicographic"; }

 private:
  std::size_t primary_;
};

/// Index of the solution maximizing objective `k`; ties broken by the
/// front-of-window preference (lexicographically smallest selected-index
/// vector).  Shared helper for the rules above.
std::size_t max_objective_index(std::span<const Chromosome> pareto_set,
                                std::size_t k);

/// True iff selection `a` prefers earlier window slots than `b` (its genes,
/// read as a bit string from slot 0, are lexicographically greater — a set
/// bit earlier in the window wins).
bool prefers_front_of_window(const Genes& a, const Genes& b);

}  // namespace bbsched
