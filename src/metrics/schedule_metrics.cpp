#include "metrics/schedule_metrics.hpp"

#include <algorithm>
#include <vector>

#include "common/stats.hpp"

namespace bbsched {

Time interval_overlap(Time lo1, Time hi1, Time lo2, Time hi2) {
  return std::max(0.0, std::min(hi1, hi2) - std::max(lo1, lo2));
}

GigaBytes wasted_ssd_gb(const JobOutcome& outcome, const MachineConfig& m) {
  if (!m.has_local_ssd()) return 0;
  const double s = outcome.ssd_per_node_gb;
  return static_cast<double>(outcome.small_tier_nodes) *
             (m.small_ssd_gb - s) +
         static_cast<double>(outcome.large_tier_nodes) * (m.large_ssd_gb - s);
}

ScheduleMetrics compute_metrics(const SimResult& result,
                                const MetricsConfig& config) {
  ScheduleMetrics metrics;
  const Time mb = result.measure_begin;
  const Time me = result.measure_end;
  const Time elapsed = std::max(0.0, me - mb);
  if (elapsed <= 0) return metrics;

  const MachineConfig& machine = result.machine;
  const double node_hours = static_cast<double>(machine.nodes) * elapsed;
  const double bb_hours = machine.schedulable_bb_gb() * elapsed;
  const double ssd_capacity =
      static_cast<double>(machine.small_ssd_nodes) * machine.small_ssd_gb +
      static_cast<double>(machine.large_ssd_nodes) * machine.large_ssd_gb;
  const double ssd_hours = ssd_capacity * elapsed;

  double used_node = 0, used_bb = 0, used_ssd = 0, wasted_ssd = 0;
  std::vector<double> waits, slowdowns;
  for (const auto& o : result.outcomes) {
    const Time overlap = interval_overlap(o.start, o.end, mb, me);
    if (overlap > 0) {
      used_node += static_cast<double>(o.nodes) * overlap;
      used_bb += o.bb_gb * overlap;
      used_ssd +=
          o.ssd_per_node_gb * static_cast<double>(o.nodes) * overlap;
      wasted_ssd += wasted_ssd_gb(o, machine) * overlap;
    }
    if (o.submit >= mb && o.submit <= me) {
      ++metrics.jobs_measured;
      metrics.jobs_backfilled += o.backfilled;
      waits.push_back(o.wait());
      if (o.runtime >= config.slowdown_min_runtime) {
        slowdowns.push_back(o.slowdown());
      }
    }
  }

  metrics.node_usage = node_hours > 0 ? used_node / node_hours : 0;
  metrics.bb_usage = bb_hours > 0 ? used_bb / bb_hours : 0;
  metrics.ssd_usage = ssd_hours > 0 ? used_ssd / ssd_hours : 0;
  metrics.ssd_waste = ssd_hours > 0 ? wasted_ssd / ssd_hours : 0;
  metrics.avg_wait = mean(waits);
  metrics.avg_slowdown = mean(slowdowns);
  metrics.p95_wait = quantile(waits, 0.95);
  for (double w : waits) metrics.max_wait = std::max(metrics.max_wait, w);
  return metrics;
}

}  // namespace bbsched
