#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace bbsched {

ConsoleTable::ConsoleTable(std::vector<std::string> header,
                           std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  if (aligns_.empty()) {
    aligns_.assign(header_.size(), Align::kRight);
    if (!aligns_.empty()) aligns_[0] = Align::kLeft;
  }
  if (aligns_.size() != header_.size()) {
    throw std::invalid_argument("ConsoleTable: aligns/header width mismatch");
  }
}

void ConsoleTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("ConsoleTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string ConsoleTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string ConsoleTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void ConsoleTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      const auto pad = widths[c] - row[c].size();
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ');
      out << row[c];
      if (aligns_[c] == Align::kLeft && c + 1 < row.size()) {
        out << std::string(pad, ' ');
      }
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace bbsched
