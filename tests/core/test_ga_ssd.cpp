// The multi-objective solver against the four-objective §5 formulation:
// feasibility, non-domination, pins and quality vs. the exhaustive truth.
#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "core/ga.hpp"
#include "core/ssd_problem.hpp"

namespace bbsched {
namespace {

SsdSchedulingProblem random_ssd_problem(std::uint64_t seed,
                                        std::size_t w = 10) {
  Rng rng(seed);
  std::vector<SsdJobDemand> jobs;
  for (std::size_t i = 0; i < w; ++i) {
    SsdJobDemand d;
    d.nodes = static_cast<double>(rng.uniform_int(1, 30));
    d.bb_gb = rng.bernoulli(0.5) ? rng.uniform(0.0, 40.0) : 0.0;
    d.ssd_per_node = rng.uniform(1.0, 256.0);
    jobs.push_back(d);
  }
  SsdFreeState free;
  free.small_nodes = 40;
  free.large_nodes = 40;
  free.bb_gb = 100;
  return SsdSchedulingProblem(std::move(jobs), free);
}

GaParams test_params(std::uint64_t seed) {
  GaParams p;
  p.generations = 400;
  p.population_size = 24;
  p.mutation_rate = 0.01;
  p.seed = seed;
  return p;
}

class SsdGaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsdGaSweep, FeasibleNonDominatedAndCloseToTruth) {
  const auto problem = random_ssd_problem(GetParam());
  const auto result =
      MooGaSolver(test_params(GetParam() * 31 + 5)).solve(problem);
  ASSERT_FALSE(result.pareto_set.empty());
  for (const auto& c : result.pareto_set) {
    EXPECT_TRUE(problem.feasible(c.genes));
    EXPECT_EQ(c.objectives.size(), 4u);
  }
  for (std::size_t i = 0; i < result.pareto_set.size(); ++i) {
    for (std::size_t j = 0; j < result.pareto_set.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(dominates(result.pareto_set[i].objectives,
                               result.pareto_set[j].objectives));
      }
    }
  }
  // Compare against the exact front.  Four-objective fronts are larger and
  // harder for a P=24 population, so the bar is looser than the 2-objective
  // sweep, but the approximation must still land within a few points.
  const auto truth = ExhaustiveSolver().solve(problem);
  Front approx_front, truth_front;
  for (const auto& c : result.pareto_set) approx_front.push_back(c.objectives);
  for (const auto& c : truth.pareto_set) truth_front.push_back(c.objectives);
  EXPECT_LT(generational_distance(approx_front, truth_front), 0.12);
}

INSTANTIATE_TEST_SUITE_P(RandomSsdWindows, SsdGaSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SsdGa, PinsSurviveFourObjectiveSolve) {
  auto problem = random_ssd_problem(9);
  // Pin the first job that is individually feasible.
  Genes probe(problem.num_vars(), 0);
  std::size_t pinned = problem.num_vars();
  for (std::size_t i = 0; i < problem.num_vars(); ++i) {
    probe.assign(problem.num_vars(), 0);
    probe[i] = 1;
    if (problem.feasible(probe)) {
      pinned = i;
      break;
    }
  }
  ASSERT_LT(pinned, problem.num_vars());
  problem.pin(pinned);
  const auto result = MooGaSolver(test_params(3)).solve(problem);
  for (const auto& c : result.pareto_set) {
    EXPECT_EQ(c.genes[pinned], 1);
  }
}

TEST(SsdGa, ExhaustiveFourObjectiveFrontIsConsistent) {
  const auto problem = random_ssd_problem(21, 8);
  const auto truth = ExhaustiveSolver().solve(problem);
  for (const auto& c : truth.pareto_set) {
    EXPECT_TRUE(problem.feasible(c.genes));
  }
  for (std::size_t i = 0; i < truth.pareto_set.size(); ++i) {
    for (std::size_t j = 0; j < truth.pareto_set.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(dominates(truth.pareto_set[i].objectives,
                               truth.pareto_set[j].objectives));
      }
    }
  }
}

}  // namespace
}  // namespace bbsched
