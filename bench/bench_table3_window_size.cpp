// bench_table3_window_size — reproduce Table 3: BBSched under window sizes
// 10, 20 and 50 on Cori-S4 (top value per cell in the paper) and Theta-S4
// (bottom value).
//
// Expected shape: the big improvement happens between window 10 and 20 on
// every metric; 20 -> 50 is marginal — the basis for the paper's "a window
// size of around 20 is an appropriate option".
#include <iostream>

#include "common/table.hpp"
#include "exp/grid.hpp"
#include "metrics/schedule_metrics.hpp"

#include "bench_util.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_table3_window_size");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  ExperimentConfig config = ExperimentConfig::from_env();
  const auto workloads = build_main_workloads(config);

  const std::size_t window_sizes[] = {10, 20, 50};
  std::cout << "Table 3: BBSched performance under different window sizes\n"
               "(per cell: Cori-S4 / Theta-S4)\n\n";

  // metrics[workload][window index]
  ScheduleMetrics metrics[2][3];
  int wl_index = 0;
  for (const auto& entry : workloads) {
    if (entry.label != "Cori-S4" && entry.label != "Theta-S4") continue;
    const int row = entry.label == "Cori-S4" ? 0 : 1;
    for (int w = 0; w < 3; ++w) {
      ExperimentConfig run = config;
      run.window_size = window_sizes[w];
      std::fprintf(stderr, "[table3] %s window=%zu\n", entry.label.c_str(),
                   window_sizes[w]);
      const SimResult result = run_single(run, entry.workload, "BBSched");
      metrics[row][w] = compute_metrics(result);
      const std::vector<std::pair<std::string, std::string>> params{
          {"workload", entry.label},
          {"window", std::to_string(window_sizes[w])}};
      cli.bench().add_value("node_usage", params, metrics[row][w].node_usage,
                            "frac", "higher");
      cli.bench().add_value("avg_wait_s", params, metrics[row][w].avg_wait,
                            "s", "lower");
    }
    ++wl_index;
  }
  (void)wl_index;

  ConsoleTable table({"metric", "w=10", "w=20", "w=50"},
                     {Align::kLeft, Align::kRight, Align::kRight,
                      Align::kRight});
  auto row = [&](const char* name, auto get, auto fmt) {
    std::vector<std::string> cells{name};
    for (int w = 0; w < 3; ++w) {
      cells.push_back(fmt(get(metrics[0][w])) + " / " +
                      fmt(get(metrics[1][w])));
    }
    table.add_row(std::move(cells));
  };
  row("CPU usage", [](const ScheduleMetrics& m) { return m.node_usage; },
      [](double v) { return ConsoleTable::pct(v, 2); });
  row("BB usage", [](const ScheduleMetrics& m) { return m.bb_usage; },
      [](double v) { return ConsoleTable::pct(v, 2); });
  row("avg wait (s)", [](const ScheduleMetrics& m) { return m.avg_wait; },
      [](double v) { return ConsoleTable::num(v, 0); });
  row("avg slowdown",
      [](const ScheduleMetrics& m) { return m.avg_slowdown; },
      [](double v) { return ConsoleTable::num(v, 2); });
  table.print(std::cout);
  return cli.exit_code();
}
