file(REMOVE_RECURSE
  "CMakeFiles/bbsched_policies.dir/bbsched_policy.cpp.o"
  "CMakeFiles/bbsched_policies.dir/bbsched_policy.cpp.o.d"
  "CMakeFiles/bbsched_policies.dir/bin_packing.cpp.o"
  "CMakeFiles/bbsched_policies.dir/bin_packing.cpp.o.d"
  "CMakeFiles/bbsched_policies.dir/factory.cpp.o"
  "CMakeFiles/bbsched_policies.dir/factory.cpp.o.d"
  "CMakeFiles/bbsched_policies.dir/naive.cpp.o"
  "CMakeFiles/bbsched_policies.dir/naive.cpp.o.d"
  "CMakeFiles/bbsched_policies.dir/problem_builder.cpp.o"
  "CMakeFiles/bbsched_policies.dir/problem_builder.cpp.o.d"
  "CMakeFiles/bbsched_policies.dir/scalarized.cpp.o"
  "CMakeFiles/bbsched_policies.dir/scalarized.cpp.o.d"
  "libbbsched_policies.a"
  "libbbsched_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
