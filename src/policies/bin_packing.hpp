// bin_packing.hpp — the Bin_Packing method of §4.3, after Tetris
// (Grandl et al., SIGCOMM'14).
//
// Jobs are picked greedily by *alignment score*: the dot product between the
// job's demand vector and the machine's remaining-resource vector, both
// normalized by the machine's free capacity at cycle start so that nodes and
// gigabytes are comparable.  The highest-scoring fitting job is admitted,
// the remaining vector shrinks, and the scan repeats until nothing fits.
// On §5 machines the vectors gain a local-SSD dimension (s_i * n_i).
#pragma once

#include "sim/selection_policy.hpp"

namespace bbsched {

class BinPackingPolicy : public SelectionPolicy {
 public:
  WindowDecision select(const WindowContext& context) const override;
  std::string name() const override { return "Bin_Packing"; }
};

}  // namespace bbsched
