// campaign_resume_helper — child process of the kill-and-resume property
// test (test_campaign_resilience.cpp).  Runs the SSD campaign with the same
// tiny configuration the test uses, journaling each finished cell; the test
// SIGKILLs this process mid-campaign and then resumes from the journal
// in-process.  Not a test itself: the name must not match the test_*.cpp
// glob in tests/CMakeLists.txt.
#include <cstdlib>

#include "common/env.hpp"
#include "exp/grid.hpp"

int main() {
  using namespace bbsched;
  ExperimentConfig config;
  // Mirror tiny_config() in test_campaign_resilience.cpp exactly — the
  // digest (and so the journal path) must match the resuming test process.
  config.jobs_per_workload = 40;
  config.window_size = 6;
  config.ga.generations = 6;
  config.ga.population_size = 6;
  config.cache_dir = env_string("BBSCHED_CACHE_DIR", config.cache_dir);
  (void)ensure_ssd_grid(config);
  return 0;
}
