// simulator.hpp — the trace-driven batch-scheduling simulator.
//
// Event-driven: job arrivals come from the trace, completions from a
// min-heap keyed on actual end times.  After every batch of events at one
// timestamp the scheduler runs a full cycle (Figure 1):
//
//   1. the base scheduler orders the waiting, dependency-released queue,
//   2. the first `window_size` jobs form the scheduling window (§3.1); jobs
//      whose window residency exceeded the starvation bound and that fit the
//      free machine are pinned for forced inclusion,
//   3. the selection policy (one of the §4.3 methods) picks the subset of
//      window jobs to start and the simulator commits their allocations,
//   4. EASY backfilling runs over every job still waiting (§4.3: "all the
//      methods use EASY backfilling"),
//   5. window residency counters are updated.
//
// Runtimes are the trace's actual runtimes; reservations and backfill use
// the user walltime, like the production schedulers being modeled.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "sim/base_scheduler.hpp"
#include "sim/easy_backfill.hpp"
#include "sim/machine_state.hpp"
#include "sim/selection_policy.hpp"
#include "sim/sim_result.hpp"
#include "workload/workload.hpp"

namespace bbsched {

/// Knobs of one simulation run.
struct SimConfig {
  std::size_t window_size = 20;   ///< §4.3 default
  int starvation_bound = 50;      ///< §3.1: window residencies before forcing
  /// Warm-up / cool-down trimming as fractions of the submission span
  /// (the paper drops the first and last half month of multi-month traces).
  double warmup_fraction = 0.1;
  double cooldown_fraction = 0.1;
  std::uint64_t seed = 7;         ///< policy/solver RNG stream
  /// Measure wall-clock time of every policy decision (adds two clock reads
  /// per cycle; keep on except in micro-benchmarks of the simulator itself).
  bool time_decisions = true;
  /// Drive EASY backfilling from the time-indexed availability planner
  /// (O(log n) timeline maintenance, no per-pass sort over running jobs)
  /// instead of the legacy per-event walk.  Schedules are bit-identical
  /// either way (tests/sim/test_planner_regression.cpp); the legacy path is
  /// kept as the differential-testing reference.
  bool use_planner = true;

  void validate() const;
};

/// Measurement interval of a run before it happens: warm-up/cool-down
/// trimming depends only on the trace, so streaming consumers (the
/// incremental metrics engine, the campaign monitor) can be constructed up
/// front.  Simulator::run() uses this same function for SimResult.
struct MeasureInterval {
  Time begin = 0;
  Time end = 0;
};
MeasureInterval measurement_interval(const Workload& workload,
                                     const SimConfig& config);

/// Streaming hook into a running simulation (DESIGN.md §11): the simulator
/// pushes each job's final outcome the moment it completes — completion
/// order, not trace order — and occupancy change-points at every start and
/// finish.  Observers must not mutate simulation state; the simulator's
/// behavior and SimResult are byte-identical with or without an observer.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// One job finished; `outcome` is its final record (same values that will
  /// appear in SimResult::outcomes).
  virtual void on_job_outcome(const JobOutcome& outcome) { (void)outcome; }
  /// Machine occupancy changed at simulated time `now`.
  virtual void on_occupancy(Time now, double nodes_used, double bb_used_gb) {
    (void)now;
    (void)nodes_used;
    (void)bb_used_gb;
  }
};

/// Runs one (workload, base scheduler, selection policy) simulation.
class Simulator {
 public:
  Simulator(const Workload& workload, SimConfig config,
            const BaseScheduler& base, const SelectionPolicy& policy);

  /// Attach a streaming observer (may be nullptr); not owned, must outlive
  /// run().
  void set_observer(SimObserver* observer) { observer_ = observer; }

  /// Run to completion of every job and return the outcome set.
  SimResult run();

 private:
  // Per-job dynamic state.
  enum class JobState { kPending, kWaiting, kRunning, kDone };
  struct JobSlot {
    const JobRecord* record = nullptr;
    JobState state = JobState::kPending;
    Time queued_since = 0;  ///< submit or last dependency completion
    Time start = 0;
    Time end = 0;
    int window_residency = 0;
    Allocation alloc;
    bool backfilled = false;
    std::size_t open_deps = 0;  ///< dependencies not yet completed
  };

  /// One full scheduling invocation at `now`: repeats window formation,
  /// selection and backfilling until a pass starts no job, so the queue is
  /// drained exactly as far as the policy allows per invocation.
  void schedule_cycle(Time now);
  /// One pass; returns the number of jobs started.
  std::size_t schedule_pass(Time now);
  void start_job(std::size_t slot_index, Time now, const Allocation& alloc,
                 bool backfilled);
  void complete_job(std::size_t slot_index);
  /// The final outcome record of a slot; shared by the streaming observer
  /// emission and the end-of-run assembly so both see identical values.
  JobOutcome outcome_of(const JobSlot& slot) const;
  /// Push the current occupancy to the observer (no-op without one).
  void notify_occupancy(Time now) const;
  /// Emit node/BB(/SSD) occupancy counter samples on the sim trace lane.
  void emit_occupancy(Time now) const;
  std::vector<std::size_t> sorted_waiting(Time now) const;
  std::vector<RunningJobInfo> running_infos() const;

  const Workload& workload_;
  SimConfig config_;
  const BaseScheduler& base_;
  const SelectionPolicy& policy_;

  MachineState machine_;
  std::vector<JobSlot> slots_;
  std::vector<std::vector<std::size_t>> dependents_;  ///< reverse dep edges

  // Completion min-heap of (end time, slot index).
  using Completion = std::pair<Time, std::size_t>;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;

  Rng rng_;
  DecisionStats stats_;
  Time last_event_time_ = 0;  ///< timestamp of the last processed event

  // Telemetry (trace.hpp): latched once per run() so the whole run either
  // traces or doesn't; consumes no RNG and never alters scheduling.
  bool tracing_ = false;
  int trace_pid_ = 0;  ///< sim-time trace lane of this run

  SimObserver* observer_ = nullptr;  ///< streaming hook, not owned
};

/// Convenience wrapper: build and run in one call; `observer` (may be
/// nullptr) receives streaming outcomes and occupancy change-points.
SimResult simulate(const Workload& workload, const SimConfig& config,
                   const BaseScheduler& base, const SelectionPolicy& policy,
                   SimObserver* observer = nullptr);

}  // namespace bbsched
