#include "workload/job.hpp"

#include <stdexcept>
#include <string>

namespace bbsched {

void validate_job(const JobRecord& job) {
  auto fail = [&](const char* what) {
    throw std::invalid_argument("job " + std::to_string(job.id) + ": " + what);
  };
  if (job.submit_time < 0) fail("negative submit time");
  if (job.runtime < 0) fail("negative runtime");
  if (job.walltime < job.runtime) fail("walltime below runtime");
  if (job.nodes < 1) fail("node request below 1");
  if (job.bb_gb < 0) fail("negative burst-buffer request");
  if (job.ssd_per_node_gb < 0) fail("negative SSD request");
  for (JobId dep : job.dependencies) {
    if (dep == job.id) fail("self-dependency");
  }
}

}  // namespace bbsched
