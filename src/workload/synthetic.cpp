#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace bbsched {

namespace {

/// Original BB requests above a threshold; falls back to the top decile of
/// all requests when the threshold empties the pool.
std::vector<GigaBytes> request_pool(const Workload& original,
                                    GigaBytes threshold) {
  std::vector<GigaBytes> all;
  for (const auto& job : original.jobs) {
    if (job.requests_bb()) all.push_back(job.bb_gb);
  }
  if (all.empty()) return {};
  std::vector<GigaBytes> pool;
  for (GigaBytes r : all) {
    if (r > threshold) pool.push_back(r);
  }
  if (!pool.empty()) return pool;
  std::sort(all.begin(), all.end(), std::greater<>());
  const std::size_t decile = std::max<std::size_t>(1, all.size() / 10);
  all.resize(decile);
  return all;
}

}  // namespace

std::vector<GigaBytes> sample_bb_pool(double alpha, GigaBytes lo,
                                      GigaBytes hi, GigaBytes threshold,
                                      std::size_t count, std::uint64_t seed) {
  if (threshold >= hi) {
    throw std::invalid_argument("sample_bb_pool: threshold above range");
  }
  // Sample the conditional distribution directly: bounded Pareto truncated
  // below at the threshold is again bounded Pareto on [threshold, hi].
  const GigaBytes effective_lo = std::max(lo, threshold);
  Rng rng(seed);
  std::vector<GigaBytes> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pool.push_back(rng.bounded_pareto(alpha, effective_lo, hi));
  }
  return pool;
}

Workload expand_bb_requests(const Workload& original,
                            const BbExpansionParams& params,
                            std::uint64_t seed) {
  if (params.target_fraction < 0 || params.target_fraction > 1) {
    throw std::invalid_argument("expand_bb: target_fraction out of [0, 1]");
  }
  std::vector<GigaBytes> pool;
  if (!params.pool.empty()) {
    for (GigaBytes r : params.pool) {
      if (r > params.pool_threshold) pool.push_back(r);
    }
    if (pool.empty()) {
      throw std::invalid_argument(
          "expand_bb: explicit pool has no entry above the threshold");
    }
  } else {
    pool = request_pool(original, params.pool_threshold);
  }
  Workload out = original;
  if (pool.empty() || out.jobs.empty()) return out;

  const double current = original.bb_request_fraction();
  if (current >= params.target_fraction) return out;
  // Probability for each currently request-free job such that the expected
  // overall requesting fraction reaches the target.
  const double assign_prob =
      (params.target_fraction - current) / (1.0 - current);

  Rng rng(seed);
  for (auto& job : out.jobs) {
    if (job.requests_bb()) continue;
    if (!rng.bernoulli(assign_prob)) continue;
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    job.bb_gb = pool[idx];
  }
  return out;
}

Workload expand_ssd_requests(const Workload& base,
                             const SsdExpansionParams& params,
                             std::uint64_t seed) {
  if (params.small_request_fraction < 0 || params.small_request_fraction > 1) {
    throw std::invalid_argument("expand_ssd: fraction out of [0, 1]");
  }
  if (params.small_gb <= 0 || params.large_gb <= params.small_gb) {
    throw std::invalid_argument("expand_ssd: bad tier sizes");
  }
  Workload out = base;
  // Configure the machine's SSD tiers (50/50 split in the paper).
  const auto small_nodes = static_cast<NodeCount>(std::llround(
      static_cast<double>(out.machine.nodes) *
      params.small_tier_node_fraction));
  out.machine.small_ssd_nodes = small_nodes;
  out.machine.large_ssd_nodes = out.machine.nodes - small_nodes;
  out.machine.small_ssd_gb = params.small_gb;
  out.machine.large_ssd_gb = params.large_gb;
  out.machine.validate();

  Rng rng(seed);
  for (auto& job : out.jobs) {
    // A job wider than the large tier can only run if it may use both
    // tiers, i.e. its per-node request must fit the small tier.  (The §5
    // machine has half its nodes per tier; a full-machine job with a
    // 256 GB-only request would be unservable.)
    const bool must_fit_small = job.nodes > out.machine.large_ssd_nodes;
    if (must_fit_small || rng.bernoulli(params.small_request_fraction)) {
      // (0, small]: "0-128GB local SSD requests".
      job.ssd_per_node_gb = rng.uniform(0.0, params.small_gb);
      if (job.ssd_per_node_gb == 0.0) job.ssd_per_node_gb = 1.0;
    } else {
      // (small, large]: must land on the large tier.
      job.ssd_per_node_gb =
          rng.uniform(params.small_gb, params.large_gb);
      if (job.ssd_per_node_gb == params.small_gb) {
        job.ssd_per_node_gb += 1.0;
      }
    }
  }
  return out;
}

std::vector<SuiteEntry> make_bb_suite(const Workload& original,
                                      std::uint64_t seed,
                                      std::vector<GigaBytes> model_pool_5tb,
                                      std::vector<GigaBytes> model_pool_20tb,
                                      double threshold_scale) {
  std::vector<SuiteEntry> suite;
  {
    Workload relabeled = original;
    relabeled.name = original.name + "-Original";
    suite.push_back({relabeled.name, std::move(relabeled)});
  }
  const struct {
    const char* tag;
    double fraction;
    GigaBytes threshold;
    const std::vector<GigaBytes>* pool;
  } specs[] = {
      {"S1", 0.50, tb(5) * threshold_scale, &model_pool_5tb},
      {"S2", 0.75, tb(5) * threshold_scale, &model_pool_5tb},
      {"S3", 0.50, tb(20) * threshold_scale, &model_pool_20tb},
      {"S4", 0.75, tb(20) * threshold_scale, &model_pool_20tb},
  };
  std::uint64_t salt = 0;
  for (const auto& spec : specs) {
    BbExpansionParams params;
    params.target_fraction = spec.fraction;
    params.pool_threshold = spec.threshold;
    params.pool = *spec.pool;
    Workload w = expand_bb_requests(original, params, seed + (++salt));
    w.name = original.name + "-" + spec.tag;
    suite.push_back({w.name, std::move(w)});
  }
  return suite;
}

std::vector<SuiteEntry> make_ssd_suite(
    const Workload& original, std::uint64_t seed,
    std::vector<GigaBytes> model_pool_5tb, double threshold_scale) {
  // §5: S5-S7 are generated "on top of Cori-S2 and Theta-S2".
  BbExpansionParams s2;
  s2.target_fraction = 0.75;
  s2.pool_threshold = tb(5) * threshold_scale;
  s2.pool = std::move(model_pool_5tb);
  const Workload base = expand_bb_requests(original, s2, seed + 2);

  std::vector<SuiteEntry> suite;
  const struct {
    const char* tag;
    double small_fraction;
  } specs[] = {{"S5", 0.8}, {"S6", 0.5}, {"S7", 0.2}};
  std::uint64_t salt = 100;
  for (const auto& spec : specs) {
    SsdExpansionParams params;
    params.small_request_fraction = spec.small_fraction;
    Workload w = expand_ssd_requests(base, params, seed + (++salt));
    w.name = original.name + "-" + spec.tag;
    suite.push_back({w.name, std::move(w)});
  }
  return suite;
}

}  // namespace bbsched
