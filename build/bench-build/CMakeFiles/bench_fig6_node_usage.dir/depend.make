# Empty dependencies file for bench_fig6_node_usage.
# This may be replaced when dependencies are built.
