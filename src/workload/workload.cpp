#include "workload/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbsched {

void MachineConfig::validate() const {
  if (nodes < 1) throw std::invalid_argument("machine: nodes must be >= 1");
  if (burst_buffer_gb < 0) {
    throw std::invalid_argument("machine: negative burst buffer");
  }
  if (persistent_bb_fraction < 0 || persistent_bb_fraction >= 1) {
    throw std::invalid_argument(
        "machine: persistent_bb_fraction must be in [0, 1)");
  }
  if (has_local_ssd()) {
    if (small_ssd_nodes + large_ssd_nodes != nodes) {
      throw std::invalid_argument(
          "machine: SSD tier node counts must sum to total nodes");
    }
    if (small_ssd_gb <= 0 || large_ssd_gb < small_ssd_gb) {
      throw std::invalid_argument("machine: bad SSD tier capacities");
    }
  }
}

void Workload::normalize() {
  machine.validate();
  std::sort(jobs.begin(), jobs.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.submit_time != b.submit_time
                         ? a.submit_time < b.submit_time
                         : a.id < b.id;
            });
  for (const auto& job : jobs) {
    validate_job(job);
    if (job.nodes > machine.nodes) {
      throw std::invalid_argument("job " + std::to_string(job.id) +
                                  " requests more nodes than the machine has");
    }
  }
}

GigaBytes Workload::total_bb_request() const {
  GigaBytes total = 0;
  for (const auto& job : jobs) total += job.bb_gb;
  return total;
}

double Workload::bb_request_fraction() const {
  if (jobs.empty()) return 0;
  std::size_t with_bb = 0;
  for (const auto& job : jobs) with_bb += job.requests_bb();
  return static_cast<double>(with_bb) / static_cast<double>(jobs.size());
}

Time Workload::submit_span() const {
  if (jobs.empty()) return 0;
  return jobs.back().submit_time - jobs.front().submit_time;
}

}  // namespace bbsched
