#include "workload/workload.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

MachineConfig small_machine() {
  MachineConfig m;
  m.name = "test";
  m.nodes = 100;
  m.burst_buffer_gb = tb(10);
  return m;
}

JobRecord job(JobId id, Time submit, NodeCount nodes, GigaBytes bb = 0) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.runtime = 100;
  j.walltime = 100;
  j.nodes = nodes;
  j.bb_gb = bb;
  return j;
}

TEST(MachineConfig, ValidatesBasics) {
  EXPECT_NO_THROW(small_machine().validate());
  auto m = small_machine();
  m.nodes = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = small_machine();
  m.persistent_bb_fraction = 1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(MachineConfig, SchedulableBbExcludesPersistentReservations) {
  auto m = small_machine();
  m.persistent_bb_fraction = 1.0 / 3.0;
  EXPECT_NEAR(m.schedulable_bb_gb(), tb(10) * 2.0 / 3.0, 1e-9);
}

TEST(MachineConfig, SsdTiersMustCoverAllNodes) {
  auto m = small_machine();
  m.small_ssd_nodes = 40;
  m.large_ssd_nodes = 50;  // 90 != 100
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.large_ssd_nodes = 60;
  EXPECT_NO_THROW(m.validate());
  EXPECT_TRUE(m.has_local_ssd());
}

TEST(Workload, NormalizeSortsBySubmitThenId) {
  Workload w;
  w.machine = small_machine();
  w.jobs = {job(3, 50, 1), job(1, 10, 1), job(2, 10, 1)};
  w.normalize();
  EXPECT_EQ(w.jobs[0].id, 1u);
  EXPECT_EQ(w.jobs[1].id, 2u);
  EXPECT_EQ(w.jobs[2].id, 3u);
}

TEST(Workload, NormalizeRejectsOversizedJob) {
  Workload w;
  w.machine = small_machine();
  w.jobs = {job(1, 0, 200)};
  EXPECT_THROW(w.normalize(), std::invalid_argument);
}

TEST(Workload, AggregateHelpers) {
  Workload w;
  w.machine = small_machine();
  w.jobs = {job(1, 0, 1, tb(1)), job(2, 100, 1), job(3, 300, 1, tb(2))};
  w.normalize();
  EXPECT_DOUBLE_EQ(w.total_bb_request(), tb(3));
  EXPECT_NEAR(w.bb_request_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.submit_span(), 300.0);
}

TEST(Workload, EmptyWorkloadHelpers) {
  Workload w;
  w.machine = small_machine();
  EXPECT_DOUBLE_EQ(w.bb_request_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(w.submit_span(), 0.0);
}

}  // namespace
}  // namespace bbsched
