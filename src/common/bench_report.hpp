// bench_report.hpp — structured benchmark results (DESIGN.md §14).
//
// Every bench binary can emit a machine-readable BENCH_<name>.json next to
// its console tables: a set of named series (each with ordered string
// params, a unit, and one or more repeat samples summarized as
// median/p10/p90), stamped with build/run provenance (git SHA, compiler,
// flags, CPU count, worker threads) and the profiler's top phases when
// profiling is on.  tools/bench_compare.py diffs two trees of these files
// and the CI perf-smoke job gates on the result.
//
// Series carry a gating direction so machine-portable quantities (event
// counts, solver evaluations, on/off overhead ratios) can fail CI while
// raw wall-times — which do not transfer across machines — stay
// informational:
//   "lower"  — smaller is better; bench_compare fails on a >threshold rise
//   "higher" — larger is better; fails on a >threshold drop
//   "info"   — recorded and reported, never gated
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/profiler.hpp"

namespace bbsched {

/// Schema tag written into every bench JSON (bump on breaking change).
inline constexpr const char* kBenchSchema = "bbsched-bench-v1";

/// One measured series: `repeats` holds every sample; the writer derives
/// median/p10/p90/mean/min/max.  A single-shot measurement is a one-sample
/// series (median == the value).
struct BenchSeries {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
  std::string unit = "s";
  std::string direction = "info";
  std::vector<double> repeats;

  void add_sample(double v) { repeats.push_back(v); }
};

/// Linear-interpolation quantile of `values` (q in [0,1]); 0 when empty.
/// Exposed for tests and to keep bench_compare.py's math identical.
double bench_quantile(std::vector<double> values, double q);

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Set a top-level param (bench-wide configuration: jobs, window, ...).
  /// Re-setting a key overwrites its value in place.
  void set_param(const std::string& key, const std::string& value);

  /// Append a series and return it for sample recording.  The reference is
  /// invalidated by the next add_series call.
  BenchSeries& add_series(std::string series_name,
                          std::vector<std::pair<std::string, std::string>>
                              params = {},
                          std::string unit = "s",
                          std::string direction = "info");

  /// Convenience: a one-sample series.
  void add_value(const std::string& series_name,
                 std::vector<std::pair<std::string, std::string>> params,
                 double value, const std::string& unit = "s",
                 const std::string& direction = "info");

  /// Attach the profiler's top phases (taken automatically by write_file
  /// when the profiler is enabled and none were set explicitly).
  void set_top_phases(std::vector<PhaseRow> phases);

  const std::vector<BenchSeries>& series() const { return series_; }

  /// Render the full bbsched-bench-v1 JSON document.
  std::string to_json() const;

  /// Atomically write to `path` (write-temp → fsync → rename).
  void write_file(const std::string& path);

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<BenchSeries> series_;
  std::vector<PhaseRow> top_phases_;
  bool have_top_phases_ = false;
};

/// Resolve where a bench's JSON goes: `out` may be a directory (gets
/// "/BENCH_<name>.json" appended) or a full file path (used verbatim when
/// it ends in ".json").
std::string bench_out_path(const std::string& out, const std::string& name);

}  // namespace bbsched
