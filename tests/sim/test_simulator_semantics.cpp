// Focused semantics tests: walltime-based reservations vs. actual runtimes,
// early completions, and window bookkeeping.
#include <gtest/gtest.h>

#include "policies/bbsched_policy.hpp"
#include "policies/naive.hpp"
#include "sim/simulator.hpp"

namespace bbsched {
namespace {

MachineConfig machine(NodeCount nodes = 100, GigaBytes bb = tb(100)) {
  MachineConfig m;
  m.name = "test";
  m.nodes = nodes;
  m.burst_buffer_gb = bb;
  return m;
}

JobRecord job(JobId id, Time submit, NodeCount nodes, Time runtime,
              Time walltime, GigaBytes bb = 0) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.runtime = runtime;
  j.walltime = walltime;
  j.nodes = nodes;
  j.bb_gb = bb;
  return j;
}

Workload make_workload(std::vector<JobRecord> jobs) {
  Workload w;
  w.name = "unit";
  w.machine = machine();
  w.jobs = std::move(jobs);
  w.normalize();
  return w;
}

SimConfig fast_config() {
  SimConfig c;
  c.window_size = 10;
  c.warmup_fraction = 0;
  c.cooldown_fraction = 0;
  return c;
}

SimResult run_naive(const Workload& w) {
  FcfsScheduler fcfs;
  NaivePolicy naive;
  return simulate(w, fast_config(), fcfs, naive);
}

TEST(SimSemantics, EarlyCompletionFreesResourcesImmediately) {
  // J1 claims a 1000 s walltime but finishes after 100 s; J2 must start at
  // the *actual* completion, not the walltime horizon.
  const auto w = make_workload({job(1, 0, 100, 100, 1000),
                                job(2, 1, 100, 50, 50)});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start, 100);
}

TEST(SimSemantics, BackfillDecisionUsesWalltimeNotRuntime) {
  // J1 runs 90 nodes until t=100.  Head J2 needs 50 nodes (reserved at
  // t=100, extra = 50).  J3 *actually* runs only 10 s but declares a 500 s
  // walltime and needs 60 nodes > extra: EASY must reject it even though
  // with perfect knowledge it would be harmless.
  const auto w = make_workload({job(1, 0, 90, 100, 100),
                                job(2, 1, 50, 100, 100),
                                job(3, 2, 60, 10, 500)});
  const auto result = run_naive(w);
  EXPECT_GE(result.outcomes[2].start, 100)
      << "reservation math must trust the walltime estimate";
}

TEST(SimSemantics, ShortWalltimeEnablesBackfill) {
  // Same scenario but J3's walltime fits before the shadow: backfills.
  const auto w = make_workload({job(1, 0, 90, 100, 100),
                                job(2, 1, 50, 100, 100),
                                job(3, 2, 10, 50, 90)});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start, 2);
  EXPECT_TRUE(result.outcomes[2].backfilled);
}

TEST(SimSemantics, PolicyStartsAreNotMarkedBackfilled) {
  const auto w = make_workload({job(1, 0, 10, 100, 100)});
  const auto result = run_naive(w);
  EXPECT_FALSE(result.outcomes[0].backfilled);
}

TEST(SimSemantics, MakespanIsLastCompletion) {
  const auto w = make_workload({job(1, 0, 100, 50, 50),
                                job(2, 0, 100, 200, 200)});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.makespan, 50 + 200);
}

TEST(SimSemantics, BbOnlyContentionTriggersReservation) {
  // Nodes are plentiful; burst buffer is the only contended dimension.
  const auto w = make_workload({job(1, 0, 1, 100, 100, tb(90)),
                                job(2, 1, 1, 100, 100, tb(90)),
                                job(3, 2, 1, 50, 50, tb(5))});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start, 100);
  // J3's 5 TB fits alongside J1 and does not delay J2's BB reservation
  // (at t=100, J2 needs 90 TB; extra = 100-90-... with J3 ending at t=52).
  EXPECT_DOUBLE_EQ(result.outcomes[2].start, 2);
}

TEST(SimSemantics, IdenticalSeedsGiveIdenticalSchedules) {
  std::vector<JobRecord> jobs;
  for (JobId i = 1; i <= 30; ++i) {
    jobs.push_back(job(i, static_cast<double>(i), 20 + (i * 13) % 50,
                       60 + (i * 7) % 300, 400, (i % 3) ? 0 : tb(25)));
  }
  const auto w = make_workload(std::move(jobs));
  GaParams ga;
  ga.generations = 40;
  ga.population_size = 10;
  FcfsScheduler fcfs;
  const BBSchedPolicy policy(ga);
  const auto a = simulate(w, fast_config(), fcfs, policy);
  const auto b = simulate(w, fast_config(), fcfs, policy);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].start, b.outcomes[i].start);
  }
}

TEST(SimSemantics, SingleJobWindowPolicyStillWorks) {
  GaParams ga;
  ga.generations = 10;
  ga.population_size = 4;
  const BBSchedPolicy policy(ga);
  FcfsScheduler fcfs;
  const auto w = make_workload({job(1, 0, 10, 100, 100, tb(5))});
  const auto result = simulate(w, fast_config(), fcfs, policy);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start, 0);
}

TEST(SimSemantics, DependencyChainRunsSequentially) {
  auto a = job(1, 0, 10, 100, 100);
  auto b = job(2, 0, 10, 100, 100);
  b.dependencies = {1};
  auto c = job(3, 0, 10, 100, 100);
  c.dependencies = {2};
  const auto w = make_workload({a, b, c});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start, 0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start, 100);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start, 200);
}

TEST(SimSemantics, DiamondDependencyReleasesAfterAllParents) {
  auto a = job(1, 0, 10, 100, 100);
  auto b = job(2, 0, 10, 300, 300);
  auto c = job(3, 0, 10, 50, 50);
  c.dependencies = {1, 2};
  const auto w = make_workload({a, b, c});
  const auto result = run_naive(w);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start, 300)
      << "child must wait for the slowest parent";
}

}  // namespace
}  // namespace bbsched
