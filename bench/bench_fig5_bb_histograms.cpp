// bench_fig5_bb_histograms — reproduce Figure 5: burst-buffer request
// histograms of the ten §4 workloads (10 TB bins, aggregate volume in the
// title), for Cori (left column of the figure) and Theta (right column).
//
// Expected shape: the Original workloads have tiny aggregates; S1/S2 share a
// distribution with more requesting jobs in S2; S3/S4 carry larger requests
// than S1/S2 (their pools sample above 20 TB instead of 5 TB).
#include <iostream>

#include "exp/experiment.hpp"
#include "workload/wl_stats.hpp"

#include "bench_util.hpp"

int main(int argc, char** argv) {
  const bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig5_bb_histograms");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const ExperimentConfig config = ExperimentConfig::from_env();
  const auto suite = build_main_workloads(config);
  std::cout << "Figure 5: burst-buffer request distributions (10 TB bins)\n";
  for (const auto& entry : suite) {
    std::cout << '\n';
    print_bb_histogram(entry.workload, std::cout, 10.0);
  }
  return cli.exit_code();
}
