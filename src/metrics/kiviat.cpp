#include "metrics/kiviat.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bbsched {

std::vector<KiviatSeries> kiviat_normalize(std::vector<KiviatSeries> series,
                                           double rel_tie_tolerance) {
  if (series.empty()) return series;
  const std::size_t axes = series.front().values.size();
  for (const auto& s : series) {
    if (s.values.size() != axes) {
      throw std::invalid_argument("kiviat: ragged series");
    }
  }
  for (std::size_t a = 0; a < axes; ++a) {
    double lo = series.front().values[a];
    double hi = lo;
    for (const auto& s : series) {
      lo = std::min(lo, s.values[a]);
      hi = std::max(hi, s.values[a]);
    }
    const double spread_floor =
        rel_tie_tolerance * std::max(std::abs(hi), std::abs(lo));
    const bool tie = hi - lo <= spread_floor;
    for (auto& s : series) {
      s.values[a] = (!tie && hi > lo) ? (s.values[a] - lo) / (hi - lo) : 1.0;
    }
  }
  return series;
}

double kiviat_area(const KiviatSeries& normalized) {
  const std::size_t n = normalized.values.size();
  if (n < 3) {
    throw std::invalid_argument("kiviat: need >= 3 axes for an area");
  }
  // Polygon area with spokes at angles 2*pi*k/n:
  //   A = 1/2 * sum_k r_k * r_{k+1} * sin(2*pi/n),
  // normalized by the all-ones polygon's area.
  const double sin_step = std::sin(2.0 * std::numbers::pi /
                                   static_cast<double>(n));
  double area = 0;
  for (std::size_t k = 0; k < n; ++k) {
    area += normalized.values[k] * normalized.values[(k + 1) % n];
  }
  area *= 0.5 * sin_step;
  const double max_area = 0.5 * sin_step * static_cast<double>(n);
  return area / max_area;
}

double kiviat_orient(double value, bool larger_is_better) {
  if (larger_is_better) return value;
  // Reciprocal for smaller-is-better metrics; a zero (perfect) value clamps
  // to a large finite reciprocal so normalization stays well-defined.
  return 1.0 / std::max(value, 1e-9);
}

}  // namespace bbsched
