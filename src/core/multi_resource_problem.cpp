#include "core/multi_resource_problem.hpp"

#include <cassert>
#include <stdexcept>

namespace bbsched {

MultiResourceProblem::MultiResourceProblem(
    std::vector<std::vector<double>> demands, std::vector<double> free)
    : demands_(std::move(demands)), free_(std::move(free)) {
  if (demands_.empty()) {
    throw std::invalid_argument("MultiResourceProblem: need >= 1 resource");
  }
  if (demands_.size() != free_.size()) {
    throw std::invalid_argument(
        "MultiResourceProblem: demands/free dimension mismatch");
  }
  num_vars_ = demands_.front().size();
  for (const auto& row : demands_) {
    if (row.size() != num_vars_) {
      throw std::invalid_argument(
          "MultiResourceProblem: ragged demand matrix");
    }
    for (double d : row) {
      if (d < 0) {
        throw std::invalid_argument(
            "MultiResourceProblem: negative demand");
      }
    }
  }
  for (double f : free_) {
    if (f < 0) {
      throw std::invalid_argument("MultiResourceProblem: negative capacity");
    }
  }
}

MultiResourceProblem MultiResourceProblem::cpu_bb(
    std::span<const double> node_demand, std::span<const double> bb_demand,
    double free_nodes, double free_bb) {
  std::vector<std::vector<double>> demands{
      {node_demand.begin(), node_demand.end()},
      {bb_demand.begin(), bb_demand.end()}};
  return MultiResourceProblem(std::move(demands), {free_nodes, free_bb});
}

MultiResourceProblem MultiResourceProblem::with_free(
    std::vector<double> free) const {
  MultiResourceProblem other(demands_, std::move(free));
  for (std::size_t index : pinned()) other.pin(index);
  return other;
}

void MultiResourceProblem::evaluate(std::span<const std::uint8_t> genes,
                                    std::span<double> objectives) const {
  assert(genes.size() == num_vars_);
  assert(objectives.size() == demands_.size());
  for (std::size_t r = 0; r < demands_.size(); ++r) {
    double used = 0;
    const auto& row = demands_[r];
    for (std::size_t i = 0; i < num_vars_; ++i) {
      if (genes[i]) used += row[i];
    }
    objectives[r] = free_[r] > 0 ? used / free_[r] : 0.0;
  }
}

bool MultiResourceProblem::feasible(
    std::span<const std::uint8_t> genes) const {
  assert(genes.size() == num_vars_);
  for (std::size_t r = 0; r < demands_.size(); ++r) {
    double used = 0;
    const auto& row = demands_[r];
    for (std::size_t i = 0; i < num_vars_; ++i) {
      if (genes[i]) used += row[i];
    }
    if (used > free_[r]) return false;
  }
  return true;
}

std::vector<double> MultiResourceProblem::consumption(
    std::span<const std::uint8_t> genes) const {
  std::vector<double> used(demands_.size(), 0.0);
  for (std::size_t r = 0; r < demands_.size(); ++r) {
    for (std::size_t i = 0; i < num_vars_; ++i) {
      if (genes[i]) used[r] += demands_[r][i];
    }
  }
  return used;
}

}  // namespace bbsched
