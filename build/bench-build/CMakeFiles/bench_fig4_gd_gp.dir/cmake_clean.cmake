file(REMOVE_RECURSE
  "../bench/bench_fig4_gd_gp"
  "../bench/bench_fig4_gd_gp.pdb"
  "CMakeFiles/bench_fig4_gd_gp.dir/bench_fig4_gd_gp.cpp.o"
  "CMakeFiles/bench_fig4_gd_gp.dir/bench_fig4_gd_gp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_gd_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
