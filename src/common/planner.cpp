#include "common/planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace bbsched {

namespace {

void check_request(std::span<const double> request, std::size_t k) {
  if (request.size() != k) {
    throw std::invalid_argument("planner: request has " +
                                std::to_string(request.size()) +
                                " resources, timeline has " +
                                std::to_string(k));
  }
  for (double r : request) {
    if (std::isnan(r) || r < 0) {
      throw std::invalid_argument("planner: request must be >= 0");
    }
  }
}

// Span starts and query times must be finite: a span cannot begin "at
// infinity", and availability exactly at t = +inf is ill-defined (every
// half-open span [t0, inf) excludes the point inf itself).  Durations may be
// infinite; +inf only ever appears as an exclusive interval end.
void check_time(Time t, const char* what) {
  if (!std::isfinite(t)) {
    throw std::invalid_argument(std::string("planner: ") + what +
                                " must be finite");
  }
}

void check_duration(Time d) {
  if (std::isnan(d) || d < 0) {
    throw std::invalid_argument("planner: duration must be >= 0");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

Planner::Planner(std::vector<double> capacity)
    : capacity_(std::move(capacity)) {
  if (capacity_.empty()) {
    throw std::invalid_argument("planner: need >= 1 resource");
  }
  for (double c : capacity_) {
    if (std::isnan(c) || c < 0) {
      throw std::invalid_argument("planner: capacity must be >= 0");
    }
  }
}

Planner::PointMap::iterator Planner::ref_point(Time t) {
  auto it = points_.lower_bound(t);
  if (it != points_.end() && it->first == t) {
    ++it->second.refs;
    return it;
  }
  // New point: availability continues the covering interval's value.
  std::vector<double> value =
      it == points_.begin() ? capacity_ : std::prev(it)->second.remaining;
  return points_.emplace_hint(it, t, Point{std::move(value), 1});
}

void Planner::unref_point(Time t) {
  const auto it = points_.find(t);
  if (it == points_.end()) return;  // defensive; refs keep points alive
  if (--it->second.refs <= 0) points_.erase(it);
}

SpanId Planner::add_span(Time t0, Time duration,
                         std::span<const double> request, std::uint64_t tag) {
  check_request(request, capacity_.size());
  check_time(t0, "span start");
  check_duration(duration);

  const Time t1 = t0 + duration;  // +inf for never-ending spans
  const SpanId id = next_id_++;
  const auto [span_it, inserted] = spans_.emplace(
      id, SpanInfo{t0, t1, tag,
                   std::vector<double>(request.begin(), request.end())});
  (void)inserted;
  ends_.emplace(std::make_tuple(t1, tag, id), &span_it->second);

  if (t1 > t0) {
    auto first = ref_point(t0);
    if (t1 != kPlannerNever) ref_point(t1);
    for (auto p = first; p != points_.end() && p->first < t1; ++p) {
      for (std::size_t i = 0; i < request.size(); ++i) {
        p->second.remaining[i] -= request[i];
      }
    }
  }
  return id;
}

void Planner::remove_span(SpanId id) {
  const auto it = spans_.find(id);
  if (it == spans_.end()) {
    throw std::logic_error("planner: unknown span " + std::to_string(id));
  }
  const SpanInfo& s = it->second;
  ends_.erase(std::make_tuple(s.end, s.tag, id));
  if (s.end > s.start) {
    for (auto p = points_.find(s.start);
         p != points_.end() && p->first < s.end; ++p) {
      for (std::size_t i = 0; i < s.request.size(); ++i) {
        p->second.remaining[i] += s.request[i];
      }
    }
    unref_point(s.start);
    if (s.end != kPlannerNever) unref_point(s.end);
  }
  spans_.erase(it);
}

void Planner::avail_at(Time t, std::span<double> out) const {
  check_time(t, "query time");
  if (out.size() != capacity_.size()) {
    throw std::invalid_argument("planner: avail_at output size mismatch");
  }
  const auto it = points_.upper_bound(t);
  const std::vector<double>& value =
      it == points_.begin() ? capacity_ : std::prev(it)->second.remaining;
  std::copy(value.begin(), value.end(), out.begin());
}

std::vector<double> Planner::avail_at(Time t) const {
  std::vector<double> out(capacity_.size());
  avail_at(t, out);
  return out;
}

void Planner::avail_during(Time t, Time duration,
                           std::span<double> out) const {
  check_duration(duration);
  avail_at(t, out);
  const Time t1 = t + duration;
  for (auto it = points_.upper_bound(t);
       it != points_.end() && it->first < t1; ++it) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = std::min(out[i], it->second.remaining[i]);
    }
  }
}

std::vector<double> Planner::avail_during(Time t, Time duration) const {
  std::vector<double> out(capacity_.size());
  avail_during(t, duration, out);
  return out;
}

bool Planner::fits_during(Time t, Time duration,
                          std::span<const double> request) const {
  check_request(request, capacity_.size());
  check_time(t, "query time");
  check_duration(duration);
  auto it = points_.upper_bound(t);
  const std::vector<double>& base =
      it == points_.begin() ? capacity_ : std::prev(it)->second.remaining;
  for (std::size_t i = 0; i < request.size(); ++i) {
    if (request[i] > base[i]) return false;
  }
  const Time t1 = t + duration;
  for (; it != points_.end() && it->first < t1; ++it) {
    for (std::size_t i = 0; i < request.size(); ++i) {
      if (request[i] > it->second.remaining[i]) return false;
    }
  }
  return true;
}

Time Planner::earliest_fit(Time after, Time duration,
                           std::span<const double> request) const {
  check_request(request, capacity_.size());
  check_time(after, "query time");
  check_duration(duration);
  for (std::size_t i = 0; i < request.size(); ++i) {
    if (request[i] > capacity_[i]) return kPlannerNever;
  }
  // Availability is piecewise constant, so only `after` and change-points can
  // be earliest fits (sliding left inside an interval never hurts).
  Time candidate = after;
  while (true) {
    if (fits_during(candidate, duration, request)) return candidate;
    const auto it = points_.upper_bound(candidate);
    if (it == points_.end()) return kPlannerNever;
    candidate = it->first;
  }
}

const Planner::SpanInfo& Planner::span(SpanId id) const {
  const auto it = spans_.find(id);
  if (it == spans_.end()) {
    throw std::logic_error("planner: unknown span " + std::to_string(id));
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// NaivePlanner
// ---------------------------------------------------------------------------

NaivePlanner::NaivePlanner(std::vector<double> capacity)
    : capacity_(std::move(capacity)) {
  if (capacity_.empty()) {
    throw std::invalid_argument("planner: need >= 1 resource");
  }
  for (double c : capacity_) {
    if (std::isnan(c) || c < 0) {
      throw std::invalid_argument("planner: capacity must be >= 0");
    }
  }
}

SpanId NaivePlanner::add_span(Time t0, Time duration,
                              std::span<const double> request,
                              std::uint64_t tag) {
  check_request(request, capacity_.size());
  check_time(t0, "span start");
  check_duration(duration);
  const SpanId id = next_id_++;
  spans_.emplace(id, Planner::SpanInfo{
                         t0, t0 + duration, tag,
                         std::vector<double>(request.begin(), request.end())});
  return id;
}

void NaivePlanner::remove_span(SpanId id) {
  if (spans_.erase(id) == 0) {
    throw std::logic_error("planner: unknown span " + std::to_string(id));
  }
}

std::vector<double> NaivePlanner::avail_at(Time t) const {
  check_time(t, "query time");
  std::vector<double> out = capacity_;
  // det-ok: unordered-iter (commutative subtraction; order cannot matter)
  for (const auto& [id, s] : spans_) {
    if (s.start <= t && t < s.end) {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] -= s.request[i];
    }
  }
  return out;
}

std::vector<Time> NaivePlanner::boundaries_between(Time t, Time limit) const {
  std::vector<Time> times;
  // det-ok: unordered-iter (collection pass; sorted + uniqued below)
  for (const auto& [id, s] : spans_) {
    if (s.start > t && s.start < limit) times.push_back(s.start);
    if (s.end > t && s.end < limit && std::isfinite(s.end)) {
      times.push_back(s.end);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

std::vector<double> NaivePlanner::avail_during(Time t, Time duration) const {
  check_duration(duration);
  std::vector<double> out = avail_at(t);
  for (const Time u : boundaries_between(t, t + duration)) {
    const std::vector<double> at = avail_at(u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = std::min(out[i], at[i]);
    }
  }
  return out;
}

bool NaivePlanner::fits_during(Time t, Time duration,
                               std::span<const double> request) const {
  check_request(request, capacity_.size());
  const std::vector<double> avail = avail_during(t, duration);
  for (std::size_t i = 0; i < request.size(); ++i) {
    if (request[i] > avail[i]) return false;
  }
  return true;
}

Time NaivePlanner::earliest_fit(Time after, Time duration,
                                std::span<const double> request) const {
  check_request(request, capacity_.size());
  check_time(after, "query time");
  check_duration(duration);
  for (std::size_t i = 0; i < request.size(); ++i) {
    if (request[i] > capacity_[i]) return kPlannerNever;
  }
  if (fits_during(after, duration, request)) return after;
  for (const Time u : boundaries_between(after, kPlannerNever)) {
    if (fits_during(u, duration, request)) return u;
  }
  return kPlannerNever;
}

}  // namespace bbsched
