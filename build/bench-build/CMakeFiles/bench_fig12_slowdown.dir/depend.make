# Empty dependencies file for bench_fig12_slowdown.
# This may be replaced when dependencies are built.
