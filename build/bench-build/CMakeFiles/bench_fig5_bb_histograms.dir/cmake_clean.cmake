file(REMOVE_RECURSE
  "../bench/bench_fig5_bb_histograms"
  "../bench/bench_fig5_bb_histograms.pdb"
  "CMakeFiles/bench_fig5_bb_histograms.dir/bench_fig5_bb_histograms.cpp.o"
  "CMakeFiles/bench_fig5_bb_histograms.dir/bench_fig5_bb_histograms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bb_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
