#include "common/argparse.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace bbsched {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_int(const std::string& name, std::int64_t* out,
                        const std::string& help) {
  options_.push_back({name, Kind::kInt, out, help, std::to_string(*out)});
}

void ArgParser::add_double(const std::string& name, double* out,
                           const std::string& help) {
  std::ostringstream repr;
  repr << *out;
  options_.push_back({name, Kind::kDouble, out, help, repr.str()});
}

void ArgParser::add_string(const std::string& name, std::string* out,
                           const std::string& help) {
  options_.push_back({name, Kind::kString, out, help, "\"" + *out + "\""});
}

void ArgParser::add_bool(const std::string& name, bool* out,
                         const std::string& help) {
  options_.push_back({name, Kind::kBool, out, help, *out ? "true" : "false"});
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("argparse: unexpected positional '" + arg + "'");
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    const Option* opt = find(name);
    if (!opt) throw std::runtime_error("argparse: unknown flag --" + name);
    if (opt->kind == Kind::kBool && !have_value) {
      *static_cast<bool*>(opt->target) = true;
      continue;
    }
    if (!have_value) {
      if (i + 1 >= argc) {
        throw std::runtime_error("argparse: --" + name + " needs a value");
      }
      value = argv[++i];
    }
    try {
      switch (opt->kind) {
        case Kind::kInt:
          *static_cast<std::int64_t*>(opt->target) = std::stoll(value);
          break;
        case Kind::kDouble:
          *static_cast<double*>(opt->target) = std::stod(value);
          break;
        case Kind::kString:
          *static_cast<std::string*>(opt->target) = value;
          break;
        case Kind::kBool:
          *static_cast<bool*>(opt->target) =
              (value == "true" || value == "1" || value == "yes");
          break;
      }
    } catch (const std::exception&) {
      throw std::runtime_error("argparse: bad value '" + value + "' for --" +
                               name);
    }
  }
  return true;
}

std::string ArgParser::usage(const std::string& program_name) const {
  std::ostringstream out;
  out << description_ << "\n\nusage: " << program_name << " [flags]\n";
  for (const auto& opt : options_) {
    out << "  --" << opt.name << "  " << opt.help
        << " (default: " << opt.default_repr << ")\n";
  }
  return out.str();
}

}  // namespace bbsched
