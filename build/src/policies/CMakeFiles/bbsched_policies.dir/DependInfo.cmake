
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/bbsched_policy.cpp" "src/policies/CMakeFiles/bbsched_policies.dir/bbsched_policy.cpp.o" "gcc" "src/policies/CMakeFiles/bbsched_policies.dir/bbsched_policy.cpp.o.d"
  "/root/repo/src/policies/bin_packing.cpp" "src/policies/CMakeFiles/bbsched_policies.dir/bin_packing.cpp.o" "gcc" "src/policies/CMakeFiles/bbsched_policies.dir/bin_packing.cpp.o.d"
  "/root/repo/src/policies/factory.cpp" "src/policies/CMakeFiles/bbsched_policies.dir/factory.cpp.o" "gcc" "src/policies/CMakeFiles/bbsched_policies.dir/factory.cpp.o.d"
  "/root/repo/src/policies/naive.cpp" "src/policies/CMakeFiles/bbsched_policies.dir/naive.cpp.o" "gcc" "src/policies/CMakeFiles/bbsched_policies.dir/naive.cpp.o.d"
  "/root/repo/src/policies/problem_builder.cpp" "src/policies/CMakeFiles/bbsched_policies.dir/problem_builder.cpp.o" "gcc" "src/policies/CMakeFiles/bbsched_policies.dir/problem_builder.cpp.o.d"
  "/root/repo/src/policies/scalarized.cpp" "src/policies/CMakeFiles/bbsched_policies.dir/scalarized.cpp.o" "gcc" "src/policies/CMakeFiles/bbsched_policies.dir/scalarized.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bbsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bbsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bbsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bbsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
