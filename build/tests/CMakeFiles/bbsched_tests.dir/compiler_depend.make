# Empty compiler generated dependencies file for bbsched_tests.
# This may be replaced when dependencies are built.
