// build_info.hpp — build and run provenance for exported artifacts.
//
// The build half (git SHA, compiler, flags, build type) is captured at CMake
// configure time into a generated build_info.cpp; the run half (CPU count,
// configured worker threads) is read at call time.  Exporters stamp both
// onto their artifacts so a metrics CSV, trace JSON or bench result can be
// attributed long after the run: CSV-like files get "# key=value" comment
// lines (provenance_comment_lines), JSON files embed a provenance object.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace bbsched {

/// Configure-time build facts; empty fields mean "unknown" (e.g. a source
/// tree exported without .git).
struct BuildInfo {
  std::string git_sha;     ///< full HEAD SHA, "+dirty" suffix when modified
  std::string compiler;    ///< "GNU 13.2.0"-style id + version
  std::string flags;       ///< CXX flags incl. the build-type set
  std::string build_type;  ///< CMAKE_BUILD_TYPE
};

/// The build this binary came from.
const BuildInfo& build_info();

/// Ordered key=value provenance pairs: build facts plus the runtime CPU
/// count and the configured global worker-thread count.
std::vector<std::pair<std::string, std::string>> provenance_pairs();

/// The same pairs rendered as "# key=value" comment lines (newline
/// terminated), for CSV-style artifacts.
std::string provenance_comment_lines();

}  // namespace bbsched
