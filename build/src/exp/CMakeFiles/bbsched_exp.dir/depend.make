# Empty dependencies file for bbsched_exp.
# This may be replaced when dependencies are built.
