#!/usr/bin/env python3
"""Determinism lint for the bbsched tree (DESIGN.md §13).

Every reproducibility claim this repo makes — byte-identical grids at any
thread count, kill-and-resume equivalence, %.17g streaming-vs-batch metric
identity — dies the day someone feeds wall-clock time, ambient randomness,
or hash-order iteration into a sim/solver/grid path.  This lint bans those
constructs mechanically so refactors cannot reintroduce them silently.

Rule classes (see DESIGN.md §13 for the catalog and rationale):

  wall-clock      std::chrono::system_clock, gettimeofday, localtime,
                  time(nullptr)/time(0)/std::time in determinism-critical
                  code.  The only sanctioned clock is the shared MonoClock
                  (clock.hpp), and only for telemetry, never for decisions.
  raw-clock       std::chrono::steady_clock / high_resolution_clock anywhere
                  under src/ outside clock.hpp.  Monotonic time must flow
                  through MonoClock (mono_now / mono_seconds), Stopwatch, or
                  the phase profiler, so every timing read shares one origin
                  and stays mockable.
  raw-rng         rand(), srand(), std::random_device, raw std::mt19937 /
                  std::default_random_engine.  All randomness must flow
                  through Rng + mix_seed (rng.hpp) so every stream is
                  splittable and replayable.
  unordered-iter  Iteration over a std::unordered_{map,set,...} variable.
                  Hash order is not part of the determinism contract; every
                  such loop must either be order-insensitive (sum/max over
                  the values, results sorted afterwards) or iterate a sorted
                  copy — and must say which via a `det-ok:` marker.
  raw-print       std::cout, printf/fprintf(stdout, ...), puts in library
                  code under src/.  Human-facing output goes through the
                  logger (log.hpp) or an explicit std::ostream& parameter;
                  stdout belongs to the bench/example mains.
  raw-ofstream    std::ofstream / fopen("w") in campaign-output code
                  (src/exp/) or any write whose path mentions a cache or
                  journal directory.  Cache, journal, trace and metrics
                  files must go through atomic_write_file /
                  write_csv_file_checksummed (fault.hpp) so a crash can
                  never leave a torn file that later resumes corrupt.

Suppression:

  * Inline:                // det-ok: <rule> (<reason>)
    On the flagged line or on the line directly above it, naming the rule.
    A marker that suppresses nothing is itself an error (stale markers rot).
  * Allowlist file:        tools/determinism_allowlist.txt
    Lines of the form `<rule> <path-glob> <reason...>`; '#' comments.

Exit status: 0 clean, 1 violations (or stale markers), 2 usage error.

Self-test: `lint_determinism.py --self-test` runs the lint over the planted
fixtures in tools/lint_selftest/, asserting every rule class fires where
planted and that both suppression mechanisms silence it.  CI runs the
self-test before trusting a clean tree.
"""

import argparse
import fnmatch
import os
import re
import sys

# --------------------------------------------------------------------------
# Rule definitions


class Rule:
    def __init__(self, name, pattern, dirs, message, exclude_files=()):
        self.name = name
        self.pattern = re.compile(pattern) if pattern is not None else None
        self.dirs = dirs  # path prefixes (relative, '/'-separated) in scope
        self.message = message
        self.exclude_files = exclude_files

    def in_scope(self, relpath):
        if any(fnmatch.fnmatch(relpath, pat) for pat in self.exclude_files):
            return False
        return any(relpath.startswith(d) for d in self.dirs)


# Directories whose code feeds scheduling decisions or serialized results.
DETERMINISM_DIRS = (
    "src/sim/", "src/core/", "src/exp/", "src/policies/", "src/workload/",
    "src/metrics/", "src/common/",
)
# Campaign-output code: everything here writes caches/journals/results.
CAMPAIGN_OUTPUT_DIRS = ("src/exp/",)
ALL_SRC = ("src/",)

RULES = [
    Rule(
        "wall-clock",
        r"\bsystem_clock\b|\bgettimeofday\b|\blocaltime\b|\bgmtime\b"
        r"|\bstd::time\b|[^:_\w]time\(\s*(NULL|nullptr|0)\s*\)",
        DETERMINISM_DIRS,
        "wall-clock time in determinism-critical code; use the shared "
        "MonoClock (clock.hpp), and only for telemetry",
    ),
    Rule(
        "raw-clock",
        r"\bsteady_clock\b|\bhigh_resolution_clock\b",
        ALL_SRC,
        "raw monotonic clock; route timing through MonoClock (clock.hpp), "
        "Stopwatch, or the phase profiler so every read shares one origin",
        exclude_files=("src/common/clock.hpp",),
    ),
    Rule(
        "raw-rng",
        r"\bstd::random_device\b|\bsrand\s*\(|[^_\w]rand\s*\(\s*\)"
        r"|\bstd::mt19937(_64)?\b|\bstd::default_random_engine\b",
        DETERMINISM_DIRS,
        "ambient randomness; all streams must come from Rng + mix_seed "
        "(rng.hpp) so runs replay bit-identically",
    ),
    Rule(
        "unordered-iter",
        None,  # structural rule, handled by UnorderedIterScanner
        ALL_SRC,
        "iteration over an unordered container: hash order is not "
        "deterministic across libstdc++ versions; iterate a sorted copy or "
        "mark the loop order-insensitive with det-ok",
    ),
    Rule(
        "raw-print",
        r"\bstd::cout\b|[^\w.:>]printf\s*\(|\bfprintf\s*\(\s*stdout\b"
        r"|[^\w.:>]puts\s*\(",
        ALL_SRC,
        "raw stdout in library code; route through the logger (log.hpp) or "
        "an explicit std::ostream& parameter",
        exclude_files=("src/common/log.cpp",),
    ),
    Rule(
        "raw-ofstream",
        r"\bstd::ofstream\b|\bfopen\s*\([^)]*\"w",
        CAMPAIGN_OUTPUT_DIRS,
        "direct file write in campaign-output code; use atomic_write_file / "
        "write_csv_file_checksummed (fault.hpp) so crashes cannot tear "
        "results",
    ),
    Rule(
        # Same hazard as raw-ofstream but tree-wide: any write whose path
        # expression names a cache or journal location must be atomic.
        "raw-ofstream-cache",
        r"(\bstd::ofstream\b|\bfopen\s*\()[^;\n]*(cache|journal)",
        ALL_SRC,
        "non-atomic write into a cache/journal path; use atomic_write_file "
        "(fault.hpp)",
    ),
]

RULE_NAMES = {rule.name for rule in RULES}

MARKER_RE = re.compile(r"//\s*det-ok:\s*([\w-]+)")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:flat_)?(?:multi)?(?:map|set)\s*<[^;{}]*?>\s*"
    r"(?:&\s*)?(\w+)\s*[;={(,)]"
)


def strip_comments(lines):
    """Blank out // and /* */ comment text, preserving line structure and
    det-ok markers (returned separately per line)."""
    stripped = []
    markers = []
    in_block = False
    for line in lines:
        marker = MARKER_RE.search(line)
        markers.append(marker.group(1) if marker else None)
        out = []
        i = 0
        in_string = False
        while i < len(line):
            ch = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_string:
                out.append(ch)
                if ch == "\\":
                    out.append(nxt)
                    i += 2
                    continue
                if ch == '"':
                    in_string = False
                i += 1
                continue
            if ch == '"':
                in_string = True
                out.append(ch)
                i += 1
                continue
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            out.append(ch)
            i += 1
        stripped.append("".join(out))
    return stripped, markers


def unordered_declared_names(stripped):
    names = set()
    for line in stripped:
        for m in UNORDERED_DECL_RE.finditer(line):
            names.add(m.group(1))
    return names


def unordered_iter_hits(stripped, extra_names=()):
    """Line numbers (0-based) iterating a variable declared as an unordered
    container in the same file (or, for a .cpp, in its sibling header —
    passed via extra_names so member containers are not invisible)."""
    names = unordered_declared_names(stripped) | set(extra_names)
    if not names:
        return []
    union = "|".join(sorted(re.escape(n) for n in names))
    # Range-for over the variable, or explicit iterator walk via begin().
    loop_re = re.compile(
        r"for\s*\([^;()]*:\s*(?:" + union + r")\s*\)"
        r"|\b(?:" + union + r")\s*\.\s*c?begin\s*\(")
    return [i for i, line in enumerate(stripped) if loop_re.search(line)]


class Violation:
    def __init__(self, relpath, lineno, rule, text):
        self.relpath = relpath
        self.lineno = lineno  # 1-based
        self.rule = rule
        self.text = text

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.relpath, self.lineno, self.rule.name,
                                   self.rule.message)


def load_allowlist(path):
    """List of (rule, glob) pairs; unknown rules are an immediate error."""
    entries = []
    if not path or not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for n, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                raise SystemExit(
                    "%s:%d: expected '<rule> <glob> <reason>', got %r"
                    % (path, n, line))
            rule, glob = parts[0], parts[1]
            if rule not in RULE_NAMES:
                raise SystemExit(
                    "%s:%d: unknown rule %r (known: %s)"
                    % (path, n, rule, ", ".join(sorted(RULE_NAMES))))
            entries.append((rule, glob))
    return entries


def allowed(entries, rule_name, relpath):
    return any(rule == rule_name and fnmatch.fnmatch(relpath, glob)
               for rule, glob in entries)


def lint_file(root, relpath, allowlist):
    """Returns (violations, stale_marker_lines)."""
    try:
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        raise SystemExit("cannot read %s: %s" % (relpath, e))
    stripped, markers = strip_comments(lines)

    hits = {}  # lineno (0-based) -> set of rule names that fired
    for rule in RULES:
        if not rule.in_scope(relpath):
            continue
        if allowed(allowlist, rule.name, relpath):
            continue
        if rule.pattern is None:
            extra = ()
            stem, ext = os.path.splitext(relpath)
            if ext in (".cpp", ".cc"):
                for header_ext in (".hpp", ".h"):
                    header = os.path.join(root, stem + header_ext)
                    if os.path.exists(header):
                        with open(header, encoding="utf-8",
                                  errors="replace") as hf:
                            header_stripped, _ = strip_comments(
                                hf.read().splitlines())
                        extra = unordered_declared_names(header_stripped)
                        break
            fired = unordered_iter_hits(stripped, extra)
        else:
            fired = [i for i, line in enumerate(stripped)
                     if rule.pattern.search(line)]
        for i in fired:
            hits.setdefault(i, {})[rule.name] = rule

    violations = []
    used_markers = set()
    for i in sorted(hits):
        for name, rule in sorted(hits[i].items()):
            if markers[i] == name:
                used_markers.add(i)
                continue
            if i > 0 and markers[i - 1] == name:
                used_markers.add(i - 1)
                continue
            violations.append(Violation(relpath, i + 1, rule, lines[i]))

    stale = []
    for i, marker in enumerate(markers):
        if marker is None or i in used_markers:
            continue
        if marker not in RULE_NAMES:
            stale.append((relpath, i + 1,
                          "det-ok names unknown rule %r" % marker))
        else:
            stale.append((relpath, i + 1,
                          "stale det-ok: no %r violation on this line"
                          % marker))
    return violations, stale


SOURCE_EXTS = (".cpp", ".hpp", ".cc", ".h")


def iter_source_files(root, subdirs):
    for sub in subdirs:
        top = os.path.join(root, sub)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def run_lint(root, subdirs, allowlist_path, out=sys.stdout):
    allowlist = load_allowlist(allowlist_path)
    all_violations = []
    all_stale = []
    for relpath in iter_source_files(root, subdirs):
        violations, stale = lint_file(root, relpath, allowlist)
        all_violations.extend(violations)
        all_stale.extend(stale)
    for v in all_violations:
        print(v, file=out)
    for relpath, lineno, msg in all_stale:
        print("%s:%d: [stale-marker] %s" % (relpath, lineno, msg), file=out)
    if all_violations or all_stale:
        print("determinism lint: %d violation(s), %d stale marker(s)"
              % (len(all_violations), len(all_stale)), file=out)
        return 1
    print("determinism lint: clean (%d rule classes over %s)"
          % (len(RULES), ", ".join(subdirs)), file=out)
    return 0


# --------------------------------------------------------------------------
# Self-test: every rule class must fire on its planted fixture, and both
# suppression mechanisms must silence it.


def self_test(root):
    fixture_dir = os.path.join(root, "tools", "lint_selftest")
    if not os.path.isdir(fixture_dir):
        print("self-test: missing fixtures at %s" % fixture_dir,
              file=sys.stderr)
        return 1
    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    # Planted violations: one file per rule class under a fake src/ tree.
    planted = {
        "wall-clock": "src/sim/planted_wall_clock.cpp",
        "raw-clock": "src/sim/planted_raw_clock.cpp",
        "raw-rng": "src/core/planted_raw_rng.cpp",
        "unordered-iter": "src/exp/planted_unordered_iter.cpp",
        "raw-print": "src/policies/planted_raw_print.cpp",
        "raw-ofstream": "src/exp/planted_raw_ofstream.cpp",
        "raw-ofstream-cache": "src/common/planted_ofstream_cache.cpp",
    }
    allowlist = load_allowlist(None)
    for rule_name, relpath in planted.items():
        violations, _ = lint_file(fixture_dir, relpath, allowlist)
        names = {v.rule.name for v in violations}
        expect(rule_name in names,
               "rule %s did not fire on %s (got %s)"
               % (rule_name, relpath, sorted(names) or "nothing"))

    # Inline det-ok markers must suppress every class, with no stale-marker
    # complaints (each marker matches a real violation).
    marked = "src/exp/planted_all_marked.cpp"
    violations, stale = lint_file(fixture_dir, marked, allowlist)
    expect(not violations,
           "det-ok markers failed to suppress: %s"
           % [str(v) for v in violations])
    expect(not stale, "markers flagged stale though each suppresses: %s"
           % stale)

    # A stale marker (suppressing nothing) must itself be reported.
    violations, stale = lint_file(
        fixture_dir, "src/sim/planted_stale_marker.cpp", allowlist)
    expect(bool(stale), "stale det-ok marker was not reported")

    # The allowlist fixture must silence the same planted files.
    allow = load_allowlist(os.path.join(fixture_dir, "allowlist.txt"))
    for rule_name, relpath in planted.items():
        violations, _ = lint_file(fixture_dir, relpath, allow)
        names = {v.rule.name for v in violations}
        expect(rule_name not in names,
               "allowlist failed to suppress %s in %s" % (rule_name, relpath))

    if failures:
        for f in failures:
            print("self-test FAIL: %s" % f, file=sys.stderr)
        return 1
    print("self-test: all %d rule classes fire and both suppression "
          "mechanisms work" % len(planted))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    parser.add_argument("--paths", nargs="*", default=["src"],
                        help="subtrees to lint, relative to --root")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "tools/determinism_allowlist.txt under --root)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on the planted "
                             "fixtures, then exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(args.root)
    allowlist = args.allowlist
    if allowlist is None:
        allowlist = os.path.join(args.root, "tools",
                                 "determinism_allowlist.txt")
    return run_lint(args.root, args.paths, allowlist)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
