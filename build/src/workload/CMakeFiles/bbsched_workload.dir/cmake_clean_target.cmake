file(REMOVE_RECURSE
  "libbbsched_workload.a"
)
