// monitor.hpp — campaign self-monitoring (DESIGN.md §11).
//
// A CampaignMonitor watches a running grid campaign from a low-overhead
// sampler thread: every sample period it records process RSS, simulation
// events/sec, cells done/total and an ETA as metrics-registry gauges and as
// a "campaign" Perfetto counter lane, and — when progress_enabled() — prints
// a one-line [progress] heartbeat to stderr.  The workers only touch two
// relaxed atomics (cell/event counts); everything else lives on the sampler
// thread, so monitoring never perturbs the campaign being measured.
//
// Heartbeats are guaranteed at start() and stop() even if the campaign
// finishes before the first sampler tick, and stop() prints an end-of-run
// summary table (cells, events, peak RSS, throughput) when progress is on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>

namespace bbsched {

/// Current resident-set size of this process in MiB; 0 where unsupported
/// (non-Linux, or /proc unavailable).
double process_rss_mb();

class CampaignMonitor {
 public:
  /// `label` names the campaign in heartbeats and the trace lane;
  /// `cells_total` sizes the progress fraction and the ETA.
  CampaignMonitor(std::string label, std::size_t cells_total,
                  double sample_period_s = 1.0);
  ~CampaignMonitor();  ///< stops the sampler if still running

  CampaignMonitor(const CampaignMonitor&) = delete;
  CampaignMonitor& operator=(const CampaignMonitor&) = delete;

  /// Launch the sampler thread and print the initial heartbeat.
  void start();
  /// Stop sampling, print the final heartbeat and the summary table.
  /// Idempotent.
  void stop();

  /// One grid cell finished (worker threads; lock-free).
  void cell_done() { cells_done_.fetch_add(1, std::memory_order_relaxed); }
  /// `n` simulation events occurred (worker threads; lock-free).
  void add_events(std::size_t n) {
    events_.fetch_add(n, std::memory_order_relaxed);
  }
  /// `n` cells were recovered from the campaign journal instead of re-run.
  void add_resumed(std::size_t n) {
    cells_resumed_.fetch_add(n, std::memory_order_relaxed);
    cells_done_.fetch_add(n, std::memory_order_relaxed);
  }
  /// One failed cell attempt is being retried (worker threads; lock-free).
  void cell_retried() { retries_.fetch_add(1, std::memory_order_relaxed); }
  /// One cell exhausted its retries and was quarantined.
  void cell_quarantined() {
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    cells_done_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Per-cell timings feeding the summary averages: `cell_wall_s` is the
  /// cell's wall clock, `mean_solve_s` its mean per-window solve time
  /// (worker threads; lock-free).  Resumed cells count too — their stored
  /// timings are from the run that computed them.
  void add_cell_stats(double cell_wall_s, double mean_solve_s) {
    atomic_add(cell_wall_sum_s_, cell_wall_s);
    atomic_add(solve_sum_s_, mean_solve_s);
    cell_stats_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t cells_done() const {
    return cells_done_.load(std::memory_order_relaxed);
  }
  std::size_t events() const {
    return events_.load(std::memory_order_relaxed);
  }
  std::size_t cells_resumed() const {
    return cells_resumed_.load(std::memory_order_relaxed);
  }
  std::size_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  std::size_t quarantined() const {
    return quarantined_.load(std::memory_order_relaxed);
  }
  std::size_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }
  double peak_rss_mb() const {
    return peak_rss_mb_.load(std::memory_order_relaxed);
  }
  /// Mean cell wall time over cells reported via add_cell_stats; 0 if none.
  double avg_cell_seconds() const {
    const auto n = cell_stats_.load(std::memory_order_relaxed);
    return n > 0 ? cell_wall_sum_s_.load(std::memory_order_relaxed) /
                       static_cast<double>(n)
                 : 0.0;
  }
  /// Mean of the cells' mean per-window solve times; 0 if none reported.
  double avg_solve_seconds() const {
    const auto n = cell_stats_.load(std::memory_order_relaxed);
    return n > 0 ? solve_sum_s_.load(std::memory_order_relaxed) /
                       static_cast<double>(n)
                 : 0.0;
  }

 private:
  static void atomic_add(std::atomic<double>& target, double value) {
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + value,
                                         std::memory_order_relaxed)) {
    }
  }

  void sampler_loop();
  /// Record one sample (gauges + trace counters) and optionally heartbeat.
  void sample(bool heartbeat);

  std::string label_;
  std::size_t cells_total_;
  double sample_period_s_;

  std::atomic<std::size_t> cells_done_{0};
  std::atomic<std::size_t> events_{0};
  std::atomic<std::size_t> cells_resumed_{0};
  std::atomic<std::size_t> retries_{0};
  std::atomic<std::size_t> quarantined_{0};
  std::atomic<std::size_t> samples_{0};
  std::atomic<double> peak_rss_mb_{0.0};
  std::atomic<std::size_t> cell_stats_{0};
  std::atomic<double> cell_wall_sum_s_{0.0};
  std::atomic<double> solve_sum_s_{0.0};
  std::size_t last_events_ = 0;    ///< sampler-thread only
  double last_sample_s_ = 0;       ///< sampler-thread only
  double start_s_ = 0;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread sampler_;
};

}  // namespace bbsched
