file(REMOVE_RECURSE
  "../bench/bench_table3_window_size"
  "../bench/bench_table3_window_size.pdb"
  "CMakeFiles/bench_table3_window_size.dir/bench_table3_window_size.cpp.o"
  "CMakeFiles/bench_table3_window_size.dir/bench_table3_window_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_window_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
