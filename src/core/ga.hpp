// ga.hpp — the multi-objective genetic solver of §3.2.2.
//
// The solver maintains a population of P feasible chromosomes and evolves it
// for G generations.  Each generation:
//   1. P children are produced by crossover of random parent pairs and
//      per-gene mutation with probability p_m,
//   2. parents and children are pooled and split into Set 1 (the pool's
//      non-dominated solutions) and Set 2 (the rest),
//   3. the next generation carries over Set 1 first, then Set 2, truncating
//      to P; "newer chromosomes have higher priorities", i.e. lower age wins
//      ties,
//   4. the survivors' ages are incremented.
// After G generations the non-dominated members of the final population form
// the returned (approximate) Pareto set.
//
// Duplicate gene vectors are collapsed when building the next generation; the
// paper does not discuss duplicates, and collapsing prevents a single strong
// chromosome from flooding the fixed-size population (see DESIGN.md §5 and
// the ablation bench).
#pragma once

#include <vector>

#include "core/ga_ops.hpp"
#include "core/pareto.hpp"
#include "core/problem.hpp"

namespace bbsched {

/// Result of one multi-objective solve.
struct MooResult {
  /// Non-dominated chromosomes of the final generation, deduplicated by gene
  /// vector, in no particular order.
  std::vector<Chromosome> pareto_set;
  /// Generations actually run.
  int generations = 0;
  /// Total chromosome evaluations performed (population init + children).
  std::size_t evaluations = 0;
  /// Chromosomes that entered MooProblem::repair infeasible (init +
  /// children) — the feasibility-pressure convergence signal of DESIGN.md
  /// §11: a high rate means the operators fight the capacity constraints.
  std::size_t repairs = 0;
  /// Wall-clock of the whole solve (init through final front extraction).
  double solve_seconds = 0;

  /// Mean wall-clock per generation — the per-decision budget unit the
  /// 15-30 s response requirement (§4.4) is spent in.
  double mean_generation_seconds() const {
    return generations > 0 ? solve_seconds / generations : 0.0;
  }
};

/// Multi-objective genetic solver.  Stateless apart from parameters: each
/// solve() call owns its RNG stream, seeded from params.seed, so repeated
/// calls with the same problem and seed are identical.
class MooGaSolver {
 public:
  explicit MooGaSolver(GaParams params);

  /// Approximate the Pareto set of `problem`.
  MooResult solve(const MooProblem& problem) const;

  /// As solve(), but use an externally managed RNG (the simulator advances
  /// one stream across many scheduling invocations).
  MooResult solve(const MooProblem& problem, Rng& rng) const;

  const GaParams& params() const { return params_; }

 private:
  GaParams params_;
};

/// Build the next generation from the pooled parents+children per §3.2.2:
/// Pareto members first, then the rest, newest (lowest age) first within each
/// set, optionally deduplicated by genes, truncated to `target_size`.
/// Exposed for unit testing.
std::vector<Chromosome> select_next_generation(std::vector<Chromosome> pool,
                                               std::size_t target_size,
                                               bool dedupe = true);

}  // namespace bbsched
