#include "metrics/schedule_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bbsched {
namespace {

MachineConfig machine() {
  MachineConfig m;
  m.name = "m";
  m.nodes = 10;
  m.burst_buffer_gb = 100;
  return m;
}

JobOutcome outcome(Time submit, Time start, Time runtime, NodeCount nodes,
                   GigaBytes bb = 0) {
  JobOutcome o;
  o.submit = submit;
  o.start = start;
  o.end = start + runtime;
  o.runtime = runtime;
  o.walltime = runtime;
  o.nodes = nodes;
  o.bb_gb = bb;
  return o;
}

SimResult result_with(std::vector<JobOutcome> outcomes, Time begin, Time end,
                      MachineConfig m = machine()) {
  SimResult r;
  r.machine = std::move(m);
  r.outcomes = std::move(outcomes);
  r.measure_begin = begin;
  r.measure_end = end;
  return r;
}

TEST(IntervalOverlap, Basics) {
  EXPECT_DOUBLE_EQ(interval_overlap(0, 10, 5, 20), 5);
  EXPECT_DOUBLE_EQ(interval_overlap(0, 10, 20, 30), 0);
  EXPECT_DOUBLE_EQ(interval_overlap(5, 8, 0, 100), 3);
  EXPECT_DOUBLE_EQ(interval_overlap(0, 10, 10, 20), 0);
}

TEST(Metrics, NodeUsageFullInterval) {
  // One job using all 10 nodes for the whole interval.
  auto r = result_with({outcome(0, 0, 100, 10)}, 0, 100);
  const auto m = compute_metrics(r);
  EXPECT_DOUBLE_EQ(m.node_usage, 1.0);
}

TEST(Metrics, NodeUsagePartialOverlap) {
  // 5 nodes for the first half of the interval: 25 % of node-hours.
  auto r = result_with({outcome(0, 0, 50, 5)}, 0, 100);
  EXPECT_DOUBLE_EQ(compute_metrics(r).node_usage, 0.25);
}

TEST(Metrics, UsageClipsOutsideInterval) {
  // Runs from -50 to 50 against interval [0, 100]: only 50 s count.
  auto r = result_with({outcome(0, 0, 100, 10)}, 50, 150);
  EXPECT_DOUBLE_EQ(compute_metrics(r).node_usage, 0.5);
}

TEST(Metrics, BbUsageAgainstSchedulablePool) {
  MachineConfig m = machine();
  m.persistent_bb_fraction = 0.5;  // schedulable: 50 GB
  auto r = result_with({outcome(0, 0, 100, 1, 25)}, 0, 100, m);
  EXPECT_DOUBLE_EQ(compute_metrics(r).bb_usage, 0.5);
}

TEST(Metrics, WaitAndSlowdownOverMeasuredJobs) {
  auto r = result_with(
      {
          outcome(0, 100, 100, 1),   // wait 100, slowdown 2
          outcome(50, 50, 100, 1),   // wait 0, slowdown 1
          outcome(500, 500, 100, 1)  // submitted after measure_end: excluded
      },
      0, 200);
  const auto m = compute_metrics(r);
  EXPECT_EQ(m.jobs_measured, 2u);
  EXPECT_DOUBLE_EQ(m.avg_wait, 50.0);
  EXPECT_DOUBLE_EQ(m.avg_slowdown, 1.5);
}

TEST(Metrics, SlowdownFiltersAbnormalShortJobs) {
  MetricsConfig config;
  config.slowdown_min_runtime = 60;
  auto r = result_with(
      {
          outcome(0, 1000, 10, 1),  // 10 s "abnormal" job, huge slowdown
          outcome(0, 100, 100, 1),  // slowdown 2
      },
      0, 2000);
  const auto m = compute_metrics(r, config);
  EXPECT_DOUBLE_EQ(m.avg_slowdown, 2.0)
      << "short job must be excluded from slowdown but kept in wait";
  EXPECT_DOUBLE_EQ(m.avg_wait, 550.0);
}

TEST(Metrics, EmptyIntervalYieldsZeros) {
  auto r = result_with({outcome(0, 0, 100, 10)}, 100, 100);
  const auto m = compute_metrics(r);
  EXPECT_DOUBLE_EQ(m.node_usage, 0.0);
  EXPECT_EQ(m.jobs_measured, 0u);
}

// Pinned zero-value conventions (schedule_metrics.hpp): degenerate inputs
// yield exact zeros, never NaN or garbage.

TEST(Metrics, InvertedIntervalYieldsAllZeros) {
  auto r = result_with({outcome(0, 0, 100, 10)}, 200, 100);
  const auto m = compute_metrics(r);
  EXPECT_DOUBLE_EQ(m.node_usage, 0.0);
  EXPECT_DOUBLE_EQ(m.bb_usage, 0.0);
  EXPECT_DOUBLE_EQ(m.ssd_usage, 0.0);
  EXPECT_DOUBLE_EQ(m.ssd_waste, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_slowdown, 0.0);
  EXPECT_DOUBLE_EQ(m.p95_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.max_wait, 0.0);
  EXPECT_EQ(m.jobs_measured, 0u);
  EXPECT_EQ(m.jobs_backfilled, 0u);
}

TEST(Metrics, NoJobsInsideIntervalYieldsZeroWaitMetricsNotNaN) {
  // Jobs exist but all submit after measure_end: usage still integrates
  // nothing, and every per-job average must be an exact 0, not 0/0.
  auto r = result_with({outcome(500, 600, 100, 1), outcome(700, 800, 50, 2)},
                       0, 200);
  const auto m = compute_metrics(r);
  EXPECT_EQ(m.jobs_measured, 0u);
  EXPECT_DOUBLE_EQ(m.avg_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_slowdown, 0.0);
  EXPECT_DOUBLE_EQ(m.p95_wait, 0.0);
  EXPECT_DOUBLE_EQ(m.max_wait, 0.0);
  EXPECT_FALSE(std::isnan(m.avg_wait));
  EXPECT_FALSE(std::isnan(m.avg_slowdown));
}

TEST(Metrics, AllJobsFilteredFromSlowdownYieldsZeroSlowdown) {
  MetricsConfig config;
  config.slowdown_min_runtime = 60;
  // Every job is shorter than the abnormal-job threshold: slowdown has no
  // population and must be 0 while the wait metrics stay fully populated.
  auto r = result_with({outcome(0, 100, 10, 1), outcome(0, 300, 5, 1)},
                       0, 1000, machine());
  const auto m = compute_metrics(r, config);
  EXPECT_EQ(m.jobs_measured, 2u);
  EXPECT_DOUBLE_EQ(m.avg_slowdown, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_wait, 200.0);
  EXPECT_DOUBLE_EQ(m.max_wait, 300.0);
}

TEST(Metrics, MissingResourcesYieldZeroRatios) {
  MachineConfig m = machine();
  m.burst_buffer_gb = 0;  // no BB pool, no SSD tiers
  auto r = result_with({outcome(0, 0, 100, 1, 50)}, 0, 100, m);
  const auto metrics = compute_metrics(r);
  EXPECT_DOUBLE_EQ(metrics.bb_usage, 0.0);
  EXPECT_DOUBLE_EQ(metrics.ssd_usage, 0.0);
  EXPECT_DOUBLE_EQ(metrics.ssd_waste, 0.0);
  EXPECT_FALSE(std::isnan(metrics.bb_usage));
}

TEST(Metrics, P95AndMaxWait) {
  std::vector<JobOutcome> outcomes;
  for (int i = 0; i < 100; ++i) {
    outcomes.push_back(outcome(0, i, 100, 1));
  }
  auto r = result_with(std::move(outcomes), 0, 1000);
  const auto m = compute_metrics(r);
  EXPECT_DOUBLE_EQ(m.max_wait, 99.0);
  // p95 is a QuantileSketch estimate: within 1 % relative error of the
  // order statistics straddling rank 0.95 * 99 (values 94 and 95).
  EXPECT_NEAR(m.p95_wait, 94.5, 94.5 * 0.01 + 0.5);
}

TEST(Metrics, SsdUsageAndWaste) {
  MachineConfig m = machine();
  m.small_ssd_nodes = 5;
  m.large_ssd_nodes = 5;
  m.small_ssd_gb = 128;
  m.large_ssd_gb = 256;
  // Job on 2 small + 1 large node at 100 GB/node for the whole interval.
  JobOutcome o = outcome(0, 0, 100, 3);
  o.ssd_per_node_gb = 100;
  o.small_tier_nodes = 2;
  o.large_tier_nodes = 1;
  auto r = result_with({o}, 0, 100, m);
  const auto metrics = compute_metrics(r);
  const double capacity = 5 * 128.0 + 5 * 256.0;
  EXPECT_DOUBLE_EQ(metrics.ssd_usage, 300.0 / capacity);
  EXPECT_DOUBLE_EQ(metrics.ssd_waste, (2 * 28.0 + 156.0) / capacity);
}

TEST(Metrics, WastedSsdHelperZeroWithoutTiers) {
  JobOutcome o = outcome(0, 0, 100, 3);
  o.ssd_per_node_gb = 100;
  EXPECT_DOUBLE_EQ(wasted_ssd_gb(o, machine()), 0.0);
}

TEST(Metrics, BackfilledCounting) {
  auto a = outcome(0, 0, 10, 1);
  a.backfilled = true;
  auto r = result_with({a, outcome(0, 0, 10, 1)}, 0, 100);
  EXPECT_EQ(compute_metrics(r).jobs_backfilled, 1u);
}

}  // namespace
}  // namespace bbsched
