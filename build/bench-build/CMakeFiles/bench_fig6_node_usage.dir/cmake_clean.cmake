file(REMOVE_RECURSE
  "../bench/bench_fig6_node_usage"
  "../bench/bench_fig6_node_usage.pdb"
  "CMakeFiles/bench_fig6_node_usage.dir/bench_fig6_node_usage.cpp.o"
  "CMakeFiles/bench_fig6_node_usage.dir/bench_fig6_node_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_node_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
