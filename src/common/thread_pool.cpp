#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "common/env.hpp"

namespace bbsched {

namespace {

/// Set while a pool worker executes a job; nested parallel_for calls on the
/// same thread degrade to inline loops instead of re-entering the queue.
thread_local bool t_inside_worker = false;

}  // namespace

/// Shared state of one parallel_for call.  Indices are claimed through
/// `next`; `done` counts finished (or skipped-after-failure) indices, and
/// the caller waits until done == n.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr exception;
  std::mutex mutex;              // guards `exception` and completion wakeup
  std::condition_variable complete;
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

void ThreadPool::run_batch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    if (!batch.failed.load(std::memory_order_relaxed)) {
      try {
        (*batch.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.mutex);
        if (!batch.exception) batch.exception = std::current_exception();
        batch.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.n) {
      std::lock_guard<std::mutex> lock(batch.mutex);
      batch.complete.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty() || t_inside_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  // One queue entry per worker that can usefully help; each entry loops over
  // the shared cursor, so an entry scheduled after the batch drained is a
  // cheap no-op.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.push([batch] { run_batch(*batch); });
    }
  }
  cv_.notify_all();

  run_batch(*batch);
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->complete.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == n;
  });
  if (batch->exception) std::rethrow_exception(batch->exception);
}

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mutex;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    const auto env = env_int("BBSCHED_THREADS", 0);
    g_pool = std::make_unique<ThreadPool>(
        resolve_threads(env > 0 ? static_cast<std::size_t>(env) : 0));
  }
  return *g_pool;
}

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(resolve_threads(threads));
}

std::size_t global_threads() { return global_pool().num_threads(); }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  global_pool().parallel_for(n, fn);
}

}  // namespace bbsched
