// breakdown.hpp — per-category wait-time breakdowns (Figures 9, 10, 11).
//
// The paper explains *where* BBSched's gains come from by splitting average
// wait time by job size, by burst-buffer request and by runtime.  A
// Breakdown is a labelled partition of the measured jobs; bins with no jobs
// report a zero average and a zero count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/sim_result.hpp"

namespace bbsched {

/// One labelled bin of a breakdown.
struct BreakdownBin {
  std::string label;
  double avg_wait = 0;       ///< seconds
  double avg_slowdown = 0;
  std::size_t count = 0;
};

/// Assigns a measured job to a bin index (or size() for "unbinned").
using BinAssigner = std::function<std::size_t(const JobOutcome&)>;

/// Generic breakdown over jobs submitted inside the measurement interval.
std::vector<BreakdownBin> breakdown_wait(const SimResult& result,
                                         std::vector<std::string> labels,
                                         const BinAssigner& assign);

/// Figure 9 bins: job size in nodes — 1-8, 9-128, 129-1024, 1024+ by
/// default; custom edges supported (edges are inclusive upper bounds).
std::vector<BreakdownBin> breakdown_by_job_size(
    const SimResult& result,
    const std::vector<NodeCount>& upper_bounds = {8, 128, 1024});

/// Figure 10 bins: burst-buffer request — none, then (0, edge1], ... with
/// TB-valued inclusive upper bounds, final bin unbounded.
std::vector<BreakdownBin> breakdown_by_bb_request(
    const SimResult& result,
    const std::vector<double>& upper_bounds_tb = {1, 100, 200});

/// Figure 11 bins: runtime with inclusive hour-valued upper bounds, final
/// bin unbounded.
std::vector<BreakdownBin> breakdown_by_runtime(
    const SimResult& result,
    const std::vector<double>& upper_bounds_h = {1, 4, 12});

}  // namespace bbsched
