#include "core/nsga2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hpp"
#include "core/exhaustive.hpp"
#include "core/multi_resource_problem.hpp"

namespace bbsched {
namespace {

MultiResourceProblem table1_problem() {
  const std::vector<double> nodes{80, 10, 40, 10, 20};
  const std::vector<double> bb{20, 85, 5, 0, 0};
  return MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
}

TEST(NonDominatedSort, LayersByDomination) {
  const Front points{{3, 3}, {1, 1}, {2, 4}, {2, 2}, {0, 0}};
  const auto fronts = non_dominated_sort(points);
  ASSERT_EQ(fronts.size(), 4u);
  EXPECT_EQ(fronts[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(fronts[1], (std::vector<std::size_t>{3}));
  EXPECT_EQ(fronts[2], (std::vector<std::size_t>{1}));
  EXPECT_EQ(fronts[3], (std::vector<std::size_t>{4}));
}

TEST(NonDominatedSort, AllIncomparableIsOneFront) {
  const Front points{{1, 3}, {2, 2}, {3, 1}};
  const auto fronts = non_dominated_sort(points);
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0].size(), 3u);
}

TEST(NonDominatedSort, EmptyInput) {
  EXPECT_TRUE(non_dominated_sort({}).empty());
}

TEST(CrowdingDistance, BoundariesAreInfinite) {
  const Front front{{0, 3}, {1, 2}, {2, 1}, {3, 0}};
  const auto dist = crowding_distances(front);
  EXPECT_TRUE(std::isinf(dist[0]));
  EXPECT_TRUE(std::isinf(dist[3]));
  EXPECT_FALSE(std::isinf(dist[1]));
  // Interior symmetric points have equal crowding.
  EXPECT_DOUBLE_EQ(dist[1], dist[2]);
}

TEST(CrowdingDistance, TinyFrontsAllInfinite) {
  const auto one = crowding_distances({{1, 1}});
  EXPECT_TRUE(std::isinf(one[0]));
  const auto two = crowding_distances({{1, 2}, {2, 1}});
  EXPECT_TRUE(std::isinf(two[0]));
  EXPECT_TRUE(std::isinf(two[1]));
}

TEST(CrowdingDistance, SparseRegionsScoreHigher) {
  // Points at f0 = 0, 1, 2, 9, 10: the point at 2 sits next to a gap.
  const Front front{{0, 10}, {1, 9}, {2, 8}, {9, 1}, {10, 0}};
  const auto dist = crowding_distances(front);
  EXPECT_GT(dist[2], dist[1]);
  EXPECT_GT(dist[3], dist[1]);
}

GaParams small_params() {
  GaParams p;
  p.generations = 120;
  p.population_size = 16;
  p.mutation_rate = 0.01;
  p.seed = 5;
  return p;
}

TEST(Nsga2, FindsTable1Front) {
  const auto problem = table1_problem();
  const auto result = Nsga2Solver(small_params()).solve(problem);
  bool found_s2 = false, found_s3 = false;
  for (const auto& c : result.pareto_set) {
    if (c.genes == Genes{1, 0, 0, 0, 1}) found_s2 = true;
    if (c.genes == Genes{0, 1, 1, 1, 1}) found_s3 = true;
  }
  EXPECT_TRUE(found_s2);
  EXPECT_TRUE(found_s3);
}

TEST(Nsga2, FrontFeasibleAndNonDominated) {
  const auto problem = table1_problem();
  const auto result = Nsga2Solver(small_params()).solve(problem);
  for (const auto& c : result.pareto_set) {
    EXPECT_TRUE(problem.feasible(c.genes));
  }
  for (std::size_t i = 0; i < result.pareto_set.size(); ++i) {
    for (std::size_t j = 0; j < result.pareto_set.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(dominates(result.pareto_set[i].objectives,
                               result.pareto_set[j].objectives));
      }
    }
  }
}

TEST(Nsga2, DeterministicUnderSeed) {
  const auto problem = table1_problem();
  const Nsga2Solver solver(small_params());
  const auto a = solver.solve(problem);
  const auto b = solver.solve(problem);
  ASSERT_EQ(a.pareto_set.size(), b.pareto_set.size());
  for (std::size_t i = 0; i < a.pareto_set.size(); ++i) {
    EXPECT_EQ(a.pareto_set[i].genes, b.pareto_set[i].genes);
  }
}

TEST(Nsga2, RespectsPins) {
  auto problem = table1_problem();
  problem.pin(2);
  const auto result = Nsga2Solver(small_params()).solve(problem);
  ASSERT_FALSE(result.pareto_set.empty());
  for (const auto& c : result.pareto_set) EXPECT_EQ(c.genes[2], 1);
}

// Quality sweep: NSGA-II must approach the exhaustive truth at least as well
// as the tolerance used for the paper's solver.
class Nsga2VsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Nsga2VsExhaustive, LowGenerationalDistance) {
  Rng rng(GetParam() + 400);
  const std::size_t w = 10;
  std::vector<double> nodes(w), bb(w);
  for (std::size_t i = 0; i < w; ++i) {
    nodes[i] = static_cast<double>(rng.uniform_int(1, 40));
    bb[i] = rng.bernoulli(0.5) ? rng.uniform(0.0, 50.0) : 0.0;
  }
  const auto problem = MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
  const auto truth = ExhaustiveSolver().solve(problem);
  GaParams params = small_params();
  params.generations = 600;
  params.population_size = 24;
  params.mutation_rate = 0.02;
  params.seed = GetParam() * 3 + 1;
  const auto approx = Nsga2Solver(params).solve(problem);
  Front approx_front, truth_front;
  for (const auto& c : approx.pareto_set) approx_front.push_back(c.objectives);
  for (const auto& c : truth.pareto_set) truth_front.push_back(c.objectives);
  // Without the survivor deduplication of the paper's rule, NSGA-II keeps
  // duplicate genotypes; on degenerate (near-single-point) true fronts it
  // can stall on a locally non-dominated triple several Hamming steps from
  // the optimum, so the bar is looser than the paper-GA sweep's 0.08 — the
  // comparison itself is the point (see bench_ablation_solver).
  EXPECT_LT(generational_distance(approx_front, truth_front), 0.2);
}

INSTANTIATE_TEST_SUITE_P(RandomWindows, Nsga2VsExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5));

// Property suite on random windows of <= 12 jobs, where exhaustive
// enumeration (2^w points) is cheap enough to serve as ground truth.
class Nsga2Invariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static MultiResourceProblem random_problem(std::uint64_t seed) {
    Rng rng(seed * 977 + 13);
    const std::size_t w = 6 + seed % 7;  // 6..12 jobs
    std::vector<double> nodes(w), bb(w);
    for (std::size_t i = 0; i < w; ++i) {
      nodes[i] = static_cast<double>(rng.uniform_int(1, 40));
      bb[i] = rng.bernoulli(0.6) ? rng.uniform(0.0, 60.0) : 0.0;
    }
    return MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
  }

  static GaParams generous_params(std::uint64_t seed) {
    GaParams p;
    p.generations = 800;
    p.population_size = 32;
    p.mutation_rate = 0.02;
    p.seed = seed * 7 + 3;
    return p;
  }
};

TEST_P(Nsga2Invariants, FrontIsFeasibleAndMutuallyNonDominated) {
  const auto problem = random_problem(GetParam());
  const auto result = Nsga2Solver(generous_params(GetParam())).solve(problem);
  ASSERT_FALSE(result.pareto_set.empty());
  for (const auto& c : result.pareto_set) {
    EXPECT_TRUE(problem.feasible(c.genes));
  }
  for (std::size_t i = 0; i < result.pareto_set.size(); ++i) {
    for (std::size_t j = 0; j < result.pareto_set.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(result.pareto_set[i].objectives,
                             result.pareto_set[j].objectives))
          << "front members " << i << " and " << j << " not incomparable";
    }
  }
}

TEST_P(Nsga2Invariants, AgreesWithExhaustiveTruth) {
  const auto problem = random_problem(GetParam());
  const auto truth = ExhaustiveSolver().solve(problem);
  const auto approx =
      Nsga2Solver(generous_params(GetParam())).solve(problem);
  ASSERT_FALSE(truth.pareto_set.empty());
  for (const auto& t : truth.pareto_set) {
    for (const auto& a : approx.pareto_set) {
      // Soundness of the exhaustive front: nothing feasible — including
      // anything NSGA-II returns — may dominate a true Pareto point.
      EXPECT_FALSE(dominates(a.objectives, t.objectives))
          << "NSGA-II point dominates an 'exhaustive' Pareto point";
      // Convergence on these windows: at <= 12 jobs and generous budget the
      // returned front must have reached true Pareto quality, so no truth
      // point may dominate any returned point.
      EXPECT_FALSE(dominates(t.objectives, a.objectives))
          << "true Pareto point dominates an NSGA-II point";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWindows, Nsga2Invariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Nsga2, BitIdenticalAcrossThreadCounts) {
  // Fitness evaluation fans out over the global pool but genetic operators
  // (the only RNG consumers) stay on the driver thread, so the evolution
  // trajectory — and therefore the front — cannot depend on thread count.
  const auto problem = table1_problem();
  const Nsga2Solver solver(small_params());
  set_global_threads(1);
  const auto reference = solver.solve(problem);
  for (const std::size_t threads : {2u, 8u}) {
    set_global_threads(threads);
    const auto replay = solver.solve(problem);
    ASSERT_EQ(reference.pareto_set.size(), replay.pareto_set.size())
        << "at " << threads << " threads";
    for (std::size_t i = 0; i < reference.pareto_set.size(); ++i) {
      EXPECT_EQ(reference.pareto_set[i].genes, replay.pareto_set[i].genes);
      EXPECT_EQ(reference.pareto_set[i].objectives,
                replay.pareto_set[i].objectives);
    }
    EXPECT_EQ(reference.evaluations, replay.evaluations);
    EXPECT_EQ(reference.generations, replay.generations);
  }
  set_global_threads(0);
}

}  // namespace
}  // namespace bbsched
