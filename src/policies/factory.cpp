#include "policies/factory.hpp"

#include <stdexcept>

#include "policies/bbsched_policy.hpp"
#include "policies/bin_packing.hpp"
#include "policies/naive.hpp"
#include "policies/scalarized.hpp"

namespace bbsched {

std::vector<std::string> standard_method_names() {
  return {"Baseline",        "Weighted",       "Weighted_CPU",
          "Weighted_BB",     "Constrained_CPU", "Constrained_BB",
          "Bin_Packing",     "BBSched"};
}

std::vector<std::string> ssd_method_names() {
  return {"Baseline",        "Weighted",        "Constrained_CPU",
          "Constrained_BB",  "Constrained_SSD", "Bin_Packing",
          "BBSched"};
}

std::unique_ptr<SelectionPolicy> make_policy(const std::string& name,
                                             const GaParams& params) {
  if (name == "Baseline") return std::make_unique<NaivePolicy>();
  if (name == "Bin_Packing") return std::make_unique<BinPackingPolicy>();
  if (name == "BBSched") return std::make_unique<BBSchedPolicy>(params);
  if (name == "Weighted") {
    return std::make_unique<ScalarizedPolicy>(name, WeightSpec::equal(),
                                              params);
  }
  if (name == "Weighted_CPU") {
    // §4.3: node utilization 80 %, burst-buffer utilization 20 %.
    return std::make_unique<ScalarizedPolicy>(
        name, WeightSpec::fixed_weights({0.8, 0.2}), params);
  }
  if (name == "Weighted_BB") {
    return std::make_unique<ScalarizedPolicy>(
        name, WeightSpec::fixed_weights({0.2, 0.8}), params);
  }
  if (name == "Constrained_CPU") {
    return std::make_unique<ScalarizedPolicy>(name, WeightSpec::only(0),
                                              params);
  }
  if (name == "Constrained_BB") {
    return std::make_unique<ScalarizedPolicy>(name, WeightSpec::only(1),
                                              params);
  }
  if (name == "Constrained_SSD") {
    return std::make_unique<ScalarizedPolicy>(name, WeightSpec::only(2),
                                              params);
  }
  throw std::invalid_argument("unknown scheduling method: " + name);
}

}  // namespace bbsched
