#include "core/adaptive_decision.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

Chromosome make(Genes genes, std::vector<double> objectives) {
  Chromosome c;
  c.genes = std::move(genes);
  c.objectives = std::move(objectives);
  return c;
}

// A Pareto set with a node-heavy and a BB-heavy solution where the static
// 2x rule keeps the node-heavy one (gain 0.30 < 2 * loss 0.20).
std::vector<Chromosome> borderline_set() {
  return {make({1, 0}, {1.00, 0.20}), make({0, 1}, {0.80, 0.50})};
}

TEST(AdaptiveRule, StartsLikeStaticRule) {
  const AdaptiveTradeoffRule rule;
  EXPECT_DOUBLE_EQ(rule.factor(), 2.0);
  EXPECT_EQ(rule.choose(borderline_set()), 0u);
}

TEST(AdaptiveRule, FactorDropsWhenBbLags) {
  AdaptiveTradeoffRule::Params params;
  params.ewma_alpha = 1.0;  // react immediately for the test
  const AdaptiveTradeoffRule rule(params);
  // Committing the node-heavy (1.00, 0.20) solution leaves BB lagging;
  // repeated decisions must lower the factor until the BB-heavy trade
  // qualifies (needs factor < gain/loss = 0.30/0.20 = 1.5).
  std::size_t choice = 0;
  for (int i = 0; i < 12 && choice == 0; ++i) {
    choice = rule.choose(borderline_set());
  }
  EXPECT_EQ(choice, 1u) << "adaptation never unlocked the BB trade";
  EXPECT_LT(rule.factor(), 2.0);
}

TEST(AdaptiveRule, FactorRisesWhenBbLeads) {
  AdaptiveTradeoffRule::Params params;
  params.ewma_alpha = 1.0;
  const AdaptiveTradeoffRule rule(params);
  // A set whose preferred solution is BB-rich: gap < -deadband each time.
  const auto set = std::vector<Chromosome>{make({1}, {0.30, 0.90})};
  const double before = rule.factor();
  for (int i = 0; i < 5; ++i) (void)rule.choose(set);
  EXPECT_GT(rule.factor(), before);
}

TEST(AdaptiveRule, FactorClampedToBounds) {
  AdaptiveTradeoffRule::Params params;
  params.ewma_alpha = 1.0;
  params.min_factor = 1.0;
  params.max_factor = 3.0;
  const AdaptiveTradeoffRule rule(params);
  const auto bb_rich = std::vector<Chromosome>{make({1}, {0.10, 0.90})};
  for (int i = 0; i < 100; ++i) (void)rule.choose(bb_rich);
  EXPECT_LE(rule.factor(), 3.0);
  const auto node_rich = std::vector<Chromosome>{make({1}, {0.90, 0.10})};
  for (int i = 0; i < 200; ++i) (void)rule.choose(node_rich);
  EXPECT_GE(rule.factor(), 1.0);
}

TEST(AdaptiveRule, DeadbandFreezesFactor) {
  AdaptiveTradeoffRule::Params params;
  params.ewma_alpha = 1.0;
  params.gap_deadband = 0.2;
  const AdaptiveTradeoffRule rule(params);
  const auto balanced = std::vector<Chromosome>{make({1}, {0.50, 0.45})};
  const double before = rule.factor();
  for (int i = 0; i < 10; ++i) (void)rule.choose(balanced);
  EXPECT_DOUBLE_EQ(rule.factor(), before);
}

TEST(AdaptiveRule, EwmaTracksCommittedSolutions) {
  AdaptiveTradeoffRule::Params params;
  params.ewma_alpha = 0.5;
  const AdaptiveTradeoffRule rule(params);
  const auto set = std::vector<Chromosome>{make({1}, {0.8, 0.4})};
  (void)rule.choose(set);
  EXPECT_DOUBLE_EQ(rule.ewma_node(), 0.8);  // primed directly
  (void)rule.choose(set);
  EXPECT_DOUBLE_EQ(rule.ewma_node(), 0.8);
  EXPECT_DOUBLE_EQ(rule.ewma_bb(), 0.4);
}

TEST(AdaptiveRule, RejectsBadParams) {
  AdaptiveTradeoffRule::Params params;
  params.ewma_alpha = 0;
  EXPECT_THROW(AdaptiveTradeoffRule{params}, std::invalid_argument);
  params = {};
  params.adjust_step = 1.0;
  EXPECT_THROW(AdaptiveTradeoffRule{params}, std::invalid_argument);
  params = {};
  params.min_factor = -1;
  EXPECT_THROW(AdaptiveTradeoffRule{params}, std::invalid_argument);
}

}  // namespace
}  // namespace bbsched
