// serialize_result.hpp — lossless textual dump of every schedule-relevant
// SimResult field, shared by the byte-identity regressions (telemetry on/off
// in test_telemetry_regression.cpp, planner on/off in
// test_planner_regression.cpp).
//
// Doubles print with %.17g so the round-trip is exact: two serializations
// compare equal iff the schedules are bit-identical.  solve_seconds_total/max
// are intentionally excluded — they measure wall time, which varies run to
// run regardless of scheduling behavior.
#pragma once

#include <cstdio>
#include <string>

#include "sim/sim_result.hpp"

namespace bbsched::testing {

inline std::string serialize(const SimResult& result) {
  std::string out = result.workload_name + '|' + result.policy_name + '|' +
                    result.base_scheduler_name + '\n';
  char buf[256];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g,", v);
    out += buf;
  };
  num(result.makespan);
  num(result.measure_begin);
  num(result.measure_end);
  out += '\n';
  for (const JobOutcome& job : result.outcomes) {
    std::snprintf(buf, sizeof(buf), "%llu,",
                  static_cast<unsigned long long>(job.id));
    out += buf;
    num(job.submit);
    num(job.start);
    num(job.end);
    num(job.runtime);
    num(job.walltime);
    std::snprintf(buf, sizeof(buf), "%lld,%lld,%lld,%d\n",
                  static_cast<long long>(job.nodes),
                  static_cast<long long>(job.small_tier_nodes),
                  static_cast<long long>(job.large_tier_nodes),
                  job.backfilled ? 1 : 0);
    out += buf;
    num(job.bb_gb);
    num(job.ssd_per_node_gb);
    out += '\n';
  }
  const DecisionStats& d = result.decisions;
  std::snprintf(buf, sizeof(buf), "%zu,%zu,%zu,%zu,%zu,%zu\n", d.cycles,
                d.window_jobs, d.policy_starts, d.backfill_starts,
                d.forced_starts, d.evaluations);
  out += buf;
  num(d.pareto_size_sum);
  return out;
}

}  // namespace bbsched::testing
