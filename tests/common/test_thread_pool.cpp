#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bbsched {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SlotWritesMatchSerialReference) {
  constexpr std::size_t n = 517;
  std::vector<double> serial(n), pooled(n);
  const auto fn = [](std::size_t i) {
    return static_cast<double>(i * i) + 0.5;
  };
  for (std::size_t i = 0; i < n; ++i) serial[i] = fn(i);
  ThreadPool pool(8);
  pool.parallel_for(n, [&](std::size_t i) { pooled[i] = fn(i); });
  EXPECT_EQ(pooled, serial);
}

TEST(ThreadPool, ZeroAndOneIndexAndSingleThread) {
  ThreadPool pool(1);  // no workers: everything inline
  EXPECT_EQ(pool.num_threads(), 1u);
  std::size_t calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1u);
  pool.parallel_for(7, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 8u);
}

TEST(ThreadPool, MoreTasksThanThreadsAndViceVersa) {
  ThreadPool pool(8);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(3, [&](std::size_t i) { sum += i; });  // n < threads
  EXPECT_EQ(sum.load(), 3u);
  sum = 0;
  pool.parallel_for(1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 999u * 1000u / 2);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i % 2 == 1) {
                            throw std::runtime_error("task failed");
                          }
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<std::size_t> ok{0};
  pool.parallel_for(16, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 16u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr std::size_t outer = 16, inner = 32;
  std::vector<std::atomic<int>> hits(outer * inner);
  pool.parallel_for(outer, [&](std::size_t o) {
    // Nested call on a worker thread: must degrade to an inline loop, not
    // wait on the queue it is itself supposed to drain.
    pool.parallel_for(inner, [&](std::size_t i) { ++hits[o * inner + i]; });
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReentrantBatchesFromManyCallers) {
  // Two sequential batches reuse the same workers.
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(20, [&](std::size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 50u * (19u * 20u / 2));
}

TEST(GlobalPool, ResizeAndQuery) {
  set_global_threads(3);
  EXPECT_EQ(global_threads(), 3u);
  std::atomic<std::size_t> count{0};
  parallel_for(100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100u);
  set_global_threads(0);  // auto: hardware concurrency, at least 1
  EXPECT_GE(global_threads(), 1u);
}

}  // namespace
}  // namespace bbsched
