// generator.hpp — synthetic workload models standing in for the paper's
// production traces (see DESIGN.md §3, "Substitutions").
//
// The paper evaluates on a four-month Cori (NERSC, capacity computing) Slurm
// log and a five-month Theta (ALCF, capability computing) Cobalt log.  Those
// logs are not public; what the evaluation depends on is their *statistical
// shape*: job-size mix, runtime distribution, user walltime over-estimation,
// arrival load, and the sparse heavy-tailed burst-buffer requests of Table 2
// / Figure 5.  GeneratorParams models each of those dimensions explicitly
// and the cori_model()/theta_model() presets reproduce the published summary
// statistics.
//
// Load calibration: job sizes and runtimes are drawn first; the submission
// span is then set so the offered load (total node-seconds divided by
// machine node-seconds) equals `offered_load`.  Values above 1.0 keep a
// standing queue, which is the regime where scheduling policy matters (the
// paper's baseline wait times are 2.5-19 hours).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/workload.hpp"

namespace bbsched {

/// One job-size class: sizes are drawn log-uniformly in [min_nodes,
/// max_nodes] with relative probability `weight`.
struct SizeBucket {
  NodeCount min_nodes = 1;
  NodeCount max_nodes = 1;
  double weight = 1.0;
};

/// Statistical workload model.
struct GeneratorParams {
  std::string name = "synthetic";
  MachineConfig machine;
  std::size_t num_jobs = 1000;

  // Arrival process: Poisson submission *events* with optional diurnal
  // modulation.  An event is a job array with probability `array_fraction`:
  // its members share node count, walltime and burst-buffer request and
  // arrive simultaneously — the bursty submission pattern of capacity
  // workloads, without which a many-node machine under sub-saturation load
  // never builds a queue.
  double offered_load = 1.2;      ///< total demand / machine capacity
  double diurnal_amplitude = 0.3; ///< 0 disables; peaks at local noon
  double array_fraction = 0.0;    ///< probability an event is a job array
  int array_max = 2;              ///< array size uniform in [2, array_max]

  // Job sizes.
  std::vector<SizeBucket> size_buckets;

  // Runtimes: lognormal(mu, sigma) clipped to [min_runtime, max_runtime].
  double runtime_log_mu = 8.0;    ///< exp(8) ~ 50 min
  double runtime_log_sigma = 1.4;
  Time min_runtime = seconds(60);
  Time max_runtime = hours(24);

  // Walltime (user estimate): runtime / accuracy with accuracy uniform in
  // [walltime_accuracy_lo, 1], then rounded up to walltime_quantum.
  double walltime_accuracy_lo = 0.2;
  Time walltime_quantum = minutes(30);

  // Burst-buffer requests: `bb_fraction` of jobs request BB; request size is
  // bounded-Pareto(alpha, min, max) — the sparse heavy tail of Figure 5.
  double bb_fraction = 0.0;
  double bb_pareto_alpha = 0.45;
  GigaBytes bb_min = gb(1);
  GigaBytes bb_max = tb(64);

  void validate() const;
};

/// Preset matching the Cori row of Table 2: 12,076 nodes, 1.8 PB shared
/// burst buffer with one third persistently reserved, capacity-computing
/// size mix (dominated by small jobs), 0.618 % of jobs requesting BB in
/// [1 GB, 165 TB].  `scale` < 1 shrinks node counts and BB proportionally so
/// laptop-scale simulations keep the same contention ratios.
GeneratorParams cori_model(std::size_t num_jobs, double scale = 1.0);

/// Preset matching the Theta row of Table 2: 4,392 nodes, hypothetical
/// 2.16 PB shared burst buffer (the paper's memory-ratio assumption),
/// capability-computing size mix (128+ node jobs), 17.18 % of jobs with
/// Darshan-derived BB requests in [1 GB, 285 TB].
GeneratorParams theta_model(std::size_t num_jobs, double scale = 1.0);

/// Draw a workload from the model.  Deterministic in (params, seed).
Workload generate_workload(const GeneratorParams& params, std::uint64_t seed);

}  // namespace bbsched
