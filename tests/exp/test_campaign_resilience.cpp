// Property tests for the fault-tolerant campaign runtime (DESIGN.md §12):
// retry/quarantine determinism across thread counts, cache CRC validation,
// journal resume, and the kill-and-resume property (SIGKILL a campaign
// mid-flight under fault injection, resume, and require the merged grid to
// be byte-identical to an uninterrupted run).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/fault.hpp"
#include "common/thread_pool.hpp"
#include "exp/grid.hpp"

#if defined(__linux__)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace bbsched {
namespace {

namespace fs = std::filesystem;

ExperimentConfig tiny_config(const std::string& cache_dir) {
  ExperimentConfig config;
  config.jobs_per_workload = 40;
  config.window_size = 6;
  config.ga.generations = 6;
  config.ga.population_size = 6;
  config.cache_dir = cache_dir;
  return config;
}

/// Canonical byte rendering of a grid's deterministic content — the "grid
/// digest" the resilience properties compare.  Covers every simulated
/// metric at full precision; the wall-clock telemetry columns
/// (cell_wall_s, *_solve_s) are measurements, not results, and are
/// excluded on purpose.
std::string grid_digest(const std::vector<GridCell>& cells) {
  std::ostringstream out;
  out.precision(17);
  for (const auto& cell : cells) {
    const auto& m = cell.metrics;
    out << cell.workload << '|' << cell.method << '|' << m.node_usage << '|'
        << m.bb_usage << '|' << m.ssd_usage << '|' << m.ssd_waste << '|'
        << m.avg_wait << '|' << m.avg_slowdown << '|' << m.p95_wait << '|'
        << m.max_wait << '|' << m.jobs_measured << '|' << m.jobs_backfilled
        << '|' << cell.mean_pareto_size << '|' << cell.forced_starts << '\n';
  }
  return out.str();
}

/// The deterministic columns of a finalized cache CSV, for byte-identity
/// comparisons between a resumed and an uninterrupted campaign.
std::string cache_digest(const std::string& path) {
  std::string error;
  const auto table = read_csv_file_checksummed(path, &error);
  if (!table) return "unreadable: " + error;
  static const char* kDeterministicCols[] = {
      "workload",  "method",   "node_usage",   "bb_usage",
      "ssd_usage", "ssd_waste", "avg_wait",    "avg_slowdown",
      "p95_wait",  "max_wait", "jobs",         "backfilled",
      "mean_pareto", "forced_starts"};
  std::ostringstream out;
  for (std::size_t r = 0; r < table->num_rows(); ++r) {
    for (const char* col : kDeterministicCols) out << table->at(r, col) << '|';
    out << '\n';
  }
  return out.str();
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("bbsched_resilience_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    saved_control_ = campaign_control();
  }
  void TearDown() override {
    set_global_fault_plan(FaultPlan{});
    campaign_control() = saved_control_;
    fs::remove_all(dir_);
  }
  std::string dir_;
  CampaignControl saved_control_;
};

TEST_F(ResilienceTest, RetryScheduleAndQuarantineAreThreadCountInvariant) {
  const auto config = tiny_config(dir_ + "/cache");
  campaign_control().max_retries = 1;
  campaign_control().retry_base_delay_s = 0.001;  // keep the test fast
  // p=0.35 with one retry: some cells fail once and recover, some fail
  // twice and quarantine — both paths exercised.
  struct Run {
    std::string digest;
    std::string quarantined;
    std::size_t retries;
  };
  auto run_at = [&](std::size_t threads) {
    set_global_threads(threads);
    set_global_fault_plan(FaultPlan::parse("seed=5;grid.cell:throw=0.35"));
    const auto results = compute_main_grid(config);
    const auto& report = last_campaign_report();
    std::ostringstream quarantined;
    for (const auto& q : report.quarantined) {
      quarantined << q.workload << '/' << q.method << '#' << q.attempts
                  << '\n';
    }
    return Run{grid_digest(results.cells), quarantined.str(), report.retries};
  };
  const Run serial = run_at(1);
  const Run parallel = run_at(4);
  EXPECT_EQ(serial.digest, parallel.digest)
      << "surviving cells must be bit-identical at any thread count";
  EXPECT_EQ(serial.quarantined, parallel.quarantined)
      << "same fault plan seed must quarantine the same cells";
  EXPECT_EQ(serial.retries, parallel.retries);
  EXPECT_FALSE(serial.quarantined.empty())
      << "p=0.35 with 1 retry over 80 cells should quarantine something "
         "(if not, the plan is not reaching the cells)";
  EXPECT_GT(serial.retries, 0u);
  set_global_threads(0);
}

TEST_F(ResilienceTest, QuarantinedCampaignCompletesAndSkipsCacheWrite) {
  const auto config = tiny_config(dir_ + "/cache");
  campaign_control().max_retries = 1;
  campaign_control().retry_base_delay_s = 0.001;
  set_global_fault_plan(
      FaultPlan::parse("seed=1;grid.cell:throw=1"));  // every attempt dies
  const auto results = ensure_main_grid(config);
  EXPECT_TRUE(results.cells.empty());
  const auto& report = last_campaign_report();
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(report.quarantined.size(), 80u);
  EXPECT_EQ(report.quarantined.front().attempts, 2);
  EXPECT_FALSE(report.quarantined.front().error.empty());
  // Degraded: no grid cache may be finalized; the journal stays for later.
  bool any_cache_csv = false;
  for (const auto& entry : fs::recursive_directory_iterator(config.cache_dir)) {
    if (entry.path().extension() == ".csv") any_cache_csv = true;
  }
  EXPECT_FALSE(any_cache_csv);

  // Disarm and rerun: the campaign must fully recover and finalize.
  set_global_fault_plan(FaultPlan{});
  const auto clean = ensure_main_grid(config);
  EXPECT_EQ(clean.cells.size(), 80u);
  EXPECT_FALSE(last_campaign_report().degraded());
}

TEST_F(ResilienceTest, CorruptCacheIsQuarantinedAndRecomputed) {
  const auto config = tiny_config(dir_ + "/cache");
  const auto first = ensure_main_grid(config);
  ASSERT_EQ(first.cells.size(), 80u);

  // Find the main grid cache and flip a byte in the middle.
  std::string grid_csv;
  for (const auto& entry : fs::directory_iterator(config.cache_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("main_grid_", 0) == 0) grid_csv = entry.path().string();
  }
  ASSERT_FALSE(grid_csv.empty());
  {
    std::ifstream in(grid_csv, std::ios::binary);
    std::ostringstream slurp;
    slurp << in.rdbuf();
    std::string content = slurp.str();
    content[content.size() / 2] ^= 0x1;
    std::ofstream(grid_csv, std::ios::binary | std::ios::trunc) << content;
  }

  const auto second = ensure_main_grid(config);
  EXPECT_EQ(second.cells.size(), 80u);
  EXPECT_EQ(grid_digest(second.cells), grid_digest(first.cells))
      << "recompute after corruption must reproduce the grid";
  // The corrupt file must be preserved for post-mortem, not deleted.
  const fs::path quarantine = fs::path(config.cache_dir) / "quarantine";
  ASSERT_TRUE(fs::exists(quarantine));
  EXPECT_GE(std::distance(fs::directory_iterator(quarantine),
                          fs::directory_iterator{}),
            1);
}

TEST_F(ResilienceTest, TruncatedCacheMissingTrailerIsRejected) {
  const auto config = tiny_config(dir_ + "/cache");
  (void)ensure_ssd_grid(config);
  std::string grid_csv;
  for (const auto& entry : fs::directory_iterator(config.cache_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ssd_grid_", 0) == 0) grid_csv = entry.path().string();
  }
  ASSERT_FALSE(grid_csv.empty());
  // Drop the trailer line — what a torn non-atomic write would leave.
  std::ifstream in(grid_csv, std::ios::binary);
  std::ostringstream slurp;
  slurp << in.rdbuf();
  in.close();
  const std::string content = slurp.str();
  const auto cut = content.rfind("# crc32=");
  ASSERT_NE(cut, std::string::npos);
  std::ofstream(grid_csv, std::ios::binary | std::ios::trunc)
      << content.substr(0, cut);

  const auto cells = ensure_ssd_grid(config);
  EXPECT_EQ(cells.size(), 42u) << "truncated cache must recompute";
  EXPECT_TRUE(fs::exists(fs::path(config.cache_dir) / "quarantine"));
}

TEST_F(ResilienceTest, ResumeAfterPartialCampaignIsByteIdentical) {
  // In-process resume rehearsal: run a campaign whose journal survives (the
  // campaign is degraded, so the cache is not finalized), then rerun with
  // injection off — resumed cells must reproduce the uninterrupted grid.
  const auto config = tiny_config(dir_ + "/cache");
  campaign_control().max_retries = 0;
  set_global_fault_plan(FaultPlan::parse("seed=9;grid.cell:throw=0.4"));
  const auto partial = ensure_main_grid(config);
  const auto partial_report = last_campaign_report();
  ASSERT_TRUE(partial_report.degraded());
  ASSERT_GT(partial.cells.size(), 0u);
  ASSERT_LT(partial.cells.size(), 80u);

  set_global_fault_plan(FaultPlan{});
  const auto resumed = ensure_main_grid(config);
  EXPECT_EQ(resumed.cells.size(), 80u);
  const auto resumed_report = last_campaign_report();
  EXPECT_EQ(resumed_report.cells_resumed, partial.cells.size())
      << "every journaled cell must be adopted, not re-run";

  // Reference: the same config computed uninterrupted in a fresh cache dir
  // (cache_dir is not part of the digest, so the cells are comparable).
  auto reference_config = tiny_config(dir_ + "/cache_ref");
  const auto reference = ensure_main_grid(reference_config);
  EXPECT_EQ(grid_digest(resumed.cells), grid_digest(reference.cells))
      << "resumed grid must be byte-identical to an uninterrupted one";

  // The journal is consumed by the successful finalize.
  EXPECT_FALSE(fs::exists(fs::path(config.cache_dir) / "journal") &&
               !fs::is_empty(fs::path(config.cache_dir) / "journal"));
}

#if defined(__linux__)

std::string helper_path() {
  // The helper binary is built next to bbsched_tests.
  return (fs::read_symlink("/proc/self/exe").parent_path() /
          "campaign_resume_helper")
      .string();
}

/// Launch the helper (which runs the SSD campaign and journals each cell),
/// SIGKILL it once the journal holds at least one committed bundle, and
/// return true if we managed to kill it mid-campaign.
bool run_and_kill(const std::string& cache_dir, const std::string& plan) {
  const pid_t pid = fork();
  if (pid == 0) {
    ::setenv("BBSCHED_CACHE_DIR", cache_dir.c_str(), 1);
    ::setenv("BBSCHED_FAULT_PLAN", plan.c_str(), 1);
    const std::string helper = helper_path();
    ::execl(helper.c_str(), helper.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  // Poll for a committed bundle ("done|" marker) in any journal file, then
  // kill hard: the child gets no chance to flush or clean up.
  const fs::path journal_dir = fs::path(cache_dir) / "journal";
  bool killed_midway = false;
  for (int i = 0; i < 20000; ++i) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      return false;  // finished before we could kill it
    }
    bool has_bundle = false;
    if (fs::exists(journal_dir)) {
      for (const auto& entry : fs::directory_iterator(journal_dir)) {
        std::ifstream in(entry.path());
        std::string line;
        while (std::getline(in, line)) {
          if (line.find("|done|") != std::string::npos) has_bundle = true;
        }
      }
    }
    if (has_bundle) {
      ::kill(pid, SIGKILL);
      killed_midway = true;
      break;
    }
    ::usleep(1000);
  }
  if (!killed_midway) ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return killed_midway;
}

TEST_F(ResilienceTest, KillAndResumeProducesByteIdenticalGrid) {
  if (!fs::exists(helper_path())) {
    GTEST_SKIP() << "campaign_resume_helper not built";
  }
  const std::string cache_dir = dir_ + "/cache";
  // Partial-write injection on the journal itself plus throw-retries in the
  // cells: the kill lands while recovery machinery is genuinely exercised.
  const std::string plan = "seed=13;journal.append:partial=0.05@0.6";
  bool killed = false;
  for (int round = 0; round < 5 && !killed; ++round) {
    killed = run_and_kill(cache_dir, plan);
  }
  if (!killed) {
    GTEST_SKIP() << "campaign finished faster than the kill every time";
  }

  // Resume in-process with injection off and finish the campaign.
  const auto config = tiny_config(cache_dir);
  const auto resumed = ensure_ssd_grid(config);
  ASSERT_EQ(resumed.size(), 42u);
  const auto report = last_campaign_report();
  EXPECT_GT(report.cells_resumed, 0u)
      << "the killed run journaled at least one bundle";

  // Uninterrupted reference in a fresh cache dir.
  auto reference_config = tiny_config(dir_ + "/cache_ref");
  const auto reference = ensure_ssd_grid(reference_config);
  EXPECT_EQ(grid_digest(resumed), grid_digest(reference))
      << "kill-and-resume must be byte-identical to an uninterrupted run";

  // And the finalized caches agree on every deterministic column (the
  // wall-clock telemetry columns are measurements and legitimately differ).
  auto cache_path = [](const std::string& dir, const char* prefix) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) == 0) return entry.path().string();
    }
    return std::string();
  };
  const std::string resumed_cache = cache_path(cache_dir, "ssd_grid_");
  const std::string reference_cache =
      cache_path(reference_config.cache_dir, "ssd_grid_");
  ASSERT_FALSE(resumed_cache.empty());
  ASSERT_FALSE(reference_cache.empty());
  EXPECT_EQ(cache_digest(resumed_cache), cache_digest(reference_cache));
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace bbsched
