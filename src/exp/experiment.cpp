#include "exp/experiment.hpp"

#include <functional>
#include <sstream>

#include "common/env.hpp"
#include "workload/generator.hpp"

namespace bbsched {

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig config;
  config.jobs_per_workload = static_cast<std::size_t>(
      env_int("BBSCHED_BENCH_JOBS", static_cast<std::int64_t>(
                                        config.jobs_per_workload)));
  config.window_size = static_cast<std::size_t>(env_int(
      "BBSCHED_BENCH_WINDOW", static_cast<std::int64_t>(config.window_size)));
  config.ga.generations = static_cast<int>(
      env_int("BBSCHED_BENCH_G", config.ga.generations));
  config.ga.population_size = static_cast<int>(
      env_int("BBSCHED_BENCH_P", config.ga.population_size));
  config.cori_scale = env_double("BBSCHED_CORI_SCALE", config.cori_scale);
  config.theta_scale = env_double("BBSCHED_THETA_SCALE", config.theta_scale);
  config.seed = static_cast<std::uint64_t>(
      env_int("BBSCHED_SEED", static_cast<std::int64_t>(config.seed)));
  config.cache_dir = env_string("BBSCHED_CACHE_DIR", config.cache_dir);
  return config;
}

std::string ExperimentConfig::digest() const {
  std::ostringstream key;
  // The trailing schema tag versions the cache: v2 added per-cell seeding
  // (mix_seed per workload x method) and the cell_wall_s column, so caches
  // written by older builds must miss.
  key << jobs_per_workload << '|' << window_size << '|' << ga.generations
      << '|' << ga.population_size << '|' << ga.mutation_rate << '|' << seed
      << '|' << warmup_fraction << '|' << cooldown_fraction << '|'
      // grid-v3: p95_wait moved from the exact-sort quantile to the
      // deterministic QuantileSketch estimate and the sums to ExactSum, so
      // grids cached by older builds must miss.
      // grid-v4: caches carry a crc32 trailer and campaigns journal per
      // cell; pre-trailer caches must miss so they get rewritten checksummed.
      << cori_scale << '|' << theta_scale << "|grid-v4";
  const auto h = std::hash<std::string>{}(key.str());
  std::ostringstream hex;
  hex << std::hex << h;
  return hex.str();
}

SimConfig ExperimentConfig::sim_config() const {
  SimConfig sim;
  sim.window_size = window_size;
  sim.warmup_fraction = warmup_fraction;
  sim.cooldown_fraction = cooldown_fraction;
  sim.seed = seed + 7;
  return sim;
}

namespace {

/// A dense stand-in for "the original trace's requests above the threshold"
/// (§4.1); drawn from the machine model's request distribution because the
/// scaled-down trace holds too few observed requests (DESIGN.md §3).
std::vector<GigaBytes> model_pool(const GeneratorParams& model,
                                  GigaBytes threshold, std::uint64_t seed) {
  return sample_bb_pool(model.bb_pareto_alpha, model.bb_min, model.bb_max,
                        threshold, 4096, seed);
}

/// The scale factor a model was built with (machine scale); used to keep the
/// 5/20 TB pool thresholds at the same position within the request range.
double scale_of(const ExperimentConfig& config, const GeneratorParams& model) {
  return model.name == "Cori" ? config.cori_scale : config.theta_scale;
}

}  // namespace

std::vector<SuiteEntry> build_main_workloads(const ExperimentConfig& config) {
  std::vector<SuiteEntry> suite;
  const GeneratorParams models[] = {
      cori_model(config.jobs_per_workload, config.cori_scale),
      theta_model(config.jobs_per_workload, config.theta_scale)};
  std::uint64_t salt = 0;
  for (const auto& model : models) {
    const Workload original = generate_workload(model, config.seed + salt);
    const double scale = scale_of(config, model);
    auto machine_suite = make_bb_suite(
        original, config.seed + 10 + salt,
        model_pool(model, tb(5) * scale, config.seed + 100 + salt),
        model_pool(model, tb(20) * scale, config.seed + 200 + salt), scale);
    suite.insert(suite.end(),
                 std::make_move_iterator(machine_suite.begin()),
                 std::make_move_iterator(machine_suite.end()));
    ++salt;
  }
  return suite;
}

std::vector<SuiteEntry> build_ssd_workloads(const ExperimentConfig& config) {
  std::vector<SuiteEntry> suite;
  const GeneratorParams models[] = {
      cori_model(config.jobs_per_workload, config.cori_scale),
      theta_model(config.jobs_per_workload, config.theta_scale)};
  std::uint64_t salt = 0;
  for (const auto& model : models) {
    const Workload original = generate_workload(model, config.seed + salt);
    const double scale = scale_of(config, model);
    auto machine_suite = make_ssd_suite(
        original, config.seed + 30 + salt,
        model_pool(model, tb(5) * scale, config.seed + 300 + salt), scale);
    suite.insert(suite.end(),
                 std::make_move_iterator(machine_suite.begin()),
                 std::make_move_iterator(machine_suite.end()));
    ++salt;
  }
  return suite;
}

std::string base_scheduler_for(const std::string& workload_label) {
  // §4.3: FCFS with the Cori workloads, WFP with the Theta workloads.
  return workload_label.rfind("Theta", 0) == 0 ? "WFP" : "FCFS";
}

}  // namespace bbsched
