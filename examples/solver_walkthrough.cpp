// solver_walkthrough — Figure 3 as a runnable narrative.
//
// Builds the Table 1 window problem, walks the genetic solver's machinery
// step by step (random population, crossover, mutation, repair, Pareto/age
// selection), then contrasts the converged Pareto set with the exhaustive
// truth and shows the decision rule's choice.  Use this to understand the
// core library before reading ga.cpp.
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/decision.hpp"
#include "core/exhaustive.hpp"
#include "core/ga.hpp"
#include "core/multi_resource_problem.hpp"

namespace {

using namespace bbsched;

std::string genes_str(const Genes& genes) {
  std::string out;
  for (auto g : genes) out += g ? '1' : '0';
  return out;
}

void print_population(const char* title,
                      const std::vector<Chromosome>& population) {
  std::cout << title << '\n';
  ConsoleTable table({"chromosome", "node util", "BB util", "age"},
                     {Align::kLeft, Align::kRight, Align::kRight,
                      Align::kRight});
  for (const auto& c : population) {
    table.add_row({genes_str(c.genes), ConsoleTable::pct(c.objectives[0], 0),
                   ConsoleTable::pct(c.objectives[1], 0),
                   std::to_string(c.age)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  // The Table 1 example: five jobs on a 100-node / 100 TB machine.
  const std::vector<double> nodes{80, 10, 40, 10, 20};
  const std::vector<double> bb{tb(20), tb(85), tb(5), 0, 0};
  const auto problem =
      MultiResourceProblem::cpu_bb(nodes, bb, 100, tb(100));

  std::cout << "== Step 1: random initial population (Figure 3, top) ==\n\n";
  Rng rng(2024);
  auto population = random_population(problem, 4, rng);
  print_population("generation 0:", population);

  std::cout << "== Step 2: one crossover + mutation + repair round ==\n\n";
  auto [a, b] = crossover(population[0].genes, population[1].genes, rng);
  std::cout << "parents  " << genes_str(population[0].genes) << " x "
            << genes_str(population[1].genes) << "\n";
  std::cout << "children " << genes_str(a) << " , " << genes_str(b)
            << " (before mutation/repair)\n";
  mutate(a, problem, 0.05, rng);
  problem.repair(a, rng);
  std::cout << "child A after mutation+repair: " << genes_str(a) << "\n\n";

  std::cout << "== Step 3: Pareto/age survivor selection ==\n\n";
  auto children = make_children(problem, population, 4, 0.05, rng);
  auto pool = population;
  pool.insert(pool.end(), children.begin(), children.end());
  auto next = select_next_generation(std::move(pool), 4);
  print_population("generation 1 (Set 1 first, newest first):", next);

  std::cout << "== Step 4: full run vs. exhaustive truth ==\n\n";
  GaParams params;  // paper defaults: G=500, P=20, p_m = 0.05 %
  const auto approx = MooGaSolver(params).solve(problem);
  print_population("GA Pareto set (G=500, P=20):", approx.pareto_set);
  const auto truth = ExhaustiveSolver().solve(problem);
  print_population("exhaustive Pareto set:", truth.pareto_set);

  std::cout << "== Step 5: the decision rule (2x trade-off, 3.2.4) ==\n\n";
  const NodeFirstTradeoffRule rule;
  const auto& chosen = approx.pareto_set[rule.choose(approx.pareto_set)];
  std::cout << "committed selection: " << genes_str(chosen.genes)
            << "  (node " << ConsoleTable::pct(chosen.objectives[0], 0)
            << ", BB " << ConsoleTable::pct(chosen.objectives[1], 0)
            << ")\n";
  return 0;
}
