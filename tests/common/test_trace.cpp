#include "common/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"

namespace bbsched {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser — enough to prove the trace export is
// well-formed and to inspect the events, without external dependencies.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace(key.string, value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return v;
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': v.string.push_back('"'); break;
          case '\\': v.string.push_back('\\'); break;
          case '/': v.string.push_back('/'); break;
          case 'b': v.string.push_back('\b'); break;
          case 'f': v.string.push_back('\f'); break;
          case 'n': v.string.push_back('\n'); break;
          case 'r': v.string.push_back('\r'); break;
          case 't': v.string.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)]))) {
                fail("bad \\u escape");
              }
            }
            pos_ += 4;
            v.string.push_back('?');  // codepoint value irrelevant here
            break;
          }
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        v.string.push_back(c);
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    JsonValue v;
    v.kind = JsonValue::Kind::kNull;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

/// Arms tracing for one test and restores a clean disabled recorder after.
class TraceSession {
 public:
  TraceSession() {
    trace_clear();
    set_trace_enabled(true);
  }
  ~TraceSession() {
    set_trace_enabled(false);
    trace_clear();
  }

  JsonValue export_json() const {
    std::ostringstream out;
    write_trace_json(out);
    return JsonParser(out.str()).parse();
  }
};

std::vector<const JsonValue*> events_named(const JsonValue& root,
                                           const std::string& name) {
  std::vector<const JsonValue*> out;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("name").string == name) out.push_back(&e);
  }
  return out;
}

TEST(Trace, DisabledRecordsNothing) {
  trace_clear();
  ASSERT_FALSE(trace_enabled());  // off by default
  trace_instant("submit", "sched", 1.0, kTraceWallPid, {{"job", 7}});
  trace_complete("solve", "solver", 0.0, 0.5);
  trace_counter("occupancy", 1.0, kTraceWallPid, {{"nodes_used", 3}});
  { TraceSpan span("scoped", "test"); }
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(trace_register_process("ignored"), kTraceWallPid);
}

TEST(Trace, ExportIsWellFormedJson) {
  TraceSession session;
  const int pid = trace_register_process("sim test/BBSched");
  EXPECT_GE(pid, 1);
  trace_instant("submit", "sched", 10.0, pid,
                {{"job", 1}, {"note", "quote \" backslash \\ done"}});
  trace_complete("moo_ga.solve", "solver", 0.25, 0.5, {{"pareto_size", 4}});
  trace_counter("occupancy", 10.0, pid,
                {{"nodes_used", 12}, {"bb_used_gb", 3.5}});
  { TraceSpan span("policy.select", "sched", {{"window", 20}}); }

  const JsonValue root = session.export_json();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  EXPECT_TRUE(root.has("displayTimeUnit"));
  const auto& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  for (const JsonValue& e : events.array) {
    EXPECT_EQ(e.kind, JsonValue::Kind::kObject);
    EXPECT_EQ(e.at("ph").kind, JsonValue::Kind::kString);
    EXPECT_EQ(e.at("pid").kind, JsonValue::Kind::kNumber);
    EXPECT_EQ(e.at("name").kind, JsonValue::Kind::kString);
  }

  const auto submits = events_named(root, "submit");
  ASSERT_EQ(submits.size(), 1u);
  EXPECT_EQ(submits[0]->at("ph").string, "i");
  EXPECT_EQ(submits[0]->at("pid").number, pid);
  EXPECT_DOUBLE_EQ(submits[0]->at("ts").number, 10.0 * 1e6);  // microseconds
  EXPECT_EQ(submits[0]->at("args").at("job").number, 1.0);
  EXPECT_EQ(submits[0]->at("args").at("note").string,
            "quote \" backslash \\ done");

  const auto solves = events_named(root, "moo_ga.solve");
  ASSERT_EQ(solves.size(), 1u);
  EXPECT_EQ(solves[0]->at("ph").string, "X");
  EXPECT_EQ(solves[0]->at("pid").number, kTraceWallPid);
  EXPECT_DOUBLE_EQ(solves[0]->at("dur").number, 0.5 * 1e6);

  const auto counters = events_named(root, "occupancy");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0]->at("ph").string, "C");
  EXPECT_DOUBLE_EQ(counters[0]->at("args").at("bb_used_gb").number, 3.5);

  EXPECT_EQ(events_named(root, "policy.select").size(), 1u);

  // Process metadata names both the wall lane and the registered sim lane.
  bool wall_named = false;
  bool sim_named = false;
  for (const JsonValue& e : events.array) {
    if (e.at("name").string != "process_name") continue;
    const std::string& label = e.at("args").at("name").string;
    if (e.at("pid").number == kTraceWallPid && label == "wall-clock") {
      wall_named = true;
    }
    if (e.at("pid").number == pid && label == "sim test/BBSched") {
      sim_named = true;
    }
  }
  EXPECT_TRUE(wall_named);
  EXPECT_TRUE(sim_named);
}

TEST(Trace, NonFiniteArgsStayValidJson) {
  TraceSession session;
  trace_instant("weird", "test", 0.0, kTraceWallPid,
                {{"nan", std::nan("")}, {"ok", 1.0}});
  const JsonValue root = session.export_json();  // parse must not throw
  const auto events = events_named(root, "weird");
  ASSERT_EQ(events.size(), 1u);
  // Non-finite numbers have no JSON literal; they are demoted to strings.
  EXPECT_EQ(events[0]->at("args").at("nan").kind, JsonValue::Kind::kString);
  EXPECT_EQ(events[0]->at("args").at("ok").kind, JsonValue::Kind::kNumber);
}

TEST(Trace, ConcurrentRecordingLosesNoEvents) {
  TraceSession session;
  constexpr std::size_t kTasks = 500;
  parallel_for(kTasks, [](std::size_t i) {
    trace_instant("tick", "test", static_cast<double>(i), kTraceWallPid,
                  {{"i", i}});
  });
  EXPECT_GE(trace_event_count(), kTasks);
  const JsonValue root = session.export_json();
  const auto ticks = events_named(root, "tick");
  ASSERT_EQ(ticks.size(), kTasks);
  std::vector<bool> seen(kTasks, false);
  for (const JsonValue* e : ticks) {
    const auto i = static_cast<std::size_t>(e->at("args").at("i").number);
    ASSERT_LT(i, kTasks);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Trace, ClearDropsEverything) {
  TraceSession session;
  trace_instant("gone", "test", 0.0, kTraceWallPid);
  EXPECT_GT(trace_event_count(), 0u);
  trace_clear();
  EXPECT_EQ(trace_event_count(), 0u);
  const JsonValue root = session.export_json();
  EXPECT_TRUE(events_named(root, "gone").empty());
}

}  // namespace
}  // namespace bbsched
