#include "sim/machine_state.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

MachineConfig plain_machine() {
  MachineConfig m;
  m.name = "plain";
  m.nodes = 100;
  m.burst_buffer_gb = tb(10);
  return m;
}

MachineConfig ssd_machine() {
  MachineConfig m = plain_machine();
  m.small_ssd_nodes = 60;
  m.large_ssd_nodes = 40;
  return m;
}

JobRecord job(NodeCount nodes, GigaBytes bb = 0, GigaBytes ssd = 0) {
  JobRecord j;
  j.id = 1;
  j.runtime = 10;
  j.walltime = 10;
  j.nodes = nodes;
  j.bb_gb = bb;
  j.ssd_per_node_gb = ssd;
  return j;
}

TEST(MachineState, InitialFreeMatchesConfig) {
  const MachineState state(plain_machine());
  EXPECT_EQ(state.free_nodes(), 100);
  EXPECT_DOUBLE_EQ(state.free_bb(), tb(10));
  EXPECT_EQ(state.num_running(), 0u);
}

TEST(MachineState, PersistentBbReducesSchedulablePool) {
  auto config = plain_machine();
  config.persistent_bb_fraction = 0.25;
  const MachineState state(config);
  EXPECT_DOUBLE_EQ(state.free_bb(), tb(7.5));
}

TEST(MachineState, AllocateReleaseBalances) {
  MachineState state(plain_machine());
  Allocation alloc;
  alloc.small_nodes = 30;
  alloc.bb_gb = tb(4);
  state.allocate(1, alloc);
  EXPECT_EQ(state.free_nodes(), 70);
  EXPECT_DOUBLE_EQ(state.free_bb(), tb(6));
  EXPECT_EQ(state.num_running(), 1u);
  state.release(1);
  EXPECT_EQ(state.free_nodes(), 100);
  EXPECT_DOUBLE_EQ(state.free_bb(), tb(10));
}

TEST(MachineState, DoubleAllocateThrows) {
  MachineState state(plain_machine());
  Allocation alloc;
  alloc.small_nodes = 1;
  state.allocate(1, alloc);
  EXPECT_THROW(state.allocate(1, alloc), std::logic_error);
}

TEST(MachineState, OverAllocateThrows) {
  MachineState state(plain_machine());
  Allocation alloc;
  alloc.small_nodes = 101;
  EXPECT_THROW(state.allocate(1, alloc), std::logic_error);
}

TEST(MachineState, ReleaseUnknownThrows) {
  MachineState state(plain_machine());
  EXPECT_THROW(state.release(9), std::logic_error);
}

TEST(MachineState, PlanSingleSimpleMachine) {
  MachineState state(plain_machine());
  Allocation alloc;
  EXPECT_TRUE(state.plan_single(job(40, tb(2)), alloc));
  EXPECT_EQ(alloc.small_nodes, 40);
  EXPECT_EQ(alloc.large_nodes, 0);
  EXPECT_FALSE(state.plan_single(job(101), alloc));
  EXPECT_FALSE(state.plan_single(job(1, tb(11)), alloc));
}

TEST(MachineState, PlanSingleSsdPrefersSmallTier) {
  MachineState state(ssd_machine());
  Allocation alloc;
  ASSERT_TRUE(state.plan_single(job(70, 0, 64), alloc));
  EXPECT_EQ(alloc.small_nodes, 60);
  EXPECT_EQ(alloc.large_nodes, 10);
}

TEST(MachineState, PlanSingleLargeOnlySsdJob) {
  MachineState state(ssd_machine());
  Allocation alloc;
  ASSERT_TRUE(state.plan_single(job(30, 0, 200), alloc));
  EXPECT_EQ(alloc.small_nodes, 0);
  EXPECT_EQ(alloc.large_nodes, 30);
  EXPECT_FALSE(state.plan_single(job(41, 0, 200), alloc))
      << "only 40 large-tier nodes";
  EXPECT_FALSE(state.plan_single(job(1, 0, 300), alloc))
      << "request above the large tier";
}

TEST(MachineState, SsdTierAccountingAcrossAllocations) {
  MachineState state(ssd_machine());
  Allocation big;
  ASSERT_TRUE(state.plan_single(job(35, 0, 200), big));
  state.allocate(1, big);
  Allocation alloc;
  // 5 large nodes remain; a large-only 6-node job no longer fits.
  EXPECT_FALSE(state.plan_single(job(6, 0, 200), alloc));
  // But a small-capable job can still use small + remaining large.
  EXPECT_TRUE(state.plan_single(job(65, 0, 32), alloc));
  EXPECT_EQ(alloc.small_nodes, 60);
  EXPECT_EQ(alloc.large_nodes, 5);
  state.release(1);
  EXPECT_EQ(state.free_nodes(), 100);
}

TEST(MachineState, FreeStateSnapshot) {
  MachineState state(ssd_machine());
  const FreeState fs = state.free_state();
  EXPECT_TRUE(fs.ssd_enabled);
  EXPECT_DOUBLE_EQ(fs.small_nodes, 60);
  EXPECT_DOUBLE_EQ(fs.large_nodes, 40);
  EXPECT_DOUBLE_EQ(fs.small_ssd_gb, 128);
  EXPECT_DOUBLE_EQ(fs.large_ssd_gb, 256);

  const MachineState plain(plain_machine());
  const FreeState plain_fs = plain.free_state();
  EXPECT_FALSE(plain_fs.ssd_enabled);
  EXPECT_DOUBLE_EQ(plain_fs.nodes, 100);
}

TEST(MachineState, FitsJobMatchesPlanSingle) {
  MachineState state(ssd_machine());
  EXPECT_TRUE(state.fits_job(job(100, 0, 64)));
  EXPECT_FALSE(state.fits_job(job(100, 0, 200)));
}

}  // namespace
}  // namespace bbsched
