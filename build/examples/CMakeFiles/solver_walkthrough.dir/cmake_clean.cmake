file(REMOVE_RECURSE
  "CMakeFiles/solver_walkthrough.dir/solver_walkthrough.cpp.o"
  "CMakeFiles/solver_walkthrough.dir/solver_walkthrough.cpp.o.d"
  "solver_walkthrough"
  "solver_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
