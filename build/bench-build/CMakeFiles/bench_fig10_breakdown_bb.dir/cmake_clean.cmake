file(REMOVE_RECURSE
  "../bench/bench_fig10_breakdown_bb"
  "../bench/bench_fig10_breakdown_bb.pdb"
  "CMakeFiles/bench_fig10_breakdown_bb.dir/bench_fig10_breakdown_bb.cpp.o"
  "CMakeFiles/bench_fig10_breakdown_bb.dir/bench_fig10_breakdown_bb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_breakdown_bb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
