// bench_fig14_ssd_kiviat — reproduce Figure 14 / §5: the four-objective
// local-SSD case study on the S5-S7 workloads.
//
// Six Kiviat axes per method: node usage, BB usage, SSD usage, reciprocal
// wasted SSD, reciprocal wait, reciprocal slowdown.  Expected shape: BBSched
// has the best overall area on all six workloads; Constrained_CPU and
// Constrained_SSD do well on node and SSD utilization (the two are
// correlated) but waste SSD; Constrained_BB sacrifices node and SSD
// utilization; Weighted is balanced but below BBSched.
#include <iostream>

#include "bench_util.hpp"
#include "exp/grid.hpp"
#include "metrics/kiviat.hpp"
#include "policies/factory.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig14_ssd_kiviat");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const auto config = ExperimentConfig::from_env();
  const auto cells = ensure_ssd_grid(config);
  benchutil::record_grid_cells(cli.bench(), "ssd_grid", cells);
  const auto methods = ssd_method_names();

  std::cout << "Figure 14: SSD case-study Kiviat normalization (axes: node,"
               " BB, SSD usage, 1/wasted-SSD, 1/wait, 1/slowdown)\n";
  for (const auto& workload : benchutil::ssd_workload_labels()) {
    std::vector<KiviatSeries> series;
    for (const auto& method : methods) {
      const auto cell = find_cell(cells, workload, method);
      if (!cell) continue;
      KiviatSeries s;
      s.method = method;
      s.values = {kiviat_orient(cell->metrics.node_usage, true),
                  kiviat_orient(cell->metrics.bb_usage, true),
                  kiviat_orient(cell->metrics.ssd_usage, true),
                  kiviat_orient(cell->metrics.ssd_waste, false),
                  kiviat_orient(cell->metrics.avg_wait, false),
                  kiviat_orient(cell->metrics.avg_slowdown, false)};
      series.push_back(std::move(s));
    }
    const auto normalized = kiviat_normalize(std::move(series), 0.02);
    std::cout << '\n' << workload << "\n";
    ConsoleTable table({"method", "node", "bb", "ssd", "1/waste", "1/wait",
                        "1/slowdown", "area"},
                       {Align::kLeft, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight, Align::kRight,
                        Align::kRight, Align::kRight});
    for (const auto& s : normalized) {
      std::vector<std::string> row{s.method};
      for (double v : s.values) row.push_back(ConsoleTable::num(v, 2));
      row.push_back(ConsoleTable::num(kiviat_area(s), 3));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return cli.exit_code();
}
