#include "policies/bin_packing.hpp"

#include <algorithm>
#include <vector>

#include "policies/problem_builder.hpp"

namespace bbsched {

WindowDecision BinPackingPolicy::select(const WindowContext& context) const {
  const auto problem = build_window_problem(context);
  const std::size_t w = context.window.size();
  Genes genes(w, 0);
  problem->apply_pins(genes);

  // Normalizers: free capacity at cycle start (avoid division by zero for a
  // fully depleted resource — demand there is effectively unschedulable and
  // the feasibility check handles it).
  const double node_cap = std::max(1.0, context.free.nodes);
  const double bb_cap = std::max(1.0, context.free.bb_gb);
  const double ssd_cap = std::max(
      1.0, context.free.small_nodes * context.free.small_ssd_gb +
               context.free.large_nodes * context.free.large_ssd_gb);
  const bool ssd = context.free.ssd_enabled;

  // Remaining-resource vector, normalized; starts at 1 per dimension minus
  // what the pinned jobs already consume.
  auto demand_of = [&](std::size_t pos) {
    const JobRecord* job = context.window[pos];
    std::vector<double> d;
    d.reserve(ssd ? 3 : 2);
    d.push_back(static_cast<double>(job->nodes) / node_cap);
    d.push_back(job->bb_gb / bb_cap);
    if (ssd) {
      d.push_back(job->ssd_per_node_gb * static_cast<double>(job->nodes) /
                  ssd_cap);
    }
    return d;
  };
  std::vector<double> remaining(ssd ? 3 : 2, 1.0);
  for (std::size_t pos = 0; pos < w; ++pos) {
    if (!genes[pos]) continue;
    const auto d = demand_of(pos);
    for (std::size_t k = 0; k < remaining.size(); ++k) remaining[k] -= d[k];
  }

  // Greedy scan: admit the feasible job with the highest alignment score.
  while (true) {
    double best_score = -1.0;
    std::size_t best_pos = w;
    for (std::size_t pos = 0; pos < w; ++pos) {
      if (genes[pos]) continue;
      genes[pos] = 1;
      const bool fits = problem->feasible(genes);
      genes[pos] = 0;
      if (!fits) continue;
      const auto d = demand_of(pos);
      double score = 0;
      for (std::size_t k = 0; k < remaining.size(); ++k) {
        score += d[k] * std::max(0.0, remaining[k]);
      }
      // Ties: prefer the front of the window (base-scheduler order).
      if (score > best_score) {
        best_score = score;
        best_pos = pos;
      }
    }
    if (best_pos == w) break;
    genes[best_pos] = 1;
    const auto d = demand_of(best_pos);
    for (std::size_t k = 0; k < remaining.size(); ++k) remaining[k] -= d[k];
  }

  return decision_from_genes(context, *problem, genes);
}

}  // namespace bbsched
