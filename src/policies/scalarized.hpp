// scalarized.hpp — the Weighted_* and Constrained_* methods of §4.3 and §5.
//
// Both families convert the multi-resource problem into a single objective:
// weighted methods maximize a weighted sum of the utilizations; constrained
// methods maximize one utilization (the other capacities remain constraints,
// which every window problem enforces anyway).  The scalar objective is
// maximized with the same genetic machinery as BBSched (see scalar_ga.hpp).
#pragma once

#include <vector>

#include "core/ga_ops.hpp"
#include "sim/selection_policy.hpp"

namespace bbsched {

/// How to derive the weight vector once the objective count is known.
/// The same policy object works on two-objective (CPU+BB) and
/// four-objective (§5 SSD) windows.
struct WeightSpec {
  enum class Kind {
    kEqual,  ///< 1/k on every objective ("Weighted")
    kFixed,  ///< explicit weights, zero-padded to the objective count
  };
  Kind kind = Kind::kEqual;
  std::vector<double> fixed;  ///< used when kind == kFixed

  std::vector<double> resolve(std::size_t num_objectives) const;

  static WeightSpec equal() { return {Kind::kEqual, {}}; }
  static WeightSpec fixed_weights(std::vector<double> w) {
    return {Kind::kFixed, std::move(w)};
  }
  /// A single 1 at `objective` — the constrained methods.
  static WeightSpec only(std::size_t objective);
};

/// Weighted / constrained window selection via the scalarized GA.
class ScalarizedPolicy : public SelectionPolicy {
 public:
  ScalarizedPolicy(std::string name, WeightSpec spec, GaParams params)
      : name_(std::move(name)), spec_(std::move(spec)), params_(params) {
    params_.validate();
  }

  WindowDecision select(const WindowContext& context) const override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  WeightSpec spec_;
  GaParams params_;
};

}  // namespace bbsched
