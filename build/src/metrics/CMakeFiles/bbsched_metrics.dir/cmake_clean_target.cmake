file(REMOVE_RECURSE
  "libbbsched_metrics.a"
)
