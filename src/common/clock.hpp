// clock.hpp — the single monotonic-clock helper shared by every timing
// consumer: Stopwatch (bench/solver timing), TraceSpan (Chrome trace spans)
// and the structured-log timestamps.  One clock and one process epoch mean
// the three timelines cannot drift apart — a span's ts and a stopwatch's
// elapsed_seconds measured over the same region agree to clock resolution.
#pragma once

#include <chrono>

namespace bbsched {

/// The project-wide monotonic clock.
using MonoClock = std::chrono::steady_clock;

inline MonoClock::time_point mono_now() { return MonoClock::now(); }

/// Fixed process-wide epoch, captured on first use (thread-safe static
/// initialization).  All wall timestamps — log `ts=` fields and trace event
/// `ts` values — are seconds since this point.
inline MonoClock::time_point process_epoch() {
  static const MonoClock::time_point epoch = MonoClock::now();
  return epoch;
}

/// Seconds between two time points.
inline double seconds_between(MonoClock::time_point from,
                              MonoClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Seconds since the process epoch.
inline double mono_seconds() { return seconds_between(process_epoch(), mono_now()); }

}  // namespace bbsched
