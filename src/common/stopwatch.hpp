// stopwatch.hpp — wall-clock timing of scheduler decisions.
//
// The paper's feasibility argument hinges on time-to-solution (Figures 2 and
// 4, the 15-30 s response requirement), so decision timing is a first-class
// measurement, not an afterthought.
#pragma once

#include "common/clock.hpp"

namespace bbsched {

/// Monotonic wall-clock stopwatch on the shared MonoClock (clock.hpp), the
/// same timeline the trace spans use, so bench and trace timings agree.
class Stopwatch {
 public:
  Stopwatch() : start_(mono_now()) {}

  void restart() { start_ = mono_now(); }

  /// Seconds elapsed since construction or last restart().
  double elapsed_seconds() const { return seconds_between(start_, mono_now()); }

 private:
  MonoClock::time_point start_;
};

}  // namespace bbsched
