file(REMOVE_RECURSE
  "libbbsched_common.a"
)
