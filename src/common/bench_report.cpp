#include "common/bench_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/build_info.hpp"
#include "common/fault.hpp"

namespace bbsched {

namespace {

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void append_string(std::string& out, const std::string& s) {
  out.push_back('"');
  json_escape(out, s);
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; demote to a string
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\"%g\"", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_params_object(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& params) {
  out.push_back('{');
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i) out.push_back(',');
    append_string(out, params[i].first);
    out.push_back(':');
    append_string(out, params[i].second);
  }
  out.push_back('}');
}

}  // namespace

double bench_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::min(1.0, std::max(0.0, q));
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

void BenchReport::set_param(const std::string& key, const std::string& value) {
  for (auto& [k, v] : params_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  params_.emplace_back(key, value);
}

BenchSeries& BenchReport::add_series(
    std::string series_name,
    std::vector<std::pair<std::string, std::string>> params, std::string unit,
    std::string direction) {
  BenchSeries series;
  series.name = std::move(series_name);
  series.params = std::move(params);
  series.unit = std::move(unit);
  series.direction = std::move(direction);
  series_.push_back(std::move(series));
  return series_.back();
}

void BenchReport::add_value(
    const std::string& series_name,
    std::vector<std::pair<std::string, std::string>> params, double value,
    const std::string& unit, const std::string& direction) {
  add_series(series_name, std::move(params), unit, direction)
      .add_sample(value);
}

void BenchReport::set_top_phases(std::vector<PhaseRow> phases) {
  top_phases_ = std::move(phases);
  have_top_phases_ = true;
}

std::string BenchReport::to_json() const {
  std::string out;
  out += "{\n  \"schema\": ";
  append_string(out, kBenchSchema);
  out += ",\n  \"name\": ";
  append_string(out, name_);
  out += ",\n  \"provenance\": {";
  const auto provenance = provenance_pairs();
  for (std::size_t i = 0; i < provenance.size(); ++i) {
    if (i) out.push_back(',');
    append_string(out, provenance[i].first);
    out.push_back(':');
    append_string(out, provenance[i].second);
  }
  out += "},\n  \"params\": ";
  append_params_object(out, params_);
  out += ",\n  \"series\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const BenchSeries& s = series_[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"name\": ";
    append_string(out, s.name);
    out += ", \"params\": ";
    append_params_object(out, s.params);
    out += ", \"unit\": ";
    append_string(out, s.unit);
    out += ", \"direction\": ";
    append_string(out, s.direction);
    out += ", \"repeats\": ";
    out += std::to_string(s.repeats.size());
    const double mn =
        s.repeats.empty()
            ? 0.0
            : *std::min_element(s.repeats.begin(), s.repeats.end());
    const double mx =
        s.repeats.empty()
            ? 0.0
            : *std::max_element(s.repeats.begin(), s.repeats.end());
    double sum = 0;
    for (double v : s.repeats) sum += v;
    out += ", \"median\": ";
    append_number(out, bench_quantile(s.repeats, 0.5));
    out += ", \"p10\": ";
    append_number(out, bench_quantile(s.repeats, 0.1));
    out += ", \"p90\": ";
    append_number(out, bench_quantile(s.repeats, 0.9));
    out += ", \"mean\": ";
    append_number(out, s.repeats.empty()
                           ? 0.0
                           : sum / static_cast<double>(s.repeats.size()));
    out += ", \"min\": ";
    append_number(out, mn);
    out += ", \"max\": ";
    append_number(out, mx);
    out += "}";
  }
  out += "\n  ],\n  \"profile_top_phases\": [";
  for (std::size_t i = 0; i < top_phases_.size(); ++i) {
    const PhaseRow& row = top_phases_[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"phase\": ";
    append_string(out, row.path);
    out += ", \"count\": ";
    out += std::to_string(row.count);
    out += ", \"total_s\": ";
    append_number(out, row.total_s);
    out += ", \"self_s\": ";
    append_number(out, row.self_s);
    out += "}";
  }
  out += top_phases_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void BenchReport::write_file(const std::string& path) {
  if (!have_top_phases_ && profiler_enabled()) {
    set_top_phases(profile_top_phases(profiler_report(), 10));
  }
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;  // best effort; atomic_write_file reports failures
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  atomic_write_file(path, to_json(), "bench.write", path);
}

std::string bench_out_path(const std::string& out, const std::string& name) {
  const bool is_file =
      out.size() >= 5 && out.compare(out.size() - 5, 5, ".json") == 0;
  if (is_file) return out;
  std::string path = out;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  return path + "BENCH_" + name + ".json";
}

}  // namespace bbsched
