// window_problems.hpp — representative window problems for the solver
// benches (Figures 2 and 4).
//
// The paper builds these from "the first 1000 jobs from a Theta workload".
// To make the second objective non-trivial (most original Theta jobs carry
// no burst-buffer request), the jobs are first passed through the S2
// expansion, mirroring how the evaluation's interesting decisions arise;
// free capacity is set to half the machine so selections genuinely contend.
#pragma once

#include <vector>

#include "core/multi_resource_problem.hpp"
#include "workload/generator.hpp"
#include "workload/synthetic.hpp"

namespace bbsched::benchutil {

inline std::vector<MultiResourceProblem> sample_window_problems(
    std::size_t window, std::size_t count, std::uint64_t seed = 42) {
  const auto model = theta_model(1000);
  const Workload original = generate_workload(model, seed);
  BbExpansionParams s2;
  s2.target_fraction = 0.75;
  s2.pool = sample_bb_pool(model.bb_pareto_alpha, model.bb_min, model.bb_max,
                           s2.pool_threshold, 2048, seed + 1);
  const Workload workload = expand_bb_requests(original, s2, seed + 2);

  std::vector<MultiResourceProblem> problems;
  for (std::size_t p = 0; p < count; ++p) {
    std::vector<double> nodes, bb;
    for (std::size_t i = 0; i < window; ++i) {
      const auto& job =
          workload.jobs[(p * window + i) % workload.jobs.size()];
      nodes.push_back(static_cast<double>(job.nodes));
      bb.push_back(job.bb_gb);
    }
    problems.push_back(MultiResourceProblem::cpu_bb(
        nodes, bb, static_cast<double>(workload.machine.nodes) * 0.5,
        workload.machine.schedulable_bb_gb() * 0.5));
  }
  return problems;
}

}  // namespace bbsched::benchutil
