#include "core/ga.hpp"

#include <algorithm>
#include <cassert>

#include "common/profiler.hpp"
#include "common/stopwatch.hpp"
#include "core/solver_telemetry.hpp"

namespace bbsched {

MooGaSolver::MooGaSolver(GaParams params) : params_(params) {
  params_.validate();
}

std::vector<Chromosome> select_next_generation(std::vector<Chromosome> pool,
                                               std::size_t target_size,
                                               bool dedupe) {
  // Split the pool into Set 1 (non-dominated) and Set 2 (dominated).
  Front points;
  points.reserve(pool.size());
  for (const auto& c : pool) points.push_back(c.objectives);
  const auto nd = non_dominated_indices(points);
  std::vector<bool> in_set1(pool.size(), false);
  for (std::size_t idx : nd) in_set1[idx] = true;

  std::vector<Chromosome> set1, set2;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    (in_set1[i] ? set1 : set2).push_back(std::move(pool[i]));
  }
  // "Newer chromosomes have higher priorities": stable sort by age ascending
  // preserves pool order among equal ages (children follow parents, so among
  // age-0 chromosomes earlier creation wins, which is deterministic).
  auto by_age = [](const Chromosome& a, const Chromosome& b) {
    return a.age < b.age;
  };
  std::stable_sort(set1.begin(), set1.end(), by_age);
  std::stable_sort(set2.begin(), set2.end(), by_age);

  std::vector<Chromosome> next;
  next.reserve(target_size);
  auto push_unique = [&](Chromosome&& c) {
    if (next.size() >= target_size) return;
    if (dedupe) {
      for (const auto& existing : next) {
        if (existing.same_genes(c)) return;
      }
    }
    next.push_back(std::move(c));
  };
  for (auto& c : set1) push_unique(std::move(c));
  for (auto& c : set2) push_unique(std::move(c));
  // If deduplication left the generation short (tiny windows have few
  // distinct selections), refill with duplicates of the best members so the
  // population size stays P as the paper assumes.
  std::size_t refill = 0;
  while (next.size() < target_size && !next.empty()) {
    next.push_back(next[refill % next.size()]);
    ++refill;
  }
  return next;
}

MooResult MooGaSolver::solve(const MooProblem& problem) const {
  Rng rng(params_.seed);
  return solve(problem, rng);
}

MooResult MooGaSolver::solve(const MooProblem& problem, Rng& rng) const {
  MooResult result;
  PROF_PHASE("moo_ga.solve");
  TraceSpan solve_span("moo_ga.solve", "solver",
                       {{"vars", problem.num_vars()},
                        {"objectives", problem.num_objectives()}});
  const bool tracing = trace_enabled();
  Stopwatch watch;
  const auto population_size =
      static_cast<std::size_t>(params_.population_size);
  auto population =
      random_population(problem, population_size, rng, &result.repairs);
  result.evaluations += population.size();

  for (int g = 0; g < params_.generations; ++g) {
    const double gen_start = tracing ? mono_seconds() : 0.0;
    const std::size_t repairs_before = result.repairs;
    auto children = [&] {
      // Offspring phase folds crossover/mutate/repair and the fitness
      // evaluations make_children performs into one per-generation span.
      PROF_PHASE("moo_ga.offspring");
      return make_children(problem, population, population_size,
                           params_.mutation_rate, rng, &result.repairs);
    }();
    result.evaluations += children.size();
    std::vector<Chromosome> pool = std::move(population);
    pool.insert(pool.end(), std::make_move_iterator(children.begin()),
                std::make_move_iterator(children.end()));
    {
      PROF_PHASE("moo_ga.select");
      population = select_next_generation(std::move(pool), population_size,
                                          params_.dedupe_survivors);
    }
    for (auto& c : population) ++c.age;
    ++result.generations;
    if (tracing) {
      trace_generation(
          "moo_ga.generation", g, gen_start, mono_seconds(),
          generation_telemetry(population, result.repairs - repairs_before));
    }
  }

  // Final Pareto set: non-dominated members of the last generation,
  // deduplicated by genes.
  auto front = pareto_front(population);
  std::vector<Chromosome> unique;
  for (auto& c : front) {
    const bool seen = std::any_of(
        unique.begin(), unique.end(),
        [&](const Chromosome& u) { return u.same_genes(c); });
    if (!seen) unique.push_back(std::move(c));
  }
  result.pareto_set = std::move(unique);
  result.solve_seconds = watch.elapsed_seconds();
  solve_span.add_arg({"pareto_size", result.pareto_set.size()});
  solve_span.add_arg({"evaluations", result.evaluations});
  solve_span.add_arg({"repairs", result.repairs});
  if (metrics_enabled()) record_solver_metrics(result);
  return result;
}

}  // namespace bbsched
