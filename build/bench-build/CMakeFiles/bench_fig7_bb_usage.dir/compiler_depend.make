# Empty compiler generated dependencies file for bench_fig7_bb_usage.
# This may be replaced when dependencies are built.
