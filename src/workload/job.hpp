// job.hpp — the job record shared by traces, generators and the simulator.
//
// Mirrors the fields the paper's traces carry (Table 2): submission time,
// requested node count, requested burst-buffer size, runtime estimate
// (walltime) and — reconstructed from the actual log — the true runtime.
// The §5 case study adds a per-node local-SSD request.  Dependencies are
// supported by the scheduling window (§3.1) even though both studied traces
// lack them ("we suppose all jobs are independent").
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace bbsched {

using JobId = std::uint64_t;

/// One job as submitted by a user.
struct JobRecord {
  JobId id = 0;
  Time submit_time = 0;    ///< seconds since trace start
  Time runtime = 0;        ///< actual execution time (from the log)
  Time walltime = 0;       ///< user-provided runtime estimate (>= runtime)
  NodeCount nodes = 1;     ///< requested compute nodes
  GigaBytes bb_gb = 0;     ///< requested shared burst buffer (0 = none)
  GigaBytes ssd_per_node_gb = 0;  ///< requested local SSD per node (§5)
  std::vector<JobId> dependencies;  ///< jobs that must complete first

  bool requests_bb() const { return bb_gb > 0; }
  bool requests_ssd() const { return ssd_per_node_gb > 0; }

  /// node-seconds this job consumes while running.
  double node_seconds() const {
    return static_cast<double>(nodes) * runtime;
  }
};

/// Validate invariants of a record (non-negative times, nodes >= 1,
/// walltime >= runtime).  Throws std::invalid_argument with the job id on
/// violation; generators and trace readers call this on every record.
void validate_job(const JobRecord& job);

}  // namespace bbsched
