// test_profiler_disabled.cpp — compile-time kill switch.  With
// -DBBSCHED_PROFILER_DISABLED (defined here before the include, as a build
// would on the command line) PROF_PHASE must expand to nothing: no ProfPhase
// object, no atomic load, no recording even while the runtime gate is on.
// This is the "provably zero cost" half of the overhead acceptance bar; the
// runtime-off cost is pinned by bench_overhead's profiler=off series.
#define BBSCHED_PROFILER_DISABLED
#include "common/profiler.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

TEST(ProfilerDisabledMacro, ExpandsToNoOp) {
  set_profiler_enabled(true);
  profiler_clear();
  {
    // Even with the runtime gate wide open, the disabled macro records
    // nothing — it never constructs a ProfPhase at all.
    PROF_PHASE("invisible");
    PROF_PHASE("also.invisible");
  }
  const ProfileReport report = profiler_report();
  set_profiler_enabled(false);
  profiler_clear();
  EXPECT_TRUE(report.empty());
}

TEST(ProfilerDisabledMacro, UsableInExpressionStatementPositions) {
  // The no-op form must still parse everywhere the real macro does.
  if (true) PROF_PHASE("branch");
  for (int i = 0; i < 1; ++i) PROF_PHASE("loop");
  PROF_PHASE("plain");
  SUCCEED();
}

}  // namespace
}  // namespace bbsched
