// naive.hpp — the Baseline method of §4.3.
//
// Mirrors Slurm's burst-buffer co-scheduling ("naive method", §1): allocate
// jobs strictly in queue order until the next job fails to fit *any*
// resource, then stop.  The depleted resource blocks the queue even when
// later jobs would fit — exactly the behaviour Table 1 illustrates (J1
// admitted, J2's burst-buffer demand blocks, J4 reaches the machine only via
// EASY backfilling, which the simulator runs after every method).
#pragma once

#include "sim/selection_policy.hpp"

namespace bbsched {

class NaivePolicy : public SelectionPolicy {
 public:
  WindowDecision select(const WindowContext& context) const override;
  std::string name() const override { return "Baseline"; }
};

}  // namespace bbsched
