# Empty compiler generated dependencies file for bench_fig14_ssd_kiviat.
# This may be replaced when dependencies are built.
