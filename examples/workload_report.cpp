// workload_report — inspect the reproduction's workload suites.
//
// Prints Table 2-style summaries and Figure 5-style burst-buffer histograms
// for the ten §4 workloads (and, with --ssd, the six §5 workloads), plus the
// offered node/BB load ratios that determine which resource binds.  Use this
// to understand or re-calibrate the synthetic models before running the
// expensive scheduling grids.
#include <cstdio>
#include <iostream>

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "exp/experiment.hpp"
#include "workload/wl_stats.hpp"

int main(int argc, char** argv) {
  using namespace bbsched;
  bool ssd = false;
  bool histograms = false;
  std::int64_t jobs = 0;
  ArgParser parser("bbsched workload_report: summarize the workload suites");
  parser.add_bool("ssd", &ssd, "report the §5 SSD suite instead of §4");
  parser.add_bool("histograms", &histograms,
                  "also print Figure 5 BB histograms");
  parser.add_int("jobs", &jobs, "override jobs per workload (0 = env/default)");
  try {
    if (!parser.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  ExperimentConfig config = ExperimentConfig::from_env();
  if (jobs > 0) config.jobs_per_workload = static_cast<std::size_t>(jobs);
  const auto suite =
      ssd ? build_ssd_workloads(config) : build_main_workloads(config);

  ConsoleTable table(
      {"workload", "jobs", "bb-jobs", "bb-frac", "bb-volume", "node-load",
       "bb-load"},
      {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
       Align::kRight, Align::kRight, Align::kRight});
  for (const auto& entry : suite) {
    const WorkloadSummary s = summarize(entry.workload);
    table.add_row({entry.label, std::to_string(s.num_jobs),
                   std::to_string(s.jobs_with_bb),
                   ConsoleTable::pct(s.bb_fraction, 1),
                   format_capacity(s.bb_total),
                   ConsoleTable::num(s.offered_load, 2),
                   ConsoleTable::num(s.offered_bb_load, 2)});
  }
  table.print(std::cout);

  if (histograms) {
    for (const auto& entry : suite) {
      std::cout << '\n';
      print_bb_histogram(entry.workload, std::cout, 10);
    }
  }
  return 0;
}
