// Self-test fixture: planted direct-write violation in campaign-output
// code.  Never compiled.
#include <fstream>
#include <string>

void planted_raw_ofstream(const std::string& path) {
  std::ofstream out(path);
  out << "workload,method\n";
}
