# Empty dependencies file for bbsched_metrics.
# This may be replaced when dependencies are built.
