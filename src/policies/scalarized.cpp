#include "policies/scalarized.hpp"

#include <stdexcept>

#include "core/scalar_ga.hpp"
#include "policies/problem_builder.hpp"

namespace bbsched {

std::vector<double> WeightSpec::resolve(std::size_t num_objectives) const {
  if (num_objectives == 0) {
    throw std::invalid_argument("WeightSpec: zero objectives");
  }
  if (kind == Kind::kEqual) {
    return std::vector<double>(num_objectives,
                               1.0 / static_cast<double>(num_objectives));
  }
  std::vector<double> weights = fixed;
  weights.resize(num_objectives, 0.0);  // pad extra objectives with zero
  return weights;
}

WeightSpec WeightSpec::only(std::size_t objective) {
  std::vector<double> w(objective + 1, 0.0);
  w[objective] = 1.0;
  return fixed_weights(std::move(w));
}

WindowDecision ScalarizedPolicy::select(const WindowContext& context) const {
  const auto problem = build_window_problem(context);
  const ScalarGaSolver solver(params_,
                              spec_.resolve(problem->num_objectives()));
  const ScalarResult result = solver.solve(*problem, *context.rng);
  WindowDecision decision =
      decision_from_genes(context, *problem, result.best.genes);
  decision.evaluations = result.evaluations;
  decision.pareto_size = 1;
  return decision;
}

}  // namespace bbsched
