# Empty dependencies file for bbsched_policies.
# This may be replaced when dependencies are built.
