// Unit tests for the time-indexed availability planner: span bookkeeping,
// boundary semantics (half-open spans, touching intervals, zero durations),
// saturation, exact capacity restoration on removal, and earliest_fit edge
// cases.  The randomized equivalence against NaivePlanner lives in
// test_planner_differential.cpp.
#include "common/planner.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bbsched {
namespace {

std::vector<double> vec(std::initializer_list<double> v) { return v; }

TEST(Planner, EmptyTimelineIsFullCapacityEverywhere) {
  const Planner p(vec({10, 5}));
  EXPECT_EQ(p.avail_at(-100), vec({10, 5}));
  EXPECT_EQ(p.avail_at(0), vec({10, 5}));
  EXPECT_EQ(p.avail_at(1e12), vec({10, 5}));
  EXPECT_EQ(p.avail_during(0, 1e9), vec({10, 5}));
  EXPECT_EQ(p.num_points(), 0u);
}

TEST(Planner, SpanReducesAvailabilityOnHalfOpenInterval) {
  Planner p(vec({10}));
  p.add_span(10, 20, vec({4}));  // [10, 30)
  EXPECT_EQ(p.avail_at(9.999), vec({10}));
  EXPECT_EQ(p.avail_at(10), vec({6}));
  EXPECT_EQ(p.avail_at(29.999), vec({6}));
  EXPECT_EQ(p.avail_at(30), vec({10}));  // end is exclusive
  EXPECT_EQ(p.num_points(), 2u);
}

TEST(Planner, TouchingSpansLeaveNoGapAndNoOverlap) {
  Planner p(vec({10}));
  p.add_span(0, 10, vec({10}));   // [0, 10) saturates
  p.add_span(10, 10, vec({10}));  // [10, 20) saturates
  EXPECT_EQ(p.avail_at(5), vec({0}));
  EXPECT_EQ(p.avail_at(10), vec({0}));  // second span owns t=10
  EXPECT_EQ(p.avail_at(15), vec({0}));
  EXPECT_EQ(p.avail_at(20), vec({10}));
  // A zero-duration window exactly at the seam sees the second span only.
  EXPECT_EQ(p.avail_during(10, 0), vec({0}));
  EXPECT_EQ(p.earliest_fit(0, 5, vec({1})), 20.0);
}

TEST(Planner, ZeroDurationSpanOccupiesNothing) {
  Planner p(vec({10}));
  const SpanId id = p.add_span(5, 0, vec({7}), 42);
  EXPECT_EQ(p.avail_at(5), vec({10}));
  EXPECT_EQ(p.num_points(), 0u);
  EXPECT_EQ(p.num_spans(), 1u);
  // It still shows up in the release schedule with end == start...
  int seen = 0;
  p.for_each_release([&](Time end, const Planner::SpanInfo& s) {
    EXPECT_EQ(end, 5.0);
    EXPECT_EQ(s.tag, 42u);
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 1);
  // ...and removal is symmetric.
  p.remove_span(id);
  EXPECT_EQ(p.num_spans(), 0u);
}

TEST(Planner, OverlappingSpansStack) {
  Planner p(vec({10, 100}));
  p.add_span(0, 10, vec({3, 20}));
  p.add_span(5, 10, vec({4, 30}));
  EXPECT_EQ(p.avail_at(2), vec({7, 80}));
  EXPECT_EQ(p.avail_at(7), vec({3, 50}));
  EXPECT_EQ(p.avail_at(12), vec({6, 70}));
  EXPECT_EQ(p.avail_during(0, 15), vec({3, 50}));
}

TEST(Planner, RemoveSpanRestoresExactCapacityAndCollapsesPoints) {
  Planner p(vec({10, 100}));
  const SpanId a = p.add_span(0, 10, vec({3, 20}));
  const SpanId b = p.add_span(5, 10, vec({4, 30}));
  const SpanId c = p.add_span(5, 5, vec({2, 10}));  // shares b's start
  p.remove_span(b);
  EXPECT_EQ(p.avail_at(7), vec({5, 70}));   // a + c still active
  EXPECT_EQ(p.avail_at(12), vec({10, 100}));
  p.remove_span(a);
  p.remove_span(c);
  // Everything released: the timeline is empty again, exactly.
  EXPECT_EQ(p.num_points(), 0u);
  EXPECT_EQ(p.num_spans(), 0u);
  EXPECT_EQ(p.avail_at(7), vec({10, 100}));
}

TEST(Planner, FullSaturationBlocksUntilRelease) {
  Planner p(vec({8}));
  p.add_span(0, 50, vec({8}));
  EXPECT_FALSE(p.fits_during(10, 1, vec({1})));
  EXPECT_EQ(p.earliest_fit(0, 10, vec({1})), 50.0);
  EXPECT_EQ(p.earliest_fit(0, 10, vec({8})), 50.0);
}

TEST(Planner, EarliestFitFindsGapBetweenReservations) {
  Planner p(vec({10}));
  p.add_span(0, 10, vec({8}));    // [0,10): 2 free
  p.add_span(25, 10, vec({8}));   // [25,35): 2 free
  // A 5-node/10s request fits only in the [10,25) gap or after 35.
  EXPECT_EQ(p.earliest_fit(0, 10, vec({5})), 10.0);
  // A 15s request does not fit the gap; it must wait for the second span.
  EXPECT_EQ(p.earliest_fit(0, 16, vec({5})), 35.0);
  // A 2-node request fits immediately.
  EXPECT_EQ(p.earliest_fit(0, 100, vec({2})), 0.0);
}

TEST(Planner, EarliestFitRespectsAfterInsideInterval) {
  Planner p(vec({10}));
  p.add_span(0, 10, vec({8}));
  EXPECT_EQ(p.earliest_fit(3, 1, vec({2})), 3.0);   // fits right where asked
  EXPECT_EQ(p.earliest_fit(3, 1, vec({5})), 10.0);  // must wait for release
}

TEST(Planner, EarliestFitNeverCases) {
  Planner p(vec({10}));
  // Over machine capacity: never.
  EXPECT_EQ(p.earliest_fit(0, 1, vec({11})), kPlannerNever);
  // Capacity held forever by an infinite-duration span: never.
  p.add_span(0, kPlannerNever, vec({6}));
  EXPECT_EQ(p.earliest_fit(0, 1, vec({5})), kPlannerNever);
  EXPECT_EQ(p.earliest_fit(0, 1, vec({4})), 0.0);
}

TEST(Planner, InfiniteDurationSpanNeverReleases) {
  Planner p(vec({10}));
  const SpanId id = p.add_span(5, kPlannerNever, vec({4}), 9);
  EXPECT_EQ(p.avail_at(1e18), vec({6}));
  EXPECT_EQ(p.num_points(), 1u);  // no end point at infinity
  int seen = 0;
  p.for_each_release([&](Time end, const Planner::SpanInfo&) {
    EXPECT_EQ(end, kPlannerNever);
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 1);
  p.remove_span(id);
  EXPECT_EQ(p.num_points(), 0u);
  EXPECT_EQ(p.avail_at(1e18), vec({10}));
}

TEST(Planner, MultiResourceFitRequiresEveryDimension) {
  Planner p(vec({10, 100, 4}));
  p.add_span(0, 10, vec({2, 90, 0}));
  // Nodes and SSD fit, burst buffer does not.
  EXPECT_FALSE(p.fits_during(0, 5, vec({5, 20, 1})));
  EXPECT_EQ(p.earliest_fit(0, 5, vec({5, 20, 1})), 10.0);
}

TEST(Planner, ForEachReleaseOrdersByEndThenTag) {
  Planner p(vec({10}));
  p.add_span(0, 30, vec({1}), 7);
  p.add_span(0, 10, vec({1}), 5);
  p.add_span(0, 10, vec({1}), 3);  // same end as tag 5: tag breaks the tie
  std::vector<std::uint64_t> tags;
  p.for_each_release([&](Time, const Planner::SpanInfo& s) {
    tags.push_back(s.tag);
    return true;
  });
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{3, 5, 7}));
  // Early exit stops the walk.
  tags.clear();
  p.for_each_release([&](Time, const Planner::SpanInfo& s) {
    tags.push_back(s.tag);
    return false;
  });
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{3}));
}

TEST(Planner, SpanAccessorAndErrors) {
  Planner p(vec({10}));
  const SpanId id = p.add_span(2, 3, vec({4}), 11);
  const Planner::SpanInfo& s = p.span(id);
  EXPECT_EQ(s.start, 2.0);
  EXPECT_EQ(s.end, 5.0);
  EXPECT_EQ(s.tag, 11u);
  EXPECT_EQ(s.request, vec({4}));
  EXPECT_THROW(p.span(id + 1), std::logic_error);
  EXPECT_THROW(p.remove_span(id + 1), std::logic_error);
  p.remove_span(id);
  EXPECT_THROW(p.remove_span(id), std::logic_error);
}

TEST(Planner, RejectsMalformedInputs) {
  EXPECT_THROW(Planner(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Planner(vec({-1})), std::invalid_argument);
  Planner p(vec({10, 10}));
  EXPECT_THROW(p.add_span(0, 1, vec({1})), std::invalid_argument);  // size
  EXPECT_THROW(p.add_span(0, 1, vec({-1, 0})), std::invalid_argument);
  EXPECT_THROW(p.add_span(0, -1, vec({1, 1})), std::invalid_argument);
  EXPECT_THROW(p.add_span(kPlannerNever, 1, vec({1, 1})),
               std::invalid_argument);
  EXPECT_THROW(p.avail_during(0, -1), std::invalid_argument);
  EXPECT_THROW(p.earliest_fit(0, -1, vec({1, 1})), std::invalid_argument);
  // Query times must be finite: availability exactly "at infinity" is
  // ill-defined for half-open spans.
  EXPECT_THROW(p.avail_at(kPlannerNever), std::invalid_argument);
  EXPECT_THROW(p.earliest_fit(kPlannerNever, 1, vec({1, 1})),
               std::invalid_argument);
}

TEST(NaivePlanner, MatchesPlannerOnWorkedExample) {
  // A miniature hand-checked scenario; the 10k-sequence differential suite
  // generalizes this.
  Planner p(vec({10, 100}));
  NaivePlanner n(vec({10, 100}));
  p.add_span(0, 10, vec({8, 50}), 1);
  n.add_span(0, 10, vec({8, 50}), 1);
  p.add_span(5, 20, vec({2, 10}), 2);
  n.add_span(5, 20, vec({2, 10}), 2);
  for (const Time t : {-1.0, 0.0, 4.0, 5.0, 9.0, 10.0, 24.0, 25.0, 30.0}) {
    EXPECT_EQ(p.avail_at(t), n.avail_at(t)) << "t=" << t;
  }
  EXPECT_EQ(p.avail_during(0, 25), n.avail_during(0, 25));
  EXPECT_EQ(p.earliest_fit(0, 5, vec({5, 20})),
            n.earliest_fit(0, 5, vec({5, 20})));
  EXPECT_EQ(p.earliest_fit(0, 5, vec({9, 20})),
            n.earliest_fit(0, 5, vec({9, 20})));
}

}  // namespace
}  // namespace bbsched
