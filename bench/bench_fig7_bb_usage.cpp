// bench_fig7_bb_usage — reproduce Figure 7: burst-buffer usage of the eight
// methods on the ten §4 workloads.
//
// Expected shape: every method except Constrained_CPU improves BB usage over
// the baseline; BBSched is best (or tied) on all workloads; the BB-biased
// methods gain BB usage at the cost of node usage (Figure 6).
#include <iostream>

#include "bench_util.hpp"
#include "exp/grid.hpp"
#include "policies/factory.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig7_bb_usage");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const auto config = ExperimentConfig::from_env();
  const auto results = ensure_main_grid(config);
  benchutil::record_grid_cells(cli.bench(), "main_grid", results.cells);
  std::cout << "Figure 7: burst-buffer usage by workload and method\n\n";
  benchutil::print_matrix(results.cells, benchutil::main_workload_labels(),
                          standard_method_names(),
                          [](const GridCell& c) { return c.metrics.bb_usage; },
                          /*percent=*/true);
  return cli.exit_code();
}
