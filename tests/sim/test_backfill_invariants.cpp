// Invariant tests for EASY backfilling, beyond the worked examples in
// test_easy_backfill.cpp:
//
//  1. Head-never-delayed: committing a pass's backfill starts and
//     recomputing the head's shadow time must never move the reservation
//     later — on any randomly generated scenario.
//  2. Capacity-never-exceeded: replaying the outcomes of full simulations
//     as a timed event sweep, the sum of allocated nodes, burst buffer and
//     SSD-tier nodes must stay within machine capacity at every instant.
//
// Both properties run against the legacy event-walk backfill AND the
// planner-backed overload, asserting the two produce identical shadow times
// and backfill picks on every scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "policies/factory.hpp"
#include "sim/easy_backfill.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/synthetic.hpp"

namespace bbsched {
namespace {

JobRecord make_job(JobId id, NodeCount nodes, Time walltime, GigaBytes bb) {
  JobRecord j;
  j.id = id;
  j.nodes = nodes;
  j.runtime = walltime;
  j.walltime = walltime;
  j.bb_gb = bb;
  return j;
}

// Property 1: a backfill pass must not delay the head's reservation.
class BackfillHeadProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackfillHeadProperty, CommittedBackfillsNeverDelayHead) {
  Rng rng(GetParam() * 131 + 17);
  const NodeCount machine_nodes = rng.uniform_int(50, 200);
  MachineConfig config;
  config.name = "prop";
  config.nodes = machine_nodes;
  config.burst_buffer_gb = tb(static_cast<double>(rng.uniform_int(5, 50)));
  MachineState state(config);
  MachineState planner_state(config);  // mirror, driven by the planner
  planner_state.enable_planner();

  // Random running jobs, allocated within whatever is still free.  At
  // least one, so the head below genuinely has to wait.
  std::vector<RunningJobInfo> running;
  std::vector<JobRecord> storage;  // keep candidate JobRecords alive
  const int n_running = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < n_running; ++r) {
    if (state.free_nodes() < 1) break;
    Allocation alloc;
    alloc.small_nodes = rng.uniform_int(1, std::max<NodeCount>(
        1, state.free_nodes() / 2));
    alloc.bb_gb = rng.uniform(0.0, state.free_bb() / 2);
    const JobId id = 1000 + r;
    const Time expected_end = rng.uniform(10.0, 500.0);
    state.allocate(id, alloc);
    planner_state.allocate_timed(id, alloc, 0, expected_end);
    running.push_back({id, expected_end, alloc});
  }

  // A head that does not fit right now (otherwise shadow is trivially
  // `now` and nothing can delay it).
  const JobRecord head = make_job(
      1, rng.uniform_int(state.free_nodes() + 1, machine_nodes),
      rng.uniform(100.0, 2000.0), rng.uniform(0.0, config.burst_buffer_gb));

  // Random candidate pool: a mix of short and long, small and large.
  std::vector<BackfillCandidate> candidates;
  for (std::size_t k = 0; k < 6; ++k) {
    storage.push_back(make_job(
        static_cast<JobId>(10 + k),
        rng.uniform_int(1, std::max<NodeCount>(1, machine_nodes / 3)),
        rng.uniform(10.0, 800.0),
        rng.bernoulli(0.5) ? rng.uniform(0.0, config.burst_buffer_gb / 4)
                           : 0.0));
  }
  for (std::size_t k = 0; k < storage.size(); ++k) {
    candidates.push_back({&storage[k], k});
  }

  const Time now = 0;
  const auto pass =
      plan_easy_backfill(state, &head, running, candidates, now);

  // Differential: the planner-backed overload must agree exactly with the
  // legacy event walk — same shadow time, same picks, same allocations.
  const auto planner_pass =
      plan_easy_backfill(planner_state, &head, candidates, now);
  ASSERT_EQ(planner_pass.shadow_time, pass.shadow_time)
      << "planner and legacy backfill disagree on the shadow time";
  ASSERT_EQ(planner_pass.started.size(), pass.started.size());
  for (std::size_t i = 0; i < pass.started.size(); ++i) {
    EXPECT_EQ(planner_pass.started[i].key, pass.started[i].key);
    EXPECT_EQ(planner_pass.started[i].alloc.small_nodes,
              pass.started[i].alloc.small_nodes);
    EXPECT_EQ(planner_pass.started[i].alloc.large_nodes,
              pass.started[i].alloc.large_nodes);
    EXPECT_EQ(planner_pass.started[i].alloc.bb_gb,
              pass.started[i].alloc.bb_gb);
  }

  // Every planned start must fit the free capacity it was planned against.
  auto post = running;
  for (const auto& start : pass.started) {
    ASSERT_TRUE(state.fits(start.alloc))
        << "candidate " << start.key << " does not fit current capacity";
    const JobRecord& job = storage[start.key];
    state.allocate(100 + static_cast<JobId>(start.key), start.alloc);
    planner_state.allocate_timed(100 + static_cast<JobId>(start.key),
                                 start.alloc, now, now + job.walltime);
    post.push_back({100 + static_cast<JobId>(start.key),
                    now + job.walltime, start.alloc});
  }

  // Recompute the reservation with the backfills committed and no further
  // candidates: the head must be startable no later than before.  Both
  // implementations must still agree.
  const auto after = plan_easy_backfill(state, &head, post, {}, now);
  EXPECT_LE(after.shadow_time, pass.shadow_time)
      << "backfill pass delayed the head's reservation";
  const auto planner_after = plan_easy_backfill(planner_state, &head, {}, now);
  EXPECT_EQ(planner_after.shadow_time, after.shadow_time);
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, BackfillHeadProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

// Property 2: replay all outcomes of a simulation as a timed event sweep
// and check capacity at every event instant.  Completions are processed
// before starts at equal timestamps, matching the simulator's event order.
void sweep_capacity(const SimResult& result) {
  struct Event {
    Time time;
    int delta;  // +1 start, -1 end
    const JobOutcome* job;
  };
  std::vector<Event> events;
  for (const auto& outcome : result.outcomes) {
    events.push_back({outcome.start, +1, &outcome});
    events.push_back({outcome.end, -1, &outcome});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;  // releases before starts
  });

  const MachineConfig& m = result.machine;
  const bool ssd = m.small_ssd_nodes > 0 || m.large_ssd_nodes > 0;
  const double small_cap =
      ssd ? static_cast<double>(m.small_ssd_nodes)
          : static_cast<double>(m.nodes);
  const double large_cap = static_cast<double>(m.large_ssd_nodes);
  const double bb_cap = m.schedulable_bb_gb();
  constexpr double eps = 1e-6;

  double small_used = 0, large_used = 0, bb_used = 0;
  for (const auto& e : events) {
    const double sign = e.delta;
    small_used += sign * static_cast<double>(e.job->small_tier_nodes);
    large_used += sign * static_cast<double>(e.job->large_tier_nodes);
    bb_used += sign * e.job->bb_gb;
    ASSERT_GE(small_used, -eps);
    ASSERT_GE(large_used, -eps);
    ASSERT_GE(bb_used, -eps);
    ASSERT_LE(small_used, small_cap + eps)
        << "small-tier nodes over capacity at t=" << e.time << " (job "
        << e.job->id << ")";
    ASSERT_LE(large_used, large_cap + eps)
        << "large-tier nodes over capacity at t=" << e.time;
    ASSERT_LE(bb_used, bb_cap + eps)
        << "burst buffer over capacity at t=" << e.time;
    // Tier splits must account for the job's full node demand.
    ASSERT_EQ(e.job->small_tier_nodes + e.job->large_tier_nodes,
              e.job->nodes)
        << "job " << e.job->id << " tier split != node demand";
  }
  EXPECT_NEAR(small_used, 0, eps) << "unbalanced allocate/release";
  EXPECT_NEAR(large_used, 0, eps);
  EXPECT_NEAR(bb_used, 0, eps);
}

SimResult simulate_small(const Workload& workload, const std::string& method,
                         bool use_planner) {
  SimConfig config;
  config.window_size = 8;
  config.use_planner = use_planner;
  GaParams ga;
  ga.generations = 30;
  ga.population_size = 12;
  const auto base = make_base_scheduler("FCFS");
  const auto policy = make_policy(method, ga);
  return simulate(workload, config, *base, *policy);
}

TEST(CapacityInvariant, CpuBbWorkloadNeverOverAllocates) {
  const Workload base =
      generate_workload(theta_model(120), 42);
  BbExpansionParams expansion;
  expansion.target_fraction = 0.75;
  const Workload workload = expand_bb_requests(base, expansion, 7);
  for (const bool use_planner : {false, true}) {
    for (const std::string method : {"Baseline", "BBSched"}) {
      SCOPED_TRACE(method + (use_planner ? "/planner" : "/legacy"));
      sweep_capacity(simulate_small(workload, method, use_planner));
    }
  }
}

TEST(CapacityInvariant, SsdWorkloadNeverOverAllocates) {
  const Workload base =
      generate_workload(theta_model(100, 0.5), 42);
  BbExpansionParams s2;
  s2.target_fraction = 0.75;
  s2.pool_threshold = tb(5) * 0.5;
  s2.pool = sample_bb_pool(0.25, gb(1), tb(140), s2.pool_threshold, 512, 9);
  SsdExpansionParams ssd;
  ssd.small_request_fraction = 0.5;
  const Workload workload =
      expand_ssd_requests(expand_bb_requests(base, s2, 11), ssd, 13);
  ASSERT_GT(workload.machine.small_ssd_nodes, 0);
  for (const bool use_planner : {false, true}) {
    for (const std::string method : {"Baseline", "BBSched"}) {
      SCOPED_TRACE(method + (use_planner ? "/planner" : "/legacy"));
      sweep_capacity(simulate_small(workload, method, use_planner));
    }
  }
}

}  // namespace
}  // namespace bbsched
