// bench_fig2_window_time — reproduce Figure 2: impact of window size on
// average time-to-solution.
//
// The paper samples windows from the first 1000 jobs of a Theta workload and
// compares exhaustive enumeration (2^w) against the genetic solver.
// Expected shape: exhaustive time grows exponentially and crosses the
// 15-second HPC scheduling requirement around w in the low-to-mid 20s, while
// the GA stays orders of magnitude below it at every window size.
//
// Exhaustive enumeration is skipped (printed as "-") once the projected time
// exceeds BBSCHED_FIG2_EXHAUSTIVE_BUDGET seconds (default 20) so the bench
// finishes; the crossing of the requirement line is already visible.
#include <cmath>
#include <iostream>

#include "common/env.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/exhaustive.hpp"
#include "core/ga.hpp"
#include "window_problems.hpp"

#include "bench_util.hpp"

using namespace bbsched;

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig2_window_time");
  if (!cli.ok()) return 0;
  const double exhaustive_budget =
      env_double("BBSCHED_FIG2_EXHAUSTIVE_BUDGET", 20.0);
  const auto samples = static_cast<std::size_t>(
      env_int("BBSCHED_FIG2_SAMPLES", 5));

  std::cout << "Figure 2: average time-to-solution vs. window size\n"
               "(HPC schedulers must respond within 15-30 s)\n\n";
  ConsoleTable table({"window", "exhaustive (s)", "GA (s)", "exhaustive/GA"},
                     {Align::kLeft, Align::kRight, Align::kRight,
                      Align::kRight});

  GaParams ga;  // paper defaults G=500, P=20
  double last_exhaustive = 0;
  bool exhaustive_alive = true;
  for (std::size_t w : {4u, 8u, 12u, 16u, 20u, 22u, 24u, 26u, 28u, 30u}) {
    const auto problems = benchutil::sample_window_problems(w, samples);

    double ga_total = 0;
    for (const auto& problem : problems) {
      Stopwatch watch;
      (void)MooGaSolver(ga).solve(problem);
      ga_total += watch.elapsed_seconds();
    }
    const double ga_avg = ga_total / static_cast<double>(problems.size());

    std::string exhaustive_repr = "-";
    double ratio = 0;
    if (exhaustive_alive) {
      // Project the next runtime from the last: 2x per extra bit.
      double exhaustive_total = 0;
      for (const auto& problem : problems) {
        Stopwatch watch;
        (void)ExhaustiveSolver(31).solve(problem);
        exhaustive_total += watch.elapsed_seconds();
      }
      last_exhaustive =
          exhaustive_total / static_cast<double>(problems.size());
      exhaustive_repr = ConsoleTable::num(last_exhaustive, 4);
      ratio = ga_avg > 0 ? last_exhaustive / ga_avg : 0;
      if (last_exhaustive * 4 > exhaustive_budget) {
        exhaustive_alive = false;  // next sizes would blow the budget
      }
    }
    table.add_row({std::to_string(w), exhaustive_repr,
                   ConsoleTable::num(ga_avg, 4),
                   ratio > 0 ? ConsoleTable::num(ratio, 1) : "-"});
    cli.bench().add_value("ga_solve_s", {{"window", std::to_string(w)}},
                          ga_avg, "s", "info");
    if (exhaustive_repr != "-") {
      cli.bench().add_value("exhaustive_solve_s",
                            {{"window", std::to_string(w)}}, last_exhaustive,
                            "s", "info");
    }
  }
  table.print(std::cout);
  std::cout << "\n(exhaustive column '-' = projected beyond the "
            << exhaustive_budget
            << "s budget; doubling per window slot implies it crosses the"
               " 15 s line a few slots later)\n";
  return cli.exit_code();
}
