// easy_backfill.hpp — EASY backfilling generalized to multiple resources.
//
// All §4.3 methods run EASY backfilling after window selection "to mitigate
// resource fragmentation".  The classic single-resource algorithm (Mu'alem &
// Feitelson) reserves the earliest start for the highest-priority waiting
// job (the *head*) and lets lower-priority jobs jump ahead only if they do
// not delay that reservation.  The multi-resource generalization used here:
//
//  * the head's shadow time is the earliest moment at which *all* of its
//    resource demands (nodes, burst buffer and — on §5 machines — SSD-tier
//    feasibility) are simultaneously available, assuming running jobs end at
//    their walltime;
//  * the surplus ("extra") at the shadow time is the per-resource free
//    capacity at that moment minus the head's planned allocation;
//  * a candidate may backfill if it fits the current free capacity and
//    either completes (by walltime) before the shadow time or fits inside
//    the remaining surplus of every resource.
//
// Expected completions use the *user walltime*, exactly like production EASY:
// jobs ending early only make the reservation conservative, never violated.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "sim/machine_state.hpp"

namespace bbsched {

/// A running job as the backfill planner sees it.
struct RunningJobInfo {
  JobId id = 0;
  Time expected_end = 0;  ///< start time + user walltime
  Allocation alloc;
};

/// A waiting job eligible for backfill, tagged with a caller-side key.
struct BackfillCandidate {
  const JobRecord* job = nullptr;
  std::size_t key = 0;  ///< opaque; returned for started candidates
};

/// One backfill start decision.
struct BackfillStart {
  std::size_t key = 0;
  Allocation alloc;
};

/// Result of one backfill pass.
struct BackfillResult {
  std::vector<BackfillStart> started;  ///< in candidate order
  Time shadow_time = 0;                ///< head's reserved start time
};

inline constexpr Time kNeverFits = std::numeric_limits<Time>::infinity();

/// Plan a backfill pass at time `now`.
///
/// `machine` supplies the current free capacity (after the window policy's
/// starts were committed); `running` must list every running job including
/// those just started.  `head` is the highest-priority job still waiting
/// (nullptr when the queue beyond the started jobs is empty, in which case
/// every fitting candidate starts).  Candidates are scanned in the given
/// (priority) order.  The function does not mutate the machine; the caller
/// commits the returned starts.
BackfillResult plan_easy_backfill(
    const MachineState& machine, const JobRecord* head,
    std::span<const RunningJobInfo> running,
    std::span<const BackfillCandidate> candidates, Time now);

/// Planner-backed overload: the shadow time and reservation surplus come
/// from the machine's availability timeline (MachineState::enable_planner),
/// so no `running` list is needed — the timeline already holds every live
/// walltime span in release order.  Produces bit-identical results to the
/// event-walk overload (enforced by the differential tests); the win is
/// asymptotic: no per-pass sort over all running jobs, and the release walk
/// stops at the shadow.
BackfillResult plan_easy_backfill(
    const MachineState& machine, const JobRecord* head,
    std::span<const BackfillCandidate> candidates, Time now);

}  // namespace bbsched
