// solver_telemetry.hpp — shared trace/metrics instrumentation of the
// genetic solvers (MooGaSolver, Nsga2Solver).
//
// Both solvers emit the same per-generation convergence record — size of
// the current non-dominated set, 2-d hypervolume against the origin, the
// best node-util / BB-util objective values, and feasibility repairs — and
// fold the same per-solve counters into the metrics registry, so the
// helpers live here rather than twice.  Per-generation records go out both
// as wall-clock spans and as Perfetto counter lanes ("solver.convergence"),
// so a long campaign's convergence is plottable over time (DESIGN.md §11).
// Everything is gated by the caller on trace_enabled() / metrics_enabled();
// none of it consumes RNG.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/chromosome.hpp"
#include "core/ga.hpp"
#include "core/pareto.hpp"

namespace bbsched {

/// Convergence snapshot of one generation.  Costs an O(P^2) dominance pass
/// plus a front sort for the hypervolume; compute only while tracing.
struct GenerationTelemetry {
  std::size_t front_size = 0;
  double hypervolume = 0;     ///< 2-d hypervolume vs origin (0 if not 2-d)
  double best_node_util = 0;  ///< best objectives[0] (node-util fraction)
  double best_bb_util = 0;    ///< best objectives[1] (BB-util fraction)
  std::size_t repairs = 0;    ///< feasibility repairs this generation
};

/// Dominated 2-d hypervolume of a population's objective points against the
/// {0, 0} reference; 0 unless the points are 2-dimensional.
inline double population_hypervolume(const Front& points) {
  if (points.empty() || points.front().size() != 2) return 0.0;
  static constexpr double kOrigin[2] = {0.0, 0.0};
  return hypervolume_2d(points, kOrigin);
}

inline GenerationTelemetry generation_telemetry(
    const std::vector<Chromosome>& population, std::size_t repairs = 0) {
  GenerationTelemetry t;
  t.repairs = repairs;
  Front points;
  points.reserve(population.size());
  for (const auto& c : population) points.push_back(c.objectives);
  t.front_size = non_dominated_indices(points).size();
  t.hypervolume = population_hypervolume(points);
  t.best_node_util = -std::numeric_limits<double>::infinity();
  t.best_bb_util = -std::numeric_limits<double>::infinity();
  for (const auto& c : population) {
    if (!c.objectives.empty()) {
      t.best_node_util = std::max(t.best_node_util, c.objectives[0]);
    }
    if (c.objectives.size() > 1) {
      t.best_bb_util = std::max(t.best_bb_util, c.objectives[1]);
    }
  }
  return t;
}

/// Trace one generation: a wall-clock span with the convergence record,
/// plus a sample on the "solver.convergence" counter lane so Perfetto plots
/// front size / hypervolume / repair pressure as time series.
inline void trace_generation(const char* solver_name, int generation,
                             double start_s, double end_s,
                             const GenerationTelemetry& t) {
  trace_complete(solver_name, "solver", start_s, end_s - start_s,
                 {{"generation", generation},
                  {"front_size", t.front_size},
                  {"hypervolume", t.hypervolume},
                  {"best_node_util", t.best_node_util},
                  {"best_bb_util", t.best_bb_util},
                  {"repairs", t.repairs}});
  trace_counter("solver.convergence", end_s, kTraceWallPid,
                {{"front_size", t.front_size},
                 {"hypervolume", t.hypervolume},
                 {"repairs", t.repairs}});
}

/// Fold one finished solve into the metrics registry.  References resolve
/// once (function-local statics); updates are lock-free atomics, safe from
/// concurrent thread-pool workers.
inline void record_solver_metrics(const MooResult& result) {
  static Counter& solves = metric_counter("solver.solves");
  static Counter& generations = metric_counter("solver.generations");
  static Counter& evaluations = metric_counter("solver.evaluations");
  static Counter& repairs = metric_counter("solver.repairs");
  static MetricHistogram& seconds = metric_histogram("solver.solve_seconds");
  static MetricHistogram& pareto =
      metric_histogram("solver.pareto_size", {1, 2, 3, 5, 8, 12, 20, 50});
  static MetricHistogram& hypervolume = metric_histogram(
      "solver.hypervolume", {0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.5, 2.0});
  solves.add(1);
  generations.add(static_cast<std::uint64_t>(result.generations));
  evaluations.add(static_cast<std::uint64_t>(result.evaluations));
  repairs.add(static_cast<std::uint64_t>(result.repairs));
  seconds.observe(result.solve_seconds);
  pareto.observe(static_cast<double>(result.pareto_set.size()));
  Front front;
  front.reserve(result.pareto_set.size());
  for (const auto& c : result.pareto_set) front.push_back(c.objectives);
  hypervolume.observe(population_hypervolume(front));
}

}  // namespace bbsched
