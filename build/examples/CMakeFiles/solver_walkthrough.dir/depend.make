# Empty dependencies file for solver_walkthrough.
# This may be replaced when dependencies are built.
