// argparse.hpp — tiny declarative command-line parser for the examples and
// bench binaries.  Supports `--flag value`, `--flag=value` and boolean
// `--flag` switches, plus auto-generated `--help` text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bbsched {

/// Declarative flag registry.  Register options, then parse(argc, argv).
class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Register options; `out` must outlive parse().
  void add_int(const std::string& name, std::int64_t* out,
               const std::string& help);
  void add_double(const std::string& name, double* out,
                  const std::string& help);
  void add_string(const std::string& name, std::string* out,
                  const std::string& help);
  void add_bool(const std::string& name, bool* out, const std::string& help);

  /// Parse the command line.  Returns false (after printing usage) if
  /// --help was requested; throws std::runtime_error on unknown flags or
  /// malformed values.
  bool parse(int argc, const char* const* argv);

  /// Render the usage text.
  std::string usage(const std::string& program_name) const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Option {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  const Option* find(const std::string& name) const;

  std::string description_;
  std::vector<Option> options_;
};

}  // namespace bbsched
