// Telemetry must be a pure observer: arming tracing + metrics changes
// nothing about scheduling.  A run with everything enabled serializes to the
// byte-identical SimResult of a disabled run.
#include <gtest/gtest.h>

#include <string>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "tests/sim/serialize_result.hpp"
#include "workload/generator.hpp"

namespace bbsched {
namespace {

using bbsched::testing::serialize;

TEST(TelemetryRegression, EnabledRunIsByteIdentical) {
  const Workload workload = generate_workload(theta_model(120), 11);
  SimConfig config;
  config.window_size = 8;
  GaParams ga;
  ga.generations = 40;
  ga.population_size = 12;
  const auto base = make_base_scheduler("FCFS");
  const auto policy = make_policy("BBSched", ga);

  set_trace_enabled(false);
  set_metrics_enabled(false);
  const std::string off =
      serialize(simulate(workload, config, *base, *policy));

  trace_clear();
  set_trace_enabled(true);
  set_metrics_enabled(true);
  const std::string on =
      serialize(simulate(workload, config, *base, *policy));
  set_trace_enabled(false);
  set_metrics_enabled(false);

  // The observed run really recorded something...
  EXPECT_GT(trace_event_count(), 0u);
  EXPECT_GT(metric_counter("sim.runs").value(), 0u);
  trace_clear();
  MetricsRegistry::global().reset();

  // ...without perturbing the schedule by a single byte.
  EXPECT_EQ(off, on);
  // Note solve_seconds_total/max are intentionally excluded from
  // serialize(): they measure wall time, which varies run to run with or
  // without telemetry.
}

}  // namespace
}  // namespace bbsched
