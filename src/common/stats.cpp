#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbsched {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double quantile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void RunningStats::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2) {
    throw std::invalid_argument("Histogram: need at least two edges");
  }
  if (!std::is_sorted(edges_.begin(), edges_.end())) {
    throw std::invalid_argument("Histogram: edges must be sorted");
  }
  counts_.assign(edges_.size() - 1, 0.0);
}

void Histogram::add(double value, double weight) {
  if (value < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (value > edges_.back()) {
    overflow_ += weight;
    return;
  }
  if (value == edges_.back()) {
    counts_.back() += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[bin] += weight;
}

double Histogram::total_weight() const {
  double total = underflow_ + overflow_;
  for (double c : counts_) total += c;
  return total;
}

}  // namespace bbsched
