// bench_util.hpp — shared table printing and the campaign CLI for the
// paper-reproduction benches.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/argparse.hpp"
#include "common/bench_report.hpp"
#include "common/clock.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "exp/grid.hpp"

namespace bbsched::benchutil {

/// Shared command line of every campaign-running bench: the telemetry flags
/// (--log-level / --trace-out / --metrics-out / --progress, with their
/// BBSCHED_* env fallbacks), --threads for the grid's worker pool, and the
/// fault-tolerance knobs (--resume/--no-resume, --max-retries,
/// --cell-timeout, --strict, with BBSCHED_* env fallbacks; DESIGN.md §12).
/// Construct first thing in main(); apply() arms the telemetry surface and
/// the crash-flush hook, and the destructor writes the requested trace /
/// metrics outputs.  When --help was requested, ok() is false and the bench
/// should exit without running.  Return exit_code() from main so a degraded
/// campaign fails the process under --strict.
///
/// Structured results: every bench owns a BenchReport named after itself;
/// record series through bench() and pass --bench-out <dir-or-file> (env
/// fallback BBSCHED_BENCH_DIR) to write BENCH_<name>.json on exit.  The
/// report always carries a whole-process "bench_wall_s" series, and the
/// profiler's top phases when --profile is on.
class CampaignCli {
 public:
  CampaignCli(int argc, const char* const* argv,
              const std::string& description)
      : bench_(description.rfind("bench_", 0) == 0 ? description.substr(6)
                                                   : description) {
    start_s_ = mono_seconds();
    CampaignControl& control = campaign_control();
    resume_ = control.resume;
    max_retries_ = control.max_retries;
    cell_timeout_s_ = control.cell_timeout_s;
    strict_ = control.strict;
    ArgParser parser(description);
    telemetry_.register_flags(parser);
    parser.add_int("threads", &threads_,
                   "grid worker threads (0 = all hardware threads)");
    parser.add_bool("resume", &resume_,
                    "recover finished cells from the campaign journal");
    parser.add_bool("no-resume", &no_resume_,
                    "ignore the campaign journal and recompute every cell");
    parser.add_int("max-retries", &max_retries_,
                   "extra attempts before quarantining a failing cell");
    parser.add_double("cell-timeout", &cell_timeout_s_,
                      "watchdog deadline per cell attempt in seconds (0 = "
                      "off)");
    parser.add_bool("strict", &strict_,
                    "exit nonzero when the campaign is degraded");
    parser.add_string("bench-out", &bench_out_,
                      "write structured BENCH_<name>.json results to this "
                      "directory (or .json file)");
    run_ = parser.parse(argc, argv);
    if (!run_) return;
    if (bench_out_.empty()) bench_out_ = env_string("BBSCHED_BENCH_DIR", "");
    telemetry_.apply();
    if (threads_ > 0) set_global_threads(static_cast<std::size_t>(threads_));
    control.resume = resume_ && !no_resume_;
    control.max_retries = static_cast<int>(max_retries_);
    control.cell_timeout_s = cell_timeout_s_;
    control.strict = strict_;
  }
  ~CampaignCli() {
    if (!run_) return;
    if (!bench_out_.empty()) {
      // Written before telemetry_.finish() so write_file can still capture
      // the live profiler tree as top_phases.
      bench_.add_value("bench_wall_s", {}, mono_seconds() - start_s_, "s",
                       "info");
      bench_.write_file(bench_out_path(bench_out_, bench_.name()));
    }
    telemetry_.finish();
  }
  CampaignCli(const CampaignCli&) = delete;
  CampaignCli& operator=(const CampaignCli&) = delete;

  /// False when --help was requested: print-and-exit, nothing armed.
  bool ok() const { return run_; }

  /// The bench's structured-results report; add series freely, the
  /// destructor writes the JSON when --bench-out / BBSCHED_BENCH_DIR is set.
  BenchReport& bench() { return bench_; }

  /// Process exit code honoring --strict: 1 when the last campaign was
  /// degraded (quarantined cells -> partial results) and strict is on.
  int exit_code() const {
    return campaign_control().strict && last_campaign_report().degraded() ? 1
                                                                          : 0;
  }

 private:
  TelemetryOptions telemetry_;
  BenchReport bench_;
  std::string bench_out_;
  double start_s_ = 0;
  std::int64_t threads_ = 0;
  bool resume_ = true;
  bool no_resume_ = false;
  std::int64_t max_retries_ = 2;
  double cell_timeout_s_ = 0;
  bool strict_ = false;
  bool run_ = true;
};

/// Fold a computed grid into the bench report: per-cell timing
/// distributions (machine-local, never gated) plus the deterministic
/// average-wait distribution, which is bit-stable for a fixed config/seed
/// and therefore safe to gate against a committed baseline.
inline void record_grid_cells(BenchReport& report, const std::string& prefix,
                              const std::vector<GridCell>& cells) {
  if (cells.empty()) return;
  // One add_series at a time: the returned reference is invalidated by the
  // next add_series call.
  {
    auto& s = report.add_series(prefix + ".cell_wall_s", {}, "s", "info");
    for (const auto& cell : cells) s.add_sample(cell.cell_wall_seconds);
  }
  {
    auto& s = report.add_series(prefix + ".mean_solve_s", {}, "s", "info");
    for (const auto& cell : cells) s.add_sample(cell.mean_solve_seconds);
  }
  {
    auto& s =
        report.add_series(prefix + ".avg_wait_s", {}, "s", "lower");
    for (const auto& cell : cells) s.add_sample(cell.metrics.avg_wait);
  }
  {
    auto& s = report.add_series(prefix + ".mean_pareto_size", {}, "count",
                                "info");
    for (const auto& cell : cells) s.add_sample(cell.mean_pareto_size);
  }
}

/// Extracts the plotted value from one grid cell.
using CellValue = std::function<double(const GridCell&)>;

/// Print a (workload x method) matrix of `value`, one row per workload.
/// `percent` renders values as percentages; otherwise `precision` digits.
inline void print_matrix(const std::vector<GridCell>& cells,
                         const std::vector<std::string>& workloads,
                         const std::vector<std::string>& methods,
                         const CellValue& value, bool percent,
                         int precision = 2, std::ostream& out = std::cout) {
  std::vector<std::string> header{"workload"};
  header.insert(header.end(), methods.begin(), methods.end());
  std::vector<Align> aligns(header.size(), Align::kRight);
  aligns[0] = Align::kLeft;
  ConsoleTable table(header, aligns);
  for (const auto& workload : workloads) {
    std::vector<std::string> row{workload};
    for (const auto& method : methods) {
      const auto cell = find_cell(cells, workload, method);
      if (!cell) {
        row.push_back("-");
        continue;
      }
      const double v = value(*cell);
      row.push_back(percent ? ConsoleTable::pct(v, precision)
                            : ConsoleTable::num(v, precision));
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

/// Print, per workload, each method's improvement over Baseline for a
/// smaller-is-better metric (positive = reduction, as the paper reports
/// "reduces average job wait time by up to 41%").
inline void print_reduction_vs_baseline(
    const std::vector<GridCell>& cells,
    const std::vector<std::string>& workloads,
    const std::vector<std::string>& methods, const CellValue& value,
    std::ostream& out = std::cout) {
  std::vector<std::string> header{"workload"};
  for (const auto& m : methods) {
    if (m != "Baseline") header.push_back(m);
  }
  std::vector<Align> aligns(header.size(), Align::kRight);
  aligns[0] = Align::kLeft;
  ConsoleTable table(header, aligns);
  for (const auto& workload : workloads) {
    const auto base = find_cell(cells, workload, "Baseline");
    if (!base) continue;
    const double base_value = value(*base);
    std::vector<std::string> row{workload};
    for (const auto& method : methods) {
      if (method == "Baseline") continue;
      const auto cell = find_cell(cells, workload, method);
      if (!cell || base_value <= 0) {
        row.push_back("-");
        continue;
      }
      row.push_back(
          ConsoleTable::pct((base_value - value(*cell)) / base_value, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

/// Print one cached Theta-S4 breakdown dimension (Figures 9-11): one row per
/// method, one column per bin, average wait in hours.
inline void print_breakdown(const MainGridResults& results,
                            const std::vector<std::string>& methods,
                            const std::string& dimension, const char* title,
                            std::ostream& out = std::cout) {
  std::vector<std::string> labels;
  for (const auto& cell : results.breakdowns) {
    if (cell.dimension != dimension || cell.method != "Baseline") continue;
    labels.push_back(cell.label);
  }
  std::vector<std::string> header{"method"};
  header.insert(header.end(), labels.begin(), labels.end());
  std::vector<Align> aligns(header.size(), Align::kRight);
  aligns[0] = Align::kLeft;
  ConsoleTable table(header, aligns);
  for (const auto& method : methods) {
    std::vector<std::string> row{method};
    for (const auto& label : labels) {
      bool found = false;
      for (const auto& cell : results.breakdowns) {
        if (cell.dimension == dimension && cell.method == method &&
            cell.label == label) {
          row.push_back(cell.count
                            ? ConsoleTable::num(as_hours(cell.avg_wait), 2)
                            : "-");
          found = true;
          break;
        }
      }
      if (!found) row.push_back("-");
    }
    table.add_row(std::move(row));
  }
  out << title << "\n\n";
  table.print(out);
}

/// Workload labels of the §4 grid in presentation order.
inline std::vector<std::string> main_workload_labels() {
  return {"Cori-Original",  "Cori-S1",  "Cori-S2",  "Cori-S3",  "Cori-S4",
          "Theta-Original", "Theta-S1", "Theta-S2", "Theta-S3", "Theta-S4"};
}

/// Workload labels of the §5 grid.
inline std::vector<std::string> ssd_workload_labels() {
  return {"Cori-S5",  "Cori-S6",  "Cori-S7",
          "Theta-S5", "Theta-S6", "Theta-S7"};
}

}  // namespace bbsched::benchutil
