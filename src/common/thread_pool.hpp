// thread_pool.hpp — fixed-size worker pool for embarrassingly parallel
// loops.
//
// The experiment grid (one task per workload x method cell) and the genetic
// solvers (one task per chromosome evaluation batch) are fan-out/fan-in
// workloads with no cross-task communication, so a minimal pool suffices: a
// shared queue of jobs, `parallel_for(n, fn)` fanning indices out through an
// atomic cursor (dynamic load balancing — grid cells vary widely in cost)
// and the calling thread working alongside the pool.
//
// Determinism contract: parallel_for imposes no ordering, so every task must
// write only to its own index's slot and draw randomness only from its own
// seed (see rng.hpp mix_seed and DESIGN.md §8).  Under that discipline
// results are bit-identical at any thread count, including 1.
//
// Nesting: a parallel_for issued from inside a pool worker runs inline on
// that worker.  The outer fan-out already owns the hardware; splitting
// further would only add queue contention (and a naive implementation would
// deadlock waiting on a queue it is supposed to drain).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include <condition_variable>

namespace bbsched {

/// Fixed-size thread pool.  `threads` counts total concurrency including the
/// caller of parallel_for, so ThreadPool(1) spawns no workers and runs
/// everything inline.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency: worker threads + the calling thread.
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Run fn(0) ... fn(n-1), in unspecified order, across the pool and the
  /// calling thread; returns when all n calls finished.  The first exception
  /// thrown by any fn is rethrown on the caller (remaining indices are still
  /// claimed but skipped).  Calls from inside a pool worker run inline.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Batch;

  void worker_loop();
  static void run_batch(Batch& batch);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool used by parallel_for below.  Sized on first use
/// from BBSCHED_THREADS (0 or unset: hardware concurrency).
ThreadPool& global_pool();

/// Resize the global pool (0 = hardware concurrency).  Call from the main
/// thread before parallel work starts — typically wiring a --threads flag;
/// concurrent calls with in-flight parallel_for are undefined.
void set_global_threads(std::size_t threads);

/// Configured concurrency of the global pool.
std::size_t global_threads();

/// parallel_for on the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace bbsched
