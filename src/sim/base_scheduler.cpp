#include "sim/base_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbsched {

void BaseScheduler::sort_queue(std::vector<QueuedJobView>& queue,
                               Time now) const {
  std::stable_sort(queue.begin(), queue.end(),
                   [&](const QueuedJobView& a, const QueuedJobView& b) {
                     const double pa = priority(a, now);
                     const double pb = priority(b, now);
                     if (pa != pb) return pa > pb;
                     if (a.job->submit_time != b.job->submit_time) {
                       return a.job->submit_time < b.job->submit_time;
                     }
                     return a.job->id < b.job->id;
                   });
}

double FcfsScheduler::priority(const QueuedJobView& view, Time /*now*/) const {
  // Earlier submission -> larger score.
  return -view.job->submit_time;
}

double WfpScheduler::priority(const QueuedJobView& view, Time now) const {
  const double wait = std::max(0.0, now - view.queued_since);
  const double walltime = std::max(1.0, view.job->walltime);
  return static_cast<double>(view.job->nodes) *
         std::pow(wait / walltime, exponent_);
}

std::unique_ptr<BaseScheduler> make_base_scheduler(const std::string& name) {
  if (name == "FCFS" || name == "fcfs") {
    return std::make_unique<FcfsScheduler>();
  }
  if (name == "WFP" || name == "wfp") return std::make_unique<WfpScheduler>();
  throw std::invalid_argument("unknown base scheduler: " + name);
}

}  // namespace bbsched
