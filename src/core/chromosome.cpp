#include "core/chromosome.hpp"

namespace bbsched {

std::vector<std::size_t> selected_indices(
    std::span<const std::uint8_t> genes) {
  std::vector<std::size_t> out;
  out.reserve(genes.size());
  for (std::size_t i = 0; i < genes.size(); ++i) {
    if (genes[i]) out.push_back(i);
  }
  return out;
}

}  // namespace bbsched
