#include "core/ssd_problem.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bbsched {

SsdSchedulingProblem::SsdSchedulingProblem(std::vector<SsdJobDemand> jobs,
                                           SsdFreeState free)
    : jobs_(std::move(jobs)), free_(free) {
  if (free_.small_ssd_gb <= 0 || free_.large_ssd_gb < free_.small_ssd_gb) {
    throw std::invalid_argument("SsdSchedulingProblem: bad SSD tier sizes");
  }
  for (const auto& j : jobs_) {
    if (j.nodes < 0 || j.bb_gb < 0 || j.ssd_per_node < 0) {
      throw std::invalid_argument("SsdSchedulingProblem: negative demand");
    }
  }
}

bool SsdSchedulingProblem::feasible(
    std::span<const std::uint8_t> genes) const {
  assert(genes.size() == jobs_.size());
  double total_nodes = 0, large_only_nodes = 0, bb = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!genes[i]) continue;
    const auto& j = jobs_[i];
    if (j.ssd_per_node > free_.large_ssd_gb) return false;  // unservable
    total_nodes += j.nodes;
    if (j.ssd_per_node > free_.small_ssd_gb) large_only_nodes += j.nodes;
    bb += j.bb_gb;
  }
  return large_only_nodes <= free_.large_nodes &&
         total_nodes <= free_.small_nodes + free_.large_nodes &&
         bb <= free_.bb_gb;
}

std::vector<SsdNodeSplit> SsdSchedulingProblem::assign(
    std::span<const std::uint8_t> genes) const {
  assert(feasible(genes));
  std::vector<SsdNodeSplit> split(jobs_.size());
  double small_left = free_.small_nodes;
  double large_left = free_.large_nodes;
  // Pass 1: jobs that can only run on the large tier.
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!genes[i] || jobs_[i].ssd_per_node <= free_.small_ssd_gb) continue;
    split[i].large_nodes = jobs_[i].nodes;
    large_left -= jobs_[i].nodes;
  }
  // Pass 2: small-tier-capable jobs prefer small-tier nodes (§5) and spill
  // onto the large tier only when the small tier is exhausted.
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!genes[i] || jobs_[i].ssd_per_node > free_.small_ssd_gb) continue;
    const double take_small = std::min(jobs_[i].nodes, small_left);
    split[i].small_nodes = take_small;
    split[i].large_nodes = jobs_[i].nodes - take_small;
    small_left -= take_small;
    large_left -= split[i].large_nodes;
  }
  assert(small_left >= -1e-9 && large_left >= -1e-9);
  return split;
}

double SsdSchedulingProblem::wasted_ssd(
    std::span<const std::uint8_t> genes) const {
  const auto split = assign(genes);
  double waste = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!genes[i]) continue;
    const double s = jobs_[i].ssd_per_node;
    waste += split[i].small_nodes * (free_.small_ssd_gb - s) +
             split[i].large_nodes * (free_.large_ssd_gb - s);
  }
  return waste;
}

void SsdSchedulingProblem::evaluate(std::span<const std::uint8_t> genes,
                                    std::span<double> objectives) const {
  assert(objectives.size() == 4);
  double nodes = 0, bb = 0, ssd = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!genes[i]) continue;
    nodes += jobs_[i].nodes;
    bb += jobs_[i].bb_gb;
    ssd += jobs_[i].ssd_per_node * jobs_[i].nodes;
  }
  const double free_nodes = free_.small_nodes + free_.large_nodes;
  const double free_ssd = free_ssd_capacity();
  objectives[0] = free_nodes > 0 ? nodes / free_nodes : 0.0;
  objectives[1] = free_.bb_gb > 0 ? bb / free_.bb_gb : 0.0;
  objectives[2] = free_ssd > 0 ? ssd / free_ssd : 0.0;
  objectives[3] = free_ssd > 0 ? -wasted_ssd(genes) / free_ssd : 0.0;
}

}  // namespace bbsched
