// table.hpp — fixed-width console tables for the bench harness.
//
// Every bench binary reproduces a paper table/figure as rows on stdout; this
// printer keeps those reproductions aligned and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bbsched {

/// Column alignment for ConsoleTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and prints them with per-column widths.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header,
                        std::vector<Align> aligns = {});

  /// Add a row; must have the same width as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  /// Percentage with a trailing '%'.
  static std::string pct(double fraction, int precision = 2);

  /// Render with 2-space column gaps and a dashed rule under the header.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bbsched
