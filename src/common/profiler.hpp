// profiler.hpp — low-overhead hierarchical phase profiler (DESIGN.md §14).
//
// Scoped RAII timers attribute wall-clock to a call-tree of named phases:
//
//   void Nsga2Solver::solve(...) {
//     PROF_PHASE("nsga2.solve");
//     for (...) {
//       { PROF_PHASE("nsga2.eval"); evaluate_population(...); }
//       { PROF_PHASE("nsga2.sort"); non_dominated_sort(...); }
//     }
//   }
//
// Each thread owns its own tree (an uncontended mutex per thread, same
// buffering discipline as trace.hpp), so recording a phase costs two
// MonoClock reads plus one uncontended lock per enter/exit.  At report time
// the per-thread trees are merged by phase path — counts and totals sum,
// min/max combine — under a synthetic root whose total is the observation
// window (profiler_clear()/enable → report), so on a single-threaded run
// the root total matches campaign wall time and under parallelism the
// children may sum beyond it (they are thread-seconds).
//
// Off by default: PROF_PHASE costs one relaxed atomic load when disabled
// (bench_overhead's profiler series pins this), and compiling with
// -DBBSCHED_PROFILER_DISABLED turns the macro into `((void)0)` for a
// provably zero-cost build.  Determinism: the profiler consumes no RNG and
// never feeds back into scheduling decisions; SimResult is byte-identical
// with profiling on vs off (test_telemetry_regression).
//
// Enabled via --profile / BBSCHED_PROFILE (see TelemetryOptions); the phase
// tree prints to stderr at exit and can be exported as CSV (--profile-out)
// and as per-phase Perfetto counter lanes (sampled by CampaignMonitor).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace bbsched {

namespace telemetry_detail {
extern std::atomic<bool> g_profiler_enabled;
}  // namespace telemetry_detail

/// Whether phase recording is on; one relaxed atomic load.
inline bool profiler_enabled() {
  return telemetry_detail::g_profiler_enabled.load(std::memory_order_relaxed);
}

/// Toggle recording.  Enabling (re)starts the observation window that the
/// report's root total measures.
void set_profiler_enabled(bool enabled);

/// Drop every recorded phase on every thread and restart the observation
/// window (tests, or between campaigns when reusing one process).
void profiler_clear();

/// One node of a phase tree: aggregate statistics for every execution of
/// this phase at this position in the call tree.
struct PhaseStats {
  std::string name;         ///< phase label, e.g. "nsga2.crowding"
  std::uint64_t count = 0;  ///< completed executions
  double total_s = 0;       ///< inclusive wall seconds
  double min_s = std::numeric_limits<double>::infinity();  ///< fastest call
  double max_s = 0;                                        ///< slowest call
  std::vector<PhaseStats> children;  ///< nested phases, merged by name

  /// Exclusive time: total minus instrumented children, clamped at 0
  /// (children of a still-open phase can momentarily exceed it).
  double self_s() const;
};

/// Merge `from` into `into` recursively: counts/totals sum, min/max
/// combine, same-name children merge.  Exposed for the associativity test —
/// merge order across threads must not change the result.
void merge_phase(PhaseStats& into, const PhaseStats& from);

/// The merged cross-thread phase tree.  `root` is a synthetic node named
/// "total" whose total_s is the observation window and whose children are
/// every thread's top-level phases; `threads` is how many thread trees
/// (live + exited) were merged.
struct ProfileReport {
  PhaseStats root;
  std::size_t threads = 0;

  bool empty() const { return root.children.empty(); }
};

/// Snapshot and merge all per-thread trees.  Safe to call while phases are
/// being recorded (open phases simply have not contributed yet).
ProfileReport profiler_report();

/// One row of the flattened tree, depth-first with dot-joined paths
/// ("grid.cell/nsga2.solve/nsga2.eval").
struct PhaseRow {
  std::string path;
  int depth = 0;
  std::uint64_t count = 0;
  double total_s = 0;
  double self_s = 0;
  double min_s = 0;
  double max_s = 0;
};

/// Flatten a report depth-first; children sorted by total time descending.
std::vector<PhaseRow> profile_rows(const ProfileReport& report);

/// The `n` phases with the largest self time across the whole tree,
/// descending (for bench JSON top-phase summaries).
std::vector<PhaseRow> profile_top_phases(const ProfileReport& report,
                                         std::size_t n);

/// Render the sorted text tree (what --profile prints at exit).
void write_profile_text(std::ostream& out, const ProfileReport& report);

/// phase,depth,count,total_s,self_s,min_s,max_s CSV of the flattened tree.
void write_profile_csv(std::ostream& out, const ProfileReport& report);
void write_profile_csv_file(const std::string& path,
                            const ProfileReport& report);

/// Emit one Perfetto counter sample per top phase (cumulative self
/// seconds, lane "prof.<path>") at `ts_s`; no-op unless both the profiler
/// and tracing are enabled.  CampaignMonitor calls this every sample tick,
/// turning the counters into a time series.
void profile_trace_counters(double ts_s, std::size_t top_n = 12);

/// Scoped phase timer.  Arms itself only if the profiler was enabled at
/// construction; a disabled construction costs one relaxed atomic load.
/// `name` must outlive the profiler (string literals only — PROF_PHASE
/// enforces this by construction).
class ProfPhase {
 public:
  explicit ProfPhase(const char* name) {
    if (!profiler_enabled()) return;
    armed_ = true;
    start_ = mono_now();
    enter(name);
  }
  ~ProfPhase() {
    if (armed_) exit(seconds_between(start_, mono_now()));
  }

  ProfPhase(const ProfPhase&) = delete;
  ProfPhase& operator=(const ProfPhase&) = delete;

 private:
  static void enter(const char* name);
  static void exit(double elapsed_s);

  bool armed_ = false;
  MonoClock::time_point start_;
};

}  // namespace bbsched

// PROF_PHASE("name") — time the rest of the enclosing scope as phase
// "name".  Expands to nothing under -DBBSCHED_PROFILER_DISABLED so a
// production build can prove the instrumentation costs zero.
#define BBSCHED_PROF_CAT2(a, b) a##b
#define BBSCHED_PROF_CAT(a, b) BBSCHED_PROF_CAT2(a, b)
#ifdef BBSCHED_PROFILER_DISABLED
#define PROF_PHASE(name) ((void)0)
#else
#define PROF_PHASE(name) \
  ::bbsched::ProfPhase BBSCHED_PROF_CAT(bbsched_prof_phase_, __LINE__)(name)
#endif
