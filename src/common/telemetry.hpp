// telemetry.hpp — one-call wiring of the telemetry surface for the example
// binaries: --log-level / --trace-out / --metrics-out / --progress flags
// with BBSCHED_LOG / BBSCHED_TRACE / BBSCHED_METRICS / BBSCHED_PROGRESS
// environment fallbacks.
//
//   TelemetryOptions telemetry;
//   telemetry.register_flags(parser);
//   ... parser.parse(...) ...
//   telemetry.apply();      // set level, arm trace/metrics/progress
//   ... run the campaign ...
//   telemetry.finish();     // write trace JSON / metrics CSV if requested
//
// apply() also arms a crash-flush hook (atexit + std::terminate) for the
// requested outputs, so a campaign that dies mid-run still leaves a partial
// trace/metrics snapshot on disk instead of nothing; finish() performs the
// final write and disarms the hook.
#pragma once

#include <string>

namespace bbsched {

class ArgParser;

/// Whether the campaign progress heartbeat is on (--progress /
/// BBSCHED_PROGRESS); the campaign monitor prints [progress] lines to
/// stderr when set.
bool progress_enabled();
void set_progress_enabled(bool enabled);

/// Arm the crash-flush hook: on process exit or std::terminate, write the
/// trace JSON / metrics CSV to these paths (empty: skip that output).
/// Installing is idempotent; re-arming replaces the paths.
void register_crash_flush(const std::string& trace_out,
                          const std::string& metrics_out);

/// Disarm the crash-flush hook (after a successful final write).
void disarm_crash_flush();

/// Write the armed outputs immediately — what the crash hook runs.  Safe to
/// call repeatedly and from handlers: never throws, leaves the hook armed.
void telemetry_flush_now() noexcept;

struct TelemetryOptions {
  std::string log_level;    ///< empty: BBSCHED_LOG or "info"
  std::string trace_out;    ///< empty: BBSCHED_TRACE or tracing off
  std::string metrics_out;  ///< empty: BBSCHED_METRICS or collection off
  bool progress = false;    ///< heartbeat; default BBSCHED_PROGRESS or off
  bool profile = false;     ///< phase profiler; default BBSCHED_PROFILE or off
  std::string profile_out;  ///< phase-tree CSV; empty: BBSCHED_PROFILE_OUT

  /// Register --log-level, --trace-out, --metrics-out, --progress,
  /// --profile and --profile-out.
  void register_flags(ArgParser& parser);

  /// Resolve env fallbacks and arm the requested subsystems (including the
  /// crash-flush hook).  Call after parse() and before any work that should
  /// be observed.  Throws std::invalid_argument on a malformed log level.
  void apply();

  /// Write the trace / metrics outputs that were requested, print/export
  /// the profiler phase tree when profiling is on, and disarm the
  /// crash-flush hook; no-op otherwise.
  void finish() const;
};

}  // namespace bbsched
