// synthetic.hpp — the paper's derived workloads (§4.1 and §5).
//
// S1-S4 stress burst-buffer contention: the fraction of jobs with BB
// requests is expanded to 50 % (S1/S3) or 75 % (S2/S4); each newly assigned
// request is drawn uniformly from the *original* workload's requests above a
// threshold — 5 TB for S1/S2, 20 TB for S3/S4 — so S3/S4 carry larger
// requests than S1/S2.
//
// S5-S7 (the §5 case study) are built on top of S2 and add per-node local
// SSD requests against a machine whose nodes are split 50/50 between a
// 128 GB and a 256 GB SSD tier:
//   S5: 80 % of jobs request (0, 128] GB, 20 % request (128, 256] GB
//   S6: 50 % / 50 %
//   S7: 20 % / 80 %
#pragma once

#include <cstdint>
#include <vector>

#include "workload/workload.hpp"

namespace bbsched {

/// Parameters of one S1-S4 style expansion.
struct BbExpansionParams {
  double target_fraction = 0.5;    ///< fraction of jobs with BB requests
  GigaBytes pool_threshold = tb(5);///< sample pool: original requests > this
  /// Optional explicit request pool.  The paper samples new requests from
  /// the original trace's requests above the threshold; with millions of
  /// logged jobs that pool is dense.  Scaled-down reproductions pass a pool
  /// drawn from the workload *model's* request distribution instead (see
  /// sample_bb_pool), which is statistically the same object.  Entries at or
  /// below pool_threshold are filtered out.
  std::vector<GigaBytes> pool;
};

/// Expand BB requests per §4.1.  Jobs that already request BB are kept
/// unchanged; jobs without requests are assigned one with the probability
/// that lifts the overall requesting fraction to `target_fraction`, sampled
/// uniformly from the original requests above `pool_threshold`.  If the
/// original workload has no request above the threshold, the largest decile
/// of original requests forms the pool instead (and if there are no requests
/// at all, the workload is returned unchanged).
Workload expand_bb_requests(const Workload& original,
                            const BbExpansionParams& params,
                            std::uint64_t seed);

/// Parameters of one S5-S7 style SSD expansion.
struct SsdExpansionParams {
  double small_request_fraction = 0.8;  ///< jobs drawing from (0, small_gb]
  GigaBytes small_gb = 128;
  GigaBytes large_gb = 256;
  /// Fraction of machine nodes moved to the small SSD tier (rest are large).
  double small_tier_node_fraction = 0.5;
};

/// Assign per-node local SSD requests to every job and configure the
/// machine's SSD tiers (§5).  Small requests are uniform in (0, small_gb],
/// large requests uniform in (small_gb, large_gb].
Workload expand_ssd_requests(const Workload& base,
                             const SsdExpansionParams& params,
                             std::uint64_t seed);

/// One named entry of a workload suite.
struct SuiteEntry {
  std::string label;  ///< e.g. "Cori-S3"
  Workload workload;
};

/// Draw `count` burst-buffer request samples above `threshold` from a
/// bounded-Pareto(alpha, lo, hi) request model — the conditional
/// distribution the paper's threshold pools converge to on a full-length
/// trace.  Used to densify the S1-S4 pools at reduced job counts.
std::vector<GigaBytes> sample_bb_pool(double alpha, GigaBytes lo,
                                      GigaBytes hi, GigaBytes threshold,
                                      std::size_t count, std::uint64_t seed);

/// The paper's five-workload grid for one machine: Original, S1, S2, S3, S4.
/// `original` must carry the machine name used for labels.  `model_pool_5tb`
/// and `model_pool_20tb`, when non-empty, replace the observed-request pools
/// (see BbExpansionParams::pool).  `threshold_scale` multiplies the paper's
/// 5 TB / 20 TB pool thresholds — pass the machine scale factor when the
/// workload was generated against a scaled-down machine so the thresholds
/// keep their position relative to the request range.
std::vector<SuiteEntry> make_bb_suite(
    const Workload& original, std::uint64_t seed,
    std::vector<GigaBytes> model_pool_5tb = {},
    std::vector<GigaBytes> model_pool_20tb = {}, double threshold_scale = 1.0);

/// The §5 suite for one machine: S5, S6, S7 built on top of the S2
/// expansion of `original`.
std::vector<SuiteEntry> make_ssd_suite(
    const Workload& original, std::uint64_t seed,
    std::vector<GigaBytes> model_pool_5tb = {}, double threshold_scale = 1.0);

}  // namespace bbsched
