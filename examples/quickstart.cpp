// quickstart — the smallest end-to-end use of the library.
//
// Generates a Theta-like workload, runs the Slurm-style naive baseline and
// BBSched over it, and prints the §4.2 metrics side by side.  Start here to
// see the whole pipeline: workload model -> base scheduler -> window policy
// -> EASY backfill -> metrics.
//
//   ./quickstart --jobs 400 --window 20 --generations 200
#include <cstdio>
#include <iostream>

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "metrics/schedule_metrics.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/synthetic.hpp"
#include "workload/wl_stats.hpp"

int main(int argc, char** argv) {
  using namespace bbsched;
  std::int64_t jobs = 400;
  std::int64_t window = 20;
  std::int64_t generations = 200;
  std::int64_t seed = 42;
  std::int64_t threads = 0;
  ArgParser parser("bbsched quickstart: baseline vs BBSched on one workload");
  parser.add_int("jobs", &jobs, "jobs to generate");
  parser.add_int("window", &window, "scheduling window size");
  parser.add_int("generations", &generations, "GA generations");
  parser.add_int("seed", &seed, "workload seed");
  parser.add_int("threads", &threads,
                 "solver/grid threads (0 = BBSCHED_THREADS or all cores)");
  TelemetryOptions telemetry;
  telemetry.register_flags(parser);
  try {
    if (!parser.parse(argc, argv)) return 0;
    telemetry.apply();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (threads > 0) set_global_threads(static_cast<std::size_t>(threads));

  // 1. A Theta-like capability workload, stressed with S2-style burst-buffer
  //    expansion so the two resources actually compete.
  const Workload base = generate_workload(
      theta_model(static_cast<std::size_t>(jobs)),
      static_cast<std::uint64_t>(seed));
  BbExpansionParams expansion;
  expansion.target_fraction = 0.75;
  const Workload workload = expand_bb_requests(base, expansion, 7);
  print_summary(workload, std::cout);
  std::cout << '\n';

  // 2. Simulate the naive baseline and BBSched under the same base
  //    scheduler (WFP, as the paper uses on Theta) and EASY backfilling.
  SimConfig config;
  config.window_size = static_cast<std::size_t>(window);
  GaParams ga;
  ga.generations = static_cast<int>(generations);
  const auto wfp = make_base_scheduler("WFP");

  ConsoleTable table({"metric", "Baseline", "BBSched"},
                     {Align::kLeft, Align::kRight, Align::kRight});
  ScheduleMetrics metrics[2];
  const char* methods[] = {"Baseline", "BBSched"};
  for (int i = 0; i < 2; ++i) {
    const auto policy = make_policy(methods[i], ga);
    const SimResult result = simulate(workload, config, *wfp, *policy);
    metrics[i] = compute_metrics(result);
    std::fprintf(stderr, "%s: %zu scheduling cycles, mean decision %.4fs\n",
                 methods[i], result.decisions.cycles,
                 result.decisions.mean_solve_seconds());
  }
  table.add_row({"node usage", ConsoleTable::pct(metrics[0].node_usage),
                 ConsoleTable::pct(metrics[1].node_usage)});
  table.add_row({"burst-buffer usage", ConsoleTable::pct(metrics[0].bb_usage),
                 ConsoleTable::pct(metrics[1].bb_usage)});
  table.add_row({"avg wait", format_duration(metrics[0].avg_wait),
                 format_duration(metrics[1].avg_wait)});
  table.add_row({"avg slowdown", ConsoleTable::num(metrics[0].avg_slowdown),
                 ConsoleTable::num(metrics[1].avg_slowdown)});
  table.print(std::cout);
  telemetry.finish();
  return 0;
}
