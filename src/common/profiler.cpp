#include "common/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/fault.hpp"
#include "common/trace.hpp"

namespace bbsched {

namespace telemetry_detail {
std::atomic<bool> g_profiler_enabled{false};
}  // namespace telemetry_detail

namespace {

/// Live recording node.  Owned by one thread; the reporter copies it under
/// the owning buffer's mutex.
struct ProfNode {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0;
  double min_s = std::numeric_limits<double>::infinity();
  double max_s = 0;
  ProfNode* parent = nullptr;
  std::vector<std::unique_ptr<ProfNode>> children;
};

/// Owned by one thread for enter/exit; the reporter (and clear) lock
/// `mutex` to read or reset.  Same discipline as trace.hpp's ThreadBuffer.
struct ThreadTree {
  std::mutex mutex;
  ProfNode root;
  ProfNode* current = &root;

  ThreadTree();
  ~ThreadTree();
};

struct Registry {
  std::mutex mutex;
  std::vector<ThreadTree*> trees;  ///< live threads
  PhaseStats orphans;              ///< merged trees of exited threads
  std::size_t orphan_threads = 0;  ///< exited threads that had recorded phases
  double window_start_s = 0;       ///< observation-window origin (mono secs)
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives thread_locals
  return *r;
}

PhaseStats snapshot_node(const ProfNode& node) {
  PhaseStats stats;
  stats.name = node.name;
  stats.count = node.count;
  stats.total_s = node.total_s;
  stats.min_s = node.min_s;
  stats.max_s = node.max_s;
  stats.children.reserve(node.children.size());
  for (const auto& child : node.children) {
    stats.children.push_back(snapshot_node(*child));
  }
  return stats;
}

bool tree_nonempty(const ProfNode& root) { return !root.children.empty(); }

ThreadTree::ThreadTree() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.trees.push_back(this);
}

ThreadTree::~ThreadTree() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (tree_nonempty(root)) {
    const PhaseStats mine = snapshot_node(root);
    for (const PhaseStats& child : mine.children) {
      bool merged = false;
      for (PhaseStats& existing : r.orphans.children) {
        if (existing.name == child.name) {
          merge_phase(existing, child);
          merged = true;
          break;
        }
      }
      if (!merged) r.orphans.children.push_back(child);
    }
    ++r.orphan_threads;
  }
  for (auto it = r.trees.begin(); it != r.trees.end(); ++it) {
    if (*it == this) {
      r.trees.erase(it);
      break;
    }
  }
}

ThreadTree& thread_tree() {
  thread_local ThreadTree tree;
  return tree;
}

void sort_children(PhaseStats& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const PhaseStats& a, const PhaseStats& b) {
              if (a.total_s != b.total_s) return a.total_s > b.total_s;
              return a.name < b.name;
            });
  for (PhaseStats& child : node.children) sort_children(child);
}

void flatten(const PhaseStats& node, const std::string& prefix, int depth,
             std::vector<PhaseRow>& rows) {
  PhaseRow row;
  row.path = prefix.empty() ? node.name : prefix + "/" + node.name;
  row.depth = depth;
  row.count = node.count;
  row.total_s = node.total_s;
  row.self_s = node.self_s();
  row.min_s = node.count ? node.min_s : 0.0;
  row.max_s = node.max_s;
  rows.push_back(row);
  for (const PhaseStats& child : node.children) {
    flatten(child, rows.back().path, depth + 1, rows);
  }
}

std::string prof_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

double PhaseStats::self_s() const {
  double child_total = 0;
  for (const PhaseStats& child : children) child_total += child.total_s;
  return std::max(0.0, total_s - child_total);
}

void merge_phase(PhaseStats& into, const PhaseStats& from) {
  into.count += from.count;
  into.total_s += from.total_s;
  into.min_s = std::min(into.min_s, from.min_s);
  into.max_s = std::max(into.max_s, from.max_s);
  for (const PhaseStats& child : from.children) {
    bool merged = false;
    for (PhaseStats& existing : into.children) {
      if (existing.name == child.name) {
        merge_phase(existing, child);
        merged = true;
        break;
      }
    }
    if (!merged) into.children.push_back(child);
  }
}

void set_profiler_enabled(bool enabled) {
  const bool was =
      telemetry_detail::g_profiler_enabled.exchange(enabled,
                                                    std::memory_order_relaxed);
  if (enabled && !was) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.window_start_s = mono_seconds();
  }
}

void profiler_clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (ThreadTree* tree : r.trees) {
    std::lock_guard<std::mutex> tree_lock(tree->mutex);
    tree->root.children.clear();
    tree->root.count = 0;
    tree->root.total_s = 0;
    // Open ProfPhase scopes on that thread unwind against the fresh root;
    // exit() discards their samples (current == root below).
    tree->current = &tree->root;
  }
  r.orphans = PhaseStats{};
  r.orphan_threads = 0;
  r.window_start_s = mono_seconds();
}

void ProfPhase::enter(const char* name) {
  ThreadTree& tree = thread_tree();
  std::lock_guard<std::mutex> lock(tree.mutex);
  ProfNode* parent = tree.current;
  for (const auto& child : parent->children) {
    if (child->name == name) {
      tree.current = child.get();
      return;
    }
  }
  auto node = std::make_unique<ProfNode>();
  node->name = name;
  node->parent = parent;
  tree.current = node.get();
  parent->children.push_back(std::move(node));
}

void ProfPhase::exit(double elapsed_s) {
  ThreadTree& tree = thread_tree();
  std::lock_guard<std::mutex> lock(tree.mutex);
  ProfNode* node = tree.current;
  // A clear() between enter and exit reset the stack; drop the sample.
  if (node == &tree.root) return;
  node->count += 1;
  node->total_s += elapsed_s;
  node->min_s = std::min(node->min_s, elapsed_s);
  node->max_s = std::max(node->max_s, elapsed_s);
  tree.current = node->parent;
}

ProfileReport profiler_report() {
  Registry& r = registry();
  ProfileReport report;
  report.root.name = "total";
  report.root.count = 1;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    report.root.total_s = std::max(0.0, mono_seconds() - r.window_start_s);
    for (const PhaseStats& child : r.orphans.children) {
      report.root.children.push_back(child);
    }
    report.threads = r.orphan_threads;
    for (ThreadTree* tree : r.trees) {
      std::lock_guard<std::mutex> tree_lock(tree->mutex);
      if (!tree_nonempty(tree->root)) continue;
      ++report.threads;
      for (const auto& child : tree->root.children) {
        const PhaseStats stats = snapshot_node(*child);
        bool merged = false;
        for (PhaseStats& existing : report.root.children) {
          if (existing.name == stats.name) {
            merge_phase(existing, stats);
            merged = true;
            break;
          }
        }
        if (!merged) report.root.children.push_back(stats);
      }
    }
  }
  report.root.min_s = report.root.total_s;
  report.root.max_s = report.root.total_s;
  sort_children(report.root);
  return report;
}

std::vector<PhaseRow> profile_rows(const ProfileReport& report) {
  std::vector<PhaseRow> rows;
  flatten(report.root, "", 0, rows);
  return rows;
}

std::vector<PhaseRow> profile_top_phases(const ProfileReport& report,
                                         std::size_t n) {
  std::vector<PhaseRow> rows = profile_rows(report);
  if (!rows.empty()) rows.erase(rows.begin());  // drop the synthetic root
  std::sort(rows.begin(), rows.end(), [](const PhaseRow& a, const PhaseRow& b) {
    if (a.self_s != b.self_s) return a.self_s > b.self_s;
    return a.path < b.path;
  });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

void write_profile_text(std::ostream& out, const ProfileReport& report) {
  const double window = report.root.total_s;
  out << "profile: phase tree (" << report.threads << " thread"
      << (report.threads == 1 ? "" : "s") << ", window " << prof_num(window)
      << "s; totals are thread-seconds, children may exceed the root under "
         "parallelism)\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s %10s %12s %12s %7s %12s %12s\n",
                "phase", "count", "total_s", "self_s", "self%", "min_s",
                "max_s");
  out << line;
  for (const PhaseRow& row : profile_rows(report)) {
    std::string name(static_cast<std::size_t>(row.depth) * 2, ' ');
    const auto slash = row.path.rfind('/');
    name += slash == std::string::npos ? row.path : row.path.substr(slash + 1);
    const double self_pct = window > 0 ? 100.0 * row.self_s / window : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-44s %10llu %12.6f %12.6f %6.1f%% %12.6f %12.6f\n",
                  name.c_str(), static_cast<unsigned long long>(row.count),
                  row.total_s, row.self_s, self_pct, row.min_s, row.max_s);
    out << line;
  }
}

void write_profile_csv(std::ostream& out, const ProfileReport& report) {
  out << "phase,depth,count,total_s,self_s,min_s,max_s\n";
  for (const PhaseRow& row : profile_rows(report)) {
    out << row.path << ',' << row.depth << ',' << row.count << ','
        << prof_num(row.total_s) << ',' << prof_num(row.self_s) << ','
        << prof_num(row.min_s) << ',' << prof_num(row.max_s) << '\n';
  }
}

void write_profile_csv_file(const std::string& path,
                            const ProfileReport& report) {
  std::ostringstream out;
  write_profile_csv(out, report);
  atomic_write_file(path, out.str(), "profile.write", path);
}

void profile_trace_counters(double ts_s, std::size_t top_n) {
  if (!profiler_enabled() || !trace_enabled()) return;
  const ProfileReport report = profiler_report();
  for (const PhaseRow& row : profile_top_phases(report, top_n)) {
    trace_counter("prof." + row.path, ts_s, kTraceWallPid,
                  {{"self_s", row.self_s}});
  }
}

}  // namespace bbsched
