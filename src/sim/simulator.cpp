#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/profiler.hpp"
#include "common/stopwatch.hpp"
#include "common/trace.hpp"

namespace bbsched {

void SimConfig::validate() const {
  if (window_size < 1) throw std::invalid_argument("sim: window_size < 1");
  if (starvation_bound < 1) {
    throw std::invalid_argument("sim: starvation_bound < 1");
  }
  if (warmup_fraction < 0 || cooldown_fraction < 0 ||
      warmup_fraction + cooldown_fraction >= 1.0) {
    throw std::invalid_argument("sim: warmup/cooldown fractions invalid");
  }
}

MeasureInterval measurement_interval(const Workload& workload,
                                     const SimConfig& config) {
  const Time first_submit =
      workload.jobs.empty() ? 0 : workload.jobs.front().submit_time;
  const Time span = workload.submit_span();
  MeasureInterval interval;
  interval.begin = first_submit + config.warmup_fraction * span;
  interval.end = first_submit + span - config.cooldown_fraction * span;
  return interval;
}

Simulator::Simulator(const Workload& workload, SimConfig config,
                     const BaseScheduler& base, const SelectionPolicy& policy)
    : workload_(workload),
      config_(config),
      base_(base),
      policy_(policy),
      machine_(workload.machine),
      rng_(config.seed) {
  config_.validate();
  if (config_.use_planner) machine_.enable_planner();
  slots_.resize(workload_.jobs.size());
  dependents_.resize(workload_.jobs.size());
  std::unordered_map<JobId, std::size_t> by_id;
  by_id.reserve(workload_.jobs.size());
  for (std::size_t i = 0; i < workload_.jobs.size(); ++i) {
    slots_[i].record = &workload_.jobs[i];
    by_id.emplace(workload_.jobs[i].id, i);
  }
  for (std::size_t i = 0; i < workload_.jobs.size(); ++i) {
    for (JobId dep : workload_.jobs[i].dependencies) {
      const auto it = by_id.find(dep);
      if (it == by_id.end()) {
        throw std::invalid_argument("sim: job " +
                                    std::to_string(workload_.jobs[i].id) +
                                    " depends on unknown job " +
                                    std::to_string(dep));
      }
      dependents_[it->second].push_back(i);
      ++slots_[i].open_deps;
    }
  }
}

std::vector<std::size_t> Simulator::sorted_waiting(Time now) const {
  std::vector<QueuedJobView> views;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const JobSlot& slot = slots_[i];
    if (slot.state == JobState::kWaiting && slot.open_deps == 0) {
      views.push_back({slot.record, slot.queued_since});
      indices.push_back(i);
    }
  }
  // Sort index list through the view ordering of the base scheduler.
  std::vector<std::size_t> order(views.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double pa = base_.priority(views[a], now);
                     const double pb = base_.priority(views[b], now);
                     if (pa != pb) return pa > pb;
                     const JobRecord* ja = views[a].job;
                     const JobRecord* jb = views[b].job;
                     if (ja->submit_time != jb->submit_time) {
                       return ja->submit_time < jb->submit_time;
                     }
                     return ja->id < jb->id;
                   });
  std::vector<std::size_t> sorted;
  sorted.reserve(order.size());
  for (std::size_t o : order) sorted.push_back(indices[o]);
  return sorted;
}

std::vector<RunningJobInfo> Simulator::running_infos() const {
  std::vector<RunningJobInfo> infos;
  for (const auto& slot : slots_) {
    if (slot.state != JobState::kRunning) continue;
    RunningJobInfo info;
    info.id = slot.record->id;
    info.expected_end = slot.start + slot.record->walltime;
    info.alloc = slot.alloc;
    infos.push_back(info);
  }
  return infos;
}

void Simulator::emit_occupancy(Time now) const {
  const MachineConfig& machine = machine_.config();
  const FreeState free = machine_.free_state();
  const double nodes_used =
      static_cast<double>(machine.nodes) - free.nodes;
  const double bb_used = machine.schedulable_bb_gb() - free.bb_gb;
  if (free.ssd_enabled) {
    trace_counter("occupancy", now, trace_pid_,
                  {{"nodes_used", nodes_used},
                   {"bb_used_gb", bb_used},
                   {"small_tier_free", free.small_nodes},
                   {"large_tier_free", free.large_nodes}});
  } else {
    trace_counter("occupancy", now, trace_pid_,
                  {{"nodes_used", nodes_used}, {"bb_used_gb", bb_used}});
  }
}

JobOutcome Simulator::outcome_of(const JobSlot& slot) const {
  JobOutcome outcome;
  outcome.id = slot.record->id;
  outcome.submit = slot.record->submit_time;
  outcome.start = slot.start;
  outcome.end = slot.end;
  outcome.runtime = slot.record->runtime;
  outcome.walltime = slot.record->walltime;
  outcome.nodes = slot.record->nodes;
  outcome.bb_gb = slot.record->bb_gb;
  outcome.ssd_per_node_gb = slot.record->ssd_per_node_gb;
  outcome.small_tier_nodes = slot.alloc.small_nodes;
  outcome.large_tier_nodes = slot.alloc.large_nodes;
  outcome.backfilled = slot.backfilled;
  return outcome;
}

void Simulator::notify_occupancy(Time now) const {
  if (observer_ == nullptr) return;
  const MachineConfig& machine = machine_.config();
  const FreeState free = machine_.free_state();
  observer_->on_occupancy(now,
                          static_cast<double>(machine.nodes) - free.nodes,
                          machine.schedulable_bb_gb() - free.bb_gb);
}

void Simulator::start_job(std::size_t slot_index, Time now,
                          const Allocation& alloc, bool backfilled) {
  JobSlot& slot = slots_[slot_index];
  assert(slot.state == JobState::kWaiting && slot.open_deps == 0);
  // Walltime-horizon span for the availability planner; a no-op without one.
  machine_.allocate_timed(slot.record->id, alloc, now,
                          now + slot.record->walltime);
  slot.alloc = alloc;
  slot.state = JobState::kRunning;
  slot.start = now;
  slot.end = now + slot.record->runtime;
  slot.backfilled = backfilled;
  completions_.push({slot.end, slot_index});
  if (tracing_) {
    trace_instant(backfilled ? "backfill-start" : "start", "sched", now,
                  trace_pid_,
                  {{"job", slot.record->id},
                   {"nodes", slot.record->nodes},
                   {"bb_gb", slot.record->bb_gb},
                   {"wait_s", now - slot.queued_since}});
    emit_occupancy(now);
  }
  notify_occupancy(now);
}

void Simulator::complete_job(std::size_t slot_index) {
  JobSlot& slot = slots_[slot_index];
  assert(slot.state == JobState::kRunning);
  machine_.release(slot.record->id);
  slot.state = JobState::kDone;
  if (tracing_) {
    trace_instant("finish", "sched", slot.end, trace_pid_,
                  {{"job", slot.record->id},
                   {"runtime_s", slot.record->runtime},
                   {"backfilled", slot.backfilled}});
    emit_occupancy(slot.end);
  }
  if (observer_ != nullptr) {
    // Streaming emission: outcomes reach the observer in completion order,
    // with the same field values the end-of-run assembly will produce.
    observer_->on_job_outcome(outcome_of(slot));
    notify_occupancy(slot.end);
  }
  for (std::size_t dep_index : dependents_[slot_index]) {
    JobSlot& dependent = slots_[dep_index];
    assert(dependent.open_deps > 0);
    if (--dependent.open_deps == 0 &&
        dependent.state == JobState::kWaiting) {
      // The job becomes schedulable only now; its queue wait for priority
      // purposes starts here (§3.1 keeps dependent jobs out of the window).
      dependent.queued_since = std::max(dependent.queued_since, slot.end);
    }
  }
}

void Simulator::schedule_cycle(Time now) {
  // Drain the queue: a pass that starts jobs exposes window slots to the
  // jobs behind them, so re-run until a pass makes no progress (bounded by
  // the number of waiting jobs — every productive pass starts >= 1 job).
  while (schedule_pass(now) > 0) {
  }
}

std::size_t Simulator::schedule_pass(Time now) {
  // Every job needs at least one node, so a fully busy machine cannot start
  // anything; skip the pass outright (the next completion re-triggers it).
  if (machine_.free_nodes() == 0) return 0;
  const std::vector<std::size_t> queue = sorted_waiting(now);
  if (queue.empty()) return 0;
  ++stats_.cycles;

  // --- window formation (§3.1) --------------------------------------------
  const std::size_t window_len = std::min(config_.window_size, queue.size());
  std::vector<const JobRecord*> window_jobs(window_len);
  for (std::size_t i = 0; i < window_len; ++i) {
    window_jobs[i] = slots_[queue[i]].record;
  }
  stats_.window_jobs += window_len;

  // Starvation forcing: pin window jobs past the residency bound that fit
  // the machine together with previously pinned jobs.  The cumulative-fit
  // check runs against plain counters to avoid copying allocation state.
  std::vector<std::size_t> pinned;
  bool any_over_bound = false;
  bool any_fits = false;
  {
    NodeCount small_left = 0, large_left = 0;
    {
      const FreeState fs = machine_.free_state();
      small_left = static_cast<NodeCount>(fs.ssd_enabled ? fs.small_nodes
                                                         : fs.nodes);
      large_left = static_cast<NodeCount>(fs.ssd_enabled ? fs.large_nodes
                                                         : 0.0);
    }
    GigaBytes bb_left = machine_.free_bb();
    for (std::size_t i = 0; i < window_len; ++i) {
      const JobSlot& slot = slots_[queue[i]];
      Allocation alloc;
      if (machine_.plan_single(*slot.record, alloc)) any_fits = true;
      if (slot.window_residency < config_.starvation_bound) continue;
      any_over_bound = true;
      // Fit against what previous pins left over.
      if (alloc.small_nodes + alloc.large_nodes == 0 &&
          slot.record->nodes > 0) {
        continue;  // did not fit even alone
      }
      if (alloc.small_nodes <= small_left && alloc.large_nodes <= large_left &&
          alloc.bb_gb <= bb_left) {
        small_left -= alloc.small_nodes;
        large_left -= alloc.large_nodes;
        bb_left -= alloc.bb_gb;
        pinned.push_back(i);
      }
    }
    (void)any_over_bound;
  }
  stats_.forced_starts += pinned.size();
  if (tracing_ && !pinned.empty()) {
    trace_instant("starvation-promotion", "sched", now, trace_pid_,
                  {{"pinned", pinned.size()}, {"window", window_len}});
  }

  // --- window selection (§3.2) ---------------------------------------------
  WindowDecision decision;
  if (any_fits) {
    PROF_PHASE("sim.select");
    WindowContext context;
    context.window = window_jobs;
    context.free = machine_.free_state();
    context.pinned = pinned;
    context.rng = &rng_;

    TraceSpan select_span("policy.select", "sched",
                          {{"policy", policy_.name()},
                           {"window", window_len},
                           {"pinned", pinned.size()}});
    Stopwatch watch;
    decision = policy_.select(context);
    if (config_.time_decisions) {
      const double elapsed = watch.elapsed_seconds();
      stats_.solve_seconds_total += elapsed;
      stats_.solve_seconds_max = std::max(stats_.solve_seconds_max, elapsed);
      if (metrics_enabled()) {
        static MetricHistogram& solve_hist =
            metric_histogram("sim.solve_seconds");
        solve_hist.observe(elapsed);
      }
    }
    stats_.evaluations += decision.evaluations;
    stats_.pareto_size_sum += static_cast<double>(decision.pareto_size);
    select_span.add_arg({"selected", decision.selected.size()});
    select_span.add_arg({"pareto_size", decision.pareto_size});
    select_span.add_arg({"evaluations", decision.evaluations});
    if (tracing_) {
      trace_instant("window-select", "sched", now, trace_pid_,
                    {{"window", window_len},
                     {"pinned", pinned.size()},
                     {"selected", decision.selected.size()},
                     {"pareto_size", decision.pareto_size},
                     {"evaluations", decision.evaluations}});
    }
  }

  if (!decision.allocations.empty() &&
      decision.allocations.size() != decision.selected.size()) {
    throw std::logic_error("policy " + policy_.name() +
                           ": allocations/selected size mismatch");
  }
  std::size_t started = 0;
  for (std::size_t k = 0; k < decision.selected.size(); ++k) {
    const std::size_t pos = decision.selected[k];
    if (pos >= window_len) {
      throw std::logic_error("policy " + policy_.name() +
                             ": selected position outside window");
    }
    const std::size_t slot_index = queue[pos];
    Allocation alloc;
    if (!decision.allocations.empty()) {
      alloc = decision.allocations[k];
      if (alloc.total_nodes() != slots_[slot_index].record->nodes) {
        throw std::logic_error("policy " + policy_.name() +
                               ": allocation node split mismatch");
      }
    } else if (!machine_.plan_single(*slots_[slot_index].record, alloc)) {
      throw std::logic_error("policy " + policy_.name() +
                             ": selected job does not fit");
    }
    start_job(slot_index, now, alloc, /*backfilled=*/false);
    ++stats_.policy_starts;
    ++started;
  }

  // --- window residency bookkeeping ----------------------------------------
  for (std::size_t i = 0; i < window_len; ++i) {
    JobSlot& slot = slots_[queue[i]];
    if (slot.state == JobState::kWaiting) {
      ++slot.window_residency;
    } else {
      slot.window_residency = 0;
    }
  }

  // --- EASY backfilling around the window -----------------------------------
  // The head is the highest-priority job still waiting; candidates are the
  // remaining *window* jobs.  Scoping backfill to the window keeps the
  // window the unit of scheduling (§3.1): jobs behind it advance when starts
  // open window slots (the fixpoint loop in schedule_cycle re-forms the
  // window in the same invocation), never by leapfrogging hundreds of queued
  // jobs — which would both violate the base scheduler's ordering guarantees
  // far beyond what EASY allows and erase the differences between the
  // window-selection methods being compared.
  const JobRecord* head = nullptr;
  std::vector<BackfillCandidate> candidates;
  for (std::size_t i = 0; i < window_len; ++i) {
    const std::size_t slot_index = queue[i];
    const JobSlot& slot = slots_[slot_index];
    if (slot.state != JobState::kWaiting) continue;
    if (head == nullptr) {
      head = slot.record;
      continue;
    }
    candidates.push_back({slot.record, slot_index});
  }
  if (head == nullptr) return started;
  // Planner path: the timeline already holds every running job's walltime
  // span in release order, so skip materializing running_infos() entirely.
  const BackfillResult backfill = [&] {
    PROF_PHASE("sim.backfill");
    return config_.use_planner
               ? plan_easy_backfill(machine_, head, candidates, now)
               : plan_easy_backfill(machine_, head, running_infos(),
                                    candidates, now);
  }();
  for (const auto& start : backfill.started) {
    start_job(start.key, now, start.alloc, /*backfilled=*/true);
    ++stats_.backfill_starts;
    ++started;
  }
  return started;
}

SimResult Simulator::run() {
  PROF_PHASE("sim.run");
  // Latch telemetry once: runs are all-or-nothing traced, and a run with
  // telemetry off takes exactly one atomic load extra per emission site.
  tracing_ = trace_enabled();
  if (tracing_) {
    trace_pid_ =
        trace_register_process("sim " + workload_.name + "/" + policy_.name());
  }

  std::size_t next_arrival = 0;
  const std::size_t total = slots_.size();
  std::size_t done = 0;

  while (done < total) {
    // Next event time: earliest of next arrival and next completion.
    Time now;
    const bool have_arrival = next_arrival < total;
    const bool have_completion = !completions_.empty();
    if (!have_arrival && !have_completion) {
      // No future events but jobs still wait: the selection policy declined
      // everything and backfill could not help (the queue head holds the
      // reservation).  A production scheduler's periodic timer would fire
      // here; emulate it by force-starting waiting jobs in priority order —
      // the same escape hatch as the starvation bound, without waiting for
      // `starvation_bound` cycles that will never come.
      const Time stall_time = last_event_time_;
      const auto queue = sorted_waiting(stall_time);
      std::size_t forced = 0;
      for (std::size_t slot_index : queue) {
        Allocation alloc;
        if (machine_.plan_single(*slots_[slot_index].record, alloc)) {
          start_job(slot_index, stall_time, alloc, /*backfilled=*/false);
          ++stats_.forced_starts;
          ++forced;
        }
      }
      if (forced == 0) {
        throw std::logic_error(
            "sim: deadlock — waiting jobs but no events and nothing fits "
            "(circular dependencies or unservable resource request?)");
      }
      continue;
    }
    if (have_arrival &&
        (!have_completion ||
         workload_.jobs[next_arrival].submit_time <=
             completions_.top().first)) {
      now = workload_.jobs[next_arrival].submit_time;
    } else {
      now = completions_.top().first;
    }
    last_event_time_ = now;

    // Process every event at `now`: completions first so arrivals and the
    // scheduling cycle see the freed capacity.
    while (!completions_.empty() && completions_.top().first <= now) {
      const std::size_t slot_index = completions_.top().second;
      completions_.pop();
      complete_job(slot_index);
      ++done;
    }
    while (next_arrival < total &&
           workload_.jobs[next_arrival].submit_time <= now) {
      JobSlot& slot = slots_[next_arrival];
      slot.state = JobState::kWaiting;
      slot.queued_since = slot.record->submit_time;
      if (tracing_) {
        trace_instant("submit", "sched", slot.record->submit_time, trace_pid_,
                      {{"job", slot.record->id},
                       {"nodes", slot.record->nodes},
                       {"bb_gb", slot.record->bb_gb},
                       {"deps", slot.record->dependencies.size()}});
      }
      ++next_arrival;
    }

    schedule_cycle(now);

    // A job oversized for the machine would wait forever; workload
    // normalization rejects those, so progress is guaranteed here.
  }

  // --- assemble the result --------------------------------------------------
  SimResult result;
  result.workload_name = workload_.name;
  result.policy_name = policy_.name();
  result.base_scheduler_name = base_.name();
  result.machine = workload_.machine;
  result.outcomes.reserve(total);
  for (const auto& slot : slots_) {
    JobOutcome outcome = outcome_of(slot);
    result.makespan = std::max(result.makespan, outcome.end);
    result.outcomes.push_back(std::move(outcome));
  }
  const MeasureInterval interval = measurement_interval(workload_, config_);
  result.measure_begin = interval.begin;
  result.measure_end = interval.end;
  result.decisions = stats_;

  if (metrics_enabled()) {
    static Counter& runs = metric_counter("sim.runs");
    static Counter& cycles = metric_counter("sim.cycles");
    static Counter& policy_starts = metric_counter("sim.policy_starts");
    static Counter& backfill_starts = metric_counter("sim.backfill_starts");
    static Counter& forced_starts = metric_counter("sim.forced_starts");
    static Counter& evaluations = metric_counter("sim.evaluations");
    runs.add(1);
    cycles.add(stats_.cycles);
    policy_starts.add(stats_.policy_starts);
    backfill_starts.add(stats_.backfill_starts);
    forced_starts.add(stats_.forced_starts);
    evaluations.add(stats_.evaluations);
  }
  if (log_enabled(LogLevel::kDebug)) {
    log_debug("sim", "run complete",
              {{"workload", workload_.name},
               {"policy", policy_.name()},
               {"jobs", total},
               {"cycles", stats_.cycles},
               {"policy_starts", stats_.policy_starts},
               {"backfill_starts", stats_.backfill_starts},
               {"forced_starts", stats_.forced_starts},
               {"makespan_s", result.makespan},
               {"mean_solve_s", stats_.mean_solve_seconds()}});
  }
  return result;
}

SimResult simulate(const Workload& workload, const SimConfig& config,
                   const BaseScheduler& base, const SelectionPolicy& policy,
                   SimObserver* observer) {
  Simulator sim(workload, config, base, policy);
  sim.set_observer(observer);
  return sim.run();
}

}  // namespace bbsched
