#include "policies/bin_packing.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

JobRecord job(JobId id, NodeCount nodes, GigaBytes bb = 0) {
  JobRecord j;
  j.id = id;
  j.nodes = nodes;
  j.bb_gb = bb;
  j.runtime = 100;
  j.walltime = 100;
  return j;
}

FreeState plain_free(double nodes = 100, GigaBytes bb = tb(100)) {
  FreeState f;
  f.nodes = nodes;
  f.bb_gb = bb;
  return f;
}

WindowDecision select(const std::vector<JobRecord>& jobs,
                      FreeState free = plain_free(),
                      std::vector<std::size_t> pinned = {}) {
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  Rng rng(1);
  WindowContext context;
  context.window = window;
  context.free = free;
  context.pinned = pinned;
  context.rng = &rng;
  return BinPackingPolicy().select(context);
}

TEST(BinPacking, Table1PicksJ1AndJ5) {
  // §1: "the bin packing method selects J1 and J5 for execution" — the
  // alignment-score greedy fills nodes but leaves 80 % of the BB wasted.
  const std::vector<JobRecord> jobs{job(1, 80, tb(20)), job(2, 10, tb(85)),
                                    job(3, 40, tb(5)), job(4, 10),
                                    job(5, 20)};
  const auto decision = select(jobs);
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0, 4}));
}

TEST(BinPacking, SelectionIsMaximal) {
  // Greedy repeats until nothing fits: no unselected job may still fit.
  const std::vector<JobRecord> jobs{job(1, 40, tb(10)), job(2, 35, tb(40)),
                                    job(3, 30, tb(20)), job(4, 10, tb(5)),
                                    job(5, 5)};
  const auto decision = select(jobs);
  double nodes = 0, bb = 0;
  std::vector<bool> chosen(jobs.size(), false);
  for (std::size_t pos : decision.selected) {
    chosen[pos] = true;
    nodes += static_cast<double>(jobs[pos].nodes);
    bb += jobs[pos].bb_gb;
  }
  EXPECT_LE(nodes, 100);
  EXPECT_LE(bb, tb(100));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (chosen[i]) continue;
    EXPECT_TRUE(nodes + static_cast<double>(jobs[i].nodes) > 100 ||
                bb + jobs[i].bb_gb > tb(100))
        << "job " << i + 1 << " still fits but was not selected";
  }
}

TEST(BinPacking, PrefersAlignedJob) {
  // With nodes nearly exhausted and BB wide open, the BB-heavy job aligns
  // better with the remaining-resource vector than the node-heavy one.
  const std::vector<JobRecord> jobs{job(1, 9, tb(80)), job(2, 10, gb(1))};
  FreeState free = plain_free(10, tb(100));
  const auto decision = select(jobs, free);
  ASSERT_FALSE(decision.selected.empty());
  EXPECT_EQ(decision.selected[0], 0u);
}

TEST(BinPacking, RespectsPins) {
  const std::vector<JobRecord> jobs{job(1, 80, tb(20)), job(2, 10, tb(85)),
                                    job(3, 40, tb(5)), job(4, 10),
                                    job(5, 20)};
  // Pinning J2 blocks J1 on the BB axis; the greedy then packs around J2.
  const auto decision = select(jobs, plain_free(), {1});
  bool has_j2 = false;
  for (std::size_t pos : decision.selected) has_j2 |= (pos == 1);
  EXPECT_TRUE(has_j2);
  double bb = 0;
  for (std::size_t pos : decision.selected) bb += jobs[pos].bb_gb;
  EXPECT_LE(bb, tb(100));
}

TEST(BinPacking, EmptyWindowOrNothingFits) {
  EXPECT_TRUE(select({}).selected.empty());
  const std::vector<JobRecord> jobs{job(1, 200)};
  EXPECT_TRUE(select(jobs).selected.empty());
}

TEST(BinPacking, SsdDimensionIncluded) {
  FreeState free;
  free.ssd_enabled = true;
  free.small_nodes = 4;
  free.large_nodes = 4;
  free.nodes = 8;
  free.bb_gb = tb(10);
  free.small_ssd_gb = 128;
  free.large_ssd_gb = 256;
  JobRecord a = job(1, 4);
  a.ssd_per_node_gb = 200;  // large tier only
  JobRecord b = job(2, 5);
  b.ssd_per_node_gb = 200;  // does not fit the large tier
  const auto decision = select({a, b}, free);
  ASSERT_EQ(decision.selected, (std::vector<std::size_t>{0}));
  ASSERT_EQ(decision.allocations.size(), 1u);
  EXPECT_EQ(decision.allocations[0].large_nodes, 4);
}

}  // namespace
}  // namespace bbsched
