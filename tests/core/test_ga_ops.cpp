#include "core/ga_ops.hpp"

#include <gtest/gtest.h>

#include "core/multi_resource_problem.hpp"

namespace bbsched {
namespace {

MultiResourceProblem loose_problem(std::size_t w = 8) {
  const std::vector<double> nodes(w, 1.0);
  const std::vector<double> bb(w, 1.0);
  return MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
}

MultiResourceProblem tight_problem() {
  const std::vector<double> nodes{60, 60, 60};
  const std::vector<double> bb{0, 0, 0};
  return MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
}

TEST(RandomChromosome, FeasibleAndEvaluated) {
  const auto problem = tight_problem();
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto c = random_chromosome(problem, rng);
    EXPECT_TRUE(problem.feasible(c.genes));
    EXPECT_EQ(c.objectives.size(), 2u);
    EXPECT_EQ(c.age, 0);
  }
}

TEST(RandomPopulation, RequestedSize) {
  const auto problem = loose_problem();
  Rng rng(5);
  EXPECT_EQ(random_population(problem, 12, rng).size(), 12u);
}

TEST(Crossover, SinglePointSwapsTails) {
  const Genes a{1, 1, 1, 1, 1, 1};
  const Genes b{0, 0, 0, 0, 0, 0};
  Rng rng(7);
  const auto [child_a, child_b] = crossover(a, b, rng);
  // Find the cut: child_a must be 1...10...0 and child_b its complement.
  std::size_t cut = 0;
  while (cut < child_a.size() && child_a[cut] == 1) ++cut;
  EXPECT_GE(cut, 1u);
  EXPECT_LT(cut, child_a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(child_a[i], i < cut ? 1 : 0);
    EXPECT_EQ(child_b[i], i < cut ? 0 : 1);
  }
}

TEST(Crossover, PreservesGeneMultiset) {
  Rng rng(11);
  const Genes a{1, 0, 1, 0, 1};
  const Genes b{0, 1, 1, 1, 0};
  for (int i = 0; i < 20; ++i) {
    const auto [x, y] = crossover(a, b, rng);
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(x[k] + y[k], a[k] + b[k]) << "position " << k;
    }
  }
}

TEST(Crossover, SingleGeneIsNoop) {
  Rng rng(1);
  const auto [x, y] = crossover(Genes{1}, Genes{0}, rng);
  EXPECT_EQ(x, Genes{1});
  EXPECT_EQ(y, Genes{0});
}

TEST(Mutate, ZeroRateIsNoop) {
  const auto problem = loose_problem();
  Rng rng(3);
  Genes genes{1, 0, 1, 0, 1, 0, 1, 0};
  const Genes before = genes;
  mutate(genes, problem, 0.0, rng);
  EXPECT_EQ(genes, before);
}

TEST(Mutate, FullRateFlipsEverything) {
  const auto problem = loose_problem();
  Rng rng(3);
  Genes genes{1, 0, 1, 0, 1, 0, 1, 0};
  mutate(genes, problem, 1.0, rng);
  EXPECT_EQ(genes, (Genes{0, 1, 0, 1, 0, 1, 0, 1}));
}

TEST(Mutate, ReappliesPins) {
  auto problem = loose_problem();
  problem.pin(0);
  Rng rng(3);
  Genes genes{1, 1, 1, 1, 1, 1, 1, 1};
  mutate(genes, problem, 1.0, rng);
  EXPECT_EQ(genes[0], 1) << "pinned gene must survive a full flip";
}

TEST(MakeChildren, CountFeasibilityAndAge) {
  const auto problem = tight_problem();
  Rng rng(13);
  const auto parents = random_population(problem, 6, rng);
  const auto children = make_children(problem, parents, 9, 0.1, rng);
  EXPECT_EQ(children.size(), 9u);
  for (const auto& c : children) {
    EXPECT_TRUE(problem.feasible(c.genes));
    EXPECT_EQ(c.age, 0);
    EXPECT_EQ(c.objectives.size(), 2u);
  }
}

TEST(MakeChildren, OddCountSupported) {
  const auto problem = loose_problem();
  Rng rng(17);
  const auto parents = random_population(problem, 4, rng);
  EXPECT_EQ(make_children(problem, parents, 1, 0.0, rng).size(), 1u);
}

}  // namespace
}  // namespace bbsched
