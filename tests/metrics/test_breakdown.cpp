#include "metrics/breakdown.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

JobOutcome outcome(Time submit, Time wait, Time runtime, NodeCount nodes,
                   GigaBytes bb = 0) {
  JobOutcome o;
  o.submit = submit;
  o.start = submit + wait;
  o.end = o.start + runtime;
  o.runtime = runtime;
  o.walltime = runtime;
  o.nodes = nodes;
  o.bb_gb = bb;
  return o;
}

SimResult make_result(std::vector<JobOutcome> outcomes) {
  SimResult r;
  r.machine.nodes = 5000;
  r.machine.burst_buffer_gb = pb(1);
  r.outcomes = std::move(outcomes);
  r.measure_begin = 0;
  r.measure_end = 1e9;
  return r;
}

TEST(Breakdown, ByJobSizeBins) {
  auto r = make_result({
      outcome(0, 100, 600, 4),     // 1-8
      outcome(0, 300, 600, 8),     // 1-8
      outcome(0, 500, 600, 100),   // 9-128
      outcome(0, 700, 600, 2000),  // 1025+
  });
  const auto bins = breakdown_by_job_size(r);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0].label, "1-8");
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_DOUBLE_EQ(bins[0].avg_wait, 200.0);
  EXPECT_EQ(bins[1].count, 1u);
  EXPECT_EQ(bins[2].count, 0u);
  EXPECT_DOUBLE_EQ(bins[2].avg_wait, 0.0);
  EXPECT_EQ(bins[3].label, "1025+");
  EXPECT_EQ(bins[3].count, 1u);
}

TEST(Breakdown, ByBbRequestIncludesNoBbBin) {
  auto r = make_result({
      outcome(0, 100, 600, 4, 0),
      outcome(0, 200, 600, 4, tb(0.5)),
      outcome(0, 300, 600, 4, tb(150)),
      outcome(0, 400, 600, 4, tb(250)),
  });
  const auto bins = breakdown_by_bb_request(r);
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_EQ(bins[0].label, "no-BB");
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 1u);  // 0-1 TB
  EXPECT_EQ(bins[3].count, 1u);  // 100-200 TB
  EXPECT_EQ(bins[4].count, 1u);  // 200 TB+
}

TEST(Breakdown, ByRuntimeBins) {
  auto r = make_result({
      outcome(0, 100, minutes(30), 4),
      outcome(0, 200, hours(2), 4),
      outcome(0, 300, hours(20), 4),
  });
  const auto bins = breakdown_by_runtime(r);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0].count, 1u);  // 0-1 h
  EXPECT_EQ(bins[1].count, 1u);  // 1-4 h
  EXPECT_EQ(bins[2].count, 0u);  // 4-12 h
  EXPECT_EQ(bins[3].count, 1u);  // 12 h+
}

TEST(Breakdown, RespectsMeasurementInterval) {
  auto r = make_result({outcome(0, 100, 600, 4), outcome(0, 300, 600, 4)});
  r.measure_begin = 1;  // both jobs submitted at 0 -> excluded
  const auto bins = breakdown_by_job_size(r);
  for (const auto& bin : bins) EXPECT_EQ(bin.count, 0u);
}

TEST(Breakdown, GenericAssignerAndSlowdowns) {
  auto r = make_result({outcome(0, 600, 600, 4), outcome(0, 0, 600, 4)});
  const auto bins = breakdown_wait(
      r, {"even", "odd"},
      [](const JobOutcome& o) { return o.wait() > 0 ? 0u : 1u; });
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].avg_slowdown, 2.0);
  EXPECT_DOUBLE_EQ(bins[1].avg_slowdown, 1.0);
}

TEST(Breakdown, OutOfRangeAssignmentDropped) {
  auto r = make_result({outcome(0, 100, 600, 4)});
  const auto bins =
      breakdown_wait(r, {"only"}, [](const JobOutcome&) { return 5u; });
  EXPECT_EQ(bins[0].count, 0u);
}

}  // namespace
}  // namespace bbsched
