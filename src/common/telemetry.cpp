#include "common/telemetry.hpp"

#include "common/argparse.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace bbsched {

void TelemetryOptions::register_flags(ArgParser& parser) {
  parser.add_string("log-level", &log_level,
                    "log threshold: trace|debug|info|warn|error|off "
                    "(default BBSCHED_LOG or info)");
  parser.add_string("trace-out", &trace_out,
                    "write Chrome trace JSON here (view at ui.perfetto.dev; "
                    "default BBSCHED_TRACE or off)");
  parser.add_string("metrics-out", &metrics_out,
                    "write metrics snapshot CSV here "
                    "(default BBSCHED_METRICS or off)");
}

void TelemetryOptions::apply() {
  if (!log_level.empty()) set_log_level(parse_log_level(log_level));
  if (trace_out.empty()) trace_out = env_string("BBSCHED_TRACE", "");
  if (metrics_out.empty()) metrics_out = env_string("BBSCHED_METRICS", "");
  if (!trace_out.empty()) set_trace_enabled(true);
  if (!metrics_out.empty()) set_metrics_enabled(true);
}

void TelemetryOptions::finish() const {
  if (!trace_out.empty()) {
    write_trace_json_file(trace_out);
    log_info("telemetry", "trace written",
             {{"path", trace_out}, {"events", trace_event_count()}});
  }
  if (!metrics_out.empty()) {
    MetricsRegistry::global().write_csv_file(metrics_out);
    log_info("telemetry", "metrics snapshot written", {{"path", metrics_out}});
  }
}

}  // namespace bbsched
