# Empty dependencies file for bench_fig5_bb_histograms.
# This may be replaced when dependencies are built.
