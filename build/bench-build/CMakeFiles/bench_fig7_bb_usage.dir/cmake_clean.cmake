file(REMOVE_RECURSE
  "../bench/bench_fig7_bb_usage"
  "../bench/bench_fig7_bb_usage.pdb"
  "CMakeFiles/bench_fig7_bb_usage.dir/bench_fig7_bb_usage.cpp.o"
  "CMakeFiles/bench_fig7_bb_usage.dir/bench_fig7_bb_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_bb_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
