#include "exp/grid.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "exp/journal.hpp"
#include "exp/monitor.hpp"
#include "policies/factory.hpp"

namespace bbsched {

namespace {

namespace fs = std::filesystem;

std::string grid_cache_path(const ExperimentConfig& config,
                            const std::string& tag) {
  return (fs::path(config.cache_dir) /
          (tag + "_" + config.digest() + ".csv"))
      .string();
}

std::string journal_path(const ExperimentConfig& config,
                         const std::string& tag) {
  return (fs::path(config.cache_dir) / "journal" /
          (tag + "_" + config.digest() + ".journal"))
      .string();
}

/// Lossless double -> string for the cache (std::to_string truncates to six
/// decimals, which breaks exact reload comparisons).
std::string num_repr(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

CsvRow cell_to_row(const GridCell& cell) {
  const auto& m = cell.metrics;
  return {cell.workload,
          cell.method,
          num_repr(m.node_usage),
          num_repr(m.bb_usage),
          num_repr(m.ssd_usage),
          num_repr(m.ssd_waste),
          num_repr(m.avg_wait),
          num_repr(m.avg_slowdown),
          num_repr(m.p95_wait),
          num_repr(m.max_wait),
          std::to_string(m.jobs_measured),
          std::to_string(m.jobs_backfilled),
          num_repr(cell.mean_solve_seconds),
          num_repr(cell.max_solve_seconds),
          num_repr(cell.mean_pareto_size),
          std::to_string(cell.forced_starts),
          num_repr(cell.cell_wall_seconds)};
}

const CsvRow kGridHeader = {
    "workload",     "method",        "node_usage",   "bb_usage",
    "ssd_usage",    "ssd_waste",     "avg_wait",     "avg_slowdown",
    "p95_wait",     "max_wait",      "jobs",         "backfilled",
    "mean_solve_s", "max_solve_s",   "mean_pareto",  "forced_starts",
    "cell_wall_s"};

GridCell row_to_cell(const CsvTable& table, std::size_t r) {
  GridCell cell;
  cell.workload = table.at(r, "workload");
  cell.method = table.at(r, "method");
  auto num = [&](const char* col) {
    return parse_double_field(table.at(r, col), col);
  };
  cell.metrics.node_usage = num("node_usage");
  cell.metrics.bb_usage = num("bb_usage");
  cell.metrics.ssd_usage = num("ssd_usage");
  cell.metrics.ssd_waste = num("ssd_waste");
  cell.metrics.avg_wait = num("avg_wait");
  cell.metrics.avg_slowdown = num("avg_slowdown");
  cell.metrics.p95_wait = num("p95_wait");
  cell.metrics.max_wait = num("max_wait");
  cell.metrics.jobs_measured =
      static_cast<std::size_t>(parse_int_field(table.at(r, "jobs"), "jobs"));
  cell.metrics.jobs_backfilled = static_cast<std::size_t>(
      parse_int_field(table.at(r, "backfilled"), "backfilled"));
  cell.mean_solve_seconds = num("mean_solve_s");
  cell.max_solve_seconds = num("max_solve_s");
  cell.mean_pareto_size = num("mean_pareto");
  cell.forced_starts = static_cast<std::size_t>(
      parse_int_field(table.at(r, "forced_starts"), "forced_starts"));
  cell.cell_wall_seconds = num("cell_wall_s");
  return cell;
}

GridCell cell_from_result(const SimResult& result,
                          const ScheduleMetrics& metrics) {
  GridCell cell;
  cell.workload = result.workload_name;
  cell.method = result.policy_name;
  cell.metrics = metrics;
  cell.mean_solve_seconds = result.decisions.mean_solve_seconds();
  cell.max_solve_seconds = result.decisions.solve_seconds_max;
  cell.mean_pareto_size = result.decisions.mean_pareto_size();
  cell.forced_starts = result.decisions.forced_starts;
  return cell;
}

void append_breakdowns(const SimResult& result, double machine_scale,
                       std::vector<BreakdownCell>& out) {
  // Bin edges follow the machine scale so each bin keeps its position
  // relative to machine size and request range (runtimes do not scale).
  auto scaled_nodes = [&](double v) {
    return std::max<NodeCount>(
        1, static_cast<NodeCount>(std::llround(v * machine_scale)));
  };
  const std::vector<NodeCount> size_edges{scaled_nodes(8), scaled_nodes(128),
                                          scaled_nodes(1024)};
  const std::vector<double> bb_edges_tb{1 * machine_scale,
                                        100 * machine_scale,
                                        200 * machine_scale};
  const struct {
    const char* dimension;
    std::vector<BreakdownBin> bins;
  } groups[] = {
      {"job_size", breakdown_by_job_size(result, size_edges)},
      {"bb_request", breakdown_by_bb_request(result, bb_edges_tb)},
      {"runtime", breakdown_by_runtime(result)},
  };
  for (const auto& group : groups) {
    for (const auto& bin : group.bins) {
      BreakdownCell cell;
      cell.workload = result.workload_name;
      cell.method = result.policy_name;
      cell.dimension = group.dimension;
      cell.label = bin.label;
      cell.avg_wait = bin.avg_wait;
      cell.count = bin.count;
      out.push_back(std::move(cell));
    }
  }
}

const CsvRow kBreakdownHeader = {"workload", "method",   "dimension",
                                 "label",    "avg_wait", "count"};

CsvRow breakdown_to_row(const BreakdownCell& cell) {
  return {cell.workload,           cell.method,
          cell.dimension,          cell.label,
          num_repr(cell.avg_wait), std::to_string(cell.count)};
}

BreakdownCell row_to_breakdown(const CsvTable& table, std::size_t r) {
  BreakdownCell cell;
  cell.workload = table.at(r, "workload");
  cell.method = table.at(r, "method");
  cell.dimension = table.at(r, "dimension");
  cell.label = table.at(r, "label");
  cell.avg_wait = parse_double_field(table.at(r, "avg_wait"), "avg_wait");
  cell.count = static_cast<std::size_t>(
      parse_int_field(table.at(r, "count"), "count"));
  return cell;
}

/// Per-cell timing instrumentation emitted next to the grid cache so
/// speedups are measurable without re-reading the full grid schema.
void write_solver_timing(const std::string& path,
                         const std::vector<GridCell>& cells) {
  CsvTable timing({"workload", "method", "cell_wall_s", "mean_solve_s",
                   "max_solve_s", "mean_pareto"});
  for (const auto& cell : cells) {
    timing.add_row({cell.workload, cell.method,
                    num_repr(cell.cell_wall_seconds),
                    num_repr(cell.mean_solve_seconds),
                    num_repr(cell.max_solve_seconds),
                    num_repr(cell.mean_pareto_size)});
  }
  write_csv_file_checksummed(timing, path);
}

/// Schema check with a diagnostic worth acting on: names the file and the
/// expected column count so a hand-edited or stale cache fails loudly.
void require_header(const CsvTable& table, const CsvRow& expected,
                    const std::string& path) {
  if (table.header() != expected) {
    throw std::runtime_error(
        "grid cache " + path + ": unexpected header (" +
        std::to_string(table.header().size()) + " columns, expected " +
        std::to_string(expected.size()) + ": " + format_csv_row(expected) +
        ")");
  }
}

/// Load one cached CSV, validating the CRC32 trailer and the schema.  On
/// any defect the file is quarantined (cache_dir/quarantine/) with a
/// structured log line and nullopt is returned — the caller recomputes.
std::optional<CsvTable> load_cache_csv(const std::string& path,
                                       const CsvRow& expected_header) {
  if (!fs::exists(path)) return std::nullopt;
  PROF_PHASE("grid.cache_load");
  std::string error;
  auto table = read_csv_file_checksummed(path, &error);
  if (!table) {
    quarantine_file(path, error);
    return std::nullopt;
  }
  try {
    require_header(*table, expected_header, path);
  } catch (const std::exception& e) {
    quarantine_file(path, e.what());
    return std::nullopt;
  }
  return table;
}

// ---------------------------------------------------------------------------
// Campaign control and the last-campaign report.

std::mutex g_report_mutex;
CampaignReport g_last_report;

void publish_report(CampaignReport report) {
  std::lock_guard<std::mutex> lock(g_report_mutex);
  g_last_report = std::move(report);
}

}  // namespace

CampaignControl CampaignControl::from_env() {
  CampaignControl control;
  control.resume = env_int("BBSCHED_RESUME", control.resume ? 1 : 0) != 0;
  control.max_retries = static_cast<int>(
      env_int("BBSCHED_MAX_RETRIES", control.max_retries));
  control.cell_timeout_s =
      env_double("BBSCHED_CELL_TIMEOUT", control.cell_timeout_s);
  control.retry_base_delay_s =
      env_double("BBSCHED_RETRY_BASE_DELAY", control.retry_base_delay_s);
  control.strict = env_int("BBSCHED_STRICT", control.strict ? 1 : 0) != 0;
  return control;
}

CampaignControl& campaign_control() {
  static CampaignControl control = CampaignControl::from_env();
  return control;
}

const CampaignReport& last_campaign_report() {
  std::lock_guard<std::mutex> lock(g_report_mutex);
  return g_last_report;
}

std::optional<GridCell> find_cell(const std::vector<GridCell>& cells,
                                  const std::string& workload,
                                  const std::string& method) {
  for (const auto& cell : cells) {
    if (cell.workload == workload && cell.method == method) return cell;
  }
  return std::nullopt;
}

SimResult run_single(const ExperimentConfig& config, const Workload& workload,
                     const std::string& method, SimObserver* observer) {
  const auto base = make_base_scheduler(base_scheduler_for(workload.name));
  const auto policy = make_policy(method, config.ga);
  SimConfig sim = config.sim_config();
  // Splittable per-cell stream: every (workload, method) cell owns the RNG
  // stream derived from the campaign seed and its labels, so cells are
  // decorrelated from each other and independent of the order — serial or
  // parallel — in which the grid runs them.
  sim.seed = mix_seed(sim.seed, workload.name, method);
  return simulate(workload, sim, *base, *policy, observer);
}

namespace {

/// What one grid task produces; slot-per-cell so the parallel loop writes
/// disjoint memory and the assembled order matches the serial loop's.
struct CellOutcome {
  GridCell cell;
  std::vector<BreakdownCell> breakdowns;
  bool ok = false;       ///< cell completed (computed or resumed)
  bool resumed = false;  ///< recovered from the journal, not re-run
};

/// Per-cell streaming observer: feeds the incremental metrics engine as the
/// simulator completes jobs — the grid's cell metrics come from here, never
/// from a post-hoc pass over the outcome vector — and counts sim events for
/// the campaign monitor's events/sec gauge.
class StreamingCellObserver : public SimObserver {
 public:
  StreamingCellObserver(const MachineConfig& machine, MeasureInterval interval,
                        CampaignMonitor* monitor)
      : metrics_(machine, interval.begin, interval.end), monitor_(monitor) {}

  void on_job_outcome(const JobOutcome& outcome) override {
    metrics_.add(outcome);
    if (monitor_ != nullptr) monitor_->add_events(1);
  }
  void on_occupancy(Time /*now*/, double /*nodes_used*/,
                    double /*bb_used_gb*/) override {
    if (monitor_ != nullptr) monitor_->add_events(1);
  }

  const IncrementalScheduleMetrics& metrics() const { return metrics_; }

 private:
  IncrementalScheduleMetrics metrics_;
  CampaignMonitor* monitor_;
};

/// Everything one attempt computes; owned by the attempt so a
/// deadline-abandoned attempt cannot scribble on live campaign state.
struct AttemptResult {
  GridCell cell;
  std::vector<BreakdownCell> breakdowns;
};

AttemptResult run_attempt_body(const ExperimentConfig& config,
                               const SuiteEntry& entry,
                               const std::string& method,
                               bool collect_breakdowns,
                               CampaignMonitor* monitor,
                               const std::string& attempt_key) {
  fault_point("grid.cell", attempt_key);
  // One wall-clock span per attempt — the unit of the parallel speedup
  // accounting — labeled so Perfetto shows which cell ran on which worker.
  PROF_PHASE("grid.cell");
  TraceSpan cell_span("grid.cell", "exp",
                      {{"workload", entry.label}, {"method", method}});
  Stopwatch cell_watch;
  StreamingCellObserver observer(
      entry.workload.machine,
      measurement_interval(entry.workload, config.sim_config()), monitor);
  const SimResult result =
      run_single(config, entry.workload, method, &observer);
  AttemptResult attempt;
  attempt.cell = cell_from_result(result, [&] {
    PROF_PHASE("grid.score");
    return observer.metrics().finalize();
  }());
  attempt.cell.cell_wall_seconds = cell_watch.elapsed_seconds();
  // Figures 9-11 break down the Theta-S4 runs.
  if (collect_breakdowns && entry.label == "Theta-S4") {
    append_breakdowns(result, config.theta_scale, attempt.breakdowns);
  }
  return attempt;
}

/// Run one attempt, optionally under a watchdog deadline.  Returns false on
/// timeout; rethrows whatever the attempt threw.  With a deadline the
/// attempt runs on its own thread over value copies of its inputs — if it
/// blows the deadline the thread is parked with the reaper and its result,
/// whenever it materializes, is discarded.  (Such orphans cannot feed the
/// campaign monitor, so the monitor pointer is dropped on this path.)
bool run_attempt(const ExperimentConfig& config, const SuiteEntry& entry,
                 const std::string& method, bool collect_breakdowns,
                 double timeout_s, CampaignMonitor* monitor,
                 const std::string& attempt_key, AttemptResult* out) {
  if (timeout_s <= 0) {
    *out = run_attempt_body(config, entry, method, collect_breakdowns,
                            monitor, attempt_key);
    return true;
  }
  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    std::shared_ptr<std::atomic<bool>> done =
        std::make_shared<std::atomic<bool>>(false);
    AttemptResult result;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  std::thread worker([shared, config, entry, method, collect_breakdowns,
                      attempt_key] {
    AttemptResult result;
    std::exception_ptr error;
    try {
      result = run_attempt_body(config, entry, method, collect_breakdowns,
                                /*monitor=*/nullptr, attempt_key);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(shared->mutex);
      shared->result = std::move(result);
      shared->error = error;
      shared->done->store(true, std::memory_order_release);
    }
    shared->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(shared->mutex);
  const bool finished = shared->cv.wait_for(
      lock, std::chrono::duration<double>(timeout_s),
      [&] { return shared->done->load(std::memory_order_acquire); });
  if (finished) {
    lock.unlock();
    worker.join();
    if (shared->error) std::rethrow_exception(shared->error);
    *out = std::move(shared->result);
    return true;
  }
  lock.unlock();
  AbandonedThreadReaper::instance().park(std::move(worker), shared->done);
  return false;
}

JournalBundle bundle_from_outcome(const CellOutcome& outcome) {
  JournalBundle bundle;
  bundle.workload = outcome.cell.workload;
  bundle.method = outcome.cell.method;
  bundle.cell_row = format_csv_row(cell_to_row(outcome.cell));
  bundle.breakdown_rows.reserve(outcome.breakdowns.size());
  for (const auto& cell : outcome.breakdowns) {
    bundle.breakdown_rows.push_back(format_csv_row(breakdown_to_row(cell)));
  }
  return bundle;
}

bool outcome_from_bundle(const JournalBundle& bundle, CellOutcome* out) {
  try {
    CsvTable cell_table(kGridHeader);
    cell_table.add_row(parse_csv_line(bundle.cell_row));
    out->cell = row_to_cell(cell_table, 0);
    out->breakdowns.clear();
    out->breakdowns.reserve(bundle.breakdown_rows.size());
    for (const std::string& row : bundle.breakdown_rows) {
      CsvTable bd_table(kBreakdownHeader);
      bd_table.add_row(parse_csv_line(row));
      out->breakdowns.push_back(row_to_breakdown(bd_table, 0));
    }
    out->ok = true;
    out->resumed = true;
    return true;
  } catch (const std::exception& e) {
    log_warn("grid", "journal bundle rejected",
             {{"workload", bundle.workload},
              {"method", bundle.method},
              {"error", e.what()}});
    return false;
  }
}

/// Thread-safe accumulator behind the published CampaignReport.
struct ReportBuilder {
  std::atomic<std::size_t> computed{0};
  std::atomic<std::size_t> retries{0};
  std::mutex mutex;
  std::vector<QuarantinedCell> quarantined;

  void add_quarantined(QuarantinedCell cell) {
    std::lock_guard<std::mutex> lock(mutex);
    quarantined.push_back(std::move(cell));
  }
};

std::vector<CellOutcome> compute_cells(
    const ExperimentConfig& config, const std::vector<SuiteEntry>& workloads,
    const std::vector<std::string>& methods, bool collect_breakdowns,
    const char* campaign_label, CellJournal* journal,
    CampaignReport* report_out) {
  const CampaignControl control = campaign_control();
  PROF_PHASE("grid.campaign");
  const std::size_t total = workloads.size() * methods.size();
  std::vector<CellOutcome> outcomes(total);

  // Resume: adopt every fully-committed journal bundle before running
  // anything.  Bundle payloads are the exact cache CSV rows, so resumed
  // cells re-serialize byte-identically to freshly computed ones.
  std::size_t resumed = 0;
  if (journal != nullptr && control.resume) {
    for (const JournalBundle& bundle : journal->load()) {
      std::size_t idx = total;
      for (std::size_t w = 0; w < workloads.size(); ++w) {
        if (workloads[w].label != bundle.workload) continue;
        for (std::size_t m = 0; m < methods.size(); ++m) {
          if (methods[m] == bundle.method) idx = w * methods.size() + m;
        }
      }
      if (idx == total) {
        log_warn("grid", "journal bundle for unknown cell ignored",
                 {{"workload", bundle.workload}, {"method", bundle.method}});
        continue;
      }
      if (!outcomes[idx].ok && outcome_from_bundle(bundle, &outcomes[idx])) {
        ++resumed;
      }
    }
    if (resumed > 0) {
      log_info("grid", "resumed cells from journal",
               {{"resumed", resumed},
                {"total", total},
                {"journal", journal->path()}});
    }
  }

  std::vector<std::size_t> pending;
  pending.reserve(total - resumed);
  for (std::size_t idx = 0; idx < total; ++idx) {
    if (!outcomes[idx].ok) pending.push_back(idx);
  }

  ReportBuilder report;
  std::atomic<std::size_t> done{0};
  Stopwatch watch;
  // Self-monitoring: sampler thread + heartbeat whenever any telemetry
  // surface (progress, metrics, trace) is armed; fully silent otherwise.
  const bool monitoring =
      progress_enabled() || metrics_enabled() || trace_enabled();
  CampaignMonitor monitor(campaign_label, total);
  if (monitoring) monitor.start();
  monitor.add_resumed(resumed);
  // Resumed cells carry the wall/solve timings of the run that computed
  // them; feed those into the summary averages alongside fresh cells.
  for (std::size_t idx = 0; idx < total; ++idx) {
    if (outcomes[idx].ok) {
      monitor.add_cell_stats(outcomes[idx].cell.cell_wall_seconds,
                             outcomes[idx].cell.mean_solve_seconds);
    }
  }
  RetryPolicy retry_policy;
  retry_policy.max_retries = control.max_retries;
  retry_policy.base_delay_s = control.retry_base_delay_s;
  retry_policy.max_delay_s = control.retry_max_delay_s;
  retry_policy.seed = global_fault_plan().seed();

  parallel_for(pending.size(), [&](std::size_t task) {
    const std::size_t idx = pending[task];
    const SuiteEntry& entry = workloads[idx / methods.size()];
    const std::string& method = methods[idx % methods.size()];
    const std::string cell_key = entry.label + "/" + method;
    CellOutcome& out = outcomes[idx];
    std::string last_error;
    const int max_attempts = std::max(control.max_retries, 0) + 1;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        const double delay =
            retry_delay_seconds(retry_policy, cell_key, attempt - 1);
        report.retries.fetch_add(1, std::memory_order_relaxed);
        monitor.cell_retried();
        log_warn("grid", "cell failed, retrying",
                 {{"cell", cell_key},
                  {"attempt", attempt},
                  {"of", max_attempts},
                  {"backoff_s", delay},
                  {"error", last_error}});
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
      try {
        AttemptResult attempt_result;
        const std::string attempt_key =
            cell_key + "#" + std::to_string(attempt);
        if (!run_attempt(config, entry, method, collect_breakdowns,
                         control.cell_timeout_s,
                         monitoring ? &monitor : nullptr, attempt_key,
                         &attempt_result)) {
          last_error = "cell deadline exceeded (" +
                       num_repr(control.cell_timeout_s) + "s)";
          continue;
        }
        out.cell = std::move(attempt_result.cell);
        out.breakdowns = std::move(attempt_result.breakdowns);
        out.ok = true;
        break;
      } catch (const std::exception& e) {
        last_error = e.what();
      }
    }
    if (!out.ok) {
      // Retries exhausted: quarantine the cell and keep the campaign alive.
      report.add_quarantined(
          QuarantinedCell{entry.label, method, last_error, max_attempts});
      monitor.cell_quarantined();
      log_error("grid", "cell quarantined",
                {{"cell", cell_key},
                 {"attempts", max_attempts},
                 {"error", last_error}});
      return;
    }
    report.computed.fetch_add(1, std::memory_order_relaxed);
    monitor.cell_done();
    monitor.add_cell_stats(out.cell.cell_wall_seconds,
                           out.cell.mean_solve_seconds);
    if (journal != nullptr) journal->append(bundle_from_outcome(out));
    if (metrics_enabled()) {
      // Folds the per-cell solver-timing data (the *_solver_timing_*.csv
      // columns) into the metrics snapshot.
      static Counter& cells = metric_counter("grid.cells");
      static MetricHistogram& wall = metric_histogram("grid.cell_wall_seconds");
      static MetricHistogram& mean_solve =
          metric_histogram("grid.cell_mean_solve_seconds");
      static MetricHistogram& max_solve =
          metric_histogram("grid.cell_max_solve_seconds");
      cells.add(1);
      wall.observe(out.cell.cell_wall_seconds);
      mean_solve.observe(out.cell.mean_solve_seconds);
      max_solve.observe(out.cell.max_solve_seconds);
    }
    log_info("grid", "cell done",
             {{"cell", done.fetch_add(1) + 1},
              {"total", total},
              {"workload", entry.label},
              {"method", method},
              {"cell_wall_s", out.cell.cell_wall_seconds},
              {"elapsed_s", watch.elapsed_seconds()},
              {"threads", global_threads()}});
  });
  // Join any deadline-abandoned attempt threads that have since finished.
  AbandonedThreadReaper::instance().reap();
  if (monitoring) monitor.stop();

  CampaignReport summary;
  summary.cells_total = total;
  summary.cells_computed = report.computed.load();
  summary.cells_resumed = resumed;
  summary.retries = report.retries.load();
  summary.quarantined = std::move(report.quarantined);
  // Worker completion order is nondeterministic; the quarantine *set* is
  // not.  Sort so reports compare equal across thread counts.
  std::sort(summary.quarantined.begin(), summary.quarantined.end(),
            [](const QuarantinedCell& a, const QuarantinedCell& b) {
              return std::tie(a.workload, a.method) <
                     std::tie(b.workload, b.method);
            });
  if (report_out != nullptr) *report_out = summary;
  publish_report(std::move(summary));
  return outcomes;
}

MainGridResults assemble_main_results(std::vector<CellOutcome> outcomes) {
  MainGridResults results;
  results.cells.reserve(outcomes.size());
  for (auto& out : outcomes) {
    if (!out.ok) continue;
    results.cells.push_back(std::move(out.cell));
    results.breakdowns.insert(
        results.breakdowns.end(),
        std::make_move_iterator(out.breakdowns.begin()),
        std::make_move_iterator(out.breakdowns.end()));
  }
  return results;
}

void log_degraded(const char* campaign, const CampaignReport& report) {
  log_error(
      "grid", "campaign degraded: quarantined cells excluded from results",
      {{"campaign", campaign},
       {"quarantined", report.quarantined.size()},
       {"of", report.cells_total}});
}

}  // namespace

MainGridResults compute_main_grid(const ExperimentConfig& config) {
  return assemble_main_results(
      compute_cells(config, build_main_workloads(config),
                    standard_method_names(), /*collect_breakdowns=*/true,
                    "main_grid", /*journal=*/nullptr, /*report_out=*/nullptr));
}

std::vector<GridCell> compute_ssd_grid(const ExperimentConfig& config) {
  auto outcomes = compute_cells(config, build_ssd_workloads(config),
                                ssd_method_names(),
                                /*collect_breakdowns=*/false, "ssd_grid",
                                /*journal=*/nullptr, /*report_out=*/nullptr);
  std::vector<GridCell> cells;
  cells.reserve(outcomes.size());
  for (auto& out : outcomes) {
    if (out.ok) cells.push_back(std::move(out.cell));
  }
  return cells;
}

MainGridResults ensure_main_grid(const ExperimentConfig& config) {
  const std::string grid_path = grid_cache_path(config, "main_grid");
  const std::string breakdown_path =
      grid_cache_path(config, "main_breakdowns");
  {
    const auto grid = load_cache_csv(grid_path, kGridHeader);
    const auto breakdowns =
        grid ? load_cache_csv(breakdown_path, kBreakdownHeader) : std::nullopt;
    if (grid && breakdowns) {
      try {
        MainGridResults results;
        results.cells.reserve(grid->num_rows());
        for (std::size_t r = 0; r < grid->num_rows(); ++r) {
          results.cells.push_back(row_to_cell(*grid, r));
        }
        results.breakdowns.reserve(breakdowns->num_rows());
        for (std::size_t r = 0; r < breakdowns->num_rows(); ++r) {
          results.breakdowns.push_back(row_to_breakdown(*breakdowns, r));
        }
        CampaignReport report;
        report.cells_total = results.cells.size();
        report.cells_from_cache = results.cells.size();
        publish_report(std::move(report));
        log_info("grid", "loaded cached main grid",
                 {{"cells", results.cells.size()}, {"path", grid_path}});
        return results;
      } catch (const std::exception& e) {
        // CRC was fine but a row would not parse (e.g. a hand edit with a
        // refreshed trailer): quarantine both files and recompute.
        quarantine_file(grid_path, e.what());
        quarantine_file(breakdown_path, e.what());
      }
    }
  }

  fs::create_directories(config.cache_dir);
  CellJournal journal(journal_path(config, "main_grid"));
  CampaignReport report;
  auto results = assemble_main_results(
      compute_cells(config, build_main_workloads(config),
                    standard_method_names(), /*collect_breakdowns=*/true,
                    "main_grid", &journal, &report));
  if (report.degraded()) {
    // A partial grid must never masquerade as the real thing: skip the
    // cache write and keep the journal so a later run can finish the grid.
    log_degraded("main_grid", report);
    return results;
  }
  {
    PROF_PHASE("grid.cache_write");
    CsvTable grid(kGridHeader);
    for (const auto& cell : results.cells) grid.add_row(cell_to_row(cell));
    write_csv_file_checksummed(grid, grid_path);
    CsvTable breakdowns(kBreakdownHeader);
    for (const auto& cell : results.breakdowns) {
      breakdowns.add_row(breakdown_to_row(cell));
    }
    write_csv_file_checksummed(breakdowns, breakdown_path);
    write_solver_timing(grid_cache_path(config, "main_solver_timing"),
                        results.cells);
  }
  journal.remove();
  return results;
}

std::vector<GridCell> ensure_ssd_grid(const ExperimentConfig& config) {
  const std::string path = grid_cache_path(config, "ssd_grid");
  if (const auto table = load_cache_csv(path, kGridHeader)) {
    try {
      std::vector<GridCell> cells;
      for (std::size_t r = 0; r < table->num_rows(); ++r) {
        cells.push_back(row_to_cell(*table, r));
      }
      CampaignReport report;
      report.cells_total = cells.size();
      report.cells_from_cache = cells.size();
      publish_report(std::move(report));
      log_info("grid", "loaded cached SSD grid",
               {{"cells", cells.size()}, {"path", path}});
      return cells;
    } catch (const std::exception& e) {
      quarantine_file(path, e.what());
    }
  }

  fs::create_directories(config.cache_dir);
  CellJournal journal(journal_path(config, "ssd_grid"));
  CampaignReport report;
  auto outcomes = compute_cells(config, build_ssd_workloads(config),
                                ssd_method_names(),
                                /*collect_breakdowns=*/false, "ssd_grid",
                                &journal, &report);
  std::vector<GridCell> cells;
  cells.reserve(outcomes.size());
  for (auto& out : outcomes) {
    if (out.ok) cells.push_back(std::move(out.cell));
  }
  if (report.degraded()) {
    log_degraded("ssd_grid", report);
    return cells;
  }
  {
    PROF_PHASE("grid.cache_write");
    CsvTable grid(kGridHeader);
    for (const auto& cell : cells) grid.add_row(cell_to_row(cell));
    write_csv_file_checksummed(grid, path);
    write_solver_timing(grid_cache_path(config, "ssd_solver_timing"), cells);
  }
  journal.remove();
  return cells;
}

}  // namespace bbsched
