#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace bbsched {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Crc32, MatchesKnownVectors) {
  // The IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
  EXPECT_EQ(crc32_hex("123456789"), "cbf43926");
}

TEST(Crc32, ChunkedEqualsWhole) {
  const std::string data = "burst buffers and draining SSDs";
  std::uint32_t chunked = 0;
  for (char c : data) chunked = crc32(std::string_view(&c, 1), chunked);
  EXPECT_EQ(chunked, crc32(data));
}

TEST(FaultPlanParse, ParsesSeedAndRules) {
  const auto plan = FaultPlan::parse(
      "seed=7;grid.cell:throw=0.3;journal.append:partial=0.2@0.75;"
      "csv.write:enospc=1;grid.cell:hang=0.1@2.5");
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed(), 7u);
  ASSERT_EQ(plan.rules().size(), 4u);
  EXPECT_EQ(plan.rules()[0].site, "grid.cell");
  EXPECT_EQ(plan.rules()[0].kind, FaultKind::kThrow);
  EXPECT_DOUBLE_EQ(plan.rules()[0].probability, 0.3);
  EXPECT_EQ(plan.rules()[1].kind, FaultKind::kPartialWrite);
  EXPECT_DOUBLE_EQ(plan.rules()[1].param, 0.75);
  EXPECT_EQ(plan.rules()[2].kind, FaultKind::kEnospc);
  EXPECT_EQ(plan.rules()[3].kind, FaultKind::kHang);
  EXPECT_DOUBLE_EQ(plan.rules()[3].param, 2.5);
}

TEST(FaultPlanParse, EmptySpecIsDisabled) {
  EXPECT_FALSE(FaultPlan::parse("").enabled());
  EXPECT_FALSE(FaultPlan::parse("  ").enabled());
  EXPECT_FALSE(FaultPlan{}.enabled());
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("grid.cell"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("grid.cell:explode=0.5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("grid.cell:throw=nan"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("grid.cell:throw=1.5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse(":throw=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=notanumber;a:throw=1"),
               std::invalid_argument);
}

TEST(FaultPlanDecide, DeterministicInSeedSiteAndKey) {
  const auto plan = FaultPlan::parse("seed=42;grid.cell:throw=0.5");
  const auto same_plan = FaultPlan::parse("seed=42;grid.cell:throw=0.5");
  bool any_hit = false, any_miss = false;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "Cori-S1/BBSched#" + std::to_string(i);
    const auto a = plan.decide("grid.cell", key);
    const auto b = same_plan.decide("grid.cell", key);
    EXPECT_EQ(a.kind, b.kind) << "decision must be a pure function";
    (a.kind == FaultKind::kThrow ? any_hit : any_miss) = true;
  }
  // p=0.5 over 64 keys: both outcomes occur (probability ~2^-63 otherwise).
  EXPECT_TRUE(any_hit);
  EXPECT_TRUE(any_miss);
  // A different seed gives a different decision sequence somewhere.
  const auto other = FaultPlan::parse("seed=43;grid.cell:throw=0.5");
  bool differs = false;
  for (int i = 0; i < 64 && !differs; ++i) {
    const std::string key = "Cori-S1/BBSched#" + std::to_string(i);
    differs = other.decide("grid.cell", key).kind !=
              plan.decide("grid.cell", key).kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanDecide, SiteMismatchNeverFires) {
  const auto plan = FaultPlan::parse("seed=1;grid.cell:throw=1");
  EXPECT_EQ(plan.decide("csv.write", "any").kind, FaultKind::kNone);
  EXPECT_EQ(plan.decide("grid.cell", "any").kind, FaultKind::kThrow);
}

TEST(FaultPoint, ThrowsInjectedFaultWithSiteAndKey) {
  set_global_fault_plan(FaultPlan::parse("seed=1;unit.test:throw=1"));
  try {
    fault_point("unit.test", "the-key");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.kind(), FaultKind::kThrow);
    EXPECT_NE(std::string(e.what()).find("unit.test"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("the-key"), std::string::npos);
  }
  set_global_fault_plan(FaultPlan{});
  EXPECT_NO_THROW(fault_point("unit.test", "the-key"));
}

TEST(RetryDelay, DeterministicCappedAndJittered) {
  RetryPolicy policy;
  policy.base_delay_s = 0.05;
  policy.max_delay_s = 2.0;
  policy.seed = 9;
  double prev_cap = 0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const double a = retry_delay_seconds(policy, "Cori-S1/BBSched", attempt);
    const double b = retry_delay_seconds(policy, "Cori-S1/BBSched", attempt);
    EXPECT_DOUBLE_EQ(a, b) << "same (policy, key, attempt) -> same delay";
    // Jitter is in [0.5, 1.5) around min(max, base * 2^k).
    const double nominal =
        std::min(policy.max_delay_s, policy.base_delay_s * (1 << attempt));
    EXPECT_GE(a, nominal * 0.5);
    EXPECT_LT(a, nominal * 1.5);
    EXPECT_LE(a, policy.max_delay_s * 1.5);
    prev_cap = std::max(prev_cap, a);
  }
  // Different keys draw different jitter somewhere in 10 attempts.
  bool differs = false;
  for (int attempt = 0; attempt < 10 && !differs; ++attempt) {
    differs = retry_delay_seconds(policy, "keyA", attempt) !=
              retry_delay_seconds(policy, "keyB", attempt);
  }
  EXPECT_TRUE(differs);
}

class AtomicWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("bbsched_fault_test_") + info->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    set_global_fault_plan(FaultPlan{});
    fs::remove_all(dir_);
  }
  std::string dir_;
};

TEST_F(AtomicWriteTest, WritesAndReplacesWholeFiles) {
  const std::string path = dir_ + "/out.txt";
  atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  atomic_write_file(path, "second\n");
  EXPECT_EQ(slurp(path), "second\n");
  // No temp droppings left behind.
  EXPECT_EQ(std::distance(fs::directory_iterator(dir_), fs::directory_iterator{}), 1);
}

TEST_F(AtomicWriteTest, PartialWriteFaultLeavesDestinationUntouched) {
  const std::string path = dir_ + "/out.txt";
  atomic_write_file(path, "intact payload\n");
  set_global_fault_plan(
      FaultPlan::parse("seed=3;test.write:partial=1@0.5"));
  EXPECT_THROW(atomic_write_file(path, "replacement that tears", "test.write",
                                 path),
               InjectedFault);
  // The old content survives; the torn temp file is left for post-mortem.
  EXPECT_EQ(slurp(path), "intact payload\n");
  bool saw_temp = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      saw_temp = true;
      EXPECT_LT(fs::file_size(entry.path()),
                std::string("replacement that tears").size());
    }
  }
  EXPECT_TRUE(saw_temp);
}

TEST_F(AtomicWriteTest, EnospcFaultLeavesDestinationUntouched) {
  const std::string path = dir_ + "/out.txt";
  atomic_write_file(path, "intact\n");
  set_global_fault_plan(FaultPlan::parse("seed=3;test.write:enospc=1"));
  EXPECT_THROW(atomic_write_file(path, "never lands", "test.write", path),
               InjectedFault);
  EXPECT_EQ(slurp(path), "intact\n");
}

TEST_F(AtomicWriteTest, QuarantineMovesFileAside) {
  const std::string path = dir_ + "/bad.csv";
  atomic_write_file(path, "corrupt\n");
  const std::string moved = quarantine_file(path, "checksum mismatch");
  ASSERT_FALSE(moved.empty());
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(moved));
  EXPECT_EQ(fs::path(moved).parent_path().filename().string(), "quarantine");
  EXPECT_EQ(slurp(moved), "corrupt\n");
  // Quarantining a same-named file again must not clobber the first.
  atomic_write_file(path, "second corpse\n");
  const std::string moved2 = quarantine_file(path, "checksum mismatch");
  ASSERT_FALSE(moved2.empty());
  EXPECT_NE(moved2, moved);
  EXPECT_EQ(slurp(moved), "corrupt\n");
  EXPECT_EQ(slurp(moved2), "second corpse\n");
}

TEST(AbandonedThreads, ReaperJoinsFinishedThreads) {
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread t([done] { done->store(true); });
  AbandonedThreadReaper::instance().park(std::move(t), done);
  // The thread finishes immediately; reap until it is joined.
  for (int i = 0; i < 1000 && AbandonedThreadReaper::instance().reap() > 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(AbandonedThreadReaper::instance().pending(), 0u);
}

}  // namespace
}  // namespace bbsched
