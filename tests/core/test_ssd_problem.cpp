#include "core/ssd_problem.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

SsdFreeState small_machine() {
  SsdFreeState free;
  free.small_nodes = 4;   // 4 x 128 GB
  free.large_nodes = 4;   // 4 x 256 GB
  free.bb_gb = 100;
  return free;
}

TEST(SsdProblem, LargeOnlyJobNeedsLargeTier) {
  std::vector<SsdJobDemand> jobs{{5, 0, 200}};  // 5 nodes @ 200 GB SSD
  const SsdSchedulingProblem problem(jobs, small_machine());
  EXPECT_FALSE(problem.feasible(Genes{1}))
      << "only 4 large-tier nodes exist";
}

TEST(SsdProblem, SmallJobMayUseEitherTier) {
  std::vector<SsdJobDemand> jobs{{6, 0, 64}};  // spills 4 small + 2 large
  const SsdSchedulingProblem problem(jobs, small_machine());
  EXPECT_TRUE(problem.feasible(Genes{1}));
  const auto split = problem.assign(Genes{1});
  EXPECT_DOUBLE_EQ(split[0].small_nodes, 4);
  EXPECT_DOUBLE_EQ(split[0].large_nodes, 2);
}

TEST(SsdProblem, BurstBufferConstraintStillApplies) {
  std::vector<SsdJobDemand> jobs{{1, 150, 64}};
  const SsdSchedulingProblem problem(jobs, small_machine());
  EXPECT_FALSE(problem.feasible(Genes{1}));
}

TEST(SsdProblem, OversizedSsdRequestInfeasible) {
  std::vector<SsdJobDemand> jobs{{1, 0, 512}};
  const SsdSchedulingProblem problem(jobs, small_machine());
  EXPECT_FALSE(problem.feasible(Genes{1}));
}

TEST(SsdProblem, WasteComputedFromTierSplit) {
  // One job, 2 nodes @ 100 GB each: prefers the small tier, wasting
  // 2 * (128 - 100) = 56 GB.
  std::vector<SsdJobDemand> jobs{{2, 0, 100}};
  const SsdSchedulingProblem problem(jobs, small_machine());
  EXPECT_DOUBLE_EQ(problem.wasted_ssd(Genes{1}), 56);
}

TEST(SsdProblem, LargeTierWasteWhenSmallExhausted) {
  // 6 nodes @ 100 GB: 4 on small (4*28 waste), 2 on large (2*156 waste).
  std::vector<SsdJobDemand> jobs{{6, 0, 100}};
  const SsdSchedulingProblem problem(jobs, small_machine());
  EXPECT_DOUBLE_EQ(problem.wasted_ssd(Genes{1}), 4 * 28 + 2 * 156);
}

TEST(SsdProblem, LargeJobsAssignedBeforeSmallSpill) {
  // Large-only job takes 3 large nodes first; the 5-node small job then
  // gets 4 small + 1 large.
  std::vector<SsdJobDemand> jobs{{5, 0, 64}, {3, 0, 200}};
  const SsdSchedulingProblem problem(jobs, small_machine());
  const Genes genes{1, 1};
  ASSERT_TRUE(problem.feasible(genes));
  const auto split = problem.assign(genes);
  EXPECT_DOUBLE_EQ(split[1].large_nodes, 3);
  EXPECT_DOUBLE_EQ(split[0].small_nodes, 4);
  EXPECT_DOUBLE_EQ(split[0].large_nodes, 1);
}

TEST(SsdProblem, FourObjectivesNormalized) {
  // Machine SSD capacity: 4*128 + 4*256 = 1536 GB.
  std::vector<SsdJobDemand> jobs{{2, 50, 128}};
  const SsdSchedulingProblem problem(jobs, small_machine());
  std::vector<double> objs(4);
  problem.evaluate(Genes{1}, objs);
  EXPECT_DOUBLE_EQ(objs[0], 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(objs[1], 50.0 / 100.0);
  EXPECT_DOUBLE_EQ(objs[2], 256.0 / 1536.0);
  EXPECT_DOUBLE_EQ(objs[3], 0.0);  // exact fit on the small tier: no waste
}

TEST(SsdProblem, WasteObjectiveIsNegativeFraction) {
  std::vector<SsdJobDemand> jobs{{2, 0, 100}};
  const SsdSchedulingProblem problem(jobs, small_machine());
  std::vector<double> objs(4);
  problem.evaluate(Genes{1}, objs);
  EXPECT_DOUBLE_EQ(objs[3], -56.0 / 1536.0);
}

TEST(SsdProblem, EmptySelectionZeroObjectives) {
  std::vector<SsdJobDemand> jobs{{2, 0, 100}, {1, 10, 200}};
  const SsdSchedulingProblem problem(jobs, small_machine());
  std::vector<double> objs(4);
  problem.evaluate(Genes{0, 0}, objs);
  for (double o : objs) EXPECT_DOUBLE_EQ(o, 0.0);
}

TEST(SsdProblem, TotalNodeCapacityEnforced) {
  std::vector<SsdJobDemand> jobs{{5, 0, 64}, {4, 0, 64}};
  const SsdSchedulingProblem problem(jobs, small_machine());
  EXPECT_TRUE(problem.feasible(Genes{1, 0}));
  EXPECT_FALSE(problem.feasible(Genes{1, 1}));  // 9 > 8 nodes
}

TEST(SsdProblem, RejectsBadConstruction) {
  SsdFreeState bad = small_machine();
  bad.small_ssd_gb = 0;
  EXPECT_THROW(SsdSchedulingProblem({}, bad), std::invalid_argument);
  EXPECT_THROW(SsdSchedulingProblem({{-1, 0, 0}}, small_machine()),
               std::invalid_argument);
}

}  // namespace
}  // namespace bbsched
