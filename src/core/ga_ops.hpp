// ga_ops.hpp — genetic operators shared by the multi-objective solver
// (ga.hpp) and the scalarized single-objective solver (scalar_ga.hpp).
//
// The operators implement §3.2.2 verbatim: single-point crossover of two
// randomly chosen parents, per-gene bit-flip mutation with a low probability
// p_m, random population initialization.  Feasibility is restored through
// MooProblem::repair after every operator, and pinned genes (starvation
// forcing) are re-applied.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/chromosome.hpp"
#include "core/problem.hpp"

namespace bbsched {

/// Shared solver parameters (§3.2.3 defaults: G=500, P=20, p_m=0.05%).
struct GaParams {
  int generations = 500;        ///< G
  int population_size = 20;     ///< P
  double mutation_rate = 0.0005;///< p_m, probability of flipping each gene
  std::uint64_t seed = 1;       ///< RNG seed for reproducible runs
  /// Collapse duplicate gene vectors when forming the next generation.  The
  /// paper does not discuss duplicates; collapsing prevents one strong
  /// chromosome from flooding the fixed-size population (DESIGN.md §5,
  /// ablated by bench_ablation_solver).
  bool dedupe_survivors = true;

  void validate() const;
};

/// A random feasible chromosome: each gene set with probability 1/2, then
/// repaired against the problem's constraints.
Chromosome random_chromosome(const MooProblem& problem, Rng& rng);

/// Initialize a population of `size` random feasible, evaluated chromosomes.
/// `repairs`, when non-null, is incremented once per chromosome that entered
/// repair infeasible (the solvers' convergence telemetry).
std::vector<Chromosome> random_population(const MooProblem& problem,
                                          std::size_t size, Rng& rng,
                                          std::size_t* repairs = nullptr);

/// Single-point crossover (Figure 3): swap the tails of two parents at a
/// random cut position.  Children are *not* yet mutated/repaired/evaluated.
std::pair<Genes, Genes> crossover(const Genes& a, const Genes& b, Rng& rng);

/// Flip each non-pinned gene with probability `rate`.
void mutate(Genes& genes, const MooProblem& problem, double rate, Rng& rng);

/// Produce `count` children from `parents` via crossover + mutation, then
/// repair and evaluate each child (age 0).  `repairs`, when non-null, counts
/// children that entered repair infeasible.
std::vector<Chromosome> make_children(const MooProblem& problem,
                                      const std::vector<Chromosome>& parents,
                                      std::size_t count, double mutation_rate,
                                      Rng& rng,
                                      std::size_t* repairs = nullptr);

/// Evaluate every chromosome's objectives, fanned out over the global thread
/// pool.  Evaluation is pure (MooProblem::evaluate is const and draws no
/// randomness), so the result is independent of thread count; only the
/// genetic operators, which consume the RNG stream, must stay on the driver
/// thread.
void evaluate_population(const MooProblem& problem,
                         std::vector<Chromosome>& population);

}  // namespace bbsched
