# Empty dependencies file for ssd_case_study.
# This may be replaced when dependencies are built.
