// Self-test fixture: planted ambient-randomness violation.  Never compiled.
#include <random>

unsigned planted_raw_rng() {
  std::random_device device;
  return device();
}
