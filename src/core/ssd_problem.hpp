// ssd_problem.hpp — the four-objective case-study formulation of §5.
//
// On a machine whose nodes carry heterogeneous local SSDs (a "small" tier,
// 128 GB on Theta, and a "large" tier, 256 GB), a job J_i demands n_i nodes,
// b_i GB of shared burst buffer and s_i GB of local SSD *per node*.  Nodes
// assigned to the job must each have at least s_i GB of SSD.  On top of the
// §3.2.1 objectives the formulation adds:
//
//   f3: maximize local-SSD utilization   sum_i s_i * n_i * x_i
//   f4: minimize wasted local SSD        sum_i sum_j (l_ij - s_i) * x_i
//
// where l_ij is the SSD volume of the j-th node assigned to J_i.  Jobs with
// s_i greater than the small tier must run entirely on large-tier nodes;
// jobs that fit the small tier are preferentially placed on small-tier nodes
// "to mitigate wastage in local SSD" (§5, Workload Traces).  The class also
// exposes that node-tier assignment so the simulator can commit it.
#pragma once

#include <span>
#include <vector>

#include "core/problem.hpp"

namespace bbsched {

/// Per-job demands for the SSD case study.
struct SsdJobDemand {
  double nodes = 0;        ///< n_i
  double bb_gb = 0;        ///< b_i
  double ssd_per_node = 0; ///< s_i
};

/// Free machine state visible to one scheduling decision.
struct SsdFreeState {
  double small_nodes = 0;  ///< idle nodes of the small SSD tier
  double large_nodes = 0;  ///< idle nodes of the large SSD tier
  double bb_gb = 0;        ///< free shared burst buffer
  double small_ssd_gb = 128.0;
  double large_ssd_gb = 256.0;
};

/// Node-tier split chosen for one selected job.
struct SsdNodeSplit {
  double small_nodes = 0;
  double large_nodes = 0;
};

/// Four-objective MOO problem of §5: {node util, BB util, SSD util,
/// -wasted SSD}, all normalized by the corresponding free capacity.
class SsdSchedulingProblem : public MooProblem {
 public:
  SsdSchedulingProblem(std::vector<SsdJobDemand> jobs, SsdFreeState free);

  std::size_t num_vars() const override { return jobs_.size(); }
  std::size_t num_objectives() const override { return 4; }

  void evaluate(std::span<const std::uint8_t> genes,
                std::span<double> objectives) const override;
  bool feasible(std::span<const std::uint8_t> genes) const override;

  /// Deterministic node-tier assignment for a feasible selection: large-SSD
  /// jobs take large-tier nodes; small-SSD jobs take small-tier nodes first
  /// and overflow onto large-tier nodes, in window order.  Index j of the
  /// result corresponds to gene j (zero split for unselected jobs).
  std::vector<SsdNodeSplit> assign(std::span<const std::uint8_t> genes) const;

  /// Total wasted SSD GB of a feasible selection under assign().
  double wasted_ssd(std::span<const std::uint8_t> genes) const;

  const SsdFreeState& free_state() const { return free_; }
  const SsdJobDemand& job(std::size_t i) const { return jobs_.at(i); }

 private:
  double free_ssd_capacity() const {
    return free_.small_nodes * free_.small_ssd_gb +
           free_.large_nodes * free_.large_ssd_gb;
  }

  std::vector<SsdJobDemand> jobs_;
  SsdFreeState free_;
};

}  // namespace bbsched
