
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_decision.cpp" "src/core/CMakeFiles/bbsched_core.dir/adaptive_decision.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/adaptive_decision.cpp.o.d"
  "/root/repo/src/core/chromosome.cpp" "src/core/CMakeFiles/bbsched_core.dir/chromosome.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/chromosome.cpp.o.d"
  "/root/repo/src/core/decision.cpp" "src/core/CMakeFiles/bbsched_core.dir/decision.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/decision.cpp.o.d"
  "/root/repo/src/core/exhaustive.cpp" "src/core/CMakeFiles/bbsched_core.dir/exhaustive.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/exhaustive.cpp.o.d"
  "/root/repo/src/core/ga.cpp" "src/core/CMakeFiles/bbsched_core.dir/ga.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/ga.cpp.o.d"
  "/root/repo/src/core/ga_ops.cpp" "src/core/CMakeFiles/bbsched_core.dir/ga_ops.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/ga_ops.cpp.o.d"
  "/root/repo/src/core/multi_resource_problem.cpp" "src/core/CMakeFiles/bbsched_core.dir/multi_resource_problem.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/multi_resource_problem.cpp.o.d"
  "/root/repo/src/core/nsga2.cpp" "src/core/CMakeFiles/bbsched_core.dir/nsga2.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/nsga2.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/bbsched_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/bbsched_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/problem.cpp.o.d"
  "/root/repo/src/core/scalar_ga.cpp" "src/core/CMakeFiles/bbsched_core.dir/scalar_ga.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/scalar_ga.cpp.o.d"
  "/root/repo/src/core/ssd_problem.cpp" "src/core/CMakeFiles/bbsched_core.dir/ssd_problem.cpp.o" "gcc" "src/core/CMakeFiles/bbsched_core.dir/ssd_problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bbsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
