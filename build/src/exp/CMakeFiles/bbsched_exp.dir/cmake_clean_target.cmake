file(REMOVE_RECURSE
  "libbbsched_exp.a"
)
