#include "sim/machine_state.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bbsched {

MachineState::MachineState(const MachineConfig& config) : config_(config) {
  config_.validate();
  if (config_.has_local_ssd()) {
    free_small_ = config_.small_ssd_nodes;
    free_large_ = config_.large_ssd_nodes;
  } else {
    free_small_ = config_.nodes;
    free_large_ = 0;
  }
  free_bb_ = config_.schedulable_bb_gb();
}

FreeState MachineState::free_state() const {
  FreeState s;
  s.nodes = static_cast<double>(free_nodes());
  s.bb_gb = free_bb_;
  s.ssd_enabled = config_.has_local_ssd();
  if (s.ssd_enabled) {
    s.small_nodes = static_cast<double>(free_small_);
    s.large_nodes = static_cast<double>(free_large_);
    s.small_ssd_gb = config_.small_ssd_gb;
    s.large_ssd_gb = config_.large_ssd_gb;
  } else {
    s.small_nodes = static_cast<double>(free_small_);
  }
  return s;
}

bool MachineState::fits(const Allocation& alloc) const {
  return alloc.small_nodes <= free_small_ && alloc.large_nodes <= free_large_ &&
         alloc.bb_gb <= free_bb_;
}

bool MachineState::fits_job(const JobRecord& job) const {
  Allocation alloc;
  return plan_single(job, alloc);
}

bool MachineState::plan_single(const JobRecord& job, Allocation& out) const {
  out = Allocation{};
  out.bb_gb = job.bb_gb;
  if (out.bb_gb > free_bb_) return false;
  if (!config_.has_local_ssd()) {
    if (job.nodes > free_small_) return false;
    out.small_nodes = job.nodes;
    return true;
  }
  if (job.ssd_per_node_gb > config_.large_ssd_gb) return false;
  if (job.ssd_per_node_gb > config_.small_ssd_gb) {
    if (job.nodes > free_large_) return false;
    out.large_nodes = job.nodes;
    return true;
  }
  if (job.nodes > free_small_ + free_large_) return false;
  out.small_nodes = std::min(job.nodes, free_small_);
  out.large_nodes = job.nodes - out.small_nodes;
  return true;
}

void MachineState::enable_planner() {
  if (!allocations_.empty()) {
    throw std::logic_error(
        "machine: enable_planner requires an empty machine");
  }
  std::vector<double> capacity(kPlanResources, 0.0);
  if (config_.has_local_ssd()) {
    capacity[kPlanSmall] = static_cast<double>(config_.small_ssd_nodes);
    capacity[kPlanLarge] = static_cast<double>(config_.large_ssd_nodes);
  } else {
    capacity[kPlanSmall] = static_cast<double>(config_.nodes);
  }
  capacity[kPlanBb] = config_.schedulable_bb_gb();
  planner_.emplace(std::move(capacity));
}

const Planner& MachineState::planner() const {
  if (!planner_) {
    throw std::logic_error("machine: no availability planner attached");
  }
  return *planner_;
}

FreeState MachineState::free_state_during(Time t, Time duration) const {
  const std::vector<double> avail = planner().avail_during(t, duration);
  FreeState s;
  s.nodes = avail[kPlanSmall] + avail[kPlanLarge];
  s.bb_gb = avail[kPlanBb];
  s.ssd_enabled = config_.has_local_ssd();
  s.small_nodes = avail[kPlanSmall];
  if (s.ssd_enabled) {
    s.large_nodes = avail[kPlanLarge];
    s.small_ssd_gb = config_.small_ssd_gb;
    s.large_ssd_gb = config_.large_ssd_gb;
  }
  return s;
}

void MachineState::allocate_timed(JobId job_id, const Allocation& alloc,
                                  Time start, Time expected_end) {
  if (!planner_) {
    allocate(job_id, alloc);
    return;
  }
  // Plain allocate() throws below when a planner is attached, so commit the
  // counters inline and mirror the walltime span.
  if (allocations_.contains(job_id)) {
    throw std::logic_error("machine: job " + std::to_string(job_id) +
                           " already allocated");
  }
  if (!fits(alloc)) {
    throw std::logic_error("machine: allocation for job " +
                           std::to_string(job_id) +
                           " exceeds free capacity");
  }
  free_small_ -= alloc.small_nodes;
  free_large_ -= alloc.large_nodes;
  free_bb_ -= alloc.bb_gb;
  allocations_.emplace(job_id, alloc);
  const double request[kPlanResources] = {
      static_cast<double>(alloc.small_nodes),
      static_cast<double>(alloc.large_nodes), alloc.bb_gb};
  const Time duration = std::max<Time>(0, expected_end - start);
  spans_.emplace(job_id,
                 planner_->add_span(start, duration, request, job_id));
}

void MachineState::allocate(JobId job_id, const Allocation& alloc) {
  if (planner_) {
    throw std::logic_error(
        "machine: planner attached — use allocate_timed so the availability "
        "timeline stays in sync");
  }
  if (allocations_.contains(job_id)) {
    throw std::logic_error("machine: job " + std::to_string(job_id) +
                           " already allocated");
  }
  if (!fits(alloc)) {
    throw std::logic_error("machine: allocation for job " +
                           std::to_string(job_id) +
                           " exceeds free capacity");
  }
  free_small_ -= alloc.small_nodes;
  free_large_ -= alloc.large_nodes;
  free_bb_ -= alloc.bb_gb;
  allocations_.emplace(job_id, alloc);
}

void MachineState::release(JobId job_id) {
  const auto it = allocations_.find(job_id);
  if (it == allocations_.end()) {
    throw std::logic_error("machine: job " + std::to_string(job_id) +
                           " has no allocation to release");
  }
  free_small_ += it->second.small_nodes;
  free_large_ += it->second.large_nodes;
  free_bb_ += it->second.bb_gb;
  allocations_.erase(it);
  const auto span_it = spans_.find(job_id);
  if (span_it != spans_.end()) {
    planner_->remove_span(span_it->second);
    spans_.erase(span_it);
  }
}

const Allocation& MachineState::allocation_of(JobId job_id) const {
  const auto it = allocations_.find(job_id);
  if (it == allocations_.end()) {
    throw std::logic_error("machine: job " + std::to_string(job_id) +
                           " has no allocation");
  }
  return it->second;
}

}  // namespace bbsched
