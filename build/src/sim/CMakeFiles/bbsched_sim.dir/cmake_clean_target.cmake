file(REMOVE_RECURSE
  "libbbsched_sim.a"
)
