// scalar_ga.hpp — scalarized single-objective solver for the weighted and
// constrained comparison methods (§4.3).
//
// Weighted methods maximize a weighted sum of utilizations; constrained
// methods maximize a single resource's utilization (the other capacities act
// only as constraints, which every MooProblem enforces anyway).  Both are
// single-objective selections over the same window, so they reuse the same
// crossover/mutation/repair operators as BBSched with an elitist
// keep-the-best-P survivor rule.  Using the identical solver machinery keeps
// the §4 comparisons about the *formulation* (Pareto set vs. scalarization),
// not about solver quality — matching how the paper frames the methods.
#pragma once

#include <vector>

#include "core/ga_ops.hpp"
#include "core/problem.hpp"

namespace bbsched {

/// Result of one scalarized solve.
struct ScalarResult {
  Chromosome best;          ///< highest-fitness chromosome found
  double fitness = 0;       ///< its scalar fitness
  std::size_t evaluations = 0;
};

/// Elitist genetic maximizer of  sum_k weights[k] * objectives[k].
class ScalarGaSolver {
 public:
  /// `weights` has one entry per problem objective.  A constrained method is
  /// a weight vector with a single 1 (e.g. {1, 0} for Constrained_CPU).
  ScalarGaSolver(GaParams params, std::vector<double> weights);

  ScalarResult solve(const MooProblem& problem) const;
  ScalarResult solve(const MooProblem& problem, Rng& rng) const;

  const std::vector<double>& weights() const { return weights_; }
  const GaParams& params() const { return params_; }

 private:
  double fitness(const Chromosome& c) const;

  GaParams params_;
  std::vector<double> weights_;
};

}  // namespace bbsched
