// The SelectionPolicy interface is the library's extension point; these
// tests run hand-written policies through the simulator to pin down the
// contract: feasible selections are honoured verbatim, infeasible or
// out-of-range selections are rejected loudly, and an empty selection is
// legal (everything then flows through backfill + later cycles).
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace bbsched {
namespace {

MachineConfig machine() {
  MachineConfig m;
  m.name = "test";
  m.nodes = 100;
  m.burst_buffer_gb = tb(100);
  return m;
}

JobRecord job(JobId id, Time submit, NodeCount nodes, Time runtime) {
  JobRecord j;
  j.id = id;
  j.submit_time = submit;
  j.runtime = runtime;
  j.walltime = runtime;
  j.nodes = nodes;
  return j;
}

Workload three_jobs() {
  Workload w;
  w.name = "unit";
  w.machine = machine();
  w.jobs = {job(1, 0, 30, 100), job(2, 0, 30, 100), job(3, 0, 30, 100)};
  w.normalize();
  return w;
}

SimConfig fast_config() {
  SimConfig c;
  c.warmup_fraction = 0;
  c.cooldown_fraction = 0;
  return c;
}

/// Selects nothing, ever.  Jobs must still run via EASY backfill (the head
/// gets a reservation at `now` and later window re-passes start the rest).
class RefusenikPolicy : public SelectionPolicy {
 public:
  WindowDecision select(const WindowContext&) const override { return {}; }
  std::string name() const override { return "Refusenik"; }
};

TEST(CustomPolicy, EmptySelectionsStillCompleteViaBackfill) {
  FcfsScheduler fcfs;
  RefusenikPolicy policy;
  const auto result = simulate(three_jobs(), fast_config(), fcfs, policy);
  for (const auto& o : result.outcomes) {
    EXPECT_GE(o.end, o.start);
  }
  // The non-head jobs backfill into the head's reservation surplus at t=0;
  // the head itself is refused forever by the policy and protected from
  // backfill by its own reservation, so once all events drain the
  // simulator's stall fallback (the periodic-timer analogue) force-starts
  // it.
  EXPECT_EQ(result.decisions.forced_starts, 1u);
  EXPECT_EQ(result.decisions.backfill_starts, 2u);
  EXPECT_EQ(result.decisions.policy_starts, 0u);
}

/// Selects a window position that does not exist.
class OutOfRangePolicy : public SelectionPolicy {
 public:
  WindowDecision select(const WindowContext&) const override {
    WindowDecision d;
    d.selected = {99};
    return d;
  }
  std::string name() const override { return "OutOfRange"; }
};

TEST(CustomPolicy, OutOfRangeSelectionThrows) {
  FcfsScheduler fcfs;
  OutOfRangePolicy policy;
  // The workload must outlive the simulator: Simulator stores a reference,
  // so binding a temporary here dangles once this statement ends (caught by
  // TSan as a use-after-free in run()).
  const Workload workload = three_jobs();
  Simulator sim(workload, fast_config(), fcfs, policy);
  EXPECT_THROW(sim.run(), std::logic_error);
}

/// Selects more than fits (all three 30-node jobs plus a fourth 30-node job
/// on a 100-node machine would fit; use 4 jobs of 30 = 120 > 100).
class OverCommitPolicy : public SelectionPolicy {
 public:
  WindowDecision select(const WindowContext& context) const override {
    WindowDecision d;
    for (std::size_t i = 0; i < context.window.size(); ++i) {
      d.selected.push_back(i);
    }
    return d;
  }
  std::string name() const override { return "OverCommit"; }
};

TEST(CustomPolicy, InfeasibleSelectionThrows) {
  Workload w;
  w.name = "unit";
  w.machine = machine();
  w.jobs = {job(1, 0, 30, 100), job(2, 0, 30, 100), job(3, 0, 30, 100),
            job(4, 0, 30, 100)};
  w.normalize();
  FcfsScheduler fcfs;
  OverCommitPolicy policy;
  Simulator sim(w, fast_config(), fcfs, policy);
  EXPECT_THROW(sim.run(), std::logic_error);
}

/// A well-behaved greedy custom policy: selects window jobs in order while
/// they fit (equivalent to Baseline without the stop-at-first-blocked rule).
class FirstFitPolicy : public SelectionPolicy {
 public:
  WindowDecision select(const WindowContext& context) const override {
    WindowDecision d;
    double nodes_left = context.free.nodes;
    GigaBytes bb_left = context.free.bb_gb;
    for (std::size_t i = 0; i < context.window.size(); ++i) {
      const JobRecord* j = context.window[i];
      if (static_cast<double>(j->nodes) <= nodes_left &&
          j->bb_gb <= bb_left) {
        nodes_left -= static_cast<double>(j->nodes);
        bb_left -= j->bb_gb;
        d.selected.push_back(i);
      }
    }
    return d;
  }
  std::string name() const override { return "FirstFit"; }
};

TEST(CustomPolicy, FirstFitRunsEndToEnd) {
  FcfsScheduler fcfs;
  FirstFitPolicy policy;
  const auto result = simulate(three_jobs(), fast_config(), fcfs, policy);
  for (const auto& o : result.outcomes) {
    EXPECT_DOUBLE_EQ(o.start, 0.0) << "all three fit immediately";
  }
  EXPECT_EQ(result.policy_name, "FirstFit");
}

}  // namespace
}  // namespace bbsched
