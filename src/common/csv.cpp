#include "common/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/fault.hpp"
#include "common/log.hpp"

namespace bbsched {

CsvRow parse_csv_line(std::string_view line) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"") != std::string_view::npos ||
      (!field.empty() && (field.front() == ' ' || field.back() == ' '));
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string format_csv_row(const CsvRow& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out.push_back(',');
    out += csv_escape(row[i]);
  }
  return out;
}

CsvTable CsvTable::read(std::istream& in) {
  CsvTable table;
  std::string line;
  bool have_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    CsvRow row = parse_csv_line(line);
    if (!have_header) {
      table.header_ = std::move(row);
      have_header = true;
      continue;
    }
    if (row.size() != table.header_.size()) {
      throw std::runtime_error("csv: line " + std::to_string(line_no) +
                               " has " + std::to_string(row.size()) +
                               " fields, expected " +
                               std::to_string(table.header_.size()));
    }
    table.rows_.push_back(std::move(row));
  }
  return table;
}

CsvTable CsvTable::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    log_error("csv", "cannot open file", {{"path", path}});
    throw std::runtime_error("csv: cannot open " + path);
  }
  CsvTable table;
  try {
    table = read(in);
  } catch (const std::exception& e) {
    // Name the file: "csv: line 3 has 2 fields, expected 17" is useless
    // without knowing which of a cache directory's files it came from.
    throw std::runtime_error("csv: " + path + ": " + e.what());
  }
  log_debug("csv", "read file", {{"path", path}, {"rows", table.num_rows()}});
  return table;
}

std::optional<std::size_t> CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return std::nullopt;
}

const std::string& CsvTable::at(std::size_t row, std::string_view col) const {
  auto idx = column(col);
  if (!idx) throw std::runtime_error("csv: no column named " + std::string(col));
  return rows_.at(row).at(*idx);
}

void CsvTable::add_row(CsvRow row) {
  if (row.size() != header_.size()) {
    throw std::runtime_error("csv: add_row width mismatch");
  }
  rows_.push_back(std::move(row));
}

void CsvTable::write(std::ostream& out) const {
  out << format_csv_row(header_) << '\n';
  for (const auto& row : rows_) out << format_csv_row(row) << '\n';
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    log_error("csv", "cannot write file", {{"path", path}});
    throw std::runtime_error("csv: cannot write " + path);
  }
  write(out);
  log_debug("csv", "wrote file", {{"path", path}, {"rows", rows_.size()}});
}

namespace {
constexpr std::string_view kCrcTrailerTag = "# crc32=";
}  // namespace

void write_csv_file_checksummed(const CsvTable& table, const std::string& path,
                                std::string_view fault_site) {
  std::ostringstream body;
  table.write(body);
  const std::string body_str = body.str();
  std::string content = body_str;
  content += kCrcTrailerTag;
  content += crc32_hex(body_str);
  content += '\n';
  atomic_write_file(path, content, fault_site, path);
  log_debug("csv", "wrote checksummed file",
            {{"path", path}, {"rows", table.num_rows()}});
}

std::optional<CsvTable> read_csv_file_checksummed(const std::string& path,
                                                  std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "csv: cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream slurp;
  slurp << in.rdbuf();
  const std::string content = slurp.str();
  const std::size_t pos = content.rfind(kCrcTrailerTag);
  if (pos == std::string::npos || (pos != 0 && content[pos - 1] != '\n')) {
    if (error != nullptr) {
      *error = "csv: " + path + ": missing crc32 trailer (truncated file?)";
    }
    return std::nullopt;
  }
  // Anything after the trailer line means the file was appended to after
  // being finalized — report that, not a confusing checksum mismatch.
  const std::size_t line_end = content.find('\n', pos);
  if (line_end != std::string::npos && line_end + 1 < content.size()) {
    if (error != nullptr) {
      *error = "csv: " + path + ": trailing data after crc32 trailer";
    }
    return std::nullopt;
  }
  const std::size_t stated_end =
      line_end == std::string::npos ? content.size() : line_end;
  std::string_view stated(content.data() + pos + kCrcTrailerTag.size(),
                          stated_end - pos - kCrcTrailerTag.size());
  while (!stated.empty() && stated.back() == '\r') stated.remove_suffix(1);
  const std::string body = content.substr(0, pos);
  const std::string actual = crc32_hex(body);
  if (stated != actual) {
    if (error != nullptr) {
      *error = "csv: " + path + ": crc32 mismatch (trailer says " +
               std::string(stated) + ", content is " + actual + ")";
    }
    return std::nullopt;
  }
  try {
    std::istringstream body_in(body);
    return CsvTable::read(body_in);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = "csv: " + path + ": " + e.what();
    return std::nullopt;
  }
}

double parse_double_field(const std::string& value, std::string_view field) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("csv: bad numeric value '" + value +
                             "' in field " + std::string(field));
  }
}

std::int64_t parse_int_field(const std::string& value, std::string_view field) {
  std::int64_t out = 0;
  auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw std::runtime_error("csv: bad integer value '" + value +
                             "' in field " + std::string(field));
  }
  return out;
}

}  // namespace bbsched
