
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_csv.cpp" "tests/CMakeFiles/bbsched_tests.dir/common/test_csv.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/common/test_csv.cpp.o.d"
  "/root/repo/tests/common/test_misc.cpp" "tests/CMakeFiles/bbsched_tests.dir/common/test_misc.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/common/test_misc.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/bbsched_tests.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/bbsched_tests.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/core/test_adaptive_decision.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_adaptive_decision.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_adaptive_decision.cpp.o.d"
  "/root/repo/tests/core/test_chromosome.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_chromosome.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_chromosome.cpp.o.d"
  "/root/repo/tests/core/test_decision.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_decision.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_decision.cpp.o.d"
  "/root/repo/tests/core/test_exhaustive.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_exhaustive.cpp.o.d"
  "/root/repo/tests/core/test_ga.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_ga.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_ga.cpp.o.d"
  "/root/repo/tests/core/test_ga_ops.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_ga_ops.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_ga_ops.cpp.o.d"
  "/root/repo/tests/core/test_ga_ssd.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_ga_ssd.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_ga_ssd.cpp.o.d"
  "/root/repo/tests/core/test_multi_resource_problem.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_multi_resource_problem.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_multi_resource_problem.cpp.o.d"
  "/root/repo/tests/core/test_nsga2.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_nsga2.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_nsga2.cpp.o.d"
  "/root/repo/tests/core/test_pareto.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_pareto.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_pareto.cpp.o.d"
  "/root/repo/tests/core/test_scalar_ga.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_scalar_ga.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_scalar_ga.cpp.o.d"
  "/root/repo/tests/core/test_ssd_problem.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_ssd_problem.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_ssd_problem.cpp.o.d"
  "/root/repo/tests/core/test_three_resources.cpp" "tests/CMakeFiles/bbsched_tests.dir/core/test_three_resources.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/core/test_three_resources.cpp.o.d"
  "/root/repo/tests/exp/test_experiment.cpp" "tests/CMakeFiles/bbsched_tests.dir/exp/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/exp/test_experiment.cpp.o.d"
  "/root/repo/tests/exp/test_grid.cpp" "tests/CMakeFiles/bbsched_tests.dir/exp/test_grid.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/exp/test_grid.cpp.o.d"
  "/root/repo/tests/metrics/test_breakdown.cpp" "tests/CMakeFiles/bbsched_tests.dir/metrics/test_breakdown.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/metrics/test_breakdown.cpp.o.d"
  "/root/repo/tests/metrics/test_kiviat.cpp" "tests/CMakeFiles/bbsched_tests.dir/metrics/test_kiviat.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/metrics/test_kiviat.cpp.o.d"
  "/root/repo/tests/metrics/test_schedule_metrics.cpp" "tests/CMakeFiles/bbsched_tests.dir/metrics/test_schedule_metrics.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/metrics/test_schedule_metrics.cpp.o.d"
  "/root/repo/tests/metrics/test_sim_result.cpp" "tests/CMakeFiles/bbsched_tests.dir/metrics/test_sim_result.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/metrics/test_sim_result.cpp.o.d"
  "/root/repo/tests/policies/test_bbsched_policy.cpp" "tests/CMakeFiles/bbsched_tests.dir/policies/test_bbsched_policy.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/policies/test_bbsched_policy.cpp.o.d"
  "/root/repo/tests/policies/test_bin_packing.cpp" "tests/CMakeFiles/bbsched_tests.dir/policies/test_bin_packing.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/policies/test_bin_packing.cpp.o.d"
  "/root/repo/tests/policies/test_naive.cpp" "tests/CMakeFiles/bbsched_tests.dir/policies/test_naive.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/policies/test_naive.cpp.o.d"
  "/root/repo/tests/policies/test_scalarized.cpp" "tests/CMakeFiles/bbsched_tests.dir/policies/test_scalarized.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/policies/test_scalarized.cpp.o.d"
  "/root/repo/tests/sim/test_base_scheduler.cpp" "tests/CMakeFiles/bbsched_tests.dir/sim/test_base_scheduler.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/sim/test_base_scheduler.cpp.o.d"
  "/root/repo/tests/sim/test_custom_policy.cpp" "tests/CMakeFiles/bbsched_tests.dir/sim/test_custom_policy.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/sim/test_custom_policy.cpp.o.d"
  "/root/repo/tests/sim/test_easy_backfill.cpp" "tests/CMakeFiles/bbsched_tests.dir/sim/test_easy_backfill.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/sim/test_easy_backfill.cpp.o.d"
  "/root/repo/tests/sim/test_machine_state.cpp" "tests/CMakeFiles/bbsched_tests.dir/sim/test_machine_state.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/sim/test_machine_state.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/bbsched_tests.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_simulator_policies.cpp" "tests/CMakeFiles/bbsched_tests.dir/sim/test_simulator_policies.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/sim/test_simulator_policies.cpp.o.d"
  "/root/repo/tests/sim/test_simulator_semantics.cpp" "tests/CMakeFiles/bbsched_tests.dir/sim/test_simulator_semantics.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/sim/test_simulator_semantics.cpp.o.d"
  "/root/repo/tests/workload/test_generator.cpp" "tests/CMakeFiles/bbsched_tests.dir/workload/test_generator.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/workload/test_generator.cpp.o.d"
  "/root/repo/tests/workload/test_job.cpp" "tests/CMakeFiles/bbsched_tests.dir/workload/test_job.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/workload/test_job.cpp.o.d"
  "/root/repo/tests/workload/test_synthetic.cpp" "tests/CMakeFiles/bbsched_tests.dir/workload/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/workload/test_synthetic.cpp.o.d"
  "/root/repo/tests/workload/test_trace_io.cpp" "tests/CMakeFiles/bbsched_tests.dir/workload/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/workload/test_trace_io.cpp.o.d"
  "/root/repo/tests/workload/test_trace_roundtrip_property.cpp" "tests/CMakeFiles/bbsched_tests.dir/workload/test_trace_roundtrip_property.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/workload/test_trace_roundtrip_property.cpp.o.d"
  "/root/repo/tests/workload/test_wl_stats.cpp" "tests/CMakeFiles/bbsched_tests.dir/workload/test_wl_stats.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/workload/test_wl_stats.cpp.o.d"
  "/root/repo/tests/workload/test_workload.cpp" "tests/CMakeFiles/bbsched_tests.dir/workload/test_workload.cpp.o" "gcc" "tests/CMakeFiles/bbsched_tests.dir/workload/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/bbsched_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/bbsched_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/bbsched_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bbsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bbsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bbsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bbsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
