// bench_fig10_breakdown_bb — reproduce Figure 10: average job wait time on
// Theta-S4 broken down by burst-buffer request size.
//
// Expected shape: jobs with BB requests wait far longer than jobs without;
// BBSched and the weighted methods cut the waits of BB-requesting jobs the
// most, while Constrained_CPU helps only the no-BB class (the paper reports
// it *increasing* waits of the 100-200 TB class).
#include "bench_util.hpp"
#include "policies/factory.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig10_breakdown_bb");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const auto config = ExperimentConfig::from_env();
  const auto results = ensure_main_grid(config);
  benchutil::record_grid_cells(cli.bench(), "main_grid", results.cells);
  benchutil::print_breakdown(
      results, standard_method_names(), "bb_request",
      "Figure 10: Theta-S4 average wait time (hours) by burst-buffer"
      " request");
  return cli.exit_code();
}
