// multi_resource_problem.hpp — the paper's core MOO formulation (§3.2.1),
// generalized from {nodes, burst buffer} to R independent resources.
//
//   maximize  f_r(x) = sum_i demand[r][i] * x_i   for every resource r
//   s.t.      f_r(x) <= free capacity of r
//
// The two-resource instance used throughout §4 is R = 2 with
// r0 = compute nodes and r1 = shared burst-buffer GB.  The class is generic
// because §5 argues BBSched extends to further resources; tests exercise
// R = 3 (e.g. nodes + BB + power budget) against the same solver.
//
// Objectives are reported as fractions of the *free* capacity (see
// problem.hpp); a resource with zero free capacity contributes a constant 0
// so that windows hitting full saturation of one resource still optimize the
// others.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/problem.hpp"

namespace bbsched {

/// Linear multi-resource selection problem with one objective per resource.
class MultiResourceProblem : public MooProblem {
 public:
  /// `demands[r][i]` is job i's demand for resource r; `free[r]` is the free
  /// capacity of resource r.  All demand rows must have equal length.
  MultiResourceProblem(std::vector<std::vector<double>> demands,
                       std::vector<double> free);

  /// Convenience constructor for the canonical CPU + burst-buffer instance.
  static MultiResourceProblem cpu_bb(std::span<const double> node_demand,
                                     std::span<const double> bb_demand,
                                     double free_nodes, double free_bb);

  std::size_t num_vars() const override { return num_vars_; }
  std::size_t num_objectives() const override { return demands_.size(); }

  void evaluate(std::span<const std::uint8_t> genes,
                std::span<double> objectives) const override;
  bool feasible(std::span<const std::uint8_t> genes) const override;

  /// Raw (unnormalized) resource consumption of a selection.
  std::vector<double> consumption(std::span<const std::uint8_t> genes) const;

  /// The same demand matrix and pins re-capacitated against a different free
  /// vector — how planner-based lookahead (Planner::avail_during) re-checks
  /// window feasibility at a future instant without rebuilding the problem.
  MultiResourceProblem with_free(std::vector<double> free) const;

  double free_capacity(std::size_t resource) const {
    return free_.at(resource);
  }
  double demand(std::size_t resource, std::size_t job) const {
    return demands_.at(resource).at(job);
  }

 private:
  std::vector<std::vector<double>> demands_;  // [resource][job]
  std::vector<double> free_;                  // [resource]
  std::size_t num_vars_;
};

}  // namespace bbsched
