// journal.hpp — crash-consistent per-cell campaign journal (DESIGN.md §12).
//
// Each finished grid cell is appended as one CRC32-framed bundle and fsync'd
// before the runner moves on, so a campaign killed at any instant — including
// mid-append — loses at most the cells that had not finished.  On resume the
// journal is scanned front to back; a torn or corrupt line ends the valid
// prefix (everything after it recomputes) and a journal whose header frame is
// unreadable is quarantined wholesale rather than trusted.
//
// On-disk format, one record per line:
//
//   <crc32 hex of payload>|<payload>
//
// with payloads
//
//   journal|bbsched-journal-v1          (header, first line)
//   cell|<grid cache CSV row>
//   bd|<breakdown cache CSV row>        (0+ rows following their cell)
//   done|<workload>|<method>            (commits the bundle above it)
//
// A bundle counts as recovered only when its done marker is present and
// every line of it CRC-checks; the payload carries the exact %.17g CSV cell
// row, so a resumed grid re-serializes byte-identically to an uninterrupted
// one (the property tests pin this).
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace bbsched {

/// One recovered (or to-be-journaled) cell bundle.
struct JournalBundle {
  std::string workload;
  std::string method;
  std::string cell_row;                    ///< serialized grid cache CSV row
  std::vector<std::string> breakdown_rows; ///< serialized breakdown CSV rows
};

class CellJournal {
 public:
  static constexpr const char* kVersion = "bbsched-journal-v1";

  explicit CellJournal(std::string path);

  const std::string& path() const { return path_; }

  /// Scan the journal and return every fully-committed bundle.  Returns an
  /// empty vector when the file does not exist.  A torn tail is logged and
  /// dropped; a journal with an invalid header frame is quarantined and
  /// treated as absent.
  std::vector<JournalBundle> load();

  /// Append one bundle (thread-safe) and fsync it to disk.  Creates the
  /// journal (with its header frame) on first append.  A failed or
  /// fault-injected torn append poisons the journal — later appends are
  /// dropped, exactly as if the writing process had died — and returns
  /// false; the campaign itself carries on from memory.
  bool append(const JournalBundle& bundle);

  /// Whether an append failure has disabled further journaling.
  bool poisoned() const { return poisoned_; }

  /// Delete the journal (after the final cache write succeeded).
  void remove();

 private:
  std::string path_;
  std::mutex mutex_;
  bool poisoned_ = false;
};

}  // namespace bbsched
