#include "core/pareto.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace bbsched {

bool dominates(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  bool strictly_better = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] < b[k]) return false;
    if (a[k] > b[k]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> non_dominated_indices(const Front& points) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j != i && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

std::vector<Chromosome> pareto_front(std::span<const Chromosome> population) {
  Front points;
  points.reserve(population.size());
  for (const auto& c : population) points.push_back(c.objectives);
  const std::vector<std::size_t> keep = non_dominated_indices(points);
  std::vector<Chromosome> out;
  out.reserve(keep.size());
  for (std::size_t idx : keep) {
    out.push_back(population[idx]);
  }
  return out;
}

double generational_distance(const Front& solutions, const Front& truth) {
  if (truth.empty()) {
    throw std::invalid_argument("generational_distance: empty truth set");
  }
  if (solutions.empty()) return 0.0;
  double total = 0;
  for (const auto& u : solutions) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& v : truth) {
      assert(u.size() == v.size());
      double d2 = 0;
      for (std::size_t k = 0; k < u.size(); ++k) {
        const double diff = u[k] - v[k];
        d2 += diff * diff;
      }
      best = std::min(best, d2);
    }
    total += std::sqrt(best);
  }
  return total / static_cast<double>(solutions.size());
}

Front sorted_by_first_objective(Front front) {
  std::sort(front.begin(), front.end(),
            [](const auto& a, const auto& b) {
              return a[0] != b[0] ? a[0] < b[0] : a[1] < b[1];
            });
  return front;
}

double hypervolume_2d(const Front& front, std::span<const double> reference) {
  if (front.empty()) return 0.0;
  if (reference.size() != 2) {
    throw std::invalid_argument("hypervolume_2d: reference must be 2-d");
  }
  // Keep only the non-dominated points, sorted by f0 ascending.  On a
  // non-dominated 2-d front sorted this way, f1 is strictly decreasing, so
  // each point i dominates exactly the strip between the previous point's f0
  // and its own f0, at height (f1_i - ref1).
  Front nd;
  for (std::size_t idx : non_dominated_indices(front)) nd.push_back(front[idx]);
  nd = sorted_by_first_objective(std::move(nd));
  double volume = 0;
  for (std::size_t i = nd.size(); i-- > 0;) {
    const double x_hi = std::max(nd[i][0], reference[0]);
    const double x_lo = (i == 0) ? reference[0]
                                 : std::max(nd[i - 1][0], reference[0]);
    const double height = nd[i][1] - reference[1];
    if (height > 0 && x_hi > x_lo) volume += (x_hi - x_lo) * height;
  }
  return volume;
}

}  // namespace bbsched
