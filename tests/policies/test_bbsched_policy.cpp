#include "policies/bbsched_policy.hpp"

#include <gtest/gtest.h>

#include "policies/problem_builder.hpp"

namespace bbsched {
namespace {

JobRecord job(JobId id, NodeCount nodes, GigaBytes bb = 0,
              GigaBytes ssd = 0) {
  JobRecord j;
  j.id = id;
  j.nodes = nodes;
  j.bb_gb = bb;
  j.ssd_per_node_gb = ssd;
  j.runtime = 100;
  j.walltime = 100;
  return j;
}

std::vector<JobRecord> table1_jobs() {
  return {job(1, 80, tb(20)), job(2, 10, tb(85)), job(3, 40, tb(5)),
          job(4, 10), job(5, 20)};
}

GaParams test_ga() {
  GaParams ga;
  ga.generations = 150;
  ga.population_size = 20;
  return ga;
}

WindowDecision run_bbsched(const std::vector<JobRecord>& jobs,
                           FreeState free,
                           std::vector<std::size_t> pinned = {}) {
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  Rng rng(11);
  WindowContext context;
  context.window = window;
  context.free = free;
  context.pinned = pinned;
  context.rng = &rng;
  return BBSchedPolicy(test_ga()).select(context);
}

FreeState plain_free() {
  FreeState f;
  f.nodes = 100;
  f.bb_gb = tb(100);
  return f;
}

TEST(BBSchedPolicy, Table1CommitsSolution3) {
  // §1 / §3.2.4: the decision rule trades 20 node-points for 70 BB-points
  // and commits {J2, J3, J4, J5}.
  const auto decision = run_bbsched(table1_jobs(), plain_free());
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{1, 2, 3, 4}));
  EXPECT_GE(decision.pareto_size, 2u)
      << "the Pareto set must expose the alternative {J1, J5}";
}

TEST(BBSchedPolicy, KeepsNodeMaxWhenTradeoffInsufficient) {
  // Grow J1's request so the BB gain of switching to {J2..J5} no longer
  // beats 2x the node loss: {J1, J5} = (100 %, 60 %) vs {J2..J5} =
  // (80 %, 90 %) — gain 30 < 2 * loss 20.
  auto jobs = table1_jobs();
  jobs[0].bb_gb = tb(60);
  const auto decision = run_bbsched(jobs, plain_free());
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0, 4}));
}

TEST(BBSchedPolicy, HonoursPins) {
  const auto decision = run_bbsched(table1_jobs(), plain_free(), {0});
  bool has_j1 = false;
  for (std::size_t pos : decision.selected) has_j1 |= pos == 0;
  EXPECT_TRUE(has_j1);
}

TEST(BBSchedPolicy, FourObjectiveSsdWindowUsesSumRule) {
  FreeState free;
  free.ssd_enabled = true;
  free.small_nodes = 50;
  free.large_nodes = 50;
  free.nodes = 100;
  free.bb_gb = tb(100);
  free.small_ssd_gb = 128;
  free.large_ssd_gb = 256;
  const std::vector<JobRecord> jobs{
      job(1, 80, tb(20), 64), job(2, 10, tb(85), 200), job(3, 40, tb(5), 100),
      job(4, 10, 0, 32), job(5, 20, 0, 128)};
  const auto decision = run_bbsched(jobs, free);
  ASSERT_FALSE(decision.selected.empty());
  // SSD machines must come with committed node-tier allocations matching
  // each job's node count.
  ASSERT_EQ(decision.allocations.size(), decision.selected.size());
  for (std::size_t k = 0; k < decision.selected.size(); ++k) {
    EXPECT_EQ(decision.allocations[k].total_nodes(),
              jobs[decision.selected[k]].nodes);
  }
}

TEST(BBSchedPolicy, DeterministicGivenSameRngStream) {
  const auto a = run_bbsched(table1_jobs(), plain_free());
  const auto b = run_bbsched(table1_jobs(), plain_free());
  EXPECT_EQ(a.selected, b.selected);
}

TEST(BBSchedPolicy, CustomDecisionRuleInjectable) {
  std::vector<const JobRecord*> window;
  const auto jobs = table1_jobs();
  for (const auto& j : jobs) window.push_back(&j);
  Rng rng(11);
  WindowContext context;
  context.window = window;
  context.free = plain_free();
  context.rng = &rng;
  // A pure node-max rule (no trade-off) must pick {J1, J5} instead.
  BBSchedPolicy policy(test_ga(), std::make_unique<LexicographicRule>(0));
  const auto decision = policy.select(context);
  EXPECT_EQ(decision.selected, (std::vector<std::size_t>{0, 4}));
}

TEST(ProblemBuilder, BuildsTwoObjectiveProblemWithoutSsd) {
  const auto jobs = table1_jobs();
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  WindowContext context;
  context.window = window;
  context.free = plain_free();
  const auto problem = build_window_problem(context);
  EXPECT_EQ(problem->num_objectives(), 2u);
  EXPECT_EQ(problem->num_vars(), 5u);
}

TEST(ProblemBuilder, BuildsFourObjectiveProblemWithSsd) {
  const auto jobs = table1_jobs();
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  WindowContext context;
  context.window = window;
  FreeState free;
  free.ssd_enabled = true;
  free.small_nodes = 50;
  free.large_nodes = 50;
  free.nodes = 100;
  free.bb_gb = tb(100);
  free.small_ssd_gb = 128;
  free.large_ssd_gb = 256;
  context.free = free;
  const auto problem = build_window_problem(context);
  EXPECT_EQ(problem->num_objectives(), 4u);
}

TEST(ProblemBuilder, AppliesPins) {
  const auto jobs = table1_jobs();
  std::vector<const JobRecord*> window;
  for (const auto& j : jobs) window.push_back(&j);
  const std::vector<std::size_t> pinned{3};
  WindowContext context;
  context.window = window;
  context.free = plain_free();
  context.pinned = pinned;
  const auto problem = build_window_problem(context);
  ASSERT_EQ(problem->pinned().size(), 1u);
  EXPECT_EQ(problem->pinned()[0], 3u);
}

}  // namespace
}  // namespace bbsched
