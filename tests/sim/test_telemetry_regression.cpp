// Telemetry must be a pure observer: arming tracing + metrics changes
// nothing about scheduling.  A run with everything enabled serializes to the
// byte-identical SimResult of a disabled run.
#include <gtest/gtest.h>

#include <string>

#include "common/metrics.hpp"
#include "common/profiler.hpp"
#include "common/trace.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "tests/sim/serialize_result.hpp"
#include "workload/generator.hpp"

namespace bbsched {
namespace {

using bbsched::testing::serialize;

TEST(TelemetryRegression, EnabledRunIsByteIdentical) {
  const Workload workload = generate_workload(theta_model(120), 11);
  SimConfig config;
  config.window_size = 8;
  GaParams ga;
  ga.generations = 40;
  ga.population_size = 12;
  const auto base = make_base_scheduler("FCFS");
  const auto policy = make_policy("BBSched", ga);

  set_trace_enabled(false);
  set_metrics_enabled(false);
  const std::string off =
      serialize(simulate(workload, config, *base, *policy));

  trace_clear();
  set_trace_enabled(true);
  set_metrics_enabled(true);
  const std::string on =
      serialize(simulate(workload, config, *base, *policy));
  set_trace_enabled(false);
  set_metrics_enabled(false);

  // The observed run really recorded something...
  EXPECT_GT(trace_event_count(), 0u);
  EXPECT_GT(metric_counter("sim.runs").value(), 0u);
  trace_clear();
  MetricsRegistry::global().reset();

  // ...without perturbing the schedule by a single byte.
  EXPECT_EQ(off, on);
  // Note solve_seconds_total/max are intentionally excluded from
  // serialize(): they measure wall time, which varies run to run with or
  // without telemetry.
}

// The phase profiler is likewise a pure observer (DESIGN.md §14): it reads
// clocks, never RNG, and feeds nothing back into scheduling.  --profile
// on/off must serialize to the same SimResult byte for byte.
TEST(TelemetryRegression, ProfilerOnIsByteIdentical) {
  const Workload workload = generate_workload(theta_model(120), 11);
  SimConfig config;
  config.window_size = 8;
  GaParams ga;
  ga.generations = 40;
  ga.population_size = 12;
  const auto base = make_base_scheduler("FCFS");
  const auto policy = make_policy("BBSched", ga);

  set_profiler_enabled(false);
  profiler_clear();
  const std::string off =
      serialize(simulate(workload, config, *base, *policy));

  set_profiler_enabled(true);
  profiler_clear();
  const std::string on =
      serialize(simulate(workload, config, *base, *policy));
  const ProfileReport report = profiler_report();
  set_profiler_enabled(false);
  profiler_clear();

  // The instrumented hot paths really recorded phases...
  ASSERT_FALSE(report.empty());
  bool saw_sim_phase = false;
  for (const PhaseRow& row : profile_rows(report)) {
    if (row.path.find("sim.run") != std::string::npos) saw_sim_phase = true;
  }
  EXPECT_TRUE(saw_sim_phase) << "sim.run phase missing from profile";

  // ...without perturbing the schedule by a single byte.
  EXPECT_EQ(off, on);
}

}  // namespace
}  // namespace bbsched
