#include <gtest/gtest.h>

#include "sim/sim_result.hpp"

namespace bbsched {
namespace {

TEST(JobOutcome, WaitAndSlowdown) {
  JobOutcome o;
  o.submit = 100;
  o.start = 400;
  o.runtime = 300;
  o.end = 700;
  EXPECT_DOUBLE_EQ(o.wait(), 300.0);
  EXPECT_DOUBLE_EQ(o.slowdown(), 2.0);
}

TEST(JobOutcome, ZeroRuntimeSlowdownGuard) {
  JobOutcome o;
  o.submit = 0;
  o.start = 100;
  o.runtime = 0;
  EXPECT_DOUBLE_EQ(o.slowdown(), 1.0);
}

TEST(JobOutcome, ImmediateStartSlowdownIsOne) {
  JobOutcome o;
  o.submit = 50;
  o.start = 50;
  o.runtime = 10;
  EXPECT_DOUBLE_EQ(o.slowdown(), 1.0);
}

TEST(DecisionStats, MeansGuardEmptyRuns) {
  DecisionStats stats;
  EXPECT_DOUBLE_EQ(stats.mean_solve_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_pareto_size(), 0.0);
}

TEST(DecisionStats, MeansDivideByCycles) {
  DecisionStats stats;
  stats.cycles = 4;
  stats.solve_seconds_total = 2.0;
  stats.pareto_size_sum = 10.0;
  EXPECT_DOUBLE_EQ(stats.mean_solve_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_pareto_size(), 2.5);
}

}  // namespace
}  // namespace bbsched
