// bench_fig4_gd_gp — reproduce Figure 4: impact of the G and P solver
// parameters on approximation quality (generational distance against the
// exhaustive true Pareto set) and time-to-solution.
//
// Expected shape (§3.2.3): GD falls steeply up to G ~ 500 and flattens
// afterwards; larger P lowers GD and raises time; the G=500 / P=20 paper
// default solves in well under 0.2 s.
#include <iostream>

#include "common/env.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/exhaustive.hpp"
#include "core/ga.hpp"
#include "window_problems.hpp"

#include "bench_util.hpp"

namespace {

using namespace bbsched;

Front front_of(const std::vector<Chromosome>& chromosomes) {
  Front front;
  for (const auto& c : chromosomes) front.push_back(c.objectives);
  return front;
}

}  // namespace

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig4_gd_gp");
  if (!cli.ok()) return 0;
  const auto samples =
      static_cast<std::size_t>(env_int("BBSCHED_FIG4_SAMPLES", 4));
  const std::size_t window = 20;  // paper default window

  // Figure 2/4 setup: windows from the first 1000 jobs of a Theta workload.
  const auto problems = benchutil::sample_window_problems(window, samples);

  // Exhaustive ground truth per problem (2^20 enumeration each).
  std::vector<Front> truths;
  for (const auto& problem : problems) {
    const auto truth = ExhaustiveSolver(24).solve(problem);
    truths.push_back(front_of(truth.pareto_set));
  }

  std::cout << "Figure 4: generational distance and time-to-solution as G"
               " and P vary (window = 20)\n\n";
  ConsoleTable table({"G", "P", "GD", "time (s)"},
                     {Align::kLeft, Align::kRight, Align::kRight,
                      Align::kRight});
  for (int population : {10, 20, 50}) {
    for (int generations : {50, 100, 200, 500, 1000, 2000}) {
      GaParams ga;
      ga.generations = generations;
      ga.population_size = population;
      double gd_total = 0, time_total = 0;
      for (std::size_t i = 0; i < problems.size(); ++i) {
        Stopwatch watch;
        const auto result = MooGaSolver(ga).solve(problems[i]);
        time_total += watch.elapsed_seconds();
        gd_total +=
            generational_distance(front_of(result.pareto_set), truths[i]);
      }
      const auto n = static_cast<double>(problems.size());
      table.add_row({std::to_string(generations), std::to_string(population),
                     ConsoleTable::num(gd_total / n, 4),
                     ConsoleTable::num(time_total / n, 4)});
      const std::vector<std::pair<std::string, std::string>> params{
          {"G", std::to_string(generations)},
          {"P", std::to_string(population)}};
      // GD to the exhaustive truth is deterministic (fixed seeds), so it
      // gates; wall time is machine-local and stays informational.
      cli.bench().add_value("gd", params, gd_total / n, "distance", "lower");
      cli.bench().add_value("solve_s", params, time_total / n, "s", "info");
    }
  }
  table.print(std::cout);
  return cli.exit_code();
}
