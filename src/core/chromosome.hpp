// chromosome.hpp — candidate solution representation for the MOO solver.
//
// A chromosome is a binary vector over the scheduling window (Figure 3 of the
// paper): gene i == 1 means the job at window position i is selected to
// execute.  The paper's selection operator prefers "newer" chromosomes, so
// each chromosome also carries an age that is incremented on every
// generation change (§3.2.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bbsched {

using Genes = std::vector<std::uint8_t>;

/// One member of the genetic population.
struct Chromosome {
  Genes genes;                     ///< 0/1 selection per window slot
  std::vector<double> objectives;  ///< cached objective values
  int age = 0;                     ///< generations survived (paper §3.2.2)

  bool same_genes(const Chromosome& other) const {
    return genes == other.genes;
  }
};

/// Number of selected jobs in a gene vector.
inline std::size_t selected_count(std::span<const std::uint8_t> genes) {
  std::size_t n = 0;
  for (auto g : genes) n += (g != 0);
  return n;
}

/// Indices of selected jobs, in window order.
std::vector<std::size_t> selected_indices(std::span<const std::uint8_t> genes);

}  // namespace bbsched
