// bench_fig9_breakdown_size — reproduce Figure 9: average job wait time on
// Theta-S4 broken down by job size.
//
// Expected shape: the optimization methods' gains concentrate in small jobs
// (the paper reports a 48 % reduction for the smallest class vs. 32 % for
// the largest) because window optimization beats EASY backfilling at
// avoiding multi-resource fragmentation.
#include "bench_util.hpp"
#include "policies/factory.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig9_breakdown_size");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const auto config = ExperimentConfig::from_env();
  const auto results = ensure_main_grid(config);
  benchutil::record_grid_cells(cli.bench(), "main_grid", results.cells);
  benchutil::print_breakdown(
      results, standard_method_names(), "job_size",
      "Figure 9: Theta-S4 average wait time (hours) by job size (nodes)");
  return cli.exit_code();
}
