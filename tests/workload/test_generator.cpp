#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include "workload/wl_stats.hpp"

namespace bbsched {
namespace {

TEST(Generator, DeterministicUnderSeed) {
  const auto params = cori_model(200);
  const Workload a = generate_workload(params, 5);
  const Workload b = generate_workload(params, 5);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].nodes, b.jobs[i].nodes);
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
    EXPECT_DOUBLE_EQ(a.jobs[i].bb_gb, b.jobs[i].bb_gb);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto params = cori_model(100);
  const Workload a = generate_workload(params, 1);
  const Workload b = generate_workload(params, 2);
  bool any_different = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].nodes != b.jobs[i].nodes) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Generator, EveryJobValidAndWithinMachine) {
  const Workload w = generate_workload(theta_model(500), 9);
  for (const auto& job : w.jobs) {
    EXPECT_NO_THROW(validate_job(job));
    EXPECT_LE(job.nodes, w.machine.nodes);
    EXPECT_GE(job.walltime, job.runtime);
  }
}

TEST(Generator, OfferedLoadNearTarget) {
  auto params = cori_model(2000);
  params.offered_load = 1.2;
  params.diurnal_amplitude = 0;  // modulation shifts realized load slightly
  const Workload w = generate_workload(params, 3);
  const auto summary = summarize(w);
  EXPECT_NEAR(summary.offered_load, 1.2, 0.25);
}

TEST(Generator, CoriBbRequestFractionMatchesTable2) {
  const Workload w = generate_workload(cori_model(20000), 11);
  // Table 2: 0.618 % of Cori jobs request burst buffer.
  EXPECT_NEAR(w.bb_request_fraction(), 0.00618, 0.003);
}

TEST(Generator, ThetaBbRequestFractionMatchesPaper) {
  const Workload w = generate_workload(theta_model(5000), 13);
  // §4.1: 17.18 % of Theta jobs get Darshan-derived BB requests.
  EXPECT_NEAR(w.bb_request_fraction(), 0.1718, 0.03);
}

TEST(Generator, BbRequestsWithinTable2Range) {
  const Workload w = generate_workload(theta_model(5000), 17);
  for (const auto& job : w.jobs) {
    if (!job.requests_bb()) continue;
    EXPECT_GE(job.bb_gb, gb(1));
    EXPECT_LE(job.bb_gb, tb(285));
  }
}

TEST(Generator, ThetaIsCapabilityComputingByNodeHours) {
  // Job *counts* are small-job dominated (debug/backfill partitions), but
  // capability jobs (512+ nodes) must carry a large share of node-hours.
  const Workload w = generate_workload(theta_model(5000), 19);
  double total = 0, capability = 0;
  for (const auto& job : w.jobs) {
    total += job.node_seconds();
    if (job.nodes >= 512) capability += job.node_seconds();
  }
  EXPECT_GT(capability / total, 0.35);
}

TEST(Generator, CoriIsCapacityComputing) {
  const Workload w = generate_workload(cori_model(5000), 23);
  std::size_t small_jobs = 0;
  for (const auto& job : w.jobs) small_jobs += job.nodes <= 64;
  // The capacity-computing mix is dominated by small jobs.
  EXPECT_GT(static_cast<double>(small_jobs) /
                static_cast<double>(w.jobs.size()),
            0.6);
}

TEST(Generator, ScaleShrinksMachineAndRequests) {
  const auto full = cori_model(10);
  const auto scaled = cori_model(10, 0.125);
  EXPECT_NEAR(static_cast<double>(scaled.machine.nodes),
              static_cast<double>(full.machine.nodes) * 0.125, 1.0);
  EXPECT_NEAR(scaled.machine.burst_buffer_gb,
              full.machine.burst_buffer_gb * 0.125, 1.0);
  EXPECT_NEAR(scaled.bb_max, full.bb_max * 0.125, 1.0);
}

TEST(Generator, CoriKeepsPersistentBbReservation) {
  const auto params = cori_model(10);
  EXPECT_NEAR(params.machine.persistent_bb_fraction, 1.0 / 3.0, 1e-12);
}

TEST(Generator, ValidationCatchesBadParams) {
  auto params = cori_model(100);
  params.offered_load = 0;
  EXPECT_THROW(generate_workload(params, 1), std::invalid_argument);
  params = cori_model(100);
  params.size_buckets.clear();
  EXPECT_THROW(generate_workload(params, 1), std::invalid_argument);
  params = cori_model(100);
  params.size_buckets[0].max_nodes = params.machine.nodes + 1;
  EXPECT_THROW(generate_workload(params, 1), std::invalid_argument);
  params = cori_model(100);
  params.walltime_accuracy_lo = 0;
  EXPECT_THROW(generate_workload(params, 1), std::invalid_argument);
}

TEST(Generator, SubmitTimesSortedAndPositive) {
  const Workload w = generate_workload(cori_model(300), 29);
  Time prev = 0;
  for (const auto& job : w.jobs) {
    EXPECT_GE(job.submit_time, prev);
    prev = job.submit_time;
  }
}

}  // namespace
}  // namespace bbsched
