#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bbsched {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(0.5, 1.0, 1000.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0);
  }
}

TEST(Rng, BoundedParetoHeavyTail) {
  // Small alpha: the median stays near the lower bound but the mean is
  // pulled up by the tail.
  Rng rng(31);
  int below_10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    below_10 += rng.bounded_pareto(0.5, 1.0, 10000.0) < 10.0;
  }
  EXPECT_GT(below_10, n / 2);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(37);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights, 3)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(41);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace bbsched
