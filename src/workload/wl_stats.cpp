#include "workload/wl_stats.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/table.hpp"

namespace bbsched {

WorkloadSummary summarize(const Workload& workload) {
  WorkloadSummary s;
  s.num_jobs = workload.jobs.size();
  double node_sum = 0, runtime_sum = 0, node_seconds = 0;
  bool first_bb = true;
  for (const auto& job : workload.jobs) {
    node_sum += static_cast<double>(job.nodes);
    runtime_sum += job.runtime;
    node_seconds += job.node_seconds();
    s.max_nodes = std::max(s.max_nodes, job.nodes);
    if (job.requests_bb()) {
      ++s.jobs_with_bb;
      if (job.bb_gb > tb(1)) ++s.jobs_with_bb_over_1tb;
      s.bb_total += job.bb_gb;
      s.bb_max = std::max(s.bb_max, job.bb_gb);
      s.bb_min = first_bb ? job.bb_gb : std::min(s.bb_min, job.bb_gb);
      first_bb = false;
    }
  }
  if (s.num_jobs > 0) {
    s.bb_fraction =
        static_cast<double>(s.jobs_with_bb) / static_cast<double>(s.num_jobs);
    s.mean_nodes = node_sum / static_cast<double>(s.num_jobs);
    s.mean_runtime = runtime_sum / static_cast<double>(s.num_jobs);
  }
  s.span = workload.submit_span();
  if (s.span > 0 && workload.machine.nodes > 0) {
    s.offered_load = node_seconds /
                     (static_cast<double>(workload.machine.nodes) * s.span);
    double bb_seconds = 0;
    for (const auto& job : workload.jobs) bb_seconds += job.bb_gb * job.runtime;
    const GigaBytes schedulable = workload.machine.schedulable_bb_gb();
    if (schedulable > 0) {
      s.offered_bb_load = bb_seconds / (schedulable * s.span);
    }
  }
  return s;
}

Histogram bb_request_histogram(const Workload& workload, double bin_tb) {
  GigaBytes max_request = 0;
  for (const auto& job : workload.jobs) {
    max_request = std::max(max_request, job.bb_gb);
  }
  const double bin = tb(bin_tb);
  const auto num_bins =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(max_request / bin)));
  std::vector<double> edges;
  edges.reserve(num_bins + 1);
  for (std::size_t i = 0; i <= num_bins; ++i) {
    edges.push_back(static_cast<double>(i) * bin);
  }
  Histogram hist(std::move(edges));
  for (const auto& job : workload.jobs) {
    if (job.requests_bb()) hist.add(job.bb_gb);
  }
  return hist;
}

void print_summary(const Workload& workload, std::ostream& out) {
  const WorkloadSummary s = summarize(workload);
  out << "workload " << workload.name << " on " << workload.machine.name
      << " (" << workload.machine.nodes << " nodes, "
      << format_capacity(workload.machine.burst_buffer_gb) << " BB)\n";
  ConsoleTable table({"metric", "value"}, {Align::kLeft, Align::kRight});
  table.add_row({"jobs", std::to_string(s.num_jobs)});
  table.add_row({"jobs with BB request", std::to_string(s.jobs_with_bb)});
  table.add_row({"jobs with BB > 1TB",
                 std::to_string(s.jobs_with_bb_over_1tb)});
  table.add_row({"BB request fraction", ConsoleTable::pct(s.bb_fraction, 3)});
  table.add_row({"BB range",
                 s.jobs_with_bb ? format_capacity(s.bb_min) + " - " +
                                      format_capacity(s.bb_max)
                                : "-"});
  table.add_row({"aggregate BB volume", format_capacity(s.bb_total)});
  table.add_row({"mean job size (nodes)", ConsoleTable::num(s.mean_nodes, 1)});
  table.add_row({"max job size (nodes)", std::to_string(s.max_nodes)});
  table.add_row({"mean runtime", format_duration(s.mean_runtime)});
  table.add_row({"submit span", format_duration(s.span)});
  table.add_row({"offered load", ConsoleTable::num(s.offered_load, 2)});
  table.add_row({"offered BB load", ConsoleTable::num(s.offered_bb_load, 2)});
  table.print(out);
}

void print_bb_histogram(const Workload& workload, std::ostream& out,
                        double bin_tb) {
  const Histogram hist = bb_request_histogram(workload, bin_tb);
  out << workload.name << " BB requests ("
      << format_capacity(workload.total_bb_request()) << " aggregate)\n";
  ConsoleTable table({"bin", "jobs"}, {Align::kLeft, Align::kRight});
  for (std::size_t i = 0; i < hist.num_bins(); ++i) {
    if (hist.bin_count(i) == 0) continue;
    table.add_row({format_capacity(hist.bin_lo(i)) + " - " +
                       format_capacity(hist.bin_hi(i)),
                   ConsoleTable::num(hist.bin_count(i), 0)});
  }
  table.print(out);
}

}  // namespace bbsched
