#include "workload/job.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

JobRecord valid_job() {
  JobRecord job;
  job.id = 1;
  job.submit_time = 10;
  job.runtime = 100;
  job.walltime = 200;
  job.nodes = 4;
  job.bb_gb = tb(1);
  return job;
}

TEST(JobRecord, ValidJobPasses) { EXPECT_NO_THROW(validate_job(valid_job())); }

TEST(JobRecord, RejectsNegativeSubmit) {
  auto job = valid_job();
  job.submit_time = -1;
  EXPECT_THROW(validate_job(job), std::invalid_argument);
}

TEST(JobRecord, RejectsWalltimeBelowRuntime) {
  auto job = valid_job();
  job.walltime = job.runtime - 1;
  EXPECT_THROW(validate_job(job), std::invalid_argument);
}

TEST(JobRecord, RejectsZeroNodes) {
  auto job = valid_job();
  job.nodes = 0;
  EXPECT_THROW(validate_job(job), std::invalid_argument);
}

TEST(JobRecord, RejectsNegativeRequests) {
  auto job = valid_job();
  job.bb_gb = -1;
  EXPECT_THROW(validate_job(job), std::invalid_argument);
  job = valid_job();
  job.ssd_per_node_gb = -1;
  EXPECT_THROW(validate_job(job), std::invalid_argument);
}

TEST(JobRecord, RejectsSelfDependency) {
  auto job = valid_job();
  job.dependencies = {job.id};
  EXPECT_THROW(validate_job(job), std::invalid_argument);
}

TEST(JobRecord, HelperPredicates) {
  auto job = valid_job();
  EXPECT_TRUE(job.requests_bb());
  EXPECT_FALSE(job.requests_ssd());
  EXPECT_DOUBLE_EQ(job.node_seconds(), 400.0);
  job.bb_gb = 0;
  EXPECT_FALSE(job.requests_bb());
}

}  // namespace
}  // namespace bbsched
