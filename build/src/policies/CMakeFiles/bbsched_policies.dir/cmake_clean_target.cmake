file(REMOVE_RECURSE
  "libbbsched_policies.a"
)
