#include "core/exhaustive.hpp"

#include <gtest/gtest.h>

#include "core/multi_resource_problem.hpp"

namespace bbsched {
namespace {

MultiResourceProblem table1_problem() {
  const std::vector<double> nodes{80, 10, 40, 10, 20};
  const std::vector<double> bb{20, 85, 5, 0, 0};
  return MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
}

TEST(Exhaustive, Table1ParetoSetMatchesPaper) {
  // Footnote 1: the Pareto set of the illustrative example contains
  // Solution 2 (J1+J5: 100 % nodes, 20 % BB) and Solution 3 (J2-J5: 80 %
  // nodes, 90 % BB).  Solutions such as J1+J4 (90 %, 20 %) are dominated.
  const auto problem = table1_problem();
  const auto result = ExhaustiveSolver().solve(problem);
  bool found_s2 = false, found_s3 = false;
  for (const auto& c : result.pareto_set) {
    if (c.genes == Genes{1, 0, 0, 0, 1}) found_s2 = true;
    if (c.genes == Genes{0, 1, 1, 1, 1}) found_s3 = true;
    EXPECT_NE(c.genes, (Genes{1, 0, 0, 1, 0}))
        << "dominated naive solution must not be on the front";
  }
  EXPECT_TRUE(found_s2);
  EXPECT_TRUE(found_s3);
}

TEST(Exhaustive, FrontIsMutuallyNonDominated) {
  const auto problem = table1_problem();
  const auto result = ExhaustiveSolver().solve(problem);
  for (std::size_t i = 0; i < result.pareto_set.size(); ++i) {
    for (std::size_t j = 0; j < result.pareto_set.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(result.pareto_set[i].objectives,
                             result.pareto_set[j].objectives));
    }
  }
}

TEST(Exhaustive, CountsFeasibleSelections) {
  // Two jobs, second never fits: feasible selections are {}, {0}.
  const std::vector<double> nodes{1, 100};
  const std::vector<double> bb{0, 0};
  const auto problem = MultiResourceProblem::cpu_bb(nodes, bb, 10, 10);
  const auto result = ExhaustiveSolver().solve(problem);
  EXPECT_EQ(result.total_count, 4u);
  EXPECT_EQ(result.feasible_count, 2u);
}

TEST(Exhaustive, RespectsPinnedGenes) {
  auto problem = table1_problem();
  problem.pin(1);  // J2 forced
  const auto result = ExhaustiveSolver().solve(problem);
  ASSERT_FALSE(result.pareto_set.empty());
  for (const auto& c : result.pareto_set) {
    EXPECT_EQ(c.genes[1], 1);
  }
  // Enumeration only covers the free positions.
  EXPECT_EQ(result.total_count, 16u);
}

TEST(Exhaustive, WindowCapEnforced) {
  const std::vector<double> demand(12, 1.0);
  const auto problem =
      MultiResourceProblem::cpu_bb(demand, demand, 100, 100);
  EXPECT_THROW(ExhaustiveSolver(11).solve(problem), std::invalid_argument);
  EXPECT_NO_THROW(ExhaustiveSolver(12).solve(problem));
}

TEST(Exhaustive, EmptyFrontOnlyWhenNothingFeasible) {
  // Even a fully saturated machine admits the empty selection, which is the
  // single Pareto point at the origin.
  const std::vector<double> nodes{5};
  const std::vector<double> bb{5};
  const auto problem = MultiResourceProblem::cpu_bb(nodes, bb, 1, 1);
  const auto result = ExhaustiveSolver().solve(problem);
  ASSERT_EQ(result.pareto_set.size(), 1u);
  EXPECT_EQ(result.pareto_set[0].genes, Genes{0});
}

}  // namespace
}  // namespace bbsched
