// stats.hpp — small numeric helpers shared by metrics and the solver, plus
// the streaming building blocks of the incremental metrics engine
// (DESIGN.md §11): an order-invariant exact summator, a mergeable quantile
// sketch and a time-weighted step-function integrator.  All of the streaming
// types are deterministic and mergeable — feeding the same multiset of
// samples in any order, or merging partial accumulators in any grouping,
// produces bit-identical results — which is what lets sharded campaigns
// combine per-shard metrics without drift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace bbsched {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev(std::span<const double> values);

/// p-quantile in [0,1] with linear interpolation; 0 for an empty span.
/// The input does not need to be sorted.  Selects the interpolation pair via
/// std::nth_element (two partial selections) rather than a full sort.
double quantile(std::span<const double> values, double p);

/// Streaming accumulator for count/mean/min/max/sum plus Welford
/// mean/variance — no samples stored.  merge() combines two accumulators via
/// Chan's parallel update, so partial statistics from shards can be folded
/// together.  Note: unlike ExactSum, floating-point variance here is subject
/// to the usual last-ulp order sensitivity; it is a diagnostic, not part of
/// the byte-identity surface.
class RunningStats {
 public:
  void add(double v);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Sample variance (Welford/Chan); 0 for fewer than two values.
  double variance() const;
  /// Sample standard deviation; 0 for fewer than two values.
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  double welford_mean_ = 0;  ///< running mean (Welford)
  double m2_ = 0;            ///< sum of squared deviations from the mean
};

/// Exact floating-point summation (Shewchuk/"fsum"): maintains the running
/// sum as a list of non-overlapping partials whose exact mathematical sum is
/// the exact sum of everything added so far.  round() returns that exact sum
/// correctly rounded to double — a value that does not depend on the order
/// values were added in, nor on how partial sums were grouped before
/// merge().  This is the property the incremental schedule metrics lean on:
/// shuffled event orders and arbitrary shard splits produce byte-identical
/// aggregates.
///
/// Memory is bounded by the number of distinct binade magnitudes in flight
/// (tens of doubles in practice, never O(samples)).  Inputs must be finite.
class ExactSum {
 public:
  void add(double value);
  /// Fold another exact sum in; exact, associative and commutative.
  void merge(const ExactSum& other);
  /// The exact sum, correctly rounded to the nearest double (ties to even).
  double round() const;
  void reset() { partials_.clear(); }
  /// Partials currently held (memory diagnostic; bounded, not O(samples)).
  std::size_t partial_count() const { return partials_.size(); }

 private:
  std::vector<double> partials_;  ///< non-overlapping, increasing magnitude
};

/// Mergeable streaming quantile sketch over non-negative samples, backed by
/// logarithmically spaced fixed-edge buckets (DDSketch-style): bucket i
/// covers (floor * gamma^(i-1), floor * gamma^i] with gamma chosen so any
/// reported quantile of a positive value carries relative error <=
/// `relative_error`; values in [0, floor] land in an exact "low" bucket
/// whose absolute error is bounded by `floor`.  Counts are integers and the
/// exact min/max are tracked, so the sketch is fully deterministic: sample
/// order never matters and merge() is exactly associative — the properties
/// the incremental metrics engine needs for sharded campaigns.
///
/// Memory is fixed at construction (bucket_count() counters), independent of
/// how many samples are added — the O(1)-in-jobs guarantee of DESIGN.md §11.
class QuantileSketch {
 public:
  /// `relative_error` in (0, 1): quantile estimates of values > floor are
  /// within v * relative_error of an exact order statistic.  `floor` /
  /// `cap`: resolvable positive range; values outside are clamped into the
  /// boundary buckets (min/max remain exact).
  explicit QuantileSketch(double relative_error = kDefaultRelativeError,
                          double floor = kDefaultFloor,
                          double cap = kDefaultCap);

  /// Defaults sized for schedule wait times in seconds: 1 ms resolution
  /// floor, 10^9 s cap, 1 % relative error (~1590 buckets, ~13 KB).
  static constexpr double kDefaultRelativeError = 0.01;
  static constexpr double kDefaultFloor = 1e-3;
  static constexpr double kDefaultCap = 1e9;

  /// Add one sample; negative values are clamped to 0 (schedule metrics
  /// never produce them; clamping keeps the sketch total consistent).
  void add(double value);
  /// Fold `other` in.  Throws std::invalid_argument unless both sketches
  /// were built with identical parameters.
  void merge(const QuantileSketch& other);

  /// p-quantile estimate in [0,1]; 0 when empty.  Uses the same
  /// rank = p * (count - 1) convention as quantile(); the result is clamped
  /// into [min(), max()], so p=0 / p=1 are exact.
  double quantile(double p) const;

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }  ///< exact
  double max() const { return count_ ? max_ : 0.0; }  ///< exact
  double relative_error() const { return relative_error_; }
  std::size_t bucket_count() const { return counts_.size(); }
  /// Fixed footprint of the bucket array in bytes (O(1) in samples).
  std::size_t memory_bytes() const {
    return counts_.capacity() * sizeof(std::uint64_t) + sizeof(*this);
  }

 private:
  std::size_t bucket_of(double value) const;
  double bucket_estimate(std::size_t bucket) const;

  double relative_error_;
  double floor_;
  double cap_;
  double gamma_;      ///< (1 + e) / (1 - e)
  double log_gamma_;  ///< cached std::log(gamma_)
  std::vector<std::uint64_t> counts_;  ///< [low, log buckets..., overflow]
  std::uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Streaming time-weighted integral of a right-continuous step function,
/// clipped to a fixed measurement interval [begin, end]: feed (time, value)
/// change-points in non-decreasing time order and read the integral (or the
/// time average) at any point.  The campaign monitor uses it for average-RSS
/// and events/sec accounting; the simulator's occupancy change-points feed
/// the same shape.  The last value extends to `end`.
class TimeWeightedIntegrator {
 public:
  TimeWeightedIntegrator(double begin, double end);

  /// Step to `value` at time `t`.  `t` must be >= the previous sample time
  /// (throws std::invalid_argument otherwise); samples outside [begin, end]
  /// contribute only their clipped overlap.
  void sample(double t, double value);

  /// Integral of the step function over [begin, end] so far (last value
  /// extended to `end`); 0 before any sample or on an empty interval.
  double integral() const;
  /// integral() / (end - begin); 0 on an empty interval.
  double time_average() const;

  std::size_t samples() const { return samples_; }

 private:
  double begin_;
  double end_;
  double last_time_ = 0;
  double last_value_ = 0;
  std::size_t samples_ = 0;
  ExactSum area_;  ///< closed segments, exact so shards cannot drift
};

/// Fixed-edge histogram: bin i covers [edges[i], edges[i+1]); the final bin
/// additionally absorbs values == edges.back().  Values outside the range are
/// counted in underflow/overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void add(double value, double weight = 1.0);

  std::size_t num_bins() const { return counts_.size(); }
  double bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const { return edges_.at(i); }
  double bin_hi(std::size_t i) const { return edges_.at(i + 1); }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  double total_weight() const;

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double underflow_ = 0;
  double overflow_ = 0;
};

}  // namespace bbsched
