// machine_state.hpp — runtime free-resource accounting for one simulated
// machine.
//
// The paper's model treats compute nodes as fungible (no topology) and the
// shared burst buffer as a single capacity, so allocation is counter
// arithmetic.  The §5 case study splits nodes into two SSD tiers; an
// allocation then carries a per-tier node split chosen by the scheduling
// policy (SsdSchedulingProblem::assign) and the state tracks each tier's
// free count.
#pragma once

#include <unordered_map>

#include "core/ssd_problem.hpp"
#include "workload/workload.hpp"

namespace bbsched {

/// Snapshot of free capacity visible to one scheduling decision.
struct FreeState {
  double nodes = 0;        ///< total free nodes (sum of tiers when SSD on)
  double bb_gb = 0;        ///< free schedulable burst buffer
  bool ssd_enabled = false;
  double small_nodes = 0;  ///< free nodes of the small SSD tier
  double large_nodes = 0;  ///< free nodes of the large SSD tier
  double small_ssd_gb = 0; ///< per-node SSD volume of the small tier
  double large_ssd_gb = 0;
};

/// Per-job node-tier allocation; for non-SSD machines everything is
/// accounted in `small_nodes` ("the only tier").
struct Allocation {
  NodeCount small_nodes = 0;
  NodeCount large_nodes = 0;
  GigaBytes bb_gb = 0;

  NodeCount total_nodes() const { return small_nodes + large_nodes; }
};

/// Mutable free-capacity tracker.  allocate/release must balance; the class
/// asserts capacity invariants on every transition.
class MachineState {
 public:
  explicit MachineState(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  FreeState free_state() const;

  NodeCount free_nodes() const { return free_small_ + free_large_; }
  GigaBytes free_bb() const { return free_bb_; }

  /// Whether an allocation fits the current free capacity.
  bool fits(const Allocation& alloc) const;

  /// Whether a plain (tier-agnostic) demand fits; for SSD machines the
  /// per-node SSD request decides which tiers are usable.
  bool fits_job(const JobRecord& job) const;

  /// Build the tier split for a job the way the §5 policy assigns single
  /// jobs: large-only jobs take large-tier nodes; others prefer the small
  /// tier and spill onto the large tier.  Returns false if the job does not
  /// fit.  For non-SSD machines all nodes land in small_nodes.
  bool plan_single(const JobRecord& job, Allocation& out) const;

  /// Commit an allocation for `job_id`.  Throws std::logic_error if it does
  /// not fit or the id is already allocated.
  void allocate(JobId job_id, const Allocation& alloc);

  /// Release the allocation of `job_id`.  Throws std::logic_error when the
  /// id has no allocation.
  void release(JobId job_id);

  /// The allocation currently held by a job (must exist).
  const Allocation& allocation_of(JobId job_id) const;

  std::size_t num_running() const { return allocations_.size(); }

 private:
  MachineConfig config_;
  NodeCount free_small_ = 0;  ///< on non-SSD machines: all nodes
  NodeCount free_large_ = 0;
  GigaBytes free_bb_ = 0;
  std::unordered_map<JobId, Allocation> allocations_;
};

}  // namespace bbsched
