#include "core/scalar_ga.hpp"

#include <gtest/gtest.h>

#include "core/exhaustive.hpp"
#include "core/multi_resource_problem.hpp"

namespace bbsched {
namespace {

MultiResourceProblem table1_problem() {
  const std::vector<double> nodes{80, 10, 40, 10, 20};
  const std::vector<double> bb{20, 85, 5, 0, 0};
  return MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
}

GaParams small_params() {
  GaParams p;
  p.generations = 150;
  p.population_size = 16;
  p.mutation_rate = 0.01;
  p.seed = 3;
  return p;
}

TEST(ScalarGa, ConstrainedCpuFindsFullNodeUtilization) {
  // Table 1: maximizing node utilization alone finds J1+J5 (100 %).
  const auto problem = table1_problem();
  const ScalarGaSolver solver(small_params(), {1.0, 0.0});
  const auto result = solver.solve(problem);
  EXPECT_DOUBLE_EQ(result.best.objectives[0], 1.0);
}

TEST(ScalarGa, ConstrainedBbFindsMaxBbUtilization) {
  const auto problem = table1_problem();
  const ScalarGaSolver solver(small_params(), {0.0, 1.0});
  const auto result = solver.solve(problem);
  // J2+J3 (+J4/J5 free on BB) reaches 90 TB of 100 TB.
  EXPECT_DOUBLE_EQ(result.best.objectives[1], 0.90);
}

TEST(ScalarGa, WeightedCpuMatchesPaperChoice) {
  // §1: the 80/20 weighted method selects J1+J5 — node 100 %, BB 20 %.
  const auto problem = table1_problem();
  const ScalarGaSolver solver(small_params(), {0.8, 0.2});
  const auto result = solver.solve(problem);
  EXPECT_EQ(result.best.genes, (Genes{1, 0, 0, 0, 1}));
}

TEST(ScalarGa, BestIsFeasible) {
  const auto problem = table1_problem();
  const ScalarGaSolver solver(small_params(), {0.5, 0.5});
  const auto result = solver.solve(problem);
  EXPECT_TRUE(problem.feasible(result.best.genes));
}

TEST(ScalarGa, FitnessMatchesWeights) {
  const auto problem = table1_problem();
  const ScalarGaSolver solver(small_params(), {0.25, 0.75});
  const auto result = solver.solve(problem);
  EXPECT_DOUBLE_EQ(result.fitness, 0.25 * result.best.objectives[0] +
                                       0.75 * result.best.objectives[1]);
}

TEST(ScalarGa, DeterministicUnderSameSeed) {
  const auto problem = table1_problem();
  const ScalarGaSolver solver(small_params(), {0.5, 0.5});
  EXPECT_EQ(solver.solve(problem).best.genes,
            solver.solve(problem).best.genes);
}

TEST(ScalarGa, RespectsPins) {
  auto problem = table1_problem();
  problem.pin(0);  // force J1, which conflicts with the BB-heavy J2
  const ScalarGaSolver solver(small_params(), {0.0, 1.0});
  const auto result = solver.solve(problem);
  EXPECT_EQ(result.best.genes[0], 1);
  EXPECT_TRUE(problem.feasible(result.best.genes));
}

TEST(ScalarGa, WeightCountMustMatchObjectives) {
  const auto problem = table1_problem();
  const ScalarGaSolver solver(small_params(), {1.0});
  EXPECT_THROW(solver.solve(problem), std::invalid_argument);
}

TEST(ScalarGa, EmptyWeightsRejected) {
  EXPECT_THROW(ScalarGaSolver(small_params(), {}), std::invalid_argument);
}

// Property sweep: the scalarized GA must match the exhaustive optimum of the
// weighted objective on small random windows.
class ScalarVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarVsExhaustive, NearOptimalOnRandomWindows) {
  Rng rng(GetParam() + 1000);
  const std::size_t w = 10;
  std::vector<double> nodes(w), bb(w);
  for (std::size_t i = 0; i < w; ++i) {
    nodes[i] = static_cast<double>(rng.uniform_int(1, 40));
    bb[i] = rng.bernoulli(0.6) ? rng.uniform(0.0, 60.0) : 0.0;
  }
  const auto problem = MultiResourceProblem::cpu_bb(nodes, bb, 100, 100);
  const std::vector<double> weights{0.5, 0.5};

  // Exhaustive optimum of the scalarized objective.
  double best = 0;
  const auto truth = ExhaustiveSolver().solve(problem);
  for (const auto& c : truth.pareto_set) {
    best = std::max(best,
                    weights[0] * c.objectives[0] + weights[1] * c.objectives[1]);
  }

  GaParams params = small_params();
  params.generations = 600;
  params.population_size = 24;
  params.seed = GetParam() * 13 + 7;
  const auto approx = ScalarGaSolver(params, weights).solve(problem);
  EXPECT_GE(approx.fitness, best - 0.03)
      << "scalar GA fell more than 3 utilization points short";
}

INSTANTIATE_TEST_SUITE_P(RandomWindows, ScalarVsExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace bbsched
