// problem.hpp — the multi-objective optimization problem interface (§3.2.1).
//
// A MooProblem maps a binary selection vector over the scheduling window to a
// vector of objective values (all maximized) and a feasibility verdict
// against the machine's free-capacity constraints.  The solver layer (ga.hpp,
// exhaustive.hpp, scalar_ga.hpp) is written purely against this interface,
// which is what makes BBSched "extensible to embrace emerging resources":
// adding a resource means adding a problem subclass, not touching the solver.
//
// Objective convention: every objective is a *utilization fraction* of the
// currently free capacity, in [0, 1] for feasible selections (the wasted-SSD
// objective of §5 is a negated fraction, hence <= 0).  Utilization fractions
// rather than raw sums keep the weighted methods' scalarization and the
// decision rules' "2x the loss" comparisons dimensionless, exactly as the
// paper compares node-utilization percentages against burst-buffer
// utilization percentages.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/chromosome.hpp"

namespace bbsched {

/// Abstract MOO problem over a fixed-size binary decision vector.
class MooProblem {
 public:
  virtual ~MooProblem() = default;

  /// Window size w: length of the decision vector.
  virtual std::size_t num_vars() const = 0;

  /// Number of objectives (2 for the CPU+BB problem, 4 with local SSD).
  virtual std::size_t num_objectives() const = 0;

  /// Compute the objective vector of a selection.  `objectives` must have
  /// num_objectives() entries.  Defined for feasible selections; callers keep
  /// populations feasible via repair().
  virtual void evaluate(std::span<const std::uint8_t> genes,
                        std::span<double> objectives) const = 0;

  /// Whether a selection satisfies every capacity constraint.
  virtual bool feasible(std::span<const std::uint8_t> genes) const = 0;

  /// Indices of genes pinned to 1 (jobs force-included by the starvation
  /// bound, §3.1).  Pinned genes survive repair and mutation.
  std::span<const std::size_t> pinned() const { return pinned_; }

  /// Pin a gene to 1.  Callers must ensure the pinned set by itself is
  /// feasible; pin() ignores duplicates.
  void pin(std::size_t index);

  /// Make a selection feasible by clearing randomly chosen non-pinned set
  /// bits until every constraint holds.  The paper does not specify the
  /// handling of capacity-violating chromosomes; repair keeps the whole
  /// population feasible so the Pareto bookkeeping of §3.2.2 applies
  /// unchanged (see DESIGN.md §5).  Returns true iff the selection was
  /// infeasible on entry and genes had to be cleared — the solvers count
  /// these as the feasibility-repair convergence signal (DESIGN.md §11).
  virtual bool repair(Genes& genes, Rng& rng) const;

  /// Force pinned genes to 1 (used after random initialization / mutation).
  void apply_pins(Genes& genes) const;

  /// Evaluate into a Chromosome's cached objective storage.
  void evaluate_into(Chromosome& c) const;

 protected:
  bool is_pinned(std::size_t index) const;

 private:
  std::vector<std::size_t> pinned_;
};

}  // namespace bbsched
