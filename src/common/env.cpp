#include "common/env.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace bbsched {

std::int64_t env_int(const char* name, std::int64_t def) {
  const char* value = std::getenv(name);
  if (!value || !*value) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    log_warn("env", "ignoring malformed value", {{"name", name}, {"value", value}});
    return def;
  }
  return parsed;
}

double env_double(const char* name, double def) {
  const char* value = std::getenv(name);
  if (!value || !*value) return def;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    log_warn("env", "ignoring malformed value", {{"name", name}, {"value", value}});
    return def;
  }
  return parsed;
}

std::string env_string(const char* name, const std::string& def) {
  const char* value = std::getenv(name);
  return (value && *value) ? std::string(value) : def;
}

}  // namespace bbsched
