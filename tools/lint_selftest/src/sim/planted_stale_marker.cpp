// Self-test fixture: a det-ok marker with no violation on its line.  The
// lint must report it as stale.  Never compiled.

int planted_stale_marker() {
  return 42;  // det-ok: wall-clock (nothing here needs suppressing)
}
