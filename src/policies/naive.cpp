#include "policies/naive.hpp"

#include <algorithm>

namespace bbsched {

namespace {

/// Working free counters for in-order admission.
struct Free {
  double small = 0, large = 0, bb = 0;
};

/// Plan a job against the counters with the §5 tier preference; returns
/// false when it does not fit.
bool admit(const JobRecord& job, const FreeState& machine, Free& free,
           Allocation& alloc) {
  alloc = Allocation{};
  alloc.bb_gb = job.bb_gb;
  if (job.bb_gb > free.bb) return false;
  if (!machine.ssd_enabled) {
    if (static_cast<double>(job.nodes) > free.small) return false;
    alloc.small_nodes = job.nodes;
  } else {
    if (job.ssd_per_node_gb > machine.large_ssd_gb) return false;
    if (job.ssd_per_node_gb > machine.small_ssd_gb) {
      if (static_cast<double>(job.nodes) > free.large) return false;
      alloc.large_nodes = job.nodes;
    } else {
      if (static_cast<double>(job.nodes) > free.small + free.large) {
        return false;
      }
      alloc.small_nodes = static_cast<NodeCount>(
          std::min(static_cast<double>(job.nodes), free.small));
      alloc.large_nodes = job.nodes - alloc.small_nodes;
    }
  }
  free.small -= static_cast<double>(alloc.small_nodes);
  free.large -= static_cast<double>(alloc.large_nodes);
  free.bb -= alloc.bb_gb;
  return true;
}

}  // namespace

WindowDecision NaivePolicy::select(const WindowContext& context) const {
  WindowDecision decision;
  Free free{context.free.ssd_enabled ? context.free.small_nodes
                                     : context.free.nodes,
            context.free.ssd_enabled ? context.free.large_nodes : 0.0,
            context.free.bb_gb};
  const bool ssd = context.free.ssd_enabled;

  // Starvation-pinned jobs are admitted first regardless of queue position.
  auto is_pinned = [&](std::size_t pos) {
    return std::find(context.pinned.begin(), context.pinned.end(), pos) !=
           context.pinned.end();
  };
  for (std::size_t pos : context.pinned) {
    Allocation alloc;
    if (admit(*context.window[pos], context.free, free, alloc)) {
      decision.selected.push_back(pos);
      if (ssd) decision.allocations.push_back(alloc);
    }
  }

  // Strict in-order admission: the first non-fitting job blocks the queue.
  for (std::size_t pos = 0; pos < context.window.size(); ++pos) {
    if (is_pinned(pos)) continue;
    Allocation alloc;
    if (!admit(*context.window[pos], context.free, free, alloc)) break;
    decision.selected.push_back(pos);
    if (ssd) decision.allocations.push_back(alloc);
  }
  std::sort(decision.selected.begin(), decision.selected.end());
  if (ssd) {
    // Re-derive allocations in selected order (sort above may have permuted
    // the pairing).  Re-admission against fresh counters is deterministic.
    decision.allocations.clear();
    Free redo{context.free.small_nodes, context.free.large_nodes,
              context.free.bb_gb};
    for (std::size_t pos : decision.selected) {
      Allocation alloc;
      const bool ok = admit(*context.window[pos], context.free, redo, alloc);
      (void)ok;
      decision.allocations.push_back(alloc);
    }
  }
  return decision;
}

}  // namespace bbsched
