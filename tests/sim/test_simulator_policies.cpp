// Parameterized integration sweep: every §4.3 method drives the simulator
// over a contended workload, and the runs must uphold the scheduling
// invariants regardless of how the method selects jobs.
#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/schedule_metrics.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/synthetic.hpp"

namespace bbsched {
namespace {

Workload contended_workload() {
  // Scaled Theta with S2-style BB expansion: both resources contend.
  auto model = theta_model(160, 0.25);
  const Workload original = generate_workload(model, 1234);
  BbExpansionParams s2;
  s2.target_fraction = 0.75;
  s2.pool_threshold = tb(5) * 0.25;
  s2.pool = sample_bb_pool(model.bb_pareto_alpha, model.bb_min, model.bb_max,
                           s2.pool_threshold, 512, 5);
  return expand_bb_requests(original, s2, 99);
}

Workload ssd_workload() {
  auto model = theta_model(120, 0.25);
  const Workload original = generate_workload(model, 77);
  SsdExpansionParams params;
  params.small_request_fraction = 0.5;
  return expand_ssd_requests(original, params, 3);
}

class AllMethodsSim : public ::testing::TestWithParam<std::string> {};

SimResult run_method(const Workload& workload, const std::string& method) {
  SimConfig config;
  config.window_size = 10;
  GaParams ga;
  ga.generations = 40;
  ga.population_size = 10;
  const auto base = make_base_scheduler("WFP");
  const auto policy = make_policy(method, ga);
  return simulate(workload, config, *base, *policy);
}

void check_invariants(const Workload& workload, const SimResult& result) {
  const MachineConfig& machine = workload.machine;
  ASSERT_EQ(result.outcomes.size(), workload.jobs.size());
  // Per-job sanity.
  for (const auto& o : result.outcomes) {
    EXPECT_GE(o.start, o.submit) << "job " << o.id;
    EXPECT_DOUBLE_EQ(o.end, o.start + o.runtime);
    EXPECT_EQ(o.small_tier_nodes + o.large_tier_nodes, o.nodes);
  }
  // Instantaneous capacity on every resource dimension.
  struct Event {
    Time t;
    double nodes, bb, small_nodes, large_nodes;
  };
  std::vector<Event> events;
  for (const auto& o : result.outcomes) {
    const double sn = static_cast<double>(o.small_tier_nodes);
    const double ln = static_cast<double>(o.large_tier_nodes);
    events.push_back({o.start, static_cast<double>(o.nodes), o.bb_gb, sn, ln});
    events.push_back(
        {o.end, -static_cast<double>(o.nodes), -o.bb_gb, -sn, -ln});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.nodes < b.nodes;  // releases first at ties
  });
  double nodes = 0, bb = 0, small = 0, large = 0;
  for (const auto& e : events) {
    nodes += e.nodes;
    bb += e.bb;
    small += e.small_nodes;
    large += e.large_nodes;
    EXPECT_LE(nodes, static_cast<double>(machine.nodes) + 1e-9);
    EXPECT_LE(bb, machine.schedulable_bb_gb() + 1e-9);
    if (machine.has_local_ssd()) {
      EXPECT_LE(small, static_cast<double>(machine.small_ssd_nodes) + 1e-9);
      EXPECT_LE(large, static_cast<double>(machine.large_ssd_nodes) + 1e-9);
    }
  }
}

TEST_P(AllMethodsSim, InvariantsOnContendedWorkload) {
  const Workload workload = contended_workload();
  const SimResult result = run_method(workload, GetParam());
  check_invariants(workload, result);
  // Every scheduling method must complete every job.
  EXPECT_EQ(result.decisions.policy_starts + result.decisions.backfill_starts,
            workload.jobs.size());
}

TEST_P(AllMethodsSim, MetricsComputable) {
  const Workload workload = contended_workload();
  const SimResult result = run_method(workload, GetParam());
  const ScheduleMetrics m = compute_metrics(result);
  EXPECT_GT(m.node_usage, 0.0);
  EXPECT_LE(m.node_usage, 1.0 + 1e-9);
  EXPECT_GE(m.bb_usage, 0.0);
  EXPECT_LE(m.bb_usage, 1.0 + 1e-9);
  EXPECT_GE(m.avg_slowdown, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    StandardMethods, AllMethodsSim,
    ::testing::Values("Baseline", "Weighted", "Weighted_CPU", "Weighted_BB",
                      "Constrained_CPU", "Constrained_BB", "Bin_Packing",
                      "BBSched"));

class SsdMethodsSim : public ::testing::TestWithParam<std::string> {};

TEST_P(SsdMethodsSim, InvariantsOnSsdMachine) {
  const Workload workload = ssd_workload();
  ASSERT_TRUE(workload.machine.has_local_ssd());
  const SimResult result = run_method(workload, GetParam());
  check_invariants(workload, result);
  // Jobs with large SSD requests must only occupy large-tier nodes.
  for (const auto& o : result.outcomes) {
    if (o.ssd_per_node_gb > workload.machine.small_ssd_gb) {
      EXPECT_EQ(o.small_tier_nodes, 0)
          << "job " << o.id << " needs the 256 GB tier";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SsdMethods, SsdMethodsSim,
    ::testing::Values("Baseline", "Weighted", "Constrained_CPU",
                      "Constrained_BB", "Constrained_SSD", "Bin_Packing",
                      "BBSched"));

}  // namespace
}  // namespace bbsched
