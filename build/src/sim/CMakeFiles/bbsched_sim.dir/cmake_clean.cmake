file(REMOVE_RECURSE
  "CMakeFiles/bbsched_sim.dir/base_scheduler.cpp.o"
  "CMakeFiles/bbsched_sim.dir/base_scheduler.cpp.o.d"
  "CMakeFiles/bbsched_sim.dir/easy_backfill.cpp.o"
  "CMakeFiles/bbsched_sim.dir/easy_backfill.cpp.o.d"
  "CMakeFiles/bbsched_sim.dir/machine_state.cpp.o"
  "CMakeFiles/bbsched_sim.dir/machine_state.cpp.o.d"
  "CMakeFiles/bbsched_sim.dir/simulator.cpp.o"
  "CMakeFiles/bbsched_sim.dir/simulator.cpp.o.d"
  "libbbsched_sim.a"
  "libbbsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
