// pareto.hpp — dominance relations, non-dominated filtering and Pareto-front
// quality metrics (generational distance, hypervolume).
//
// All objectives are maximized.  "u dominates v" means u is at least as good
// in every objective and strictly better in at least one (footnote 1 of the
// paper).  Generational distance (§3.2.3) measures the average Euclidean
// distance from each solver solution to its nearest true-Pareto point.
#pragma once

#include <span>
#include <vector>

#include "core/chromosome.hpp"

namespace bbsched {

/// Objective vectors of a set of solutions.
using Front = std::vector<std::vector<double>>;

/// True iff `a` dominates `b` (maximization).  Spans must be equal length.
bool dominates(std::span<const double> a, std::span<const double> b);

/// Indices of the non-dominated members of `points`.  Duplicated objective
/// vectors are all retained (none dominates the other).  O(n^2 * d).
std::vector<std::size_t> non_dominated_indices(const Front& points);

/// The non-dominated subset of a population, in input order.  Chromosomes
/// must carry evaluated objectives.
std::vector<Chromosome> pareto_front(std::span<const Chromosome> population);

/// Generational distance of `solutions` against `truth` (§3.2.3):
///   GD(S) = avg_{u in S} min_{v in S*} dist(u, v).
/// Returns 0 for an empty solution set; truth must be non-empty.
double generational_distance(const Front& solutions, const Front& truth);

/// Hypervolume dominated by `front` relative to `reference` (which must be
/// dominated by every front point), for 2-objective fronts.  Used by the
/// ablation benches as a second solver-quality metric.
double hypervolume_2d(const Front& front, std::span<const double> reference);

/// Sort a 2-objective front by the first objective ascending (helper for
/// printing Pareto sets and for hypervolume).
Front sorted_by_first_objective(Front front);

}  // namespace bbsched
