// Property sweep: any generated workload must survive a CSV round trip
// bit-for-bit in every scheduling-relevant field, across machine models,
// scales and synthetic expansions.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/generator.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_io.hpp"

namespace bbsched {
namespace {

struct Case {
  const char* name;
  bool theta;
  double scale;
  bool expand_bb;
  bool expand_ssd;
};

class TraceRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(TraceRoundTrip, CsvPreservesEveryField) {
  const Case& c = GetParam();
  const auto params = c.theta ? theta_model(150, c.scale)
                              : cori_model(150, c.scale);
  Workload workload = generate_workload(params, 31);
  if (c.expand_bb) {
    BbExpansionParams expansion;
    expansion.target_fraction = 0.6;
    expansion.pool_threshold = tb(5) * c.scale;
    expansion.pool = sample_bb_pool(params.bb_pareto_alpha, params.bb_min,
                                    params.bb_max, expansion.pool_threshold,
                                    256, 3);
    workload = expand_bb_requests(workload, expansion, 5);
  }
  if (c.expand_ssd) {
    workload = expand_ssd_requests(workload, SsdExpansionParams{}, 7);
  }

  std::ostringstream out;
  write_trace_csv(workload, out);
  std::istringstream in(out.str());
  const Workload reread =
      read_trace_csv(in, workload.name, workload.machine);

  ASSERT_EQ(reread.jobs.size(), workload.jobs.size());
  for (std::size_t i = 0; i < workload.jobs.size(); ++i) {
    const auto& a = workload.jobs[i];
    const auto& b = reread.jobs[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.nodes, b.nodes);
    // Times and capacities are doubles serialized with operator<<; the
    // default 6-significant-digit formatting would lose precision, so the
    // round trip tolerates only relative error below 1e-5.
    EXPECT_NEAR(a.submit_time, b.submit_time,
                1e-5 * std::max(1.0, a.submit_time));
    EXPECT_NEAR(a.runtime, b.runtime, 1e-5 * a.runtime);
    EXPECT_NEAR(a.walltime, b.walltime, 1e-5 * a.walltime);
    EXPECT_NEAR(a.bb_gb, b.bb_gb, 1e-5 * std::max(1.0, a.bb_gb));
    EXPECT_NEAR(a.ssd_per_node_gb, b.ssd_per_node_gb,
                1e-5 * std::max(1.0, a.ssd_per_node_gb));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, TraceRoundTrip,
    ::testing::Values(Case{"cori_full", false, 1.0, false, false},
                      Case{"cori_scaled_bb", false, 0.25, true, false},
                      Case{"theta_full", true, 1.0, false, false},
                      Case{"theta_scaled_bb", true, 0.5, true, false},
                      Case{"theta_ssd", true, 0.5, true, true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace bbsched
