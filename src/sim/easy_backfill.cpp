#include "sim/easy_backfill.hpp"

#include <algorithm>

namespace bbsched {

namespace {

/// Raw free counters the planner advances hypothetically.
struct Free {
  NodeCount small = 0;
  NodeCount large = 0;
  GigaBytes bb = 0;
};

/// Mirror of MachineState::plan_single against hypothetical counters:
/// large-only jobs take the large tier; others prefer the small tier and
/// spill.  Returns false when the job does not fit `free`.
bool plan_against(const JobRecord& job, const MachineConfig& config,
                  const Free& free, Allocation& out) {
  out = Allocation{};
  out.bb_gb = job.bb_gb;
  if (out.bb_gb > free.bb) return false;
  if (!config.has_local_ssd()) {
    if (job.nodes > free.small) return false;
    out.small_nodes = job.nodes;
    return true;
  }
  if (job.ssd_per_node_gb > config.large_ssd_gb) return false;
  if (job.ssd_per_node_gb > config.small_ssd_gb) {
    if (job.nodes > free.large) return false;
    out.large_nodes = job.nodes;
    return true;
  }
  if (job.nodes > free.small + free.large) return false;
  out.small_nodes = std::min(job.nodes, free.small);
  out.large_nodes = job.nodes - out.small_nodes;
  return true;
}

void take(Free& free, const Allocation& alloc) {
  free.small -= alloc.small_nodes;
  free.large -= alloc.large_nodes;
  free.bb -= alloc.bb_gb;
}

void give(Free& free, const Allocation& alloc) {
  free.small += alloc.small_nodes;
  free.large += alloc.large_nodes;
  free.bb += alloc.bb_gb;
}

/// Free counters at `now`, shaped exactly like the legacy event walk.
Free initial_free(const MachineState& machine) {
  const FreeState fs = machine.free_state();
  return {static_cast<NodeCount>(fs.ssd_enabled ? fs.small_nodes : fs.nodes),
          static_cast<NodeCount>(fs.ssd_enabled ? fs.large_nodes : 0.0),
          fs.bb_gb};
}

/// The head's reservation: shadow time plus the per-resource surplus there.
struct Reservation {
  Time shadow = kNeverFits;
  Free extra{};
  bool have = false;
};

/// Scan candidates in priority order against the current free capacity and
/// the head's reservation; shared by the legacy and planner paths (their
/// results differ only in how the Reservation was computed — and it never
/// does, see tests/sim/test_backfill_invariants.cpp).
void scan_candidates(const MachineConfig& config, Free free, Reservation res,
                     std::span<const BackfillCandidate> candidates, Time now,
                     BackfillResult& result) {
  for (const auto& candidate : candidates) {
    Allocation alloc;
    if (!plan_against(*candidate.job, config, free, alloc)) continue;
    // Expected completion under the user walltime.  The sum saturates to
    // +inf for oversized walltimes; a job whose completion time cannot be
    // bounded never "finishes before" the shadow, even an infinite one
    // (without the kNeverFits exclusion such a job would slip past an
    // unreachable reservation and eat the surplus the head depends on).
    const Time end_bound = now + candidate.job->walltime;
    const bool finishes_before_shadow =
        end_bound <= res.shadow && end_bound != kNeverFits;
    bool fits_extra = false;
    if (res.have) {
      fits_extra = alloc.small_nodes <= res.extra.small &&
                   alloc.large_nodes <= res.extra.large &&
                   alloc.bb_gb <= res.extra.bb;
    }
    if (!finishes_before_shadow && res.have && !fits_extra) continue;
    // Start the candidate: consume current capacity, and if it may still be
    // running at the shadow time, the reservation surplus as well.
    take(free, alloc);
    if (res.have && !finishes_before_shadow) {
      res.extra.small -= alloc.small_nodes;
      res.extra.large -= alloc.large_nodes;
      res.extra.bb -= alloc.bb_gb;
    }
    result.started.push_back({candidate.key, alloc});
  }
}

}  // namespace

BackfillResult plan_easy_backfill(
    const MachineState& machine, const JobRecord* head,
    std::span<const RunningJobInfo> running,
    std::span<const BackfillCandidate> candidates, Time now) {
  BackfillResult result;
  const MachineConfig& config = machine.config();
  const Free free = initial_free(machine);

  // --- 1. shadow time: earliest moment the head fits -----------------------
  Reservation res;
  if (head != nullptr) {
    Allocation head_alloc;
    if (plan_against(*head, config, free, head_alloc)) {
      // The head fits right now (the window policy skipped it as a
      // trade-off); its reservation is "now", so backfill may only consume
      // what the head leaves over.
      res.shadow = now;
      Free at_shadow = free;
      take(at_shadow, head_alloc);
      res.extra = at_shadow;
      res.have = true;
    } else {
      // Walk future releases in expected-end order until the head fits.
      std::vector<const RunningJobInfo*> by_end;
      by_end.reserve(running.size());
      for (const auto& r : running) by_end.push_back(&r);
      std::sort(by_end.begin(), by_end.end(),
                [](const RunningJobInfo* a, const RunningJobInfo* b) {
                  return a->expected_end != b->expected_end
                             ? a->expected_end < b->expected_end
                             : a->id < b->id;
                });
      Free projected = free;
      for (const RunningJobInfo* r : by_end) {
        give(projected, r->alloc);
        Allocation alloc;
        if (plan_against(*head, config, projected, alloc)) {
          res.shadow = r->expected_end;
          Free at_shadow = projected;
          take(at_shadow, alloc);
          res.extra = at_shadow;
          res.have = true;
          break;
        }
      }
      // When the head cannot run even on an empty machine (oversized
      // request) no reservation constrains backfill: shadow stays
      // kNeverFits with res.have == false.
    }
  }
  result.shadow_time = res.shadow;

  // --- 2. scan candidates in priority order --------------------------------
  scan_candidates(config, free, res, candidates, now, result);
  return result;
}

BackfillResult plan_easy_backfill(const MachineState& machine,
                                  const JobRecord* head,
                                  std::span<const BackfillCandidate> candidates,
                                  Time now) {
  BackfillResult result;
  const MachineConfig& config = machine.config();
  const Planner& planner = machine.planner();
  const Free free = initial_free(machine);

  // --- 1. shadow time from the availability timeline -----------------------
  // The planner's release index is kept in (expected_end, job id) order, so
  // walking it replays the legacy event walk — same additions on the same
  // counters in the same order — without the per-pass O(R log R) sort over
  // every running job.
  Reservation res;
  if (head != nullptr) {
    Allocation head_alloc;
    if (plan_against(*head, config, free, head_alloc)) {
      res.shadow = now;
      Free at_shadow = free;
      take(at_shadow, head_alloc);
      res.extra = at_shadow;
      res.have = true;
    } else {
      Free projected = free;
      planner.for_each_release([&](Time end, const Planner::SpanInfo& span) {
        Allocation released;
        released.small_nodes =
            static_cast<NodeCount>(span.request[MachineState::kPlanSmall]);
        released.large_nodes =
            static_cast<NodeCount>(span.request[MachineState::kPlanLarge]);
        released.bb_gb = span.request[MachineState::kPlanBb];
        give(projected, released);
        Allocation alloc;
        if (plan_against(*head, config, projected, alloc)) {
          res.shadow = end;
          Free at_shadow = projected;
          take(at_shadow, alloc);
          res.extra = at_shadow;
          res.have = true;
          return false;
        }
        return true;
      });
    }
  }
  result.shadow_time = res.shadow;

  // --- 2. scan candidates in priority order --------------------------------
  scan_candidates(config, free, res, candidates, now, result);
  return result;
}

}  // namespace bbsched
