// bench_ablation_solver — ablations of the solver design choices that the
// paper leaves unspecified (DESIGN.md §5):
//
//  * feasibility handling — random-clear repair (this library's default) vs.
//    clear-all "restart" repair of capacity-violating chromosomes;
//  * survivor deduplication — collapsing duplicate gene vectors when
//    building the next generation vs. the literal §3.2.2 bookkeeping.
//
// Each variant solves the same Figure-4-style window problems; quality is
// generational distance to the exhaustive truth (lower = better) and 2-d
// hypervolume (higher = better).  Expected: random-clear repair preserves
// most of a violating selection and dominates clear-all; deduplication
// avoids population collapse and strictly helps at equal budget.
#include <iostream>

#include "common/env.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/exhaustive.hpp"
#include "core/ga.hpp"
#include "core/nsga2.hpp"
#include "window_problems.hpp"

#include "bench_util.hpp"

namespace {

using namespace bbsched;

/// Clear-all repair: wipe every non-pinned gene of an infeasible selection
/// (the "restart" alternative to the default random-clear repair).
class ClearAllRepairProblem : public MultiResourceProblem {
 public:
  using MultiResourceProblem::MultiResourceProblem;
  explicit ClearAllRepairProblem(const MultiResourceProblem& base)
      : MultiResourceProblem(base) {}

  bool repair(Genes& genes, Rng& rng) const override {
    apply_pins(genes);
    if (feasible(genes)) return false;
    for (auto& g : genes) g = 0;
    apply_pins(genes);
    (void)rng;
    return true;
  }
};

Front front_of(const std::vector<Chromosome>& chromosomes) {
  Front front;
  for (const auto& c : chromosomes) front.push_back(c.objectives);
  return front;
}

}  // namespace

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_ablation_solver");
  if (!cli.ok()) return 0;
  const auto samples =
      static_cast<std::size_t>(env_int("BBSCHED_ABLATION_SAMPLES", 4));
  const auto problems = benchutil::sample_window_problems(20, samples, 77);

  std::vector<Front> truths;
  for (const auto& problem : problems) {
    truths.push_back(front_of(ExhaustiveSolver(24).solve(problem).pareto_set));
  }

  struct Variant {
    const char* name;
    bool clear_all_repair;
    bool dedupe;
  };
  const Variant variants[] = {
      {"random-clear + dedupe (default)", false, true},
      {"random-clear, no dedupe", false, false},
      {"clear-all + dedupe", true, true},
      {"clear-all, no dedupe", true, false},
  };
  // NSGA-II (crowding-distance selection, binary-tournament parents) under
  // the same budget, as the Deb-style alternative to the paper's rule.

  std::cout << "Solver ablation (window = 20, G = 500, P = 20; averaged over "
            << samples << " problems)\n\n";
  ConsoleTable table({"variant", "GD", "hypervolume", "time (s)"},
                     {Align::kLeft, Align::kRight, Align::kRight,
                      Align::kRight});
  const std::vector<double> reference{0.0, 0.0};
  for (const auto& variant : variants) {
    GaParams params;
    params.dedupe_survivors = variant.dedupe;
    const MooGaSolver solver(params);
    double gd = 0, hv = 0, time = 0;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      Stopwatch watch;
      MooResult result;
      if (variant.clear_all_repair) {
        const ClearAllRepairProblem wrapped(problems[i]);
        result = solver.solve(wrapped);
      } else {
        result = solver.solve(problems[i]);
      }
      time += watch.elapsed_seconds();
      const Front front = front_of(result.pareto_set);
      gd += generational_distance(front, truths[i]);
      hv += hypervolume_2d(front, reference);
    }
    const auto n = static_cast<double>(problems.size());
    table.add_row({variant.name, ConsoleTable::num(gd / n, 4),
                   ConsoleTable::num(hv / n, 4),
                   ConsoleTable::num(time / n, 4)});
    const std::vector<std::pair<std::string, std::string>> series_params{
        {"variant", variant.name}};
    cli.bench().add_value("gd", series_params, gd / n, "distance", "lower");
    cli.bench().add_value("hypervolume", series_params, hv / n, "area",
                          "higher");
    cli.bench().add_value("solve_s", series_params, time / n, "s", "info");
  }
  {
    GaParams params;
    const Nsga2Solver solver(params);
    double gd = 0, hv = 0, time = 0;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      Stopwatch watch;
      const MooResult result = solver.solve(problems[i]);
      time += watch.elapsed_seconds();
      const Front front = front_of(result.pareto_set);
      gd += generational_distance(front, truths[i]);
      hv += hypervolume_2d(front, reference);
    }
    const auto n = static_cast<double>(problems.size());
    table.add_row({"NSGA-II (crowding selection)",
                   ConsoleTable::num(gd / n, 4), ConsoleTable::num(hv / n, 4),
                   ConsoleTable::num(time / n, 4)});
    const std::vector<std::pair<std::string, std::string>> series_params{
        {"variant", "nsga2"}};
    cli.bench().add_value("gd", series_params, gd / n, "distance", "lower");
    cli.bench().add_value("hypervolume", series_params, hv / n, "area",
                          "higher");
    cli.bench().add_value("solve_s", series_params, time / n, "s", "info");
  }
  table.print(std::cout);
  return cli.exit_code();
}
