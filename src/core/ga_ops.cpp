#include "core/ga_ops.hpp"

#include <cassert>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace bbsched {

void GaParams::validate() const {
  if (generations < 1) throw std::invalid_argument("GaParams: G must be >= 1");
  if (population_size < 2) {
    throw std::invalid_argument("GaParams: P must be >= 2");
  }
  if (mutation_rate < 0.0 || mutation_rate > 1.0) {
    throw std::invalid_argument("GaParams: p_m must be in [0, 1]");
  }
}

Chromosome random_chromosome(const MooProblem& problem, Rng& rng) {
  Chromosome c;
  c.genes.resize(problem.num_vars());
  for (auto& g : c.genes) g = rng.bernoulli(0.5) ? 1 : 0;
  problem.repair(c.genes, rng);
  problem.evaluate_into(c);
  return c;
}

std::vector<Chromosome> random_population(const MooProblem& problem,
                                          std::size_t size, Rng& rng,
                                          std::size_t* repairs) {
  // Gene generation and repair consume the RNG stream and stay serial; the
  // evaluations are pure and run as one parallel batch.
  std::vector<Chromosome> population(size);
  for (auto& c : population) {
    c.genes.resize(problem.num_vars());
    for (auto& g : c.genes) g = rng.bernoulli(0.5) ? 1 : 0;
    if (problem.repair(c.genes, rng) && repairs != nullptr) ++*repairs;
  }
  evaluate_population(problem, population);
  return population;
}

std::pair<Genes, Genes> crossover(const Genes& a, const Genes& b, Rng& rng) {
  assert(a.size() == b.size());
  Genes child_a = a;
  Genes child_b = b;
  if (a.size() >= 2) {
    // Cut position in [1, w-1] so both sides are non-empty.
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(a.size()) - 1));
    for (std::size_t i = cut; i < a.size(); ++i) {
      std::swap(child_a[i], child_b[i]);
    }
  }
  return {std::move(child_a), std::move(child_b)};
}

void mutate(Genes& genes, const MooProblem& problem, double rate, Rng& rng) {
  if (rate <= 0.0) return;
  for (auto& g : genes) {
    if (rng.bernoulli(rate)) g = g ? 0 : 1;
  }
  problem.apply_pins(genes);
}

std::vector<Chromosome> make_children(const MooProblem& problem,
                                      const std::vector<Chromosome>& parents,
                                      std::size_t count, double mutation_rate,
                                      Rng& rng, std::size_t* repairs) {
  assert(!parents.empty());
  std::vector<Chromosome> children;
  children.reserve(count + 1);
  const auto pick = [&]() -> const Genes& {
    const auto idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(parents.size()) - 1));
    return parents[idx].genes;
  };
  while (children.size() < count) {
    auto [a, b] = crossover(pick(), pick(), rng);
    for (Genes* genes : {&a, &b}) {
      if (children.size() >= count) break;
      mutate(*genes, problem, mutation_rate, rng);
      if (problem.repair(*genes, rng) && repairs != nullptr) ++*repairs;
      Chromosome c;
      c.genes = std::move(*genes);
      c.age = 0;
      children.push_back(std::move(c));
    }
  }
  evaluate_population(problem, children);
  return children;
}

void evaluate_population(const MooProblem& problem,
                         std::vector<Chromosome>& population) {
  parallel_for(population.size(),
               [&](std::size_t i) { problem.evaluate_into(population[i]); });
}

}  // namespace bbsched
