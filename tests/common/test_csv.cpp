#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace bbsched {
namespace {

TEST(CsvLine, SplitsPlainFields) {
  EXPECT_EQ(parse_csv_line("a,b,c"), (CsvRow{"a", "b", "c"}));
}

TEST(CsvLine, EmptyFieldsPreserved) {
  EXPECT_EQ(parse_csv_line("a,,c,"), (CsvRow{"a", "", "c", ""}));
}

TEST(CsvLine, QuotedCommaAndEscapedQuote) {
  EXPECT_EQ(parse_csv_line("\"a,b\",\"say \"\"hi\"\"\""),
            (CsvRow{"a,b", "say \"hi\""}));
}

TEST(CsvLine, ToleratesCrlf) {
  EXPECT_EQ(parse_csv_line("a,b\r"), (CsvRow{"a", "b"}));
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(csv_escape(" padded"), "\" padded\"");
}

TEST(CsvRoundTrip, RowSurvivesFormatAndParse) {
  const CsvRow row{"x", "1,2", "he said \"no\"", ""};
  EXPECT_EQ(parse_csv_line(format_csv_row(row)), row);
}

TEST(CsvTable, ReadsHeaderAndRows) {
  std::istringstream in("# comment\nname,value\nfoo,1\nbar,2\n");
  const CsvTable table = CsvTable::read(in);
  EXPECT_EQ(table.header(), (CsvRow{"name", "value"}));
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.at(0, "name"), "foo");
  EXPECT_EQ(table.at(1, "value"), "2");
}

TEST(CsvTable, RaggedRowThrows) {
  std::istringstream in("a,b\n1\n");
  EXPECT_THROW(CsvTable::read(in), std::runtime_error);
}

TEST(CsvTable, MissingColumnThrows) {
  std::istringstream in("a,b\n1,2\n");
  const CsvTable table = CsvTable::read(in);
  EXPECT_THROW(table.at(0, "missing"), std::runtime_error);
  EXPECT_FALSE(table.column("missing").has_value());
  EXPECT_EQ(table.column("b"), std::size_t{1});
}

TEST(CsvTable, WriteThenReadRoundTrip) {
  CsvTable table(CsvRow{"k", "v"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"with,comma", "2"});
  std::ostringstream out;
  table.write(out);
  std::istringstream in(out.str());
  const CsvTable reread = CsvTable::read(in);
  ASSERT_EQ(reread.num_rows(), 2u);
  EXPECT_EQ(reread.at(1, "k"), "with,comma");
}

TEST(CsvTable, AddRowWidthMismatchThrows) {
  CsvTable table(CsvRow{"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::runtime_error);
}

TEST(CsvParseFields, NumericHelpers) {
  EXPECT_DOUBLE_EQ(parse_double_field("2.5", "x"), 2.5);
  EXPECT_EQ(parse_int_field("-7", "x"), -7);
  EXPECT_THROW(parse_double_field("abc", "x"), std::runtime_error);
  EXPECT_THROW(parse_int_field("1.5", "x"), std::runtime_error);
  EXPECT_THROW(parse_int_field("", "x"), std::runtime_error);
}

TEST(CsvTable, MissingFileThrows) {
  EXPECT_THROW(CsvTable::read_file("/nonexistent/path.csv"),
               std::runtime_error);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("bbsched_csv_test_") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CsvFileTest, MalformedRowErrorNamesFileLineAndWidth) {
  const std::string path = dir_ + "/short_row.csv";
  std::ofstream(path) << "a,b,c\n1,2,3\n4,5\n";
  try {
    CsvTable::read_file(path);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos)
        << "diagnostic must name the file: " << what;
    EXPECT_NE(what.find("line 3"), std::string::npos)
        << "diagnostic must name the line: " << what;
    EXPECT_NE(what.find("expected 3"), std::string::npos)
        << "diagnostic must name the expected column count: " << what;
  }
}

TEST_F(CsvFileTest, ChecksummedRoundTrip) {
  CsvTable table(CsvRow{"k", "v"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"with,comma", "2"});
  const std::string path = dir_ + "/table.csv";
  write_csv_file_checksummed(table, path);
  std::string error;
  const auto reread = read_csv_file_checksummed(path, &error);
  ASSERT_TRUE(reread.has_value()) << error;
  ASSERT_EQ(reread->num_rows(), 2u);
  EXPECT_EQ(reread->at(1, "k"), "with,comma");
  // The trailer is a comment line, so the plain reader still works too.
  const CsvTable plain = CsvTable::read_file(path);
  EXPECT_EQ(plain.num_rows(), 2u);
}

TEST_F(CsvFileTest, ChecksummedReadRejectsCorruptionNamingThePath) {
  CsvTable table(CsvRow{"k", "v"});
  table.add_row({"alpha", "1.5"});
  const std::string path = dir_ + "/table.csv";
  write_csv_file_checksummed(table, path);
  // Flip one byte of the body; the trailer no longer matches.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream slurp;
  slurp << in.rdbuf();
  in.close();
  std::string content = slurp.str();
  content[8] ^= 0x1;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << content;
  std::string error;
  EXPECT_FALSE(read_csv_file_checksummed(path, &error).has_value());
  EXPECT_NE(error.find(path), std::string::npos);
  EXPECT_NE(error.find("crc32 mismatch"), std::string::npos);
}

TEST_F(CsvFileTest, ChecksummedReadRejectsMissingTrailer) {
  const std::string path = dir_ + "/plain.csv";
  std::ofstream(path) << "a,b\n1,2\n";
  std::string error;
  EXPECT_FALSE(read_csv_file_checksummed(path, &error).has_value());
  EXPECT_NE(error.find("missing crc32 trailer"), std::string::npos);
}

TEST_F(CsvFileTest, ChecksummedReadRejectsTrailingData) {
  CsvTable table(CsvRow{"k", "v"});
  table.add_row({"alpha", "1"});
  const std::string path = dir_ + "/table.csv";
  write_csv_file_checksummed(table, path);
  std::ofstream(path, std::ios::binary | std::ios::app) << "beta,2\n";
  std::string error;
  EXPECT_FALSE(read_csv_file_checksummed(path, &error).has_value());
  EXPECT_NE(error.find("trailing data"), std::string::npos);
}

}  // namespace
}  // namespace bbsched
