#include "exp/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/profiler.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace bbsched {

namespace {

namespace fs = std::filesystem;

std::string frame(std::string_view payload) {
  return crc32_hex(payload) + "|" + std::string(payload);
}

/// Split a framed line into its payload; false when the frame or CRC is bad.
bool unframe(const std::string& line, std::string* payload) {
  const std::size_t bar = line.find('|');
  if (bar != 8) return false;  // crc32_hex is always 8 chars
  const std::string_view body(line.data() + bar + 1, line.size() - bar - 1);
  if (crc32_hex(body) != line.substr(0, bar)) return false;
  *payload = std::string(body);
  return true;
}

}  // namespace

CellJournal::CellJournal(std::string path) : path_(std::move(path)) {}

std::vector<JournalBundle> CellJournal::load() {
  PROF_PHASE("journal.load");
  std::vector<JournalBundle> bundles;
  std::ifstream in(path_);
  if (!in) return bundles;

  std::string line;
  std::string payload;
  std::size_t line_no = 0;
  bool have_header = false;
  JournalBundle current;
  bool in_bundle = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!unframe(line, &payload)) {
      if (!have_header) {
        // Unreadable header: nothing in this file can be trusted.
        in.close();
        quarantine_file(path_, "journal header frame invalid");
        return {};
      }
      // Torn tail (crash mid-append): drop this line and everything after.
      log_warn("journal", "torn record, dropping tail",
               {{"path", path_}, {"line", line_no}});
      break;
    }
    if (!have_header) {
      if (payload != std::string("journal|") + kVersion) {
        in.close();
        quarantine_file(path_, "journal version mismatch: " + payload);
        return {};
      }
      have_header = true;
      continue;
    }
    if (payload.rfind("cell|", 0) == 0) {
      if (in_bundle) {
        log_warn("journal", "bundle without done marker dropped",
                 {{"path", path_}, {"line", line_no}});
      }
      current = JournalBundle{};
      current.cell_row = payload.substr(5);
      in_bundle = true;
    } else if (payload.rfind("bd|", 0) == 0) {
      if (!in_bundle) {
        log_warn("journal", "stray breakdown row, dropping tail",
                 {{"path", path_}, {"line", line_no}});
        break;
      }
      current.breakdown_rows.push_back(payload.substr(3));
    } else if (payload.rfind("done|", 0) == 0) {
      if (!in_bundle) {
        log_warn("journal", "stray done marker, dropping tail",
                 {{"path", path_}, {"line", line_no}});
        break;
      }
      const std::string tail = payload.substr(5);
      const std::size_t bar = tail.find('|');
      if (bar == std::string::npos) {
        log_warn("journal", "malformed done marker, dropping tail",
                 {{"path", path_}, {"line", line_no}});
        break;
      }
      current.workload = tail.substr(0, bar);
      current.method = tail.substr(bar + 1);
      bundles.push_back(std::move(current));
      current = JournalBundle{};
      in_bundle = false;
    } else {
      log_warn("journal", "unknown record tag, dropping tail",
               {{"path", path_}, {"line", line_no}});
      break;
    }
  }
  if (in_bundle) {
    log_warn("journal", "uncommitted trailing bundle dropped",
             {{"path", path_}});
  }
  log_info("journal", "recovered bundles",
           {{"path", path_}, {"bundles", bundles.size()}});
  return bundles;
}

bool CellJournal::append(const JournalBundle& bundle) {
  PROF_PHASE("journal.append");
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) return false;

  // The framing is one record per line: an embedded newline would split a
  // record and fail its CRC on reload.  Nothing the grid serializes contains
  // one; refuse rather than corrupt if that ever changes.
  auto framable = [](const std::string& s) {
    return s.find('\n') == std::string::npos &&
           s.find('\r') == std::string::npos;
  };
  bool clean = framable(bundle.workload) && framable(bundle.method) &&
               framable(bundle.cell_row);
  for (const std::string& row : bundle.breakdown_rows) {
    clean = clean && framable(row);
  }
  if (!clean) {
    log_warn("journal", "bundle with embedded newline refused",
             {{"path", path_},
              {"cell", bundle.workload + "/" + bundle.method}});
    return false;
  }

  std::ostringstream record;
  record << frame("cell|" + bundle.cell_row) << '\n';
  for (const std::string& row : bundle.breakdown_rows) {
    record << frame("bd|" + row) << '\n';
  }
  record << frame("done|" + bundle.workload + "|" + bundle.method) << '\n';
  const std::string payload = record.str();

  const bool fresh = !fs::exists(path_);
  std::string data = payload;
  if (fresh) {
    const fs::path p(path_);
    if (p.has_parent_path()) {
      std::error_code ec;
      fs::create_directories(p.parent_path(), ec);
    }
    data = frame(std::string("journal|") + kVersion) + '\n' + payload;
  }

  try {
    // The injection site simulates crash-mid-append: only a prefix of the
    // record reaches the file, which load() must recover from.
    const std::size_t keep = fault_write_bytes(
        "journal.append", bundle.workload + "/" + bundle.method, data.size());
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    if (f == nullptr) {
      throw std::runtime_error("journal: cannot open " + path_);
    }
    const std::size_t written = std::fwrite(data.data(), 1, keep, f);
    const bool flushed = std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
    ::fsync(::fileno(f));
#endif
    std::fclose(f);
    if (written != keep || !flushed) {
      throw std::runtime_error("journal: short write to " + path_);
    }
    if (keep < data.size()) {
      throw InjectedFault(FaultKind::kPartialWrite, "journal.append",
                          bundle.workload + "/" + bundle.method);
    }
  } catch (const std::exception& e) {
    // A real crashed writer would never touch the file again; mirror that so
    // the torn bytes stay a *tail*, which load() knows how to drop.
    poisoned_ = true;
    log_warn("journal", "append failed, journaling disabled for this run",
             {{"path", path_},
              {"cell", bundle.workload + "/" + bundle.method},
              {"error", e.what()}});
    return false;
  }
  return true;
}

void CellJournal::remove() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  fs::remove(path_, ec);
}

}  // namespace bbsched
