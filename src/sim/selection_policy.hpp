// selection_policy.hpp — the window-selection strategy interface.
//
// Once the base scheduler has ordered the waiting queue and the simulator
// has formed the scheduling window (§3.1), a SelectionPolicy decides which
// window jobs start *now*.  All eight methods of §4.3 (plus §5's
// Constrained_SSD) implement this interface; the simulator is agnostic to
// how the subset was chosen.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/machine_state.hpp"
#include "workload/job.hpp"

namespace bbsched {

/// Inputs of one window-selection decision.
struct WindowContext {
  std::span<const JobRecord* const> window;  ///< priority order, front first
  FreeState free;                            ///< free capacity snapshot
  /// Window positions of jobs force-included by the starvation bound (§3.1).
  /// Each pinned job is individually feasible against `free`.
  std::span<const std::size_t> pinned;
  Rng* rng = nullptr;                        ///< solver randomness stream
};

/// Output of one window-selection decision.
struct WindowDecision {
  /// Window positions selected to start now; the combined selection is
  /// feasible against the context's free capacity.
  std::vector<std::size_t> selected;
  /// Node-tier split per selected position (parallel to `selected`); empty
  /// for non-SSD machines, in which case the simulator plans single-job
  /// splits itself.
  std::vector<Allocation> allocations;
  /// Size of the Pareto set considered (1 for single-solution methods).
  std::size_t pareto_size = 1;
  /// Chromosome evaluations spent by the optimizer (0 for greedy methods).
  std::size_t evaluations = 0;
};

/// Strategy interface for the §4.3 methods.
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  virtual WindowDecision select(const WindowContext& context) const = 0;

  /// Method label used in result tables ("BBSched", "Weighted_CPU", ...).
  virtual std::string name() const = 0;
};

}  // namespace bbsched
