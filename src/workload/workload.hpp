// workload.hpp — an ordered job trace plus the machine it targets.
//
// A Workload couples a job list (sorted by submission time) with the machine
// configuration the trace was collected on / generated for, because the
// evaluation metrics (node usage, BB usage) are fractions of that machine's
// capacity.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "workload/job.hpp"

namespace bbsched {

/// Static description of the simulated machine (Table 2 rows).
struct MachineConfig {
  std::string name = "machine";
  NodeCount nodes = 0;            ///< total compute nodes
  GigaBytes burst_buffer_gb = 0;  ///< total shared burst buffer
  /// Fraction of the burst buffer held by persistent reservations whose
  /// lifetime is independent of jobs (one third on Cori, §4.1); removed from
  /// the schedulable pool.
  double persistent_bb_fraction = 0;

  // §5 heterogeneous local SSD tiers.  small+large node counts must equal
  // `nodes` when SSD scheduling is enabled; both zero disables local SSD.
  NodeCount small_ssd_nodes = 0;
  NodeCount large_ssd_nodes = 0;
  GigaBytes small_ssd_gb = 128;
  GigaBytes large_ssd_gb = 256;

  bool has_local_ssd() const {
    return small_ssd_nodes > 0 || large_ssd_nodes > 0;
  }
  /// Burst buffer available to the scheduler after persistent reservations.
  GigaBytes schedulable_bb_gb() const {
    return burst_buffer_gb * (1.0 - persistent_bb_fraction);
  }

  void validate() const;
};

/// A named trace bound to a machine.
struct Workload {
  std::string name;
  MachineConfig machine;
  std::vector<JobRecord> jobs;  ///< sorted by submit_time

  /// Sort jobs by (submit_time, id) and validate every record.
  void normalize();

  /// Total requested burst-buffer volume across jobs (Figure 5 annotation).
  GigaBytes total_bb_request() const;

  /// Fraction of jobs with a burst-buffer request.
  double bb_request_fraction() const;

  /// Span of submissions [first, last] in seconds; 0 when empty.
  Time submit_span() const;
};

}  // namespace bbsched
