#include "policies/problem_builder.hpp"

#include <cmath>

#include "core/multi_resource_problem.hpp"
#include "core/ssd_problem.hpp"

namespace bbsched {

std::unique_ptr<MooProblem> build_window_problem(
    const WindowContext& context) {
  std::unique_ptr<MooProblem> problem;
  if (context.free.ssd_enabled) {
    std::vector<SsdJobDemand> demands;
    demands.reserve(context.window.size());
    for (const JobRecord* job : context.window) {
      SsdJobDemand d;
      d.nodes = static_cast<double>(job->nodes);
      d.bb_gb = job->bb_gb;
      d.ssd_per_node = job->ssd_per_node_gb;
      demands.push_back(d);
    }
    SsdFreeState free;
    free.small_nodes = context.free.small_nodes;
    free.large_nodes = context.free.large_nodes;
    free.bb_gb = context.free.bb_gb;
    free.small_ssd_gb = context.free.small_ssd_gb;
    free.large_ssd_gb = context.free.large_ssd_gb;
    problem = std::make_unique<SsdSchedulingProblem>(std::move(demands), free);
  } else {
    std::vector<double> nodes, bb;
    nodes.reserve(context.window.size());
    bb.reserve(context.window.size());
    for (const JobRecord* job : context.window) {
      nodes.push_back(static_cast<double>(job->nodes));
      bb.push_back(job->bb_gb);
    }
    problem = std::make_unique<MultiResourceProblem>(
        MultiResourceProblem::cpu_bb(nodes, bb, context.free.nodes,
                                     context.free.bb_gb));
  }
  for (std::size_t pos : context.pinned) problem->pin(pos);
  return problem;
}

std::unique_ptr<MooProblem> build_window_problem_during(
    const WindowContext& context, const MachineState& machine, Time t,
    Time duration) {
  WindowContext future = context;
  future.free = machine.free_state_during(t, duration);
  return build_window_problem(future);
}

WindowDecision decision_from_genes(const WindowContext& context,
                                   const MooProblem& problem,
                                   const Genes& genes) {
  WindowDecision decision;
  decision.selected = selected_indices(genes);
  if (context.free.ssd_enabled) {
    const auto& ssd = static_cast<const SsdSchedulingProblem&>(problem);
    const auto splits = ssd.assign(genes);
    decision.allocations.reserve(decision.selected.size());
    for (std::size_t pos : decision.selected) {
      Allocation alloc;
      alloc.small_nodes =
          static_cast<NodeCount>(std::llround(splits[pos].small_nodes));
      alloc.large_nodes =
          static_cast<NodeCount>(std::llround(splits[pos].large_nodes));
      alloc.bb_gb = context.window[pos]->bb_gb;
      decision.allocations.push_back(alloc);
    }
  }
  return decision;
}

}  // namespace bbsched
