#include "core/decision.hpp"

#include <gtest/gtest.h>

namespace bbsched {
namespace {

Chromosome make(Genes genes, std::vector<double> objectives) {
  Chromosome c;
  c.genes = std::move(genes);
  c.objectives = std::move(objectives);
  return c;
}

TEST(PrefersFrontOfWindow, EarlierSetBitWins) {
  EXPECT_TRUE(prefers_front_of_window({1, 0, 0}, {0, 1, 0}));
  EXPECT_FALSE(prefers_front_of_window({0, 1, 0}, {1, 0, 0}));
  EXPECT_FALSE(prefers_front_of_window({1, 0, 1}, {1, 0, 1}));
}

TEST(MaxObjectiveIndex, PicksMaximum) {
  const std::vector<Chromosome> set{
      make({1, 0}, {0.5, 0.9}),
      make({0, 1}, {0.8, 0.1}),
  };
  EXPECT_EQ(max_objective_index(set, 0), 1u);
  EXPECT_EQ(max_objective_index(set, 1), 0u);
}

TEST(MaxObjectiveIndex, TieBreaksTowardFrontOfWindow) {
  const std::vector<Chromosome> set{
      make({0, 1, 1}, {0.8, 0.5}),
      make({1, 1, 0}, {0.8, 0.5}),
  };
  EXPECT_EQ(max_objective_index(set, 0), 1u);
}

TEST(MaxObjectiveIndex, EmptySetThrows) {
  const std::vector<Chromosome> empty;
  EXPECT_THROW(max_objective_index(empty, 0), std::invalid_argument);
}

TEST(NodeFirstTradeoff, Table1ChoosesSolution3) {
  // §3.2.4 on the Table 1 Pareto set: start from Solution 2 (100 % nodes,
  // 20 % BB); Solution 3 (80 %, 90 %) gains 70 BB points for 20 node points
  // of loss — more than 2x — so it replaces the preferred solution.
  const std::vector<Chromosome> pareto{
      make({1, 0, 0, 0, 1}, {1.00, 0.20}),
      make({0, 1, 1, 1, 1}, {0.80, 0.90}),
  };
  const NodeFirstTradeoffRule rule;
  EXPECT_EQ(rule.choose(pareto), 1u);
}

TEST(NodeFirstTradeoff, KeepsPreferredWhenGainTooSmall) {
  const std::vector<Chromosome> pareto{
      make({1, 0}, {1.00, 0.20}),
      make({0, 1}, {0.80, 0.50}),  // gain 0.30 < 2 * loss 0.20
  };
  const NodeFirstTradeoffRule rule;
  EXPECT_EQ(rule.choose(pareto), 0u);
}

TEST(NodeFirstTradeoff, BoundaryExactlyTwoTimesIsNotEnough) {
  // "more than 2x": gain == 2 * loss keeps the preferred solution.  The
  // values are exactly representable in binary so the boundary is exact.
  const std::vector<Chromosome> pareto{
      make({1, 0}, {1.00, 0.25}),
      make({0, 1}, {0.75, 0.75}),  // gain 0.50 == 2 * loss 0.25
  };
  const NodeFirstTradeoffRule rule;
  EXPECT_EQ(rule.choose(pareto), 0u);
}

TEST(NodeFirstTradeoff, PicksMaximumGainAmongQualifiers) {
  const std::vector<Chromosome> pareto{
      make({1, 0, 0}, {1.00, 0.10}),
      make({0, 1, 0}, {0.95, 0.50}),  // gain 0.40 > 2*0.05
      make({0, 0, 1}, {0.90, 0.80}),  // gain 0.70 > 2*0.10 — larger gain
  };
  const NodeFirstTradeoffRule rule;
  EXPECT_EQ(rule.choose(pareto), 2u);
}

TEST(NodeFirstTradeoff, SingletonSetTrivial) {
  const std::vector<Chromosome> pareto{make({1}, {0.5, 0.5})};
  EXPECT_EQ(NodeFirstTradeoffRule().choose(pareto), 0u);
}

TEST(NodeFirstTradeoff, CustomFactor) {
  const std::vector<Chromosome> pareto{
      make({1, 0}, {1.00, 0.20}),
      make({0, 1}, {0.80, 0.50}),  // gain 0.30, loss 0.20
  };
  // With a 1x factor the 0.30 > 0.20 trade qualifies.
  EXPECT_EQ(NodeFirstTradeoffRule(1.0).choose(pareto), 1u);
}

TEST(SumTradeoff, SumsNonNodeObjectiveGains) {
  // §5 rule: total gain across BB, SSD and waste reduction must exceed 4x
  // the node-utilization loss.
  const std::vector<Chromosome> pareto{
      make({1, 0}, {1.00, 0.20, 0.30, -0.10}),
      make({0, 1}, {0.90, 0.50, 0.40, -0.05}),
      // gains: 0.30 + 0.10 + 0.05 = 0.45 > 4 * 0.10 = 0.40
  };
  EXPECT_EQ(SumTradeoffRule().choose(pareto), 1u);
}

TEST(SumTradeoff, RejectsInsufficientSum) {
  const std::vector<Chromosome> pareto{
      make({1, 0}, {1.00, 0.20, 0.30, -0.10}),
      make({0, 1}, {0.90, 0.30, 0.35, -0.08}),
      // gains: 0.10 + 0.05 + 0.02 = 0.17 < 0.40
  };
  EXPECT_EQ(SumTradeoffRule().choose(pareto), 0u);
}

TEST(Lexicographic, MaximizesPrimaryOnly) {
  const std::vector<Chromosome> pareto{
      make({1, 0}, {0.30, 0.90}),
      make({0, 1}, {0.70, 0.10}),
  };
  EXPECT_EQ(LexicographicRule(0).choose(pareto), 1u);
  EXPECT_EQ(LexicographicRule(1).choose(pareto), 0u);
}

}  // namespace
}  // namespace bbsched
