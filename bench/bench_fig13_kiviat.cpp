// bench_fig13_kiviat — reproduce Figure 13: holistic Kiviat-graph comparison
// per workload.
//
// Four axes per method — node usage, BB usage, reciprocal average wait,
// reciprocal average slowdown — min-max normalized to [0, 1] across methods
// (1 = best).  The polygon area summarizes overall performance ("the larger
// the area is, the better").  Expected shape: BBSched has the largest and
// most balanced area on every workload; the biased methods spike on their
// favourite axis and collapse on others; areas of all methods except
// BBSched shrink as BB intensity grows.
#include <iostream>

#include "bench_util.hpp"
#include "exp/grid.hpp"
#include "metrics/kiviat.hpp"
#include "policies/factory.hpp"

int main(int argc, char** argv) {
  bbsched::benchutil::CampaignCli cli(argc, argv, "bench_fig13_kiviat");
  if (!cli.ok()) return 0;
  using namespace bbsched;
  const auto config = ExperimentConfig::from_env();
  const auto results = ensure_main_grid(config);
  benchutil::record_grid_cells(cli.bench(), "main_grid", results.cells);
  const auto methods = standard_method_names();

  std::cout << "Figure 13: Kiviat normalization (axes: node usage, BB usage,"
               " 1/wait, 1/slowdown; 1 = best)\n";
  for (const auto& workload : benchutil::main_workload_labels()) {
    std::vector<KiviatSeries> series;
    for (const auto& method : methods) {
      const auto cell = find_cell(results.cells, workload, method);
      if (!cell) continue;
      KiviatSeries s;
      s.method = method;
      s.values = {kiviat_orient(cell->metrics.node_usage, true),
                  kiviat_orient(cell->metrics.bb_usage, true),
                  kiviat_orient(cell->metrics.avg_wait, false),
                  kiviat_orient(cell->metrics.avg_slowdown, false)};
      series.push_back(std::move(s));
    }
    const auto normalized = kiviat_normalize(std::move(series), 0.02);
    std::cout << '\n' << workload << "\n";
    ConsoleTable table(
        {"method", "node", "bb", "1/wait", "1/slowdown", "area"},
        {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
         Align::kRight, Align::kRight});
    for (const auto& s : normalized) {
      table.add_row({s.method, ConsoleTable::num(s.values[0], 2),
                     ConsoleTable::num(s.values[1], 2),
                     ConsoleTable::num(s.values[2], 2),
                     ConsoleTable::num(s.values[3], 2),
                     ConsoleTable::num(kiviat_area(s), 3)});
    }
    table.print(std::cout);
  }
  return cli.exit_code();
}
