// base_scheduler.hpp — queue-ordering policies ("base schedulers", §2.1).
//
// BBSched and every compared method run *on top of* a base scheduler that
// enforces the site's job-priority policy.  The paper uses FCFS for the Cori
// workloads and ALCF's utility-based WFP policy for the Theta workloads.
// A base scheduler only orders the waiting queue; selection and backfilling
// happen downstream.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "workload/job.hpp"

namespace bbsched {

/// Everything a priority function may look at for one waiting job.
struct QueuedJobView {
  const JobRecord* job = nullptr;
  Time queued_since = 0;  ///< submit time (or dependency-release time)
};

/// Orders the waiting queue according to the site policy.
class BaseScheduler {
 public:
  virtual ~BaseScheduler() = default;

  /// Priority score of one waiting job at time `now`; larger runs earlier.
  virtual double priority(const QueuedJobView& view, Time now) const = 0;

  virtual std::string name() const = 0;

  /// Sort `queue` by descending priority; ties broken by earlier submission
  /// then lower id, so the order is total and deterministic.
  void sort_queue(std::vector<QueuedJobView>& queue, Time now) const;
};

/// First come, first served: earlier submission means higher priority.
class FcfsScheduler : public BaseScheduler {
 public:
  double priority(const QueuedJobView& view, Time now) const override;
  std::string name() const override { return "FCFS"; }
};

/// ALCF's WFP utility policy (§2.1): each cycle the score grows with queue
/// wait and job size and shrinks with the requested walltime —
///   score = nodes * (wait / walltime)^3,
// so large jobs and long-waiting jobs rise while long requested walltimes
// sink (short jobs get higher priority, as §4.4 observes).
class WfpScheduler : public BaseScheduler {
 public:
  explicit WfpScheduler(double exponent = 3.0) : exponent_(exponent) {}

  double priority(const QueuedJobView& view, Time now) const override;
  std::string name() const override { return "WFP"; }

 private:
  double exponent_;
};

std::unique_ptr<BaseScheduler> make_base_scheduler(const std::string& name);

}  // namespace bbsched
