#include "metrics/schedule_metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbsched {

Time interval_overlap(Time lo1, Time hi1, Time lo2, Time hi2) {
  return std::max(0.0, std::min(hi1, hi2) - std::max(lo1, lo2));
}

GigaBytes wasted_ssd_gb(const JobOutcome& outcome, const MachineConfig& m) {
  if (!m.has_local_ssd()) return 0;
  const double s = outcome.ssd_per_node_gb;
  return static_cast<double>(outcome.small_tier_nodes) *
             (m.small_ssd_gb - s) +
         static_cast<double>(outcome.large_tier_nodes) * (m.large_ssd_gb - s);
}

namespace {

// Shared ratio step: both the batch reference and the streaming accumulator
// must divide by the same elapsed-resource-hours expressions for the results
// to agree bit for bit.
ScheduleMetrics finalize_ratios(const MachineConfig& machine, Time mb, Time me,
                                double used_node, double used_bb,
                                double used_ssd, double wasted_ssd) {
  ScheduleMetrics metrics;
  const Time elapsed = std::max(0.0, me - mb);
  if (elapsed <= 0) return metrics;
  const double node_hours = static_cast<double>(machine.nodes) * elapsed;
  const double bb_hours = machine.schedulable_bb_gb() * elapsed;
  const double ssd_capacity =
      static_cast<double>(machine.small_ssd_nodes) * machine.small_ssd_gb +
      static_cast<double>(machine.large_ssd_nodes) * machine.large_ssd_gb;
  const double ssd_hours = ssd_capacity * elapsed;
  metrics.node_usage = node_hours > 0 ? used_node / node_hours : 0;
  metrics.bb_usage = bb_hours > 0 ? used_bb / bb_hours : 0;
  metrics.ssd_usage = ssd_hours > 0 ? used_ssd / ssd_hours : 0;
  metrics.ssd_waste = ssd_hours > 0 ? wasted_ssd / ssd_hours : 0;
  return metrics;
}

}  // namespace

ScheduleMetrics compute_metrics(const SimResult& result,
                                const MetricsConfig& config) {
  // Independent batch pass: same primitives (ExactSum, QuantileSketch) as
  // IncrementalScheduleMetrics but a separately written loop, so the two
  // implementations can differentially test each other.
  const Time mb = result.measure_begin;
  const Time me = result.measure_end;
  if (me - mb <= 0) return ScheduleMetrics{};
  const MachineConfig& machine = result.machine;

  ExactSum used_node, used_bb, used_ssd, wasted_ssd;
  ExactSum wait_sum, slowdown_sum;
  QuantileSketch wait_sketch;
  double max_wait = 0;
  std::size_t jobs_measured = 0, jobs_backfilled = 0, slowdown_count = 0;
  for (const auto& o : result.outcomes) {
    const Time overlap = interval_overlap(o.start, o.end, mb, me);
    if (overlap > 0) {
      used_node.add(static_cast<double>(o.nodes) * overlap);
      used_bb.add(o.bb_gb * overlap);
      used_ssd.add(o.ssd_per_node_gb * static_cast<double>(o.nodes) * overlap);
      wasted_ssd.add(wasted_ssd_gb(o, machine) * overlap);
    }
    if (o.submit >= mb && o.submit <= me) {
      ++jobs_measured;
      jobs_backfilled += o.backfilled;
      const double wait = o.wait();
      wait_sum.add(wait);
      wait_sketch.add(wait);
      max_wait = std::max(max_wait, wait);
      if (o.runtime >= config.slowdown_min_runtime) {
        ++slowdown_count;
        slowdown_sum.add(o.slowdown());
      }
    }
  }

  ScheduleMetrics metrics =
      finalize_ratios(machine, mb, me, used_node.round(), used_bb.round(),
                      used_ssd.round(), wasted_ssd.round());
  metrics.jobs_measured = jobs_measured;
  metrics.jobs_backfilled = jobs_backfilled;
  metrics.avg_wait =
      jobs_measured
          ? wait_sum.round() / static_cast<double>(jobs_measured)
          : 0.0;
  metrics.avg_slowdown =
      slowdown_count
          ? slowdown_sum.round() / static_cast<double>(slowdown_count)
          : 0.0;
  metrics.p95_wait = wait_sketch.quantile(0.95);
  metrics.max_wait = max_wait;
  return metrics;
}

IncrementalScheduleMetrics::IncrementalScheduleMetrics(
    const MachineConfig& machine, Time measure_begin, Time measure_end,
    MetricsConfig config)
    : machine_(machine),
      measure_begin_(measure_begin),
      measure_end_(measure_end),
      config_(config) {}

void IncrementalScheduleMetrics::add(const JobOutcome& o) {
  ++jobs_seen_;
  const Time overlap =
      interval_overlap(o.start, o.end, measure_begin_, measure_end_);
  if (overlap > 0) {
    used_node_.add(static_cast<double>(o.nodes) * overlap);
    used_bb_.add(o.bb_gb * overlap);
    used_ssd_.add(o.ssd_per_node_gb * static_cast<double>(o.nodes) * overlap);
    wasted_ssd_.add(wasted_ssd_gb(o, machine_) * overlap);
  }
  if (o.submit >= measure_begin_ && o.submit <= measure_end_) {
    ++jobs_measured_;
    jobs_backfilled_ += o.backfilled;
    const double wait = o.wait();
    wait_sum_.add(wait);
    wait_sketch_.add(wait);
    max_wait_ = std::max(max_wait_, wait);
    if (o.runtime >= config_.slowdown_min_runtime) {
      ++slowdown_count_;
      slowdown_sum_.add(o.slowdown());
    }
  }
}

void IncrementalScheduleMetrics::merge(const IncrementalScheduleMetrics& o) {
  if (measure_begin_ != o.measure_begin_ || measure_end_ != o.measure_end_ ||
      config_.slowdown_min_runtime != o.config_.slowdown_min_runtime) {
    throw std::invalid_argument(
        "IncrementalScheduleMetrics::merge: interval/config mismatch");
  }
  used_node_.merge(o.used_node_);
  used_bb_.merge(o.used_bb_);
  used_ssd_.merge(o.used_ssd_);
  wasted_ssd_.merge(o.wasted_ssd_);
  wait_sum_.merge(o.wait_sum_);
  slowdown_sum_.merge(o.slowdown_sum_);
  wait_sketch_.merge(o.wait_sketch_);
  max_wait_ = std::max(max_wait_, o.max_wait_);
  slowdown_count_ += o.slowdown_count_;
  jobs_measured_ += o.jobs_measured_;
  jobs_backfilled_ += o.jobs_backfilled_;
  jobs_seen_ += o.jobs_seen_;
}

ScheduleMetrics IncrementalScheduleMetrics::finalize() const {
  if (measure_end_ - measure_begin_ <= 0) return ScheduleMetrics{};
  ScheduleMetrics metrics = finalize_ratios(
      machine_, measure_begin_, measure_end_, used_node_.round(),
      used_bb_.round(), used_ssd_.round(), wasted_ssd_.round());
  metrics.jobs_measured = jobs_measured_;
  metrics.jobs_backfilled = jobs_backfilled_;
  metrics.avg_wait =
      jobs_measured_
          ? wait_sum_.round() / static_cast<double>(jobs_measured_)
          : 0.0;
  metrics.avg_slowdown =
      slowdown_count_
          ? slowdown_sum_.round() / static_cast<double>(slowdown_count_)
          : 0.0;
  metrics.p95_wait = wait_sketch_.quantile(0.95);
  metrics.max_wait = max_wait_;
  return metrics;
}

std::size_t IncrementalScheduleMetrics::memory_bytes() const {
  return sizeof(*this) + wait_sketch_.memory_bytes() +
         (used_node_.partial_count() + used_bb_.partial_count() +
          used_ssd_.partial_count() + wasted_ssd_.partial_count() +
          wait_sum_.partial_count() + slowdown_sum_.partial_count()) *
             sizeof(double);
}

}  // namespace bbsched
