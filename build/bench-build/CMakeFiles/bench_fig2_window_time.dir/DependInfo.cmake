
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_window_time.cpp" "bench-build/CMakeFiles/bench_fig2_window_time.dir/bench_fig2_window_time.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig2_window_time.dir/bench_fig2_window_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/bbsched_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/bbsched_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/bbsched_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bbsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bbsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bbsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bbsched_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
